#!/usr/bin/env python3
"""Plot the CSV outputs of the sweep benches.

Usage:
    build/bench/sweep_n --csv=v1.csv
    tools/plot_sweeps.py v1.csv --x=n0 --y=comm_meas --series=model --out=v1.svg

Requires matplotlib (optional dependency; everything in the repo works
without it — this script only re-plots the CSVs the benches emit).
"""
import argparse
import csv
import sys
from collections import defaultdict


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("csv_path")
    ap.add_argument("--x", required=True, help="column for the x axis")
    ap.add_argument("--y", required=True, help="column for the y axis")
    ap.add_argument("--series", default=None,
                    help="column whose values become separate lines")
    ap.add_argument("--logy", action="store_true")
    ap.add_argument("--out", default=None, help="output image (default: show)")
    args = ap.parse_args()

    try:
        import matplotlib
        if args.out:
            matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib is required for plotting", file=sys.stderr)
        return 1

    series = defaultdict(lambda: ([], []))
    with open(args.csv_path, newline="") as f:
        for row in csv.DictReader(f):
            key = row[args.series] if args.series else args.y
            xs, ys = series[key]
            xs.append(float(row[args.x]))
            ys.append(float(row[args.y]))

    fig, ax = plt.subplots(figsize=(7, 4.5))
    for name, (xs, ys) in sorted(series.items()):
        order = sorted(range(len(xs)), key=xs.__getitem__)
        ax.plot([xs[i] for i in order], [ys[i] for i in order],
                marker="o", label=name)
    ax.set_xlabel(args.x)
    ax.set_ylabel(args.y)
    if args.logy:
        ax.set_yscale("log")
    if args.series:
        ax.legend(fontsize=8)
    ax.grid(True, alpha=0.3)
    fig.tight_layout()
    if args.out:
        fig.savefig(args.out, dpi=150)
        print(f"wrote {args.out}")
    else:
        plt.show()
    return 0


if __name__ == "__main__":
    sys.exit(main())
