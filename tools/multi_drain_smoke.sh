#!/usr/bin/env bash
# Multi-process kill-and-recover smoke for the experiment service.
#
# Three concurrent `hinetd run` drains share one store; one is SIGKILLed
# while `hinetd status` shows it holding a live lease.  The survivors
# finish what they can, a recovery drain waits out the dead drain's lease
# (exit 3 = transient, retry) and converges to exit 0.  Afterwards:
#
#   * every job's query-digest is byte-identical to an uninterrupted
#     single-drain reference store;
#   * the execution ledger shows publishes=1 for every job — nothing ran
#     to completion twice, no matter how the kill interleaved;
#   * no lease and no pending job survives.
#
# Usage: multi_drain_smoke.sh <path-to-hinetd> [scratch-dir]
set -euo pipefail

hinetd=${1:?usage: multi_drain_smoke.sh <path-to-hinetd> [scratch-dir]}
scratch=${2:-$(mktemp -d)}
mkdir -p "$scratch"

seeds="3 5 7 9"
spec_for() {
  # Chunky enough (~seconds per job) that the SIGKILL lands mid-lease.
  echo "--scenario=hinet-interval --nodes=800 --reps=300 --seed=$1"
}
# Short lease + grace so recovery converges in seconds, not minutes.
lease="--lease-ms=1000 --takeover-grace-ms=200"

clean="$scratch/clean"
torture="$scratch/torture"
rm -rf "$clean" "$torture"

# 1. Ground truth: the same jobs drained once, uninterrupted.
for s in $seeds; do $hinetd submit --store="$clean" $(spec_for "$s"); done
"$hinetd" run --store="$clean" --jobs=2
for s in $seeds; do
  $hinetd query --store="$clean" $(spec_for "$s") | grep query-digest \
    > "$scratch/clean-$s.txt"
done

# 2. Torture: same jobs, three concurrent drains, SIGKILL one mid-lease.
for s in $seeds; do $hinetd submit --store="$torture" $(spec_for "$s"); done
pids=()
for i in 1 2 3; do
  $hinetd run --store="$torture" --jobs=2 $lease --drain-id="ci-$i" &
  pids+=($!)
done
victim=${pids[0]}
# Poll the observe-only status until the victim holds a live lease, then
# kill -9.  If it never shows up (the victim drained its share before the
# poll caught it) the kill is a no-op and the run degenerates to plain
# concurrency — which the asserts below still cover.
for _ in $(seq 100); do
  if $hinetd status --store="$torture" | grep -q "owner=ci-1 "; then break; fi
  sleep 0.05
done
kill -9 "$victim" 2>/dev/null || true

for pid in "${pids[@]:1}"; do
  set +e; wait "$pid"; st=$?; set -e
  # 0 = this drain saw nothing left to do; 3 = jobs remain behind the dead
  # drain's still-ticking lease (transient).  Anything else is a bug.
  case $st in
    0|3) ;;
    *) echo "surviving drain exited $st" >&2; exit 1 ;;
  esac
done
set +e; wait "$victim"; set -e  # reap; its status is SIGKILL's, ignore

# 3. Recovery: drain until exit 0.  Exit 3 means the dead drain's lease
# has not expired yet — the only acceptable transient.
recovered=1
for _ in $(seq 40); do
  set +e
  $hinetd run --store="$torture" --jobs=2 $lease --drain-id=ci-recover \
    | tee "$scratch/recover.txt"
  st=${PIPESTATUS[0]}
  set -e
  if [ "$st" -eq 0 ]; then recovered=0; break; fi
  test "$st" -eq 3
  sleep 0.3
done
test "$recovered" -eq 0

# 4. Every job's digest matches the uninterrupted reference bit for bit.
for s in $seeds; do
  $hinetd query --store="$torture" $(spec_for "$s") | grep query-digest \
    > "$scratch/torture-$s.txt"
  diff "$scratch/clean-$s.txt" "$scratch/torture-$s.txt"
done

# 5. No duplicate executions, no leaked lease, no stranded job: the
# ledger's per-job lines must all read publishes=1.
$hinetd status --store="$torture" | tee "$scratch/status.txt"
njobs=$(echo $seeds | wc -w)
test "$(grep -c '^  job-' "$scratch/status.txt")" -eq "$njobs"
if grep '^  job-' "$scratch/status.txt" | grep -v 'publishes=1 '; then
  echo "a job was published != 1 times" >&2
  exit 1
fi
grep -q '^leases: 0$' "$scratch/status.txt"
grep -q '^pending jobs: 0/' "$scratch/status.txt"
echo "multi-drain kill-and-recover smoke: OK"
