// sweep_runner — supervised, journal-backed experiment sweeps from the
// command line.
//
// Runs `--reps` replicates of one evaluation scenario under the
// supervisor (analysis/supervisor.hpp): per-replicate deadlines, retry
// with backoff for transient failures, partial-result salvage, SIGINT
// graceful shutdown, and — with --journal — crash-safe resume: each
// completed replicate is durably recorded, and a killed sweep re-run with
// --resume skips everything already done and aggregates byte-identically
// to an uninterrupted run (verify with the printed stats-digest line).
//
//   sweep_runner --scenario=hinet-interval --nodes=60 --reps=40
//       --journal=sweep.journal --jobs=8
//   # ...SIGKILL mid-flight...
//   sweep_runner --scenario=hinet-interval --nodes=60 --reps=40
//       --journal=sweep.journal --jobs=8 --resume
//
// --abort-after=N is the deterministic crash lever for the kill-and-resume
// CI smoke: the process hard-exits (status 42, no cleanup) right after the
// N-th freshly executed replicate reaches the journal — exactly the state
// a SIGKILL at that moment would leave behind.
//
// --policy selects the ExecutionPolicy (serial | threaded | batched |
// threaded-batched; --batch-r sets the lockstep width R).  Statistics and
// the stats-digest are byte-identical across policies; under the batched
// policies --deadline-ms bounds each lockstep batch as a whole.
//
// Exit codes and signal handling follow the convention shared with hinetd
// (service/exit_codes.hpp): 0 ok, 1 permanent failure, 2 usage,
// 3 transient/retryable (interrupted — resume with --resume), 4 corrupt
// durable state; SIGINT and SIGTERM both request graceful shutdown.

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "analysis/journal.hpp"
#include "analysis/scenarios.hpp"
#include "analysis/supervisor.hpp"
#include "service/exit_codes.hpp"
#include "util/cli.hpp"

namespace {

// detlint-allow(banned-time): whole-batch wall time is a bench-style timer
using Clock = std::chrono::steady_clock;

hinet::Scenario parse_scenario(const std::string& name) {
  const std::optional<hinet::Scenario> s = hinet::scenario_from_cli_name(name);
  if (!s.has_value()) {
    throw std::invalid_argument(
        "unknown --scenario '" + name +
        "' (choose one of: klo-interval, hinet-interval, "
        "hinet-interval-stable, klo-one, hinet-one)");
  }
  return *s;
}

hinet::ExecutionPolicy::Mode parse_policy(const std::string& name) {
  using Mode = hinet::ExecutionPolicy::Mode;
  if (name == "serial") return Mode::kSerial;
  if (name == "threaded") return Mode::kThreaded;
  if (name == "batched") return Mode::kBatched;
  if (name == "threaded-batched") return Mode::kThreadedBatched;
  throw std::invalid_argument(
      "unknown --policy '" + name +
      "' (choose one of: serial, threaded, batched, threaded-batched)");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hinet;
  try {
    CliArgs args(argc, argv);

    const std::string scenario_arg = args.get_string(
        "scenario", "hinet-interval",
        "scenario: klo-interval | hinet-interval | hinet-interval-stable | "
        "klo-one | hinet-one");
    ScenarioConfig cfg;
    cfg.nodes = static_cast<std::size_t>(
        args.get_int("nodes", 60, "number of nodes n"));
    cfg.heads = static_cast<std::size_t>(
        args.get_int("heads", 12, "generator cluster-head count"));
    cfg.k = static_cast<std::size_t>(
        args.get_int("k", 6, "token universe size k"));
    cfg.alpha = static_cast<std::size_t>(
        args.get_int("alpha", 3, "bounded-degree parameter alpha"));
    cfg.hop_l = static_cast<int>(args.get_int("hop-l", 2, "cluster radius L"));
    const std::size_t reps = static_cast<std::size_t>(
        args.get_int("reps", 20, "number of replicates"));
    const std::uint64_t seed = static_cast<std::uint64_t>(
        args.get_int("seed", 1, "base seed (replicate i uses seed + i)"));
    const std::size_t jobs = args.get_jobs();
    const std::string policy_arg = args.get_string(
        "policy", "threaded",
        "execution policy: serial | threaded | batched | threaded-batched");
    const std::size_t batch_r = static_cast<std::size_t>(args.get_int(
        "batch-r", 8,
        "lockstep batch width R for the batched policies"));
    const std::string journal_path = args.get_string(
        "journal", "", "journal file for crash-safe resume ('' = none)");
    const bool resume = args.get_bool(
        "resume", false,
        "continue a sweep whose journal already holds replicates");
    const std::size_t deadline_ms = static_cast<std::size_t>(args.get_int(
        "deadline-ms", 0, "per-replicate wall-clock budget (0 = none)"));
    const std::size_t retries = static_cast<std::size_t>(args.get_int(
        "retries", 1, "retry budget per replicate for transient failures"));
    const std::size_t abort_after = static_cast<std::size_t>(args.get_int(
        "abort-after", 0,
        "crash lever for CI: hard-exit(42) after this many fresh "
        "replicates reached the journal (0 = off)"));

    if (args.help_requested()) {
      std::cout << args.usage(
          "Supervised, journal-backed scenario sweep with crash-safe "
          "resume.\n" +
          std::string(exit_code_help()));
      return kExitOk;
    }
    for (const std::string& opt : args.unknown_options()) {
      std::cerr << "unknown option: " << opt << "\n";
      return kExitUsage;
    }

    const Scenario scenario = parse_scenario(scenario_arg);
    const SpecFactory factory = scenario_factory(scenario, cfg);

    ExecutionPolicy exec;
    exec.mode = parse_policy(policy_arg);
    exec.jobs = jobs;
    exec.replicates_per_batch = batch_r;
    const ExperimentOptions options{reps, seed, exec};

    std::unique_ptr<ExperimentJournal> journal;
    if (!journal_path.empty()) {
      journal = std::make_unique<ExperimentJournal>(journal_path);
      if (journal->dropped_bytes() > 0) {
        std::cerr << "note: dropped " << journal->dropped_bytes()
                  << " byte(s) of torn journal tail (crash mid-append); the "
                  << "intact prefix of " << journal->size()
                  << " replicate(s) was kept\n";
      }
      if (!journal->empty() && !resume) {
        std::cerr << "error: journal " << journal_path << " already holds "
                  << journal->size()
                  << " completed replicate(s); pass --resume to continue "
                  << "that sweep, or point --journal at a fresh path\n";
        return kExitUsage;
      }
    }

    std::atomic<std::size_t> fresh_completions{0};
    SupervisorPolicy policy;
    policy.deadline_ms = deadline_ms;
    policy.max_retries = retries;
    policy.journal = journal.get();
    policy.cancel = install_termination_cancellation();
    if (abort_after > 0) {
      policy.on_progress = [&fresh_completions, abort_after](std::size_t,
                                                             std::uint64_t) {
        const std::size_t done =
            fresh_completions.fetch_add(1, std::memory_order_relaxed) + 1;
        if (done >= abort_after) {
          // Simulated SIGKILL: no destructors, no flush beyond what the
          // journal already fsynced.  Exactly what resume must survive.
          std::_Exit(42);
        }
      };
    }

    const auto t0 = Clock::now();
    const SupervisedBatch batch =
        run_replicates_supervised(factory, options, policy);
    const double seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();

    std::cout << "scenario=" << scenario_arg << " nodes=" << cfg.nodes
              << " heads=" << cfg.heads << " k=" << cfg.k
              << " alpha=" << cfg.alpha << " L=" << cfg.hop_l
              << " reps=" << reps << " seed=" << seed
              << " policy=" << to_string(exec.mode);
    if (exec.is_batched()) std::cout << " batch-r=" << batch_r;
    std::cout << "\n";
    std::cout << "completed: " << batch.completed() << "/" << reps
              << "  from-journal: " << batch.from_journal
              << "  retried: " << batch.retried_replicates
              << "  failed: " << batch.failures.size()
              << "  cancelled: " << (batch.cancelled ? 1 : 0) << "\n";
    for (const RunError& f : batch.failures) {
      std::cout << "  failure: replicate " << f.replicate << " seed " << f.seed
                << " [" << to_string(f.cls) << ", " << f.attempts
                << " attempt(s)]: " << f.message << "\n";
    }

    if (batch.completed() == 0) {
      std::cerr << "error: no replicate completed — nothing to aggregate\n";
      return kExitFailed;
    }
    const AggregateResult agg =
        aggregate_supervised(batch, seconds, exec.effective_jobs());
    std::cout << agg.to_string() << "\n";
    std::ostringstream digest;
    digest << std::hex << std::setw(16) << std::setfill('0')
           << agg.stats_digest();
    std::cout << "stats-digest: " << digest.str() << "\n";

    if (batch.cancelled) {
      std::cout << "interrupted — rerun with --resume to finish the sweep\n";
      return kExitTransient;
    }
    return batch.failures.empty() ? kExitOk : kExitFailed;
  } catch (const std::exception& e) {
    std::cerr << "sweep_runner: " << e.what() << "\n";
    return exit_code_for_exception(e);
  }
}
