// hinetd — the durable experiment service front-end: submit jobs, drain
// the queue, and serve results without re-simulating.
//
//   hinetd submit --store=DIR [spec flags] [--execute] [--from=FILE]
//   hinetd run    --store=DIR [--policy=... --jobs=N --deadline-ms=... ]
//   hinetd query  --store=DIR ([spec flags] | --hash=HEX) [--curve]
//                 [--vs-hash=HEX]
//   hinetd status --store=DIR
//
// A job is `--reps` replicates of one scenario at seeds --seed + 0..reps-1
// — a pure function of its spec, content-addressed by a canonical hash.
// `submit` dedupes against both the store (cache hit: nothing to run) and
// the queue (already pending); the queue is bounded, and a full queue is
// an explicit admission reject (exit 3), not unbounded buffering.  `run`
// executes the missing replicates under the supervisor, journaling every
// completion durably: kill -9 at any point — mid-replicate, mid-commit —
// and a restarted `run` resumes without re-executing anything that
// finished, while the store's staged commit protocol guarantees a query
// sees a full result or a clean miss, never a torn one.  `query` serves
// aggregates, completion curves and crossover lookups purely from the
// store and prints a deterministic digest plus the hit/miss/recovery
// counters.
//
// --from=FILE (or `-` for stdin) batches submissions: one job per line of
// space-separated key=value pairs using the same keys as the spec flags
// (scenario=hinet-one nodes=24 ... reps=4); '#' starts a comment.
//
// Crash levers for the CI kill-and-recover smoke: --crash-at-stage=
// {intent|segment|index|commit} hard-exits (status 42, no cleanup) the
// moment the store's commit protocol passes that stage, and
// --abort-after-jobs=N does the same after N jobs published cleanly.
//
// Exit codes and signal handling follow the convention shared with
// sweep_runner (see --help): SIGINT/SIGTERM finish and journal the
// in-flight replicate batch, then exit 3 for a clean resume.

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/scenarios.hpp"
#include "analysis/supervisor.hpp"
#include "service/exit_codes.hpp"
#include "service/service.hpp"
#include "util/cli.hpp"

namespace {

using namespace hinet;

std::string scenario_choices() {
  std::string out;
  for (const Scenario s : all_scenarios()) {
    if (!out.empty()) out += " | ";
    out += scenario_cli_name(s);
  }
  return out;
}

Scenario parse_scenario(const std::string& name) {
  const std::optional<Scenario> s = scenario_from_cli_name(name);
  if (!s.has_value()) {
    throw std::invalid_argument("unknown scenario '" + name +
                                "' (choose one of: " + scenario_choices() +
                                ")");
  }
  return *s;
}

AssignmentMode parse_assignment(const std::string& name) {
  if (name == "distinct-random") return AssignmentMode::kDistinctRandom;
  if (name == "single-source") return AssignmentMode::kSingleSource;
  if (name == "round-robin") return AssignmentMode::kRoundRobin;
  throw std::invalid_argument(
      "unknown assignment '" + name +
      "' (choose one of: distinct-random, single-source, round-robin)");
}

ExecutionPolicy::Mode parse_policy(const std::string& name) {
  using Mode = ExecutionPolicy::Mode;
  if (name == "serial") return Mode::kSerial;
  if (name == "threaded") return Mode::kThreaded;
  if (name == "batched") return Mode::kBatched;
  if (name == "threaded-batched") return Mode::kThreadedBatched;
  throw std::invalid_argument(
      "unknown policy '" + name +
      "' (choose one of: serial, threaded, batched, threaded-batched)");
}

/// Registers the job-spec flags and builds the spec.  Shared by submit and
/// query so one spelling addresses the same content hash everywhere.
JobSpec spec_from_args(CliArgs& args) {
  JobSpec spec;
  const std::string scenario = args.get_string(
      "scenario", "hinet-interval", "scenario: " + scenario_choices());
  spec.config.nodes = static_cast<std::size_t>(
      args.get_int("nodes", 60, "number of nodes n"));
  spec.config.heads = static_cast<std::size_t>(
      args.get_int("heads", 12, "generator cluster-head count"));
  spec.config.k = static_cast<std::size_t>(
      args.get_int("k", 6, "token universe size k"));
  spec.config.alpha = static_cast<std::size_t>(
      args.get_int("alpha", 3, "bounded-degree parameter alpha"));
  spec.config.hop_l =
      static_cast<int>(args.get_int("hop-l", 2, "cluster radius L"));
  spec.config.reaffiliation_prob = args.get_double(
      "reaffil", 0.05, "member re-affiliation probability per phase");
  spec.config.churn_edges = static_cast<std::size_t>(
      args.get_int("churn-edges", 4, "churn edges per phase boundary"));
  spec.config.assignment = parse_assignment(args.get_string(
      "assignment", "distinct-random",
      "token assignment: distinct-random | single-source | round-robin"));
  spec.config.run_full_schedule = args.get_bool(
      "full-schedule", true,
      "run the full schedule instead of stopping at completion");
  spec.base_seed = static_cast<std::uint64_t>(
      args.get_int("seed", 1, "base seed (replicate i uses seed + i)"));
  spec.repetitions = static_cast<std::uint64_t>(
      args.get_int("reps", 20, "number of replicates"));
  spec.scenario = parse_scenario(scenario);
  return spec;
}

/// Parses one --from line of key=value pairs into a JobSpec by reusing the
/// CLI flag spellings ("scenario=hinet-one nodes=24 ... reps=4").
JobSpec spec_from_line(const std::string& line) {
  std::vector<std::string> argv_storage;
  argv_storage.push_back("hinetd-batch-line");
  std::istringstream is(line);
  std::string token;
  while (is >> token) argv_storage.push_back("--" + token);
  std::vector<const char*> argv;
  argv.reserve(argv_storage.size());
  for (const std::string& s : argv_storage) argv.push_back(s.c_str());
  CliArgs args(static_cast<int>(argv.size()), argv.data());
  JobSpec spec = spec_from_args(args);
  for (const std::string& opt : args.unknown_options()) {
    throw std::invalid_argument("unknown key in batch line: " + opt +
                                " (line: '" + line + "')");
  }
  return spec;
}

ServiceOptions service_options_from_args(CliArgs& args,
                                         bool register_run_flags) {
  ServiceOptions opt;
  opt.max_pending = static_cast<std::size_t>(args.get_int(
      "max-pending", 256,
      "admission bound: queue capacity before submissions are rejected"));
  if (register_run_flags) {
    ExecutionPolicy exec;
    exec.mode = parse_policy(args.get_string(
        "policy", "threaded",
        "execution policy: serial | threaded | batched | threaded-batched"));
    exec.jobs = args.get_jobs();
    exec.replicates_per_batch = static_cast<std::size_t>(args.get_int(
        "batch-r", 8, "lockstep batch width R for the batched policies"));
    opt.policy = exec;
    opt.deadline_ms = static_cast<std::size_t>(args.get_int(
        "deadline-ms", 0, "per-replicate wall-clock budget (0 = none)"));
    opt.max_retries = static_cast<std::size_t>(args.get_int(
        "retries", 1, "retry budget per replicate for transient failures"));
    opt.lease_ms = static_cast<std::uint64_t>(args.get_int(
        "lease-ms", 30000,
        "per-job lease validity; renewed after every journaled replicate, "
        "so keep it well above one replicate's wall time"));
    opt.takeover_grace_ms = static_cast<std::uint64_t>(args.get_int(
        "takeover-grace-ms", 1000,
        "extra slack past lease expiry before another drain takes over"));
    opt.drain_id = args.get_string(
        "drain-id", "", "this drain's identity in leases/claims/ledger "
        "(default pid-<pid>)");
  }
  return opt;
}

void print_counters(const ResultsStore::Counters& c) {
  std::cout << "store-counters: hits=" << c.hits << " misses=" << c.misses
            << " recovered-commits=" << c.recovered_commits
            << " rolled-back-intents=" << c.rolled_back_intents
            << " salvaged-wal-bytes=" << c.salvaged_wal_bytes
            << " orphan-temps-removed=" << c.orphan_temps_removed << "\n";
}

std::string digest_hex(std::uint64_t digest) {
  std::ostringstream os;
  os << std::hex << std::setw(16) << std::setfill('0') << digest;
  return os.str();
}

const char* submit_outcome_name(ExperimentService::SubmitOutcome outcome) {
  switch (outcome) {
    case ExperimentService::SubmitOutcome::kCacheHit: return "cache-hit";
    case ExperimentService::SubmitOutcome::kEnqueued: return "enqueued";
    case ExperimentService::SubmitOutcome::kAlreadyPending:
      return "already-pending";
  }
  return "?";
}

int run_service(ExperimentService& service, const ServiceReport& report) {
  std::cout << report.to_string() << "\n";
  for (const std::string& why : report.failure_messages) {
    std::cout << "  failure: " << why << "\n";
  }
  print_counters(service.store().counters());
  if (report.cancelled) {
    std::cout << "interrupted — rerun `hinetd run` to resume; journaled "
                 "replicates will not re-execute\n";
    return kExitTransient;
  }
  if (report.failed_jobs > 0) return kExitFailed;
  if (report.deferred_jobs > 0) return kExitTransient;
  if (report.skipped_claimed > 0 || report.stale_leases > 0) {
    // Sibling drains still own jobs (or took ours over) — nothing failed,
    // but the backlog is not drained *by us*.  Retry loops key off this.
    std::cout << "jobs remain with sibling drains — rerun `hinetd run` "
                 "once their leases settle\n";
    return kExitTransient;
  }
  return kExitOk;
}

int cmd_submit(CliArgs& args) {
  const std::string store_dir = args.get_string(
      "store", "", "service state directory (required)");
  JobSpec spec = spec_from_args(args);
  const std::string from = args.get_string(
      "from", "",
      "batch submissions: file of key=value lines ('-' = stdin)");
  const bool execute = args.get_bool(
      "execute", false, "drain the queue after submitting");
  ServiceOptions opt = service_options_from_args(args, execute);

  if (args.help_requested()) {
    std::cout << args.usage(
        "Submit content-addressed jobs to the experiment service.\n" +
        std::string(exit_code_help()));
    return kExitOk;
  }
  for (const std::string& unknown : args.unknown_options()) {
    std::cerr << "unknown option: " << unknown << "\n";
    return kExitUsage;
  }
  if (store_dir.empty()) {
    std::cerr << "hinetd submit: --store=DIR is required\n";
    return kExitUsage;
  }

  opt.cancel = install_termination_cancellation();
  ExperimentService service(store_dir, opt);

  std::vector<JobSpec> specs;
  if (from.empty()) {
    specs.push_back(spec);
  } else {
    std::ifstream file;
    std::istream* in = &std::cin;
    if (from != "-") {
      file.open(from);
      if (!file) {
        std::cerr << "hinetd submit: cannot open --from file " << from << "\n";
        return kExitUsage;
      }
      in = &file;
    }
    std::string line;
    while (std::getline(*in, line)) {
      const std::size_t hash_pos = line.find('#');
      if (hash_pos != std::string::npos) line.resize(hash_pos);
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      specs.push_back(spec_from_line(line));
    }
  }

  std::size_t rejected = 0;
  for (const JobSpec& s : specs) {
    try {
      const auto outcome = service.submit(s);
      std::cout << "submit " << s.hash_hex() << " "
                << submit_outcome_name(outcome) << "  [" << s.describe()
                << "]\n";
    } catch (const QueueFullError& e) {
      std::cout << "submit " << s.hash_hex() << " rejected: " << e.what()
                << "\n";
      ++rejected;
    }
  }

  if (execute) return run_service(service, service.run_pending());
  return rejected > 0 ? kExitTransient : kExitOk;
}

int cmd_run(CliArgs& args) {
  const std::string store_dir = args.get_string(
      "store", "", "service state directory (required)");
  ServiceOptions opt = service_options_from_args(args, true);
  const std::string crash_stage = args.get_string(
      "crash-at-stage", "",
      "CI crash lever: hard-exit(42) after this store commit stage "
      "(intent | segment | index | commit)");
  const std::size_t abort_after_jobs = static_cast<std::size_t>(args.get_int(
      "abort-after-jobs", 0,
      "CI crash lever: hard-exit(42) after this many published jobs "
      "(0 = off)"));

  if (args.help_requested()) {
    std::cout << args.usage(
        "Drain the job queue: execute missing replicates under the "
        "supervisor, publish results durably.\n" +
        std::string(exit_code_help()));
    return kExitOk;
  }
  for (const std::string& unknown : args.unknown_options()) {
    std::cerr << "unknown option: " << unknown << "\n";
    return kExitUsage;
  }
  if (store_dir.empty()) {
    std::cerr << "hinetd run: --store=DIR is required\n";
    return kExitUsage;
  }
  ResultsStore::CommitStage crash_at = ResultsStore::CommitStage::kIntentLogged;
  bool crash_armed = false;
  if (!crash_stage.empty()) {
    crash_armed = true;
    if (crash_stage == "intent") {
      crash_at = ResultsStore::CommitStage::kIntentLogged;
    } else if (crash_stage == "segment") {
      crash_at = ResultsStore::CommitStage::kSegmentWritten;
    } else if (crash_stage == "index") {
      crash_at = ResultsStore::CommitStage::kIndexPublished;
    } else if (crash_stage == "commit") {
      crash_at = ResultsStore::CommitStage::kCommitLogged;
    } else {
      std::cerr << "hinetd run: unknown --crash-at-stage '" << crash_stage
                << "' (intent | segment | index | commit)\n";
      return kExitUsage;
    }
  }

  opt.cancel = install_termination_cancellation();
  std::atomic<std::size_t> published{0};
  if (abort_after_jobs > 0) {
    opt.on_job_published = [&published, abort_after_jobs](const JobSpec&) {
      if (published.fetch_add(1, std::memory_order_relaxed) + 1 >=
          abort_after_jobs) {
        // Simulated SIGKILL: no destructors, nothing beyond what the
        // store and journals already fsynced.
        std::_Exit(42);
      }
    };
  }

  ExperimentService service(store_dir, opt);
  if (crash_armed) {
    service.store().set_commit_hook([crash_at](ResultsStore::CommitStage s) {
      if (s == crash_at) std::_Exit(42);
    });
  }
  return run_service(service, service.run_pending());
}

int cmd_query(CliArgs& args) {
  const std::string store_dir = args.get_string(
      "store", "", "service state directory (required)");
  JobSpec spec = spec_from_args(args);
  const std::string hash_arg = args.get_string(
      "hash", "", "query by 16-digit content hash instead of spec flags");
  const bool curve = args.get_bool(
      "curve", false, "print the per-round mean completion curve");
  const std::string vs_hash = args.get_string(
      "vs-hash", "",
      "crossover lookup: compare against this stored job's hash");

  if (args.help_requested()) {
    std::cout << args.usage(
        "Serve completion curves, aggregates and crossover lookups from "
        "the store — no simulation.\n" +
        std::string(exit_code_help()));
    return kExitOk;
  }
  for (const std::string& unknown : args.unknown_options()) {
    std::cerr << "unknown option: " << unknown << "\n";
    return kExitUsage;
  }
  if (store_dir.empty()) {
    std::cerr << "hinetd query: --store=DIR is required\n";
    return kExitUsage;
  }

  // Read-only handle: queries never lock, recover, or otherwise perturb a
  // store that live drains are publishing into.
  StoreOptions ro;
  ro.read_only = true;
  ResultsStore store(store_dir, ro);
  std::optional<StoredResult> result =
      hash_arg.empty() ? store.load(spec)
                       : store.load_hash(parse_hash_hex(hash_arg));
  if (!result.has_value()) {
    std::cout << "miss: job "
              << (hash_arg.empty() ? spec.hash_hex() : hash_arg)
              << " is not in the store — submit and run it first\n";
    print_counters(store.counters());
    return kExitTransient;
  }

  std::cout << "job " << result->spec.hash_hex() << "  ["
            << result->spec.describe() << "]\n";
  std::cout << aggregate_stored(*result).to_string() << "\n";
  std::cout << "query-digest: " << digest_hex(query_digest(*result)) << "\n";

  if (curve) {
    const CompletionCurve c = completion_curve(*result);
    std::cout << "completion-curve (mean complete nodes of " << c.nodes
              << ", " << c.replicates << " replicate(s)):\n";
    for (std::size_t r = 0; r < c.mean_complete_nodes.size(); ++r) {
      std::cout << "  round " << r << ": " << c.mean_complete_nodes[r]
                << "\n";
    }
  }

  if (!vs_hash.empty()) {
    std::optional<StoredResult> other =
        store.load_hash(parse_hash_hex(vs_hash));
    if (!other.has_value()) {
      std::cout << "miss: crossover target " << vs_hash
                << " is not in the store\n";
      print_counters(store.counters());
      return kExitTransient;
    }
    std::cout << "crossover vs " << other->spec.hash_hex() << "  ["
              << other->spec.describe() << "]\n";
    std::cout << "  " << find_crossover(*result, *other).to_string() << "\n";
  }

  print_counters(store.counters());
  return kExitOk;
}

int cmd_status(CliArgs& args) {
  const std::string store_dir = args.get_string(
      "store", "", "service state directory (required)");
  const std::size_t max_pending = static_cast<std::size_t>(args.get_int(
      "max-pending", 256, "admission bound (for opening the queue)"));

  if (args.help_requested()) {
    std::cout << args.usage(
        "Report stored jobs, queue backlog and store counters.\n" +
        std::string(exit_code_help()));
    return kExitOk;
  }
  for (const std::string& unknown : args.unknown_options()) {
    std::cerr << "unknown option: " << unknown << "\n";
    return kExitUsage;
  }
  if (store_dir.empty()) {
    std::cerr << "hinetd status: --store=DIR is required\n";
    return kExitUsage;
  }

  // Everything here is observe-only: read-only store (no locks, no
  // recovery), read-only queue (no flock, no compaction), lease files
  // peeked without acquiring — `status` is safe to run while N drains
  // are live, and that is exactly how the CI multi-drain smoke uses it.
  StoreOptions ro;
  ro.read_only = true;
  ResultsStore store(store_dir, ro);
  JobQueue queue(store_dir + "/queue.hjq", max_pending,
                 FramedLog::Access::kReadOnly);
  LeaseManager leases(store_dir, LeaseManager::Options{});
  const std::uint64_t now = leases.now_ms();

  std::cout << "stored jobs: " << store.size() << "\n";
  for (const JobSpec& s : store.entries()) {
    std::cout << "  " << s.hash_hex() << "  [" << s.describe() << "]\n";
  }
  std::cout << "pending jobs: " << queue.pending() << "/"
            << queue.max_pending() << " (claimed: " << queue.claimed(now)
            << ")\n";
  for (const JobSpec& s : queue.pending_jobs()) {
    std::cout << "  " << s.hash_hex() << "  [" << s.describe() << "]";
    const std::optional<JobQueue::Claim> claim =
        queue.claim_of(s.content_hash(), now);
    if (claim.has_value()) {
      std::cout << "  claimed-by=" << claim->owner
                << " token=" << claim->token;
    }
    std::cout << "\n";
  }

  const auto live = leases.list();
  std::cout << "leases: " << live.size() << "\n";
  for (const auto& [name, info] : live) {
    const std::uint64_t ttl =
        info.expiry_ms > now ? info.expiry_ms - now : 0;
    std::cout << "  " << name << "  owner=" << info.owner
              << " token=" << info.token << " ttl-ms=" << ttl
              << (ttl == 0 ? " (expired)" : "") << "\n";
  }

  const ExecutionLedger ledger = read_execution_ledger(store_dir);
  std::cout << "ledger: claims=" << ledger.total_claims
            << " publishes=" << ledger.total_publishes
            << " stale-detected=" << ledger.total_stales << "\n";
  for (const auto& [hash, per] : ledger.jobs) {
    std::cout << "  " << ExperimentService::job_resource(hash)
              << "  claims=" << per.claims << " publishes=" << per.publishes
              << " stales=" << per.stales << "\n";
  }

  print_counters(store.counters());
  return kExitOk;
}

void print_toplevel_help() {
  std::cout
      << "hinetd — durable experiment service: submit jobs, drain the "
         "queue, serve results without re-simulating\n\n"
         "usage: hinetd <submit|run|query|status> [--options]\n"
         "       hinetd <subcommand> --help   for per-subcommand flags\n\n"
      << exit_code_help() << "\n"
      << "signals: SIGINT/SIGTERM finish and journal the in-flight batch, "
         "then exit 3 (resume with `hinetd run`)\n"
         "concurrency: N `hinetd run` processes may drain one store; "
         "per-job leases + fencing make publishes exactly-once "
         "(see `hinetd run --help`: --lease-ms, --drain-id)\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hinet;
  if (argc < 2) {
    print_toplevel_help();
    return kExitUsage;
  }
  const std::string command = argv[1];
  if (command == "--help" || command == "-h" || command == "help") {
    print_toplevel_help();
    return kExitOk;
  }

  try {
    CliArgs args(argc - 1, argv + 1);
    if (command == "submit") return cmd_submit(args);
    if (command == "run") return cmd_run(args);
    if (command == "query") return cmd_query(args);
    if (command == "status") return cmd_status(args);
    std::cerr << "hinetd: unknown subcommand '" << command
              << "' (submit | run | query | status)\n";
    return kExitUsage;
  } catch (const std::exception& e) {
    std::cerr << "hinetd " << command << ": " << e.what() << "\n";
    return exit_code_for_exception(e);
  }
}
