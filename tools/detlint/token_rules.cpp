// Token-stream rules: include-layering, durability-ordering and
// serialization-symmetry.
//
// These rules reason about *structure* — which function body a call sits in,
// the order of calls, the pairing of writer and reader — so they walk the
// token stream from source_scan.hpp instead of matching lines.  The function
// finder is a heuristic (no full C++ parse without libclang), tuned to the
// codebase's idiom: it recognises `name(params) [qualifiers] { … }` and
// constructor initializer lists, and deliberately ignores anything it cannot
// classify rather than guessing.
#include <algorithm>
#include <array>
#include <cctype>
#include <optional>
#include <span>
#include <string>

#include "detlint/rules.hpp"

namespace hinet::detlint {

namespace {

constexpr std::size_t npos = static_cast<std::size_t>(-1);

bool is_punct(const Token& t, std::string_view s) {
  return t.kind == TokKind::kPunct && t.text == s;
}

bool name_in(std::string_view name, std::span<const std::string_view> set) {
  return std::find(set.begin(), set.end(), name) != set.end();
}

// Control-flow and expression keywords that look like `name (` but never
// start a function definition.
constexpr std::array<std::string_view, 16> kNotAFunction = {
    "if",       "for",    "while",    "switch",   "catch",
    "return",   "sizeof", "alignof",  "decltype", "new",
    "delete",   "throw",  "co_await", "co_return", "co_yield",
    "operator"};

std::size_t match_forward(const std::vector<Token>& toks, std::size_t open,
                          std::string_view o, std::string_view c) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (is_punct(toks[i], o)) {
      ++depth;
    } else if (is_punct(toks[i], c)) {
      if (--depth == 0) return i;
    }
  }
  return npos;
}

struct Definition {
  std::string name;         // unqualified function name
  std::size_t line;         // line of the name token
  std::size_t params_begin; // token index of the parameter-list '('
  std::size_t params_end;   // token index of the matching ')'
  std::size_t body_begin;   // token index of the opening '{'
  std::size_t body_end;     // token index of the matching '}'
};

// Finds function definitions at any nesting level outside other function
// bodies (so in-class methods are found, but a lambda inside a body belongs
// to that body).  Unclassifiable constructs are skipped, never guessed at.
std::vector<Definition> find_definitions(const std::vector<Token>& toks) {
  std::vector<Definition> defs;
  std::size_t i = 0;
  while (i < toks.size()) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent || i + 1 >= toks.size() ||
        !is_punct(toks[i + 1], "(") ||
        name_in(t.text, kNotAFunction)) {
      ++i;
      continue;
    }
    const std::size_t close = match_forward(toks, i + 1, "(", ")");
    if (close == npos) break;

    std::size_t body = npos;
    bool init_list = false;
    std::size_t u = close + 1;
    for (; u < toks.size(); ++u) {
      const Token& q = toks[u];
      if (q.kind == TokKind::kPp) continue;
      if (q.kind == TokKind::kIdent || q.kind == TokKind::kNumber) continue;
      if (q.kind == TokKind::kString || q.kind == TokKind::kChar) break;
      const std::string& p = q.text;
      if (p == "(") {  // noexcept(...), attribute args, member init
        const std::size_t c2 = match_forward(toks, u, "(", ")");
        if (c2 == npos) { u = toks.size(); break; }
        u = c2;
        continue;
      }
      if (!init_list) {
        if (p == "{") { body = u; break; }
        if (p == ":") { init_list = true; continue; }
        if (p == "->" || p == "::" || p == "<" || p == ">" || p == "&" ||
            p == "*" || p == "[" || p == "]") {
          continue;
        }
        break;  // ';' (declaration), '=', ',', … — not a definition
      }
      // Constructor initializer list: a '{' here is either a member
      // brace-init (followed by ',' or the body's '{') or the body itself.
      if (p == "{") {
        const std::size_t c2 = match_forward(toks, u, "{", "}");
        if (c2 == npos) { u = toks.size(); break; }
        std::size_t next = c2 + 1;
        while (next < toks.size() && toks[next].kind == TokKind::kPp) ++next;
        if (next < toks.size() && is_punct(toks[next], ",")) {
          u = next;
          continue;
        }
        if (next < toks.size() && is_punct(toks[next], "{")) {
          body = next;
          break;
        }
        body = u;  // no further member follows: this '{' was the body
        break;
      }
      if (p == ";") break;
    }
    if (body == npos) {
      i = close + 1;
      continue;
    }
    const std::size_t end = match_forward(toks, body, "{", "}");
    if (end == npos) break;
    defs.push_back(Definition{t.text, t.line, i + 1, close, body, end});
    i = end + 1;
  }
  return defs;
}

struct CallEvent {
  std::string name;
  std::size_t line;
  std::size_t tok;  // index of the name token
  bool member;      // preceded by '.' or '->'
};

std::vector<CallEvent> call_events(const std::vector<Token>& toks,
                                   std::size_t begin, std::size_t end) {
  std::vector<CallEvent> out;
  for (std::size_t i = begin; i < end && i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || !is_punct(toks[i + 1], "(")) {
      continue;
    }
    const bool member =
        i > begin && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"));
    out.push_back(CallEvent{toks[i].text, toks[i].line, i, member});
  }
  return out;
}

// ── durability-ordering ─────────────────────────────────────────────────

constexpr std::array<std::string_view, 8> kWriteCalls = {
    "write", "fwrite", "pwrite", "writev", "write_all",
    "fputs", "fprintf", "fputc"};
constexpr std::array<std::string_view, 5> kSyncCalls = {
    "fsync", "fdatasync", "sync_now", "sync_all", "sync_file_range"};

/// Does the call at `e` pass the O_EXCL flag?  Scans the identifier
/// tokens between the call's parentheses.
bool call_uses_o_excl(const std::vector<Token>& toks, const CallEvent& e) {
  const std::size_t close = match_forward(toks, e.tok + 1, "(", ")");
  for (std::size_t i = e.tok + 2; close != npos && i < close; ++i) {
    if (toks[i].kind == TokKind::kIdent && toks[i].text == "O_EXCL") {
      return true;
    }
  }
  return false;
}

void check_durability(const SourceFile& file, const Definition& def,
                      const std::vector<CallEvent>& events,
                      const std::vector<Token>& toks,
                      std::vector<Finding>& out) {
  auto is_write = [](const CallEvent& e) {
    return name_in(e.name, kWriteCalls);
  };
  auto is_sync = [](const CallEvent& e) { return name_in(e.name, kSyncCalls); };

  for (std::size_t k = 0; k < events.size(); ++k) {
    if (events[k].name != "rename" || events[k].member) continue;

    std::size_t last_write = npos;
    for (std::size_t j = 0; j < k; ++j) {
      if (is_write(events[j])) last_write = j;
    }
    if (last_write != npos) {
      bool synced = false;
      for (std::size_t j = last_write + 1; j < k; ++j) {
        if (is_sync(events[j])) synced = true;
      }
      if (!synced) {
        out.push_back(Finding{
            file.path, events[k].line,
            std::string(kRuleDurabilityOrdering),
            "write-then-rename publish in '" + def.name +
                "' renames bytes that were never fsynced: a crash-ordered "
                "disk may publish the name before the contents (fsync the "
                "file, then rename)"});
      }
    }
    bool parent_synced = false;
    for (std::size_t j = k + 1; j < events.size(); ++j) {
      if (events[j].name == "fsync_parent_directory") parent_synced = true;
    }
    if (!parent_synced) {
      out.push_back(Finding{
          file.path, events[k].line, std::string(kRuleDurabilityOrdering),
          "rename in '" + def.name +
              "' is not followed by fsync_parent_directory(): the new "
              "directory entry lives in the parent inode and can be lost "
              "by a crash after the publish"});
    }
  }

  // Lock-file creation: an O_EXCL open is a *lock acquisition through the
  // directory inode* — exactly one creator wins, and the win only survives
  // power loss if the directory entry is fsynced.  Every O_EXCL create
  // must therefore be followed by fsync_parent_directory() somewhere in
  // the same function.
  for (std::size_t k = 0; k < events.size(); ++k) {
    const CallEvent& e = events[k];
    if (e.member || (e.name != "open" && e.name != "openat")) continue;
    if (!call_uses_o_excl(toks, e)) continue;
    bool parent_synced = false;
    for (std::size_t j = k + 1; j < events.size(); ++j) {
      if (events[j].name == "fsync_parent_directory") parent_synced = true;
    }
    if (!parent_synced) {
      out.push_back(Finding{
          file.path, e.line, std::string(kRuleDurabilityOrdering),
          "O_EXCL lock-file creation in '" + def.name +
              "' is not followed by fsync_parent_directory(): the lock's "
              "existence lives in the parent inode, and a crash can undo "
              "an acquisition another process already observed"});
    }
  }

  auto lower = def.name;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });

  // Lock release: a release path that unlinks a lock file must fsync the
  // parent directory afterwards, or a crash can resurrect a lock the
  // owner already gave up — and nothing will ever release it again.
  if (lower.find("release") != std::string::npos) {
    for (std::size_t k = 0; k < events.size(); ++k) {
      const CallEvent& e = events[k];
      if (e.member || (e.name != "unlink" && e.name != "remove" &&
                       e.name != "unlinkat")) {
        continue;
      }
      bool parent_synced = false;
      for (std::size_t j = k + 1; j < events.size(); ++j) {
        if (events[j].name == "fsync_parent_directory") parent_synced = true;
      }
      if (!parent_synced) {
        out.push_back(Finding{
            file.path, e.line, std::string(kRuleDurabilityOrdering),
            "lock release in '" + def.name +
                "' unlinks without a following fsync_parent_directory(): "
                "a crash can resurrect the released lock file and wedge "
                "every future acquirer"});
      }
    }
  }

  // FramedLog-style append paths must make appended bytes durable before the
  // caller can treat the record as acknowledged.
  if (lower.find("append") != std::string::npos) {
    std::size_t last_write = npos;
    for (std::size_t j = 0; j < events.size(); ++j) {
      if (is_write(events[j])) last_write = j;
    }
    if (last_write != npos) {
      bool synced = false;
      for (std::size_t j = last_write + 1; j < events.size(); ++j) {
        if (is_sync(events[j])) synced = true;
      }
      if (!synced) {
        out.push_back(Finding{
            file.path, events[last_write].line,
            std::string(kRuleDurabilityOrdering),
            "append path '" + def.name +
                "' writes without fdatasync before returning: a crash could "
                "lose a record the caller already treated as acknowledged"});
      }
    }
  }
}

// ── serialization-symmetry ──────────────────────────────────────────────

constexpr std::array<std::string_view, 10> kIoMethods = {
    "u8", "u16", "u32", "u64", "f64", "bytes", "blob",
    "vec_u64", "vec_size", "vec_u8"};

enum class SerRole { kWriter, kReader };

std::optional<std::pair<SerRole, std::string>> serialization_name(
    std::string_view name) {
  if (name.starts_with("save_") && name.size() > 5) {
    return std::pair{SerRole::kWriter, std::string(name.substr(5))};
  }
  if (name.starts_with("load_") && name.size() > 5) {
    return std::pair{SerRole::kReader, std::string(name.substr(5))};
  }
  if (name.starts_with("restore_") && name.size() > 8) {
    return std::pair{SerRole::kReader, std::string(name.substr(8))};
  }
  return std::nullopt;
}

// Name of the first ByteWriter/ByteReader reference parameter in the
// definition's parameter list, or "" when it has none.
std::string stream_param(const std::vector<Token>& toks,
                         const Definition& def) {
  for (std::size_t i = def.params_begin + 1; i + 1 < def.params_end; ++i) {
    if (toks[i].kind != TokKind::kIdent ||
        (toks[i].text != "ByteWriter" && toks[i].text != "ByteReader")) {
      continue;
    }
    for (std::size_t j = i + 1; j < def.params_end; ++j) {
      if (toks[j].kind == TokKind::kIdent) return toks[j].text;
      if (!is_punct(toks[j], "&") && !is_punct(toks[j], "*")) break;
    }
  }
  return {};
}

// The ordered type-tag sequence of a writer or reader body: ByteWriter /
// ByteReader method calls by name, plus save_x/load_x helper calls applied
// to the body's own stream parameter, normalized to a shared "pair:x" tag
// so symmetric helpers match.  A helper handed a *different* stream (the
// nested-ByteWriter-then-blob idiom) is skipped — its bytes reach the main
// stream through the blob tag, which is already counted.
std::vector<std::string> tag_sequence(const std::vector<Token>& toks,
                                      const std::vector<CallEvent>& events,
                                      SerRole role,
                                      const std::string& stream) {
  std::vector<std::string> tags;
  for (const CallEvent& e : events) {
    if (e.member && name_in(e.name, kIoMethods)) {
      tags.push_back(e.name);
      continue;
    }
    const auto ser = serialization_name(e.name);
    if (!ser.has_value() || ser->first != role) continue;
    if (!stream.empty()) {
      const std::size_t close = match_forward(toks, e.tok + 1, "(", ")");
      bool uses_stream = false;
      for (std::size_t i = e.tok + 2; close != npos && i < close; ++i) {
        if (toks[i].kind == TokKind::kIdent && toks[i].text == stream) {
          uses_stream = true;
          break;
        }
      }
      if (!uses_stream) continue;
    }
    tags.push_back("pair:" + ser->second);
  }
  return tags;
}

std::string join_tags(const std::vector<std::string>& tags) {
  std::string out = "[";
  for (std::size_t i = 0; i < tags.size(); ++i) {
    if (i > 0) out += ' ';
    if (i == 12 && tags.size() > 13) {
      out += "… +" + std::to_string(tags.size() - i) + " more";
      break;
    }
    out += tags[i];
  }
  out += ']';
  return out;
}

void check_symmetry(const SourceFile& file,
                    const std::vector<Definition>& defs,
                    std::vector<Finding>& out) {
  struct SerDef {
    const Definition* def;
    SerRole role;
    std::string suffix;
    bool consumed = false;
  };
  std::vector<SerDef> sers;
  for (const Definition& d : defs) {
    const auto ser = serialization_name(d.name);
    if (ser.has_value()) sers.push_back(SerDef{&d, ser->first, ser->second});
  }

  auto pair_of = [&](std::size_t w) -> std::size_t {
    for (std::size_t j = w + 1; j < sers.size(); ++j) {  // nearest following…
      if (!sers[j].consumed && sers[j].role == SerRole::kReader &&
          sers[j].suffix == sers[w].suffix) {
        return j;
      }
    }
    for (std::size_t j = w; j-- > 0;) {  // …else nearest preceding
      if (!sers[j].consumed && sers[j].role == SerRole::kReader &&
          sers[j].suffix == sers[w].suffix) {
        return j;
      }
    }
    return npos;
  };

  for (std::size_t w = 0; w < sers.size(); ++w) {
    if (sers[w].role != SerRole::kWriter || sers[w].consumed) continue;
    const std::size_t r = pair_of(w);
    if (r == npos) continue;  // counterpart in another TU — not checkable here
    sers[w].consumed = true;
    sers[r].consumed = true;

    const auto writer_events = call_events(
        /*toks=*/file.tokens, sers[w].def->body_begin, sers[w].def->body_end);
    const auto reader_events = call_events(
        /*toks=*/file.tokens, sers[r].def->body_begin, sers[r].def->body_end);
    const auto wtags =
        tag_sequence(file.tokens, writer_events, SerRole::kWriter,
                     stream_param(file.tokens, *sers[w].def));
    const auto rtags =
        tag_sequence(file.tokens, reader_events, SerRole::kReader,
                     stream_param(file.tokens, *sers[r].def));
    if (wtags != rtags) {
      out.push_back(Finding{
          file.path, sers[r].def->line,
          std::string(kRuleSerializationSymmetry),
          "save/load asymmetry: '" + sers[w].def->name + "' (line " +
              std::to_string(sers[w].def->line) + ") writes " +
              join_tags(wtags) + " but '" + sers[r].def->name + "' reads " +
              join_tags(rtags) +
              " — writer and reader must stay in lockstep"});
    }
  }
}

// Version tags handed to the checksummed-file helpers must be named
// constants shared by writer and reader; a bare literal on one side is
// exactly the drift the format guard exists to stop.
void check_version_guard(const SourceFile& file,
                         const std::vector<CallEvent>& events,
                         std::vector<Finding>& out) {
  for (const CallEvent& e : events) {
    if (e.member || (e.name != "write_checksummed_file" &&
                     e.name != "read_checksummed_file")) {
      continue;
    }
    const std::size_t open = e.tok + 1;
    const std::size_t close = match_forward(file.tokens, open, "(", ")");
    if (close == npos) continue;
    // Split the argument list at top-level commas; the version tag is the
    // third argument.
    std::vector<std::pair<std::size_t, std::size_t>> args;
    std::size_t arg_start = open + 1;
    int depth = 0;
    for (std::size_t i = open + 1; i < close; ++i) {
      const Token& t = file.tokens[i];
      if (t.kind != TokKind::kPunct) continue;
      if (t.text == "(" || t.text == "{" || t.text == "[" || t.text == "<") {
        ++depth;
      } else if (t.text == ")" || t.text == "}" || t.text == "]" ||
                 t.text == ">") {
        --depth;
      } else if (t.text == "," && depth == 0) {
        args.emplace_back(arg_start, i);
        arg_start = i + 1;
      }
    }
    args.emplace_back(arg_start, close);
    if (args.size() < 3) continue;
    bool named = false;
    bool literal = false;
    for (std::size_t i = args[2].first; i < args[2].second; ++i) {
      if (file.tokens[i].kind == TokKind::kIdent) named = true;
      if (file.tokens[i].kind == TokKind::kNumber) literal = true;
    }
    if (literal && !named) {
      out.push_back(Finding{
          file.path, e.line, std::string(kRuleSerializationSymmetry),
          "'" + e.name +
              "' is passed a bare numeric version tag; use a named "
              "constant (kVersion) shared by the writer and the reader so "
              "the two sides cannot drift apart"});
    }
  }
}

// ── include-layering ────────────────────────────────────────────────────

void check_layering(const SourceFile& file, const LayerManifest& layers,
                    std::vector<Finding>& out) {
  const std::size_t from = layers.layer_of_file(file.path);
  if (from == LayerManifest::npos) return;
  for (const IncludeDirective& inc : file.includes) {
    if (inc.angled) continue;  // system/third-party headers are outside the DAG
    const std::size_t to = layers.layer_of_include(inc.header);
    if (to == LayerManifest::npos || to <= from) continue;
    out.push_back(Finding{
        file.path, inc.line, std::string(kRuleIncludeLayering),
        "layer '" + layers.layers[from].name + "' may not include \"" +
            inc.header + "\" from higher layer '" + layers.layers[to].name +
            "' (declared order: " + layers.order_string() + ")"});
  }
}

}  // namespace

void run_token_rules(const SourceFile& file, const LayerManifest* layers,
                     std::vector<Finding>& out) {
  const std::vector<Definition> defs = find_definitions(file.tokens);
  for (const Definition& def : defs) {
    const auto events = call_events(file.tokens, def.body_begin, def.body_end);
    check_durability(file, def, events, file.tokens, out);
    check_version_guard(file, events, out);
  }
  check_symmetry(file, defs, out);
  if (layers != nullptr) check_layering(file, *layers, out);
}

}  // namespace hinet::detlint
