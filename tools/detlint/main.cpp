// detlint CLI.  Exit codes: 0 clean, 1 findings, 2 usage or I/O error.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "detlint/baseline.hpp"
#include "detlint/layers.hpp"
#include "detlint/linter.hpp"
#include "detlint/sarif.hpp"

namespace {

void print_usage(std::FILE* out) {
  std::fputs(
      "usage: detlint [--list-rules] [--exclude PATTERN]... [--layers FILE]\n"
      "               [--baseline FILE] [--write-baseline] [--format=FMT]\n"
      "               <path>...\n"
      "\n"
      "Statically enforces the project's determinism, layering and\n"
      "durability invariants over the given files and directories\n"
      "(recursed; .cpp/.cc/.cxx/.hpp/.hh/.h).\n"
      "\n"
      "  --list-rules       print the rule catalog and exit\n"
      "  --exclude PATTERN  skip matching paths (substring, or glob when the\n"
      "                     pattern contains *, ? or [; repeatable)\n"
      "  --layers FILE      layer manifest enabling the include-layering rule\n"
      "  --baseline FILE    suppress grandfathered findings listed in FILE;\n"
      "                     stale entries are themselves findings\n"
      "  --write-baseline   regenerate the --baseline file from this run's\n"
      "                     findings and exit\n"
      "  --format=FMT       output format: text (default) or sarif\n"
      "\n"
      "Suppress a finding with an auditable comment on the same or the\n"
      "preceding line (see docs/static_analysis.md for the policy).\n",
      out);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hinet::detlint;

  std::vector<std::string> roots;
  std::vector<std::string> excludes;
  std::string layers_path;
  std::string baseline_path;
  bool write_baseline = false;
  std::string format = "text";

  auto need_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "detlint: %s needs an argument\n", flag);
      return nullptr;
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(stdout);
      return 0;
    }
    if (arg == "--list-rules") {
      for (const RuleInfo& r : rule_catalog()) {
        std::printf("%-24s %s\n", std::string(r.name).c_str(),
                    std::string(r.summary).c_str());
      }
      return 0;
    }
    if (arg == "--exclude") {
      const char* v = need_value(i, "--exclude");
      if (v == nullptr) return 2;
      excludes.emplace_back(v);
      continue;
    }
    if (arg == "--layers") {
      const char* v = need_value(i, "--layers");
      if (v == nullptr) return 2;
      layers_path = v;
      continue;
    }
    if (arg == "--baseline") {
      const char* v = need_value(i, "--baseline");
      if (v == nullptr) return 2;
      baseline_path = v;
      continue;
    }
    if (arg == "--write-baseline") {
      write_baseline = true;
      continue;
    }
    if (arg.starts_with("--format=")) {
      format = arg.substr(9);
      continue;
    }
    if (arg == "--format") {
      const char* v = need_value(i, "--format");
      if (v == nullptr) return 2;
      format = v;
      continue;
    }
    if (arg.starts_with("--")) {
      std::fprintf(stderr, "detlint: unknown option '%s'\n", arg.c_str());
      print_usage(stderr);
      return 2;
    }
    roots.push_back(arg);
  }
  if (roots.empty()) {
    print_usage(stderr);
    return 2;
  }
  if (format != "text" && format != "sarif") {
    std::fprintf(stderr, "detlint: unknown format '%s' (text|sarif)\n",
                 format.c_str());
    return 2;
  }
  if (write_baseline && baseline_path.empty()) {
    std::fputs("detlint: --write-baseline needs --baseline FILE\n", stderr);
    return 2;
  }

  LintOptions opts;
  LayerManifest manifest;
  if (!layers_path.empty()) {
    ManifestParse parsed = load_layer_manifest(layers_path);
    if (!parsed.errors.empty()) {
      for (const std::string& err : parsed.errors) {
        std::fprintf(stderr, "detlint: %s\n", err.c_str());
      }
      return 2;
    }
    manifest = std::move(parsed.manifest);
    opts.layers = &manifest;
  }

  const auto files = collect_sources(roots, excludes);
  if (files.empty()) {
    std::fputs("detlint: no lintable files under the given paths\n", stderr);
    return 2;
  }

  std::vector<Finding> all;
  for (const auto& file : files) {
    const auto findings = lint_file(file, {}, opts);
    if (!findings) {
      std::fprintf(stderr, "detlint: cannot read %s\n",
                   file.generic_string().c_str());
      return 2;
    }
    all.insert(all.end(), findings->begin(), findings->end());
  }

  if (write_baseline) {
    const std::string rendered = render_baseline(all);
    std::ofstream out(baseline_path, std::ios::binary | std::ios::trunc);
    out << rendered;
    if (!out) {
      std::fprintf(stderr, "detlint: cannot write %s\n", baseline_path.c_str());
      return 2;
    }
    std::fprintf(stderr, "detlint: baselined %zu finding%s into %s\n",
                 all.size(), all.size() == 1 ? "" : "s",
                 baseline_path.c_str());
    return 0;
  }

  std::size_t suppressed = 0;
  if (!baseline_path.empty()) {
    std::vector<std::string> errors;
    const Baseline base = load_baseline(baseline_path, errors);
    if (!errors.empty()) {
      for (const std::string& err : errors) {
        std::fprintf(stderr, "detlint: %s\n", err.c_str());
      }
      return 2;
    }
    BaselineResult result = apply_baseline(all, base);
    suppressed = result.suppressed;
    all = std::move(result.fresh);
    all.insert(all.end(), result.stale.begin(), result.stale.end());
  }

  if (format == "sarif") {
    std::fputs(to_sarif(all).c_str(), stdout);
  } else {
    for (const Finding& f : all) {
      std::printf("%s:%zu: [%s] %s\n", f.path.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
    }
  }

  std::size_t files_with_findings = 0;
  {
    std::string last;
    for (const Finding& f : all) {
      if (f.path != last) {
        ++files_with_findings;
        last = f.path;
      }
    }
  }
  std::fprintf(stderr, "detlint: %zu finding%s in %zu of %zu files",
               all.size(), all.size() == 1 ? "" : "s", files_with_findings,
               files.size());
  if (suppressed > 0) {
    std::fprintf(stderr, " (%zu baselined)", suppressed);
  }
  std::fputc('\n', stderr);
  return all.empty() ? 0 : 1;
}
