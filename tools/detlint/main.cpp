// detlint CLI.  Exit codes: 0 clean, 1 findings, 2 usage or I/O error.
#include <cstdio>
#include <string>
#include <vector>

#include "detlint/linter.hpp"

namespace {

void print_usage(std::FILE* out) {
  std::fputs(
      "usage: detlint [--list-rules] [--exclude SUBSTR]... <path>...\n"
      "\n"
      "Statically enforces the project's determinism invariants over the\n"
      "given files and directories (recursed; .cpp/.cc/.cxx/.hpp/.hh/.h).\n"
      "\n"
      "  --list-rules      print the rule catalog and exit\n"
      "  --exclude SUBSTR  skip paths containing SUBSTR (repeatable)\n"
      "\n"
      "Suppress a finding with an auditable comment on the same or the\n"
      "preceding line (see docs/static_analysis.md for the policy).\n",
      out);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hinet::detlint;

  std::vector<std::string> roots;
  std::vector<std::string> excludes;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(stdout);
      return 0;
    }
    if (arg == "--list-rules") {
      for (const RuleInfo& r : rule_catalog()) {
        std::printf("%-22s %s\n", std::string(r.name).c_str(),
                    std::string(r.summary).c_str());
      }
      return 0;
    }
    if (arg == "--exclude") {
      if (i + 1 >= argc) {
        std::fputs("detlint: --exclude needs an argument\n", stderr);
        return 2;
      }
      excludes.emplace_back(argv[++i]);
      continue;
    }
    if (arg.starts_with("--")) {
      std::fprintf(stderr, "detlint: unknown option '%s'\n", arg.c_str());
      print_usage(stderr);
      return 2;
    }
    roots.push_back(arg);
  }
  if (roots.empty()) {
    print_usage(stderr);
    return 2;
  }

  const auto files = collect_sources(roots, excludes);
  if (files.empty()) {
    std::fputs("detlint: no lintable files under the given paths\n", stderr);
    return 2;
  }

  std::size_t finding_count = 0;
  std::size_t files_with_findings = 0;
  for (const auto& file : files) {
    const auto findings = lint_file(file);
    if (!findings) {
      std::fprintf(stderr, "detlint: cannot read %s\n",
                   file.generic_string().c_str());
      return 2;
    }
    if (!findings->empty()) ++files_with_findings;
    for (const Finding& f : *findings) {
      std::printf("%s:%zu: [%s] %s\n", f.path.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
      ++finding_count;
    }
  }
  std::fprintf(stderr, "detlint: %zu finding%s in %zu of %zu files\n",
               finding_count, finding_count == 1 ? "" : "s",
               files_with_findings, files.size());
  return finding_count == 0 ? 0 : 1;
}
