#include "detlint/layers.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

namespace hinet::detlint {

namespace {

// True when `path` lives under `prefix`: equal, starts with "prefix/", or
// contains "/prefix/" (so absolute fixture paths still map to their layer).
bool path_under(std::string_view path, std::string_view prefix) {
  if (path == prefix) return true;
  if (path.size() > prefix.size() && path.starts_with(prefix) &&
      path[prefix.size()] == '/') {
    return true;
  }
  const std::string needle = "/" + std::string(prefix) + "/";
  return path.find(needle) != std::string_view::npos;
}

std::vector<std::string> split_commas(std::string_view s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::string_view piece =
        s.substr(start, comma == std::string_view::npos ? s.size() - start
                                                        : comma - start);
    if (!piece.empty()) out.emplace_back(piece);
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

std::size_t LayerManifest::layer_of_file(std::string_view generic_path) const {
  for (std::size_t i = 0; i < layers.size(); ++i) {
    for (const std::string& prefix : layers[i].file_prefixes) {
      if (path_under(generic_path, prefix)) return i;
    }
  }
  return npos;
}

std::size_t LayerManifest::layer_of_include(std::string_view header) const {
  for (std::size_t i = 0; i < layers.size(); ++i) {
    for (const std::string& prefix : layers[i].include_prefixes) {
      if (header == prefix ||
          (header.size() > prefix.size() && header.starts_with(prefix) &&
           header[prefix.size()] == '/')) {
        return i;
      }
    }
  }
  return npos;
}

std::string LayerManifest::order_string() const {
  std::string out;
  for (const Layer& layer : layers) {
    if (!out.empty()) out += " < ";
    out += layer.name;
  }
  return out;
}

ManifestParse parse_layer_manifest(std::string_view text) {
  ManifestParse out;
  std::istringstream in{std::string(text)};
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream fields(line);
    std::string keyword;
    if (!(fields >> keyword) || keyword.front() == '#') continue;
    if (keyword != "layer") {
      out.errors.push_back("layers.txt:" + std::to_string(line_no) +
                           ": unknown keyword '" + keyword +
                           "' (expected 'layer')");
      continue;
    }
    Layer layer;
    std::string files;
    std::string includes;
    if (!(fields >> layer.name >> files >> includes)) {
      out.errors.push_back(
          "layers.txt:" + std::to_string(line_no) +
          ": expected 'layer <name> <file-prefixes> <include-prefixes>'");
      continue;
    }
    for (const Layer& existing : out.manifest.layers) {
      if (existing.name == layer.name) {
        out.errors.push_back("layers.txt:" + std::to_string(line_no) +
                             ": duplicate layer '" + layer.name + "'");
      }
    }
    layer.file_prefixes = split_commas(files);
    if (includes != "-") layer.include_prefixes = split_commas(includes);
    out.manifest.layers.push_back(std::move(layer));
  }
  if (out.manifest.layers.empty() && out.errors.empty()) {
    out.errors.push_back("layers.txt declares no layers");
  }
  return out;
}

ManifestParse load_layer_manifest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ManifestParse out;
    out.errors.push_back("cannot read layer manifest " + path);
    return out;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_layer_manifest(buf.str());
}

}  // namespace hinet::detlint
