// The declared include-layer DAG for the include-layering rule.
//
// The manifest (tools/detlint/layers.txt) lists layers bottom-up; a file in
// layer i may include headers from layers 0..i and nothing above.  Each
// layer carries two prefix sets: file prefixes locate a source file's layer
// from its repo-relative path ("src/sim/engine.cpp" → sim), include
// prefixes locate an included header's layer from the include string
// ("sim/engine.hpp" → sim).  Paths and includes matching no layer are
// outside the DAG and never reported (system headers, third-party code).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace hinet::detlint {

struct Layer {
  std::string name;
  std::vector<std::string> file_prefixes;
  std::vector<std::string> include_prefixes;
};

struct LayerManifest {
  std::vector<Layer> layers;  // bottom-up; index is the layer's rank

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  // Rank of the layer owning this source path / include string, or npos.
  std::size_t layer_of_file(std::string_view generic_path) const;
  std::size_t layer_of_include(std::string_view header) const;

  // "util < graph < … < top" — used in finding messages.
  std::string order_string() const;
};

struct ManifestParse {
  LayerManifest manifest;
  std::vector<std::string> errors;  // empty on success
};

// Parses the manifest grammar:
//   # comment
//   layer <name> <file-prefix>[,<file-prefix>...] <include-prefix>[,...]
// An include-prefix list of "-" declares a layer with no include identity
// (its headers are never included by layer name, e.g. the top layer).
ManifestParse parse_layer_manifest(std::string_view text);

// Reads and parses a manifest file; a read failure is reported as an error.
ManifestParse load_layer_manifest(const std::string& path);

}  // namespace hinet::detlint
