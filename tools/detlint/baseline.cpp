#include "detlint/baseline.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <tuple>

#include "detlint/rules.hpp"

namespace hinet::detlint {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

Baseline parse_baseline(std::string_view text,
                        std::vector<std::string>& errors) {
  Baseline out;
  std::istringstream in{std::string(text)};
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string_view line = trim(raw);
    if (line.empty() || line.front() == '#') continue;
    const std::size_t p1 = line.find('|');
    const std::size_t p2 =
        p1 == std::string_view::npos ? p1 : line.find('|', p1 + 1);
    if (p2 == std::string_view::npos) {
      errors.push_back("baseline line " + std::to_string(line_no) +
                       ": expected 'path|rule|count'");
      continue;
    }
    BaselineEntry entry;
    entry.path = std::string(trim(line.substr(0, p1)));
    entry.rule = std::string(trim(line.substr(p1 + 1, p2 - p1 - 1)));
    const std::string_view count = trim(line.substr(p2 + 1));
    if (entry.path.empty() || entry.rule.empty() || count.empty() ||
        !std::all_of(count.begin(), count.end(),
                     [](char c) { return c >= '0' && c <= '9'; })) {
      errors.push_back("baseline line " + std::to_string(line_no) +
                       ": expected 'path|rule|count'");
      continue;
    }
    if (!is_known_rule(entry.rule)) {
      errors.push_back("baseline line " + std::to_string(line_no) +
                       ": unknown rule '" + entry.rule + "'");
      continue;
    }
    entry.count = static_cast<std::size_t>(std::stoull(std::string(count)));
    if (entry.count == 0) {
      errors.push_back("baseline line " + std::to_string(line_no) +
                       ": zero-count entry is dead weight; delete it");
      continue;
    }
    out.entries.push_back(std::move(entry));
  }
  return out;
}

Baseline load_baseline(const std::string& path,
                       std::vector<std::string>& errors) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    errors.push_back("cannot read baseline file " + path);
    return {};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_baseline(buf.str(), errors);
}

BaselineResult apply_baseline(const std::vector<Finding>& findings,
                              const Baseline& base) {
  std::map<std::pair<std::string, std::string>, std::size_t> budget;
  for (const BaselineEntry& e : base.entries) {
    budget[{e.path, e.rule}] += e.count;
  }

  BaselineResult out;
  // Findings arrive sorted by line within each file, so consuming budget in
  // order absorbs the lowest-line (grandfathered) findings first.
  auto remaining = budget;
  for (const Finding& f : findings) {
    const auto it = remaining.find({f.path, f.rule});
    if (it != remaining.end() && it->second > 0) {
      --it->second;
      ++out.suppressed;
    } else {
      out.fresh.push_back(f);
    }
  }
  for (const auto& [key, left] : remaining) {
    if (left == 0) continue;
    out.stale.push_back(Finding{
        key.first, 0, std::string(kRuleStaleBaseline),
        "baseline grants " + std::to_string(budget[key]) + " '" + key.second +
            "' finding(s) but only " + std::to_string(budget[key] - left) +
            " remain — regenerate with --write-baseline so the baseline "
            "only shrinks"});
  }
  return out;
}

std::string render_baseline(const std::vector<Finding>& findings) {
  std::map<std::pair<std::string, std::string>, std::size_t> counts;
  for (const Finding& f : findings) ++counts[{f.path, f.rule}];
  std::string out =
      "# detlint baseline: grandfathered findings, one 'path|rule|count' per "
      "line.\n"
      "# This file may only shrink; regenerate with detlint_tool "
      "--write-baseline.\n";
  for (const auto& [key, n] : counts) {
    out += key.first + "|" + key.second + "|" + std::to_string(n) + "\n";
  }
  return out;
}

}  // namespace hinet::detlint
