#include "detlint/linter.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <tuple>

#include "detlint/rules.hpp"
#include "detlint/source_scan.hpp"

namespace hinet::detlint {

namespace {

constexpr std::string_view kAllowToken = "detlint-allow";
constexpr std::string_view kMarkerToken = "detlint:";
constexpr std::string_view kHotBegin = "hot-path-begin";
constexpr std::string_view kHotEnd = "hot-path-end";

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == '-';
}

struct Directives {
  // line (1-based) -> rules suppressed on that line and the next one.
  std::map<std::size_t, std::set<std::string>> line_allows;
  std::set<std::string> file_allows;
  std::vector<char> hot;  // hot[i] != 0 -> line i+1 is in a hot-path region
  std::vector<Finding> errors;
};

void bad_directive(Directives& d, const SourceFile& f, std::size_t line_no,
                   std::string msg) {
  d.errors.push_back(Finding{f.path, line_no, std::string(kRuleBadDirective),
                             std::move(msg)});
}

// Parses every suppression in one comment line.  A suppression must name a
// known rule and carry a nonempty reason — an exception nobody can audit is
// itself a finding.
void parse_allows(Directives& d, const SourceFile& f, std::size_t line_no,
                  std::string_view comment) {
  std::size_t pos = 0;
  while ((pos = comment.find(kAllowToken, pos)) != std::string_view::npos) {
    std::size_t i = pos + kAllowToken.size();
    bool file_scope = false;
    if (comment.substr(i).starts_with("-file")) {
      file_scope = true;
      i += 5;
    }
    pos = i;
    if (i >= comment.size() || comment[i] != '(') {
      bad_directive(d, f, line_no,
                    "suppression must name a rule: expected "
                    "'(rule): reason' after the allow token");
      continue;
    }
    const std::size_t close = comment.find(')', i);
    if (close == std::string_view::npos) {
      bad_directive(d, f, line_no, "unterminated rule name in suppression");
      continue;
    }
    const std::string_view rule = trim(comment.substr(i + 1, close - i - 1));
    pos = close + 1;
    if (rule.empty() || !std::all_of(rule.begin(), rule.end(), is_ident_char)) {
      bad_directive(d, f, line_no, "suppression names an empty or malformed rule");
      continue;
    }
    if (!is_known_rule(rule)) {
      bad_directive(d, f, line_no,
                    "suppression names unknown rule '" + std::string(rule) +
                        "' (see --list-rules)");
      continue;
    }
    if (close + 1 >= comment.size() || comment[close + 1] != ':') {
      bad_directive(d, f, line_no,
                    "suppression of '" + std::string(rule) +
                        "' is missing the ': reason' clause");
      continue;
    }
    // The reason runs to the end of the comment line (or the next allow).
    std::size_t reason_end = comment.find(kAllowToken, close + 2);
    if (reason_end == std::string_view::npos) reason_end = comment.size();
    const std::string_view reason =
        trim(comment.substr(close + 2, reason_end - close - 2));
    if (reason.empty()) {
      bad_directive(d, f, line_no,
                    "suppression of '" + std::string(rule) +
                        "' has an empty reason; every exception must be "
                        "auditable");
      continue;
    }
    if (file_scope) {
      d.file_allows.insert(std::string(rule));
    } else {
      d.line_allows[line_no].insert(std::string(rule));
    }
  }
}

Directives parse_directives(const SourceFile& f) {
  Directives d;
  d.hot.assign(f.lines.size(), 0);
  bool in_hot = false;
  std::size_t hot_open_line = 0;
  for (std::size_t i = 0; i < f.lines.size(); ++i) {
    const std::size_t line_no = i + 1;
    const std::string& comment = f.lines[i].comment;
    bool hot_this = in_hot;
    if (!comment.empty()) {
      parse_allows(d, f, line_no, comment);
      const std::size_t mp = comment.find(kMarkerToken);
      if (mp != std::string_view::npos) {
        const std::string_view rest =
            trim(std::string_view(comment).substr(mp + kMarkerToken.size()));
        if (rest.starts_with(kHotBegin)) {
          if (in_hot) {
            bad_directive(d, f, line_no,
                          "nested hot-path region (previous begin on line " +
                              std::to_string(hot_open_line) + ")");
          }
          in_hot = true;
          hot_this = true;
          hot_open_line = line_no;
        } else if (rest.starts_with(kHotEnd)) {
          if (!in_hot) {
            bad_directive(d, f, line_no,
                          "hot-path region end without a matching begin");
          }
          hot_this = in_hot;  // the end-marker line is still inside the region
          in_hot = false;
        } else if (rest.starts_with("hot-path")) {
          bad_directive(d, f, line_no,
                        "unknown hot-path marker; use 'hot-path-begin' or "
                        "'hot-path-end'");
        }
      }
    }
    d.hot[i] = hot_this ? 1 : 0;
  }
  if (in_hot) {
    bad_directive(d, f, f.lines.size(),
                  "unterminated hot-path region (begin on line " +
                      std::to_string(hot_open_line) + ")");
  }
  return d;
}

bool suppressed(const Directives& d, const Finding& finding) {
  if (d.file_allows.contains(finding.rule)) return true;
  for (const std::size_t line : {finding.line, finding.line - 1}) {
    const auto it = d.line_allows.find(line);
    if (it != d.line_allows.end() && it->second.contains(finding.rule)) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<Finding> lint_source(const SourceFile& file,
                                 const LintOptions& opts) {
  const Directives d = parse_directives(file);
  std::vector<Finding> raw;
  run_rules(file, d.hot, raw);
  run_token_rules(file, opts.layers, raw);

  std::vector<Finding> out = d.errors;  // never suppressible
  for (Finding& f : raw) {
    if (!suppressed(d, f)) out.push_back(std::move(f));
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
  });
  return out;
}

std::vector<Finding> lint_text(std::string path, std::string_view text,
                               const LintOptions& opts) {
  return lint_source(scan_source(std::move(path), text), opts);
}

std::optional<std::vector<Finding>> lint_file(const std::filesystem::path& file,
                                              std::string path_for_rules,
                                              const LintOptions& opts) {
  std::ifstream in(file, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  if (path_for_rules.empty()) path_for_rules = file.generic_string();
  return lint_text(std::move(path_for_rules), buf.str(), opts);
}

namespace {

// Minimal fnmatch-style glob: '*' matches any run (including '/'), '?' one
// character, '[...]'/' [!...]' a character class.  Iterative with single-star
// backtracking, so it is linear-ish and cannot recurse deeply.
bool glob_match(std::string_view pat, std::string_view text) {
  constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t p = 0;
  std::size_t t = 0;
  std::size_t star_p = npos;
  std::size_t star_t = 0;
  auto class_match = [&](std::size_t at, char c, std::size_t& next) {
    std::size_t i = at + 1;
    bool negate = false;
    if (i < pat.size() && (pat[i] == '!' || pat[i] == '^')) {
      negate = true;
      ++i;
    }
    bool hit = false;
    bool first = true;
    for (; i < pat.size() && (first || pat[i] != ']'); ++i, first = false) {
      if (pat[i] == '-' && !first && i + 1 < pat.size() && pat[i + 1] != ']') {
        if (pat[i - 1] <= c && c <= pat[i + 1]) hit = true;
        ++i;
      } else if (pat[i] == c) {
        hit = true;
      }
    }
    if (i >= pat.size()) return false;  // unterminated class: no match
    next = i + 1;
    return hit != negate;
  };
  while (t < text.size()) {
    bool stepped = false;
    if (p < pat.size()) {
      if (pat[p] == '*') {
        star_p = p++;
        star_t = t;
        continue;
      }
      if (pat[p] == '[') {
        std::size_t next = 0;
        if (class_match(p, text[t], next)) {
          p = next;
          ++t;
          stepped = true;
        }
      } else if (pat[p] == '?' || pat[p] == text[t]) {
        ++p;
        ++t;
        stepped = true;
      }
    }
    if (stepped) continue;
    if (star_p == npos) return false;
    p = star_p + 1;
    t = ++star_t;
  }
  while (p < pat.size() && pat[p] == '*') ++p;
  return p == pat.size();
}

bool has_glob_chars(std::string_view s) {
  return s.find_first_of("*?[") != std::string_view::npos;
}

}  // namespace

bool path_excluded(std::string_view generic_path,
                   std::span<const std::string> excludes) {
  for (const std::string& ex : excludes) {
    if (!has_glob_chars(ex)) {
      if (generic_path.find(ex) != std::string_view::npos) return true;
      continue;
    }
    if (glob_match(ex, generic_path)) return true;
    for (std::size_t i = generic_path.find('/');
         i != std::string_view::npos; i = generic_path.find('/', i + 1)) {
      if (glob_match(ex, generic_path.substr(i + 1))) return true;
    }
  }
  return false;
}

std::vector<std::filesystem::path> collect_sources(
    std::span<const std::string> roots, std::span<const std::string> excludes) {
  namespace fs = std::filesystem;
  static constexpr std::array kExtensions = {".cpp", ".cc", ".cxx",
                                             ".hpp", ".hh", ".h"};
  auto lintable = [&](const fs::path& p) {
    const std::string ext = p.extension().string();
    if (std::find(kExtensions.begin(), kExtensions.end(), ext) ==
        kExtensions.end()) {
      return false;
    }
    return !path_excluded(p.generic_string(), excludes);
  };

  std::vector<fs::path> out;
  for (const std::string& root : roots) {
    const fs::path p(root);
    if (fs::is_directory(p)) {
      for (const auto& entry : fs::recursive_directory_iterator(p)) {
        if (entry.is_regular_file() && lintable(entry.path())) {
          out.push_back(entry.path());
        }
      }
    } else if (fs::is_regular_file(p) && lintable(p)) {
      out.push_back(p);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const fs::path& a, const fs::path& b) {
              return a.generic_string() < b.generic_string();
            });
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace hinet::detlint
