// Internal rule registry for detlint.  The v1 rules scan the code channel of
// a SourceFile; the v2 rules walk its token stream.  Suppression handling
// lives in linter.cpp.
#pragma once

#include <string_view>
#include <vector>

#include "detlint/layers.hpp"
#include "detlint/linter.hpp"
#include "detlint/source_scan.hpp"

namespace hinet::detlint {

// Rule names, shared between the checkers, the directive parser, and tests.
inline constexpr std::string_view kRuleBannedRandom = "banned-random";
inline constexpr std::string_view kRuleBannedTime = "banned-time";
inline constexpr std::string_view kRulePointerOrder = "pointer-order";
inline constexpr std::string_view kRuleUnorderedIteration =
    "unordered-iteration";
inline constexpr std::string_view kRuleHotPathAlloc = "hot-path-alloc";
inline constexpr std::string_view kRuleBadDirective = "bad-directive";
inline constexpr std::string_view kRuleIncludeLayering = "include-layering";
inline constexpr std::string_view kRuleDurabilityOrdering =
    "durability-ordering";
inline constexpr std::string_view kRuleSerializationSymmetry =
    "serialization-symmetry";
inline constexpr std::string_view kRuleStaleBaseline = "stale-baseline";

// Runs every pattern rule over `file`.  `hot[i]` marks line i+1 as inside a
// declared hot-path region.  Raw findings are appended to `out`
// (suppressions not yet applied).
void run_rules(const SourceFile& file, const std::vector<char>& hot,
               std::vector<Finding>& out);

// Runs the token-stream rules: durability-ordering and
// serialization-symmetry always, include-layering when a layer manifest is
// supplied.  Raw findings are appended to `out` (suppressions not yet
// applied).
void run_token_rules(const SourceFile& file, const LayerManifest* layers,
                     std::vector<Finding>& out);

}  // namespace hinet::detlint
