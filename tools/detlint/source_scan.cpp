#include "detlint/source_scan.hpp"

#include <cctype>

namespace hinet::detlint {

namespace {

bool is_word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

}  // namespace

SourceFile scan_source(std::string path, std::string_view text) {
  SourceFile out;
  out.path = std::move(path);

  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State st = State::kCode;
  std::string code;
  std::string comment;
  std::string raw_terminator;  // ")delim\"" that closes the raw string
  bool escape = false;

  const std::size_t n = text.size();
  std::size_t i = 0;

  auto flush_line = [&] {
    out.lines.push_back(SourceLine{std::move(code), std::move(comment)});
    code.clear();
    comment.clear();
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      // Line comments end at the newline; an unterminated ordinary string or
      // character literal is broken source, so fall back to code state rather
      // than swallowing the rest of the file.  Block comments and raw strings
      // legitimately span lines.
      if (st == State::kLineComment || st == State::kString ||
          st == State::kChar) {
        st = State::kCode;
      }
      escape = false;
      flush_line();
      ++i;
      continue;
    }
    switch (st) {
      case State::kCode:
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
          st = State::kLineComment;
          i += 2;
          continue;
        }
        if (c == '/' && i + 1 < n && text[i + 1] == '*') {
          st = State::kBlockComment;
          i += 2;
          continue;
        }
        if (c == '"') {
          if (!code.empty() && code.back() == 'R') {
            // Raw string literal: collect the delimiter up to '('.
            std::size_t j = i + 1;
            std::string delim;
            while (j < n && text[j] != '(' && text[j] != '\n' &&
                   delim.size() <= 16) {
              delim.push_back(text[j]);
              ++j;
            }
            if (j < n && text[j] == '(') {
              raw_terminator = ")" + delim + "\"";
              st = State::kRawString;
              code += "\"\"";
              i = j + 1;
              continue;
            }
          }
          st = State::kString;
          code += '"';
          ++i;
          continue;
        }
        if (c == '\'') {
          // Digit separators (1'000'000) are part of the preceding numeric
          // token, not a character literal.
          if (!code.empty() && is_word_char(code.back())) {
            code += c;
            ++i;
            continue;
          }
          st = State::kChar;
          code += '\'';
          ++i;
          continue;
        }
        code += c;
        ++i;
        continue;
      case State::kLineComment:
        comment += c;
        ++i;
        continue;
      case State::kBlockComment:
        if (c == '*' && i + 1 < n && text[i + 1] == '/') {
          st = State::kCode;
          i += 2;
          continue;
        }
        comment += c;
        ++i;
        continue;
      case State::kString:
        if (escape) {
          escape = false;
          ++i;
          continue;
        }
        if (c == '\\') {
          escape = true;
          ++i;
          continue;
        }
        if (c == '"') {
          st = State::kCode;
          code += '"';
          ++i;
          continue;
        }
        ++i;
        continue;
      case State::kChar:
        if (escape) {
          escape = false;
          ++i;
          continue;
        }
        if (c == '\\') {
          escape = true;
          ++i;
          continue;
        }
        if (c == '\'') {
          st = State::kCode;
          code += '\'';
          ++i;
          continue;
        }
        ++i;
        continue;
      case State::kRawString:
        if (text.compare(i, raw_terminator.size(), raw_terminator) == 0) {
          st = State::kCode;
          i += raw_terminator.size();
          continue;
        }
        ++i;
        continue;
    }
  }
  flush_line();
  return out;
}

}  // namespace hinet::detlint
