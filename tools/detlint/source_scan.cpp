#include "detlint/source_scan.hpp"

#include <cctype>

namespace hinet::detlint {

namespace {

bool is_word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_space(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }

// Joins line splices ("\<newline>") out of a raw directive slice so the kPp
// token carries one logical line of text.
std::string splice_lines(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] == '\\' &&
        (i + 1 < raw.size() && (raw[i + 1] == '\n' ||
                                (raw[i + 1] == '\r' && i + 2 < raw.size() &&
                                 raw[i + 2] == '\n')))) {
      i += raw[i + 1] == '\r' ? 2 : 1;
      out.push_back(' ');
      continue;
    }
    if (raw[i] == '\n' || raw[i] == '\r') {
      out.push_back(' ');
      continue;
    }
    out.push_back(raw[i]);
  }
  return out;
}

// Parses `#include "x"` / `#include <x>` out of a spliced directive text.
void parse_include(SourceFile& out, const std::string& text,
                   std::size_t line) {
  std::size_t i = 1;  // past '#'
  while (i < text.size() && is_space(text[i])) ++i;
  std::string word;
  while (i < text.size() && is_word_char(text[i])) word.push_back(text[i++]);
  if (word != "include" && word != "include_next") return;
  while (i < text.size() && is_space(text[i])) ++i;
  if (i >= text.size()) return;
  const char open = text[i];
  const char close = open == '<' ? '>' : (open == '"' ? '"' : '\0');
  if (close == '\0') return;  // computed include (#include MACRO) — opaque
  const std::size_t end = text.find(close, i + 1);
  if (end == std::string::npos) return;
  out.includes.push_back(IncludeDirective{text.substr(i + 1, end - i - 1),
                                          line, open == '<'});
}

}  // namespace

SourceFile scan_source(std::string path, std::string_view text) {
  SourceFile out;
  out.path = std::move(path);

  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State st = State::kCode;
  std::string code;
  std::string comment;
  std::string raw_terminator;  // ")delim\"" that closes the raw string
  bool escape = false;

  // Token accumulation (suppressed inside preprocessor directives: each
  // directive is emitted as one kPp token instead).
  std::string tok;           // pending identifier / number
  std::size_t tok_line = 1;  // line the pending token started on
  bool in_pp = false;
  std::size_t pp_start = 0;
  std::size_t pp_line = 0;
  bool line_has_code = false;

  const std::size_t n = text.size();
  std::size_t i = 0;

  auto cur_line = [&] { return out.lines.size() + 1; };

  auto flush_token = [&] {
    if (tok.empty()) return;
    const bool numeric = std::isdigit(static_cast<unsigned char>(tok.front())) != 0;
    out.tokens.push_back(Token{numeric ? TokKind::kNumber : TokKind::kIdent,
                               std::move(tok), tok_line});
    tok.clear();
  };

  auto finish_pp = [&](std::size_t end) {
    const std::string spliced =
        splice_lines(text.substr(pp_start, end - pp_start));
    parse_include(out, spliced, pp_line);
    out.tokens.push_back(Token{TokKind::kPp, spliced, pp_line});
    in_pp = false;
  };

  auto flush_line = [&] {
    out.lines.push_back(SourceLine{std::move(code), std::move(comment)});
    code.clear();
    comment.clear();
    line_has_code = false;
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      // Line comments end at the newline; an unterminated ordinary string or
      // character literal is broken source, so fall back to code state rather
      // than swallowing the rest of the file.  Block comments and raw strings
      // legitimately span lines.
      if (st == State::kLineComment || st == State::kString ||
          st == State::kChar) {
        st = State::kCode;
      }
      escape = false;
      flush_token();
      if (in_pp && st == State::kCode) {
        // A directive survives the newline only through a line splice.
        std::size_t j = i;
        if (j > pp_start && text[j - 1] == '\r') --j;
        if (!(j > pp_start && text[j - 1] == '\\')) finish_pp(i);
      }
      flush_line();
      ++i;
      continue;
    }
    switch (st) {
      case State::kCode:
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
          flush_token();
          st = State::kLineComment;
          i += 2;
          continue;
        }
        if (c == '/' && i + 1 < n && text[i + 1] == '*') {
          flush_token();
          st = State::kBlockComment;
          i += 2;
          continue;
        }
        if (c == '"') {
          if (!code.empty() && code.back() == 'R') {
            // Raw string literal: collect the delimiter up to '('.
            std::size_t j = i + 1;
            std::string delim;
            while (j < n && text[j] != '(' && text[j] != '\n' &&
                   delim.size() <= 16) {
              delim.push_back(text[j]);
              ++j;
            }
            if (j < n && text[j] == '(') {
              raw_terminator = ")" + delim + "\"";
              st = State::kRawString;
              code += "\"\"";
              // The pending "R" (or "LR"/"u8R" …) prefix is part of the
              // literal, not an identifier of its own.
              tok.clear();
              if (!in_pp) {
                out.tokens.push_back(Token{TokKind::kString, {}, cur_line()});
              }
              i = j + 1;
              continue;
            }
          }
          flush_token();
          if (!in_pp) {
            out.tokens.push_back(Token{TokKind::kString, {}, cur_line()});
          }
          st = State::kString;
          code += '"';
          line_has_code = true;
          ++i;
          continue;
        }
        if (c == '\'') {
          // Digit separators (1'000'000) are part of the preceding numeric
          // token, not a character literal.
          if (!code.empty() && is_word_char(code.back())) {
            code += c;
            if (!in_pp && !tok.empty()) tok += c;
            ++i;
            continue;
          }
          flush_token();
          if (!in_pp) {
            out.tokens.push_back(Token{TokKind::kChar, {}, cur_line()});
          }
          st = State::kChar;
          code += '\'';
          line_has_code = true;
          ++i;
          continue;
        }
        if (c == '#' && !in_pp && !line_has_code) {
          in_pp = true;
          pp_start = i;
          pp_line = cur_line();
        }
        if (is_word_char(c)) {
          if (!in_pp) {
            if (tok.empty()) tok_line = cur_line();
            tok += c;
          }
          line_has_code = true;
        } else {
          flush_token();
          if (!is_space(c)) line_has_code = true;
          if (!in_pp && !is_space(c) && c != '\\') {
            // "::" and "->" are structural for the token rules; everything
            // else is a single-character punctuator.
            if (c == ':' && i + 1 < n && text[i + 1] == ':') {
              out.tokens.push_back(Token{TokKind::kPunct, "::", cur_line()});
              code += "::";
              i += 2;
              continue;
            }
            if (c == '-' && i + 1 < n && text[i + 1] == '>') {
              out.tokens.push_back(Token{TokKind::kPunct, "->", cur_line()});
              code += "->";
              i += 2;
              continue;
            }
            out.tokens.push_back(Token{TokKind::kPunct, std::string(1, c),
                                       cur_line()});
          }
        }
        code += c;
        ++i;
        continue;
      case State::kLineComment:
        comment += c;
        ++i;
        continue;
      case State::kBlockComment:
        if (c == '*' && i + 1 < n && text[i + 1] == '/') {
          st = State::kCode;
          i += 2;
          continue;
        }
        comment += c;
        ++i;
        continue;
      case State::kString:
        if (escape) {
          escape = false;
          ++i;
          continue;
        }
        if (c == '\\') {
          escape = true;
          ++i;
          continue;
        }
        if (c == '"') {
          st = State::kCode;
          code += '"';
          ++i;
          continue;
        }
        ++i;
        continue;
      case State::kChar:
        if (escape) {
          escape = false;
          ++i;
          continue;
        }
        if (c == '\\') {
          escape = true;
          ++i;
          continue;
        }
        if (c == '\'') {
          st = State::kCode;
          code += '\'';
          ++i;
          continue;
        }
        ++i;
        continue;
      case State::kRawString:
        if (text.compare(i, raw_terminator.size(), raw_terminator) == 0) {
          st = State::kCode;
          i += raw_terminator.size();
          continue;
        }
        ++i;
        continue;
    }
  }
  flush_token();
  if (in_pp) finish_pp(n);
  flush_line();
  return out;
}

}  // namespace hinet::detlint
