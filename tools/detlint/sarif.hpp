// Minimal SARIF 2.1.0 serializer for detlint findings, so CI can upload the
// run to code-scanning UIs.  One run, one tool, one result per finding; the
// rule catalog becomes tool.driver.rules.  Hand-rolled JSON (the toolchain
// image carries no JSON library) — the emitted subset is flat enough that
// escaping strings is the only hazard.
#pragma once

#include <string>
#include <vector>

#include "detlint/linter.hpp"

namespace hinet::detlint {

// Renders findings as a complete SARIF 2.1.0 document.  Findings with
// line 0 (file-scope, e.g. stale-baseline) are emitted without a region.
std::string to_sarif(const std::vector<Finding>& findings);

}  // namespace hinet::detlint
