// Comment/string-aware source splitter for the determinism linter.
//
// Every physical line is split into two channels: the *code* channel (string
// and character literal contents blanked, comments removed) and the *comment*
// channel (comment text only).  Rules match against the code channel, so a
// banned identifier quoted in a string or mentioned in prose never trips a
// rule; suppression and hot-path directives are parsed from the comment
// channel, so they survive the scan.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hinet::detlint {

struct SourceLine {
  std::string code;
  std::string comment;
};

struct SourceFile {
  // Generic (forward-slash) path, exactly as handed to the linter.  Path-based
  // rule exemptions (e.g. bench timers) match against this string.
  std::string path;
  std::vector<SourceLine> lines;  // lines[i] is physical line i + 1
};

SourceFile scan_source(std::string path, std::string_view text);

}  // namespace hinet::detlint
