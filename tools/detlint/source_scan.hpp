// Token-aware source scanner for the determinism linter.
//
// One pass over the raw text produces three synchronized views of a
// translation unit:
//
//   * the *line channels* — every physical line split into a code channel
//     (string and character literal contents blanked, comments removed) and a
//     comment channel (comment text only).  The v1 regex rules match against
//     the code channel, so a banned identifier quoted in a string or
//     mentioned in prose never trips a rule; suppression and hot-path
//     directives are parsed from the comment channel.
//
//   * the *token stream* — identifiers, numbers, literals and punctuation
//     with their 1-based line numbers.  The v2 flow rules (function-body
//     durability ordering, save/load symmetry) walk this stream instead of
//     re-deriving structure from regexes.  Raw strings, digit separators
//     (1'000'000) and line-spliced preprocessor directives are handled here
//     once, so every rule sees the same tokenization.
//
//   * the *include list* — each #include directive with its header text and
//     whether it was quoted or angled, feeding the include-layering rule.
//
// Preprocessor directives are collapsed into a single kPp token each (their
// text stays visible in the code channel for the v1 rules), so a macro body
// can never masquerade as a function definition to the token rules.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hinet::detlint {

struct SourceLine {
  std::string code;
  std::string comment;
};

enum class TokKind : std::uint8_t {
  kIdent,   // identifier or keyword
  kNumber,  // pp-number, digit separators included
  kString,  // string literal (ordinary or raw); text is empty
  kChar,    // character literal; text is empty
  kPunct,   // one punctuator; "::" and "->" are single tokens
  kPp,      // one whole preprocessor directive, line splices joined
};

struct Token {
  TokKind kind;
  std::string text;
  std::size_t line;  // 1-based line the token starts on
};

struct IncludeDirective {
  std::string header;  // text between the delimiters, e.g. "sim/engine.hpp"
  std::size_t line;    // 1-based
  bool angled;         // <...> (system) rather than "..." (project)
};

struct SourceFile {
  // Generic (forward-slash) path, exactly as handed to the linter.  Path-based
  // rule exemptions (e.g. bench timers) and the layer manifest match against
  // this string.
  std::string path;
  std::vector<SourceLine> lines;  // lines[i] is physical line i + 1
  std::vector<Token> tokens;      // code tokens only; comments never appear
  std::vector<IncludeDirective> includes;
};

SourceFile scan_source(std::string path, std::string_view text);

}  // namespace hinet::detlint
