// Finding baseline: lets CI fail only on *new* findings while legacy debt is
// paid down.
//
// The checked-in file (tools/detlint/baseline.txt) holds one entry per
// (path, rule) pair with the number of findings grandfathered there:
//
//   # comment
//   src/sim/engine.cpp|banned-time|2
//
// Applying the baseline suppresses up to `count` findings of that rule in
// that file (lowest lines first — the grandfathered ones); anything beyond
// the count is fresh and fails the run.  An entry whose count exceeds the
// findings still present is *stale*: it is reported as a `stale-baseline`
// finding so the file can only ever shrink, never silently rot.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "detlint/linter.hpp"

namespace hinet::detlint {

struct BaselineEntry {
  std::string path;
  std::string rule;
  std::size_t count = 0;
};

struct Baseline {
  std::vector<BaselineEntry> entries;
};

struct BaselineResult {
  std::vector<Finding> fresh;  // findings not covered by the baseline
  std::vector<Finding> stale;  // stale-baseline findings (line 0)
  std::size_t suppressed = 0;  // findings absorbed by baseline entries
};

// Parses `path|rule|count` lines; malformed lines are reported in `errors`
// (prefixed with the 1-based line number) and skipped.
Baseline parse_baseline(std::string_view text, std::vector<std::string>& errors);

// Reads and parses a baseline file; a read failure is reported in `errors`.
Baseline load_baseline(const std::string& path, std::vector<std::string>& errors);

// Splits `findings` into fresh vs baseline-absorbed and surfaces stale
// entries.  `findings` must already be fully suppressed/sorted lint output.
BaselineResult apply_baseline(const std::vector<Finding>& findings,
                              const Baseline& base);

// Renders the baseline that would absorb exactly `findings`, sorted by
// (path, rule) so regeneration is deterministic.
std::string render_baseline(const std::vector<Finding>& findings);

}  // namespace hinet::detlint
