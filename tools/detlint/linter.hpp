// detlint: the project's determinism and hot-path linter.
//
// The engine's reproducibility contract is that every run is a pure function
// of (spec, seed).  The golden-metric tests only *sample* that contract; this
// linter enforces the invariants statically, so a contributor cannot
// reintroduce a nondeterminism source (ad-hoc RNG, wall-clock reads, pointer
// ordering, hash-order iteration) or an allocation in a declared hot path
// without leaving an auditable suppression behind.
//
// v2 adds structural rules on the token stream of source_scan.hpp:
// include-layering (declared layer DAG over the project include graph),
// durability-ordering (fsync-before-rename / parent-dir-fsync / append
// fdatasync), and serialization-symmetry (writer/reader type-tag lockstep).
//
// Every rule runs on the code channel or token stream of source_scan.hpp —
// deliberately dependency-free (no libclang in the toolchain image) and
// deterministic itself.  See docs/static_analysis.md for the rule catalog and
// the suppression policy.
#pragma once

#include <filesystem>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "detlint/source_scan.hpp"

namespace hinet::detlint {

struct LayerManifest;  // layers.hpp

// Per-run configuration.  Defaults preserve v1 behavior: token rules that
// need external input (the layer manifest) stay off until it is supplied.
struct LintOptions {
  const LayerManifest* layers = nullptr;  // enables include-layering
};

struct Finding {
  std::string path;
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string message;
};

struct RuleInfo {
  std::string_view name;
  std::string_view summary;
};

// Stable, name-sorted registry of every rule the linter can emit.
std::span<const RuleInfo> rule_catalog();
bool is_known_rule(std::string_view name);

// Lint already-scanned source.  Findings are sorted by line, suppressions
// already applied; directive errors surface as `bad-directive` findings and
// are never suppressible.
std::vector<Finding> lint_source(const SourceFile& file,
                                 const LintOptions& opts = {});

// Convenience: scan + lint a text buffer under the given path (the path
// drives per-rule exemptions such as bench/ timers).
std::vector<Finding> lint_text(std::string path, std::string_view text,
                               const LintOptions& opts = {});

// Read a file from disk and lint it; nullopt when the file is unreadable.
// `path_for_rules` defaults to the generic form of `file`.
std::optional<std::vector<Finding>> lint_file(
    const std::filesystem::path& file, std::string path_for_rules = {},
    const LintOptions& opts = {});

// True when `generic_path` matches one of `excludes`.  A pattern containing
// a glob metacharacter (*, ?, [) is matched as a glob — '*' crosses '/' —
// against the whole path and against every path suffix starting at a
// component boundary, so `detlint_fixtures/*` excludes the directory
// wherever the tree is rooted.  Any other pattern is a plain substring
// (v1-compatible).  Every pass that walks files shares this predicate.
bool path_excluded(std::string_view generic_path,
                   std::span<const std::string> excludes);

// Recursively collect lintable sources (.cpp/.cc/.cxx/.hpp/.hh/.h) under the
// given files/directories, skipping anything `path_excluded` rejects.  The
// result is sorted so the linter's own output order is deterministic.
std::vector<std::filesystem::path> collect_sources(
    std::span<const std::string> roots, std::span<const std::string> excludes);

}  // namespace hinet::detlint
