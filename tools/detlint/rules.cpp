#include "detlint/rules.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <regex>
#include <set>
#include <string>

namespace hinet::detlint {

namespace {

bool path_contains(std::string_view path, std::string_view needle) {
  return path.find(needle) != std::string_view::npos;
}

// bench/ owns its wall-clock timers; src/util/rng is the one sanctioned home
// of raw randomness.
bool rule_exempt_by_path(std::string_view rule, std::string_view path) {
  if (rule == kRuleBannedRandom) return path_contains(path, "util/rng");
  if (rule == kRuleBannedTime) {
    return path.starts_with("bench/") || path_contains(path, "/bench/");
  }
  return false;
}

struct LinePattern {
  std::string_view rule;
  std::regex re;
  std::string_view message;
  bool hot_only = false;
};

const std::vector<LinePattern>& line_patterns() {
  static const std::vector<LinePattern> patterns = [] {
    const auto flags = std::regex::ECMAScript | std::regex::optimize;
    std::vector<LinePattern> p;
    // --- banned-random -----------------------------------------------------
    p.push_back({kRuleBannedRandom,
                 std::regex(R"(\b(s?rand|random)\s*\()", flags),
                 "libc RNG is process-global and unseeded by the spec; use "
                 "hinet::Rng (src/util/rng.hpp) seeded from the spec"});
    p.push_back({kRuleBannedRandom,
                 std::regex(R"(\b(std\s*::\s*)?random_device\b)", flags),
                 "std::random_device draws entropy from the host; every "
                 "stream must derive from the spec seed via hinet::Rng"});
    p.push_back(
        {kRuleBannedRandom,
         std::regex(
             R"(\b(std\s*::\s*)?(mt19937(_64)?|minstd_rand0?|default_random_engine|ranlux\w+|knuth_b)\b)",
             flags),
         "<random> engines are implementation-defined across standard "
         "libraries; use hinet::Rng (xoshiro256**, src/util/rng.hpp)"});
    // --- banned-time -------------------------------------------------------
    p.push_back(
        {kRuleBannedTime,
         std::regex(
             R"(\b(steady_clock|system_clock|high_resolution_clock)\b)",
             flags),
         "wall-clock reads make a run depend on host timing; simulation "
         "logic must be a pure function of (spec, seed) — timers belong in "
         "bench/"});
    p.push_back({kRuleBannedTime,
                 std::regex(R"(\b(time|clock)\s*\(|\bclock_gettime\b|\bgettimeofday\b)",
                            flags),
                 "libc time sources are nondeterministic; derive round "
                 "counts from the engine, not the host clock"});
    // --- pointer-order -----------------------------------------------------
    p.push_back({kRulePointerOrder,
                 std::regex(R"(std\s*::\s*less\s*<[^<>]*\*[^<>]*>)", flags),
                 "ordering by pointer value reflects allocator layout, not "
                 "program state; order by NodeId or another stable key"});
    p.push_back(
        {kRulePointerOrder,
         std::regex(R"(\b(std\s*::\s*)?(map|set|multimap|multiset)\s*<[^<>,]*\*)",
                    flags),
         "pointer-keyed ordered containers iterate in allocation order; key "
         "by NodeId or another stable identifier"});
    p.push_back({kRulePointerOrder,
                 std::regex(R"(reinterpret_cast\s*<\s*(std\s*::\s*)?u?intptr_t)",
                            flags),
                 "casting pointers to integers for ordering or hashing leaks "
                 "allocator layout into program state"});
    // --- hot-path-alloc ----------------------------------------------------
    p.push_back({kRuleHotPathAlloc, std::regex(R"(\bnew\b)", flags),
                 "operator new inside a declared hot-path region; hoist the "
                 "allocation out of the per-round loop and reuse capacity",
                 /*hot_only=*/true});
    p.push_back({kRuleHotPathAlloc,
                 std::regex(R"(\b(malloc|calloc|realloc|aligned_alloc|strdup)\s*\()",
                            flags),
                 "C allocation inside a declared hot-path region",
                 /*hot_only=*/true});
    p.push_back({kRuleHotPathAlloc,
                 std::regex(R"(\bmake_(unique|shared)\b)", flags),
                 "smart-pointer allocation inside a declared hot-path region",
                 /*hot_only=*/true});
    p.push_back(
        {kRuleHotPathAlloc,
         std::regex(R"((\.|->)\s*(resize|reserve|shrink_to_fit)\s*\()", flags),
         "container growth inside a declared hot-path region; size buffers "
         "before the loop (clear()/assign() keep capacity)",
         /*hot_only=*/true});
    return p;
  }();
  return patterns;
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool contains_word(std::string_view haystack, std::string_view word) {
  std::size_t pos = 0;
  while ((pos = haystack.find(word, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(haystack[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= haystack.size() || !is_ident_char(haystack[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

// Flattened view of the code channel, with offset -> line translation so
// multi-line constructs (declarations, range-for headers) can be matched.
struct FlatCode {
  std::string text;
  std::vector<std::size_t> line_starts;  // offset of each line in `text`

  explicit FlatCode(const SourceFile& f) {
    for (const SourceLine& line : f.lines) {
      line_starts.push_back(text.size());
      text += line.code;
      text += '\n';
    }
  }

  std::size_t line_of(std::size_t offset) const {
    const auto it = std::upper_bound(line_starts.begin(), line_starts.end(),
                                     offset);
    return static_cast<std::size_t>(it - line_starts.begin());  // 1-based
  }
};

std::size_t skip_ws(std::string_view s, std::size_t i) {
  while (i < s.size() &&
         std::isspace(static_cast<unsigned char>(s[i])) != 0) {
    ++i;
  }
  return i;
}

// Reads the identifier starting at i (after any `&`, `*` qualifiers).
std::string read_declared_name(std::string_view s, std::size_t i) {
  i = skip_ws(s, i);
  while (i < s.size() && (s[i] == '&' || s[i] == '*')) i = skip_ws(s, i + 1);
  std::string name;
  while (i < s.size() && is_ident_char(s[i])) name.push_back(s[i++]);
  if (!name.empty() &&
      std::isdigit(static_cast<unsigned char>(name.front())) != 0) {
    return {};
  }
  return name;
}

// Names of variables (and one level of `using` aliases) declared with an
// unordered container type anywhere in the file.
std::set<std::string> unordered_names(const FlatCode& flat) {
  std::set<std::string> vars;
  std::set<std::string> alias_types;
  static const std::regex decl_re(
      R"(\bunordered_(map|set|multimap|multiset)\b)",
      std::regex::ECMAScript | std::regex::optimize);
  static const std::regex alias_re(
      R"(\busing\s+(\w+)\s*=[^;]*\bunordered_(map|set|multimap|multiset)\b)",
      std::regex::ECMAScript | std::regex::optimize);

  const std::string& s = flat.text;
  for (auto it = std::sregex_iterator(s.begin(), s.end(), alias_re);
       it != std::sregex_iterator(); ++it) {
    alias_types.insert((*it)[1].str());
  }
  for (auto it = std::sregex_iterator(s.begin(), s.end(), decl_re);
       it != std::sregex_iterator(); ++it) {
    std::size_t i = static_cast<std::size_t>(it->position() + it->length());
    i = skip_ws(s, i);
    if (i >= s.size() || s[i] != '<') continue;
    // Balanced-angle scan across the template argument list.
    int depth = 0;
    while (i < s.size()) {
      if (s[i] == '<') ++depth;
      if (s[i] == '>' && --depth == 0) break;
      ++i;
    }
    if (i >= s.size()) continue;
    const std::string name = read_declared_name(s, i + 1);
    if (!name.empty()) vars.insert(name);
  }
  for (const std::string& alias : alias_types) {
    std::size_t pos = 0;
    while ((pos = s.find(alias, pos)) != std::string::npos) {
      const bool left_ok = pos == 0 || !is_ident_char(s[pos - 1]);
      const std::size_t end = pos + alias.size();
      if (left_ok && end < s.size() && !is_ident_char(s[end])) {
        const std::string name = read_declared_name(s, end);
        if (!name.empty() && name != "=") vars.insert(name);
      }
      pos = end;
    }
  }
  return vars;
}

void check_unordered_iteration(const SourceFile& file, const FlatCode& flat,
                               std::vector<Finding>& out) {
  const std::set<std::string> vars = unordered_names(flat);
  const std::string& s = flat.text;

  auto report = [&](std::size_t offset, const std::string& what) {
    out.push_back(Finding{
        file.path, flat.line_of(offset), std::string(kRuleUnorderedIteration),
        "iteration over unordered container '" + what +
            "' is hash-order (implementation-defined); use a sorted "
            "container or sort before consuming"});
  };

  // Range-for whose range expression names an unordered variable or an
  // unordered temporary.
  std::size_t pos = 0;
  while ((pos = s.find("for", pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(s[pos - 1]);
    std::size_t i = pos + 3;
    if (!left_ok || (i < s.size() && is_ident_char(s[i]))) {
      pos = i;
      continue;
    }
    i = skip_ws(s, i);
    if (i >= s.size() || s[i] != '(') {
      pos = i;
      continue;
    }
    const std::size_t open = i;
    int depth = 0;
    while (i < s.size()) {
      if (s[i] == '(') ++depth;
      if (s[i] == ')' && --depth == 0) break;
      ++i;
    }
    if (i >= s.size()) break;
    const std::string_view header{s.data() + open + 1, i - open - 1};
    // The range-for colon: a ':' that is not part of '::'.
    std::size_t colon = std::string_view::npos;
    for (std::size_t j = 0; j < header.size(); ++j) {
      if (header[j] != ':') continue;
      if (j + 1 < header.size() && header[j + 1] == ':') {
        ++j;
        continue;
      }
      if (j > 0 && header[j - 1] == ':') continue;
      colon = j;
      break;
    }
    if (colon != std::string_view::npos) {
      const std::string_view range = header.substr(colon + 1);
      if (range.find("unordered_") != std::string_view::npos) {
        report(pos, "<unordered temporary>");
      } else {
        for (const std::string& v : vars) {
          if (contains_word(range, v)) {
            report(pos, v);
            break;
          }
        }
      }
    }
    pos = i;
  }

  // Explicit iterator walks: name.begin() / name->cbegin() and friends.
  for (const std::string& v : vars) {
    std::size_t p = 0;
    while ((p = s.find(v, p)) != std::string::npos) {
      const bool left_ok = p == 0 || !is_ident_char(s[p - 1]);
      std::size_t j = p + v.size();
      if (!left_ok || (j < s.size() && is_ident_char(s[j]))) {
        p = j;
        continue;
      }
      j = skip_ws(s, j);
      if (j < s.size() && (s[j] == '.' || s.compare(j, 2, "->") == 0)) {
        j = skip_ws(s, j + (s[j] == '.' ? 1 : 2));
        static constexpr std::array<std::string_view, 4> kIters = {
            "begin", "cbegin", "rbegin", "crbegin"};
        for (const std::string_view iter : kIters) {
          if (s.compare(j, iter.size(), iter) == 0 &&
              skip_ws(s, j + iter.size()) < s.size() &&
              s[skip_ws(s, j + iter.size())] == '(') {
            report(p, v);
            break;
          }
        }
      }
      p = j;
    }
  }
}

}  // namespace

std::span<const RuleInfo> rule_catalog() {
  static const std::array<RuleInfo, 10> catalog = {{
      {kRuleBadDirective,
       "malformed or unauditable detlint directive or suppression"},
      {kRuleBannedRandom,
       "RNG sources outside src/util/rng; streams must derive from the spec "
       "seed"},
      {kRuleBannedTime,
       "wall-clock reads outside bench/; runs must be pure in (spec, seed)"},
      {kRuleDurabilityOrdering,
       "crash-unsafe publish: rename without file fsync or parent-dir fsync, "
       "or append path without fdatasync"},
      {kRuleHotPathAlloc,
       "heap allocation inside a declared // hot-path region"},
      {kRuleIncludeLayering,
       "project include that violates the declared layer DAG "
       "(tools/detlint/layers.txt)"},
      {kRulePointerOrder,
       "ordering keyed on pointer values (allocation order, not program "
       "state)"},
      {kRuleSerializationSymmetry,
       "save/load pair whose write and read type-tag sequences disagree, or "
       "a bare-literal format version tag"},
      {kRuleStaleBaseline,
       "baseline entry no longer matched by any finding; shrink the baseline"},
      {kRuleUnorderedIteration,
       "iteration over unordered containers (hash order is "
       "implementation-defined)"},
  }};
  return catalog;
}

bool is_known_rule(std::string_view name) {
  for (const RuleInfo& r : rule_catalog()) {
    if (r.name == name) return true;
  }
  return false;
}

void run_rules(const SourceFile& file, const std::vector<char>& hot,
               std::vector<Finding>& out) {
  for (const LinePattern& pat : line_patterns()) {
    if (rule_exempt_by_path(pat.rule, file.path)) continue;
    for (std::size_t i = 0; i < file.lines.size(); ++i) {
      if (pat.hot_only && (i >= hot.size() || hot[i] == 0)) continue;
      const std::string& code = file.lines[i].code;
      if (code.empty()) continue;
      if (std::regex_search(code, pat.re)) {
        out.push_back(Finding{file.path, i + 1, std::string(pat.rule),
                              std::string(pat.message)});
      }
    }
  }
  const FlatCode flat(file);
  check_unordered_iteration(file, flat, out);
}

}  // namespace hinet::detlint
