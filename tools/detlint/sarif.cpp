#include "detlint/sarif.hpp"

#include <cstdio>

namespace hinet::detlint {

namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_quote(std::string_view s) { return "\"" + json_escape(s) + "\""; }

}  // namespace

std::string to_sarif(const std::vector<Finding>& findings) {
  std::string out;
  out +=
      "{\n"
      "  \"$schema\": "
      "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"detlint\",\n"
      "          \"informationUri\": \"docs/static_analysis.md\",\n"
      "          \"rules\": [\n";
  const auto catalog = rule_catalog();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    out += "            {\"id\": " + json_quote(catalog[i].name) +
           ", \"shortDescription\": {\"text\": " +
           json_quote(catalog[i].summary) + "}}";
    out += i + 1 < catalog.size() ? ",\n" : "\n";
  }
  out +=
      "          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += "        {\"ruleId\": " + json_quote(f.rule) +
           ", \"level\": \"error\", \"message\": {\"text\": " +
           json_quote(f.message) +
           "}, \"locations\": [{\"physicalLocation\": {\"artifactLocation\": "
           "{\"uri\": " +
           json_quote(f.path) + "}";
    if (f.line > 0) {
      out += ", \"region\": {\"startLine\": " + std::to_string(f.line) + "}";
    }
    out += "}}]}";
    out += i + 1 < findings.size() ? ",\n" : "\n";
  }
  out +=
      "      ]\n"
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

}  // namespace hinet::detlint
