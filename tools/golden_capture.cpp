// One-shot capture of golden SimMetrics from the engine, printed as the
// C++ table used by tests/sim/test_engine_golden.cpp.  Run whenever the
// golden scenarios change; the recorded values pin the delivery semantics.
#include <cstdint>
#include <cstdio>

#include "analysis/scenarios.hpp"
#include "sim/engine.hpp"

namespace hinet {
namespace {

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xffULL;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t hash_series(const SimMetrics& m) {
  std::uint64_t h = 14695981039346656037ULL;
  h = fnv1a(h, m.tokens_sent_per_round.size());
  for (std::size_t x : m.tokens_sent_per_round) h = fnv1a(h, x);
  h = fnv1a(h, m.complete_nodes_per_round.size());
  for (std::size_t x : m.complete_nodes_per_round) h = fnv1a(h, x);
  h = fnv1a(h, m.per_node_tx_tokens.size());
  for (std::size_t x : m.per_node_tx_tokens) h = fnv1a(h, x);
  h = fnv1a(h, m.per_node_rx_tokens.size());
  for (std::size_t x : m.per_node_rx_tokens) h = fnv1a(h, x);
  return h;
}

ScenarioConfig golden_config() {
  ScenarioConfig cfg;
  cfg.nodes = 60;
  cfg.heads = 12;
  cfg.k = 8;
  cfg.alpha = 2;
  cfg.hop_l = 2;
  return cfg;
}

void run_one(Scenario s, int channel_kind, std::uint64_t seed) {
  ScenarioRun run = make_scenario(s, golden_config(), seed);
  switch (channel_kind) {
    case 0:
      break;  // perfect (null channel)
    case 1:
      run.spec.channel =
          std::make_unique<LossyChannel>(0.2, seed ^ 0x5eedULL);
      break;
    case 2:
      run.spec.channel = std::make_unique<CollisionChannel>(3);
      break;
  }
  const SimMetrics m = run_simulation(std::move(run.spec));
  std::printf(
      "    {Scenario::%s, %d, %lluull, %zuu, %zuu, %zuu, %zuu, %s,\n"
      "     0x%016llxull},\n",
      s == Scenario::kKloInterval          ? "kKloInterval"
      : s == Scenario::kHiNetInterval      ? "kHiNetInterval"
      : s == Scenario::kHiNetIntervalStable? "kHiNetIntervalStable"
      : s == Scenario::kKloOne             ? "kKloOne"
                                           : "kHiNetOne",
      channel_kind, static_cast<unsigned long long>(seed), m.rounds_executed,
      m.packets_sent, m.tokens_sent,
      m.rounds_to_completion == kNever ? static_cast<std::size_t>(0) - 1
                                       : m.rounds_to_completion,
      m.all_delivered ? "true" : "false",
      static_cast<unsigned long long>(hash_series(m)));
}

}  // namespace
}  // namespace hinet

int main() {
  using hinet::Scenario;
  const Scenario all[] = {Scenario::kKloInterval, Scenario::kHiNetInterval,
                          Scenario::kHiNetIntervalStable, Scenario::kKloOne,
                          Scenario::kHiNetOne};
  for (Scenario s : all) {
    for (int ch = 0; ch < 3; ++ch) {
      for (std::uint64_t seed : {1ULL, 7ULL}) hinet::run_one(s, ch, seed);
    }
  }
  return 0;
}
