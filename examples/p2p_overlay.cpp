// Peer-to-peer overlay scenario — the second network class the paper's
// introduction motivates ("wireless ad hoc network or a peer-2-peer
// overlay network").  Overlay links appear and disappear as peers open
// and close connections, modelled by an edge-Markovian dynamic graph; a
// super-peer hierarchy is maintained on top, and content announcements
// (tokens) are disseminated with Algorithm 2, gossip, and RLNC.
//
//   ./examples/p2p_overlay [--peers=N] [--announcements=K] [--seed=S]
#include <iostream>

#include "analysis/assignment.hpp"
#include "analysis/model_estimation.hpp"
#include "baseline/gossip.hpp"
#include "baseline/klo.hpp"
#include "baseline/network_coding.hpp"
#include "cluster/maintenance.hpp"
#include "cluster/metrics.hpp"
#include "core/alg2.hpp"
#include "graph/markovian.hpp"
#include "sim/engine.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace hinet;

int main(int argc, char** argv) try {
  CliArgs args(argc, argv);
  const auto peers =
      static_cast<std::size_t>(args.get_int("peers", 40, "overlay size"));
  const auto k = static_cast<std::size_t>(
      args.get_int("announcements", 6, "content announcements (tokens)"));
  const double session_open =
      args.get_double("open", 0.06, "P(connection opens) per round");
  const double session_close =
      args.get_double("close", 0.04, "P(connection closes) per round");
  const auto seed =
      static_cast<std::uint64_t>(args.get_int("seed", 21, "seed"));
  if (args.help_requested()) {
    std::cout << args.usage("p2p_overlay: dissemination on a churning overlay");
    return 0;
  }

  const std::size_t rounds = 2 * peers;
  std::cout << "p2p overlay example\n===================\n\n"
            << peers << " peers, connection open/close probabilities "
            << session_open << "/" << session_close << " per round, " << k
            << " announcements, " << rounds << " rounds.\n\n";

  MarkovianConfig mc;
  mc.nodes = peers;
  mc.birth = session_open;
  mc.death = session_close;
  mc.initial = edge_markovian_stationary_density(session_open, session_close);
  mc.rounds = rounds;
  mc.seed = seed;
  GraphSequence overlay = make_edge_markovian_trace(mc);

  // Super-peer hierarchy: highest-degree peers become heads (the classic
  // super-peer criterion), maintained with least-cluster-change.
  MaintainedHierarchy mh =
      maintain_over(overlay, rounds, highest_degree_clustering);
  const HierarchyMetrics hm = measure_hierarchy(mh.hierarchy, rounds);
  std::cout << "Super-peer hierarchy (highest-degree + LCC maintenance):\n"
            << "  mean super-peers: " << hm.mean_heads
            << "  max: " << hm.max_heads
            << "  mean leaf peers: " << hm.mean_members
            << "  re-affiliations: " << mh.stats.reaffiliations << "\n";

  // Which (T, L) does this overlay actually provide?
  {
    std::vector<Graph> graphs;
    for (Round r = 0; r < rounds; ++r) graphs.push_back(overlay.graph_at(r));
    HierarchySequence hier_copy = [&] {
      std::vector<HierarchyView> views;
      for (Round r = 0; r < rounds; ++r) {
        views.push_back(mh.hierarchy.hierarchy_at(r));
      }
      return HierarchySequence(std::move(views));
    }();
    Ctvg trace(GraphSequence(std::move(graphs)), std::move(hier_copy));
    const StabilityEstimate est = estimate_stability(trace, rounds, 12);
    std::cout << "  empirical stability: head-set T=" << est.max_t_stable_head_set
              << ", hierarchy T=" << est.max_t_stable_hierarchy
              << ", head-connectivity T=" << est.max_t_head_connectivity
              << ", worst L=" << est.worst_l << "\n\n";
  }

  Rng arng(seed ^ 0xbeefULL);
  const auto init =
      assign_tokens(peers, k, AssignmentMode::kDistinctRandom, arng);

  TextTable t({"protocol", "delivered", "rounds", "packets", "tokens sent"});
  auto add = [&](const char* name, const SimMetrics& m) {
    t.add(name, m.all_delivered ? "yes" : "no",
          m.all_delivered ? std::to_string(m.rounds_to_completion) : "-",
          m.packets_sent, m.tokens_sent);
  };
  {
    GraphSequence topo = overlay;
    Alg2Params p;
    p.k = k;
    p.rounds = rounds;
    Engine e(topo, &mh.hierarchy, make_alg2_processes(init, p));
    add("Algorithm 2 (super-peers)",
        e.run({.max_rounds = rounds, .stop_when_complete = false}));
  }
  {
    GraphSequence topo = overlay;
    KloFloodParams p;
    p.k = k;
    p.rounds = rounds;
    Engine e(topo, nullptr, make_klo_flood_processes(init, p));
    add("KLO token forwarding [7]",
        e.run({.max_rounds = rounds, .stop_when_complete = false}));
  }
  {
    GraphSequence topo = overlay;
    GossipParams p;
    p.k = k;
    p.rounds = rounds;
    p.seed = seed;
    p.push_full_set = true;
    Engine e(topo, nullptr, make_gossip_processes(init, p));
    add("push gossip (full set)",
        e.run({.max_rounds = rounds, .stop_when_complete = false}));
  }
  {
    GraphSequence topo = overlay;
    NetworkCodingParams p;
    p.k = k;
    p.rounds = rounds;
    p.seed = seed;
    Engine e(topo, nullptr, make_network_coding_processes(init, p));
    add("RLNC (Haeupler-Karger [8])",
        e.run({.max_rounds = rounds, .stop_when_complete = false}));
  }
  std::cout << t;
  std::cout << "\nSuper-peer dissemination silences leaf peers, which is "
               "where the savings come\nfrom — the same structural argument "
               "the paper makes for MANETs.\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
