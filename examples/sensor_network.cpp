// Wireless sensor network scenario: stationary sensors with an
// infrastructure backbone — the ∞-interval stable head set case of
// Remark 1.  Sensor readings (tokens) must reach every node; we compare
// plain Algorithm 1 against the Remark 1 optimisation under member churn
// (sensors re-associating between backbone heads as link quality shifts).
//
//   ./examples/sensor_network [--sensors=N] [--heads=H] [--readings=K]
#include <iostream>

#include "analysis/assignment.hpp"
#include "analysis/scenarios.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace hinet;

int main(int argc, char** argv) try {
  CliArgs args(argc, argv);
  ScenarioConfig cfg;
  cfg.nodes = static_cast<std::size_t>(
      args.get_int("sensors", 80, "total sensor nodes"));
  cfg.heads = static_cast<std::size_t>(
      args.get_int("heads", 10, "backbone (mains-powered) heads"));
  cfg.k = static_cast<std::size_t>(
      args.get_int("readings", 8, "sensor readings to disseminate"));
  cfg.alpha = static_cast<std::size_t>(args.get_int("alpha", 2, "alpha"));
  cfg.hop_l = static_cast<int>(args.get_int("l", 2, "backbone hop length L"));
  cfg.reaffiliation_prob =
      args.get_double("churn", 0.3, "sensor re-association probability");
  const auto seed =
      static_cast<std::uint64_t>(args.get_int("seed", 5, "seed"));
  const auto reps =
      static_cast<std::size_t>(args.get_int("reps", 5, "repetitions"));
  const std::size_t jobs = args.get_jobs();
  if (args.help_requested()) {
    std::cout << args.usage(
        "sensor_network: Remark 1 (stable backbone) vs plain Algorithm 1");
    return 0;
  }

  std::cout << "sensor network example (stable backbone, Remark 1)\n"
            << "==================================================\n\n"
            << cfg.nodes << " sensors, " << cfg.heads
            << " mains-powered cluster heads, " << cfg.k
            << " readings, re-association probability "
            << cfg.reaffiliation_prob << " per phase.\n\n";

  // Both variants run on ∞-stable-head traces (the Remark 1 premise);
  // only the member upload policy differs.
  auto stable_cfg = cfg;
  TextTable t({"variant", "delivery%", "rounds (mean)", "tokens sent (mean)"});
  double plain_tokens = 0.0, stable_tokens = 0.0;
  {
    // Plain Algorithm 1 but on stable-heads traces: reuse the stable
    // scenario's generator by running the stable scenario with the
    // optimisation disabled — i.e. the kHiNetInterval scenario with
    // head_churn left at zero (the generator default), which already
    // yields a constant head set.
    const AggregateResult agg = run_experiment(
        scenario_factory(Scenario::kHiNetInterval, stable_cfg),
        ExperimentOptions{reps, seed, ExecutionPolicy::threaded(jobs)});
    plain_tokens = agg.tokens_sent.mean;
    t.add("Algorithm 1 (members re-upload on churn)",
          agg.delivery_rate * 100.0, agg.rounds_to_completion.mean,
          agg.tokens_sent.mean);
  }
  {
    const AggregateResult agg = run_experiment(
        scenario_factory(Scenario::kHiNetIntervalStable, stable_cfg),
        ExperimentOptions{reps, seed, ExecutionPolicy::threaded(jobs)});
    stable_tokens = agg.tokens_sent.mean;
    t.add("Remark 1 (upload once, never re-send)", agg.delivery_rate * 100.0,
          agg.rounds_to_completion.mean, agg.tokens_sent.mean);
  }
  std::cout << t;
  if (plain_tokens > 0.0) {
    std::cout << "\nRemark 1 member-upload saving: "
              << (1.0 - stable_tokens / plain_tokens) * 100.0 << "%\n";
  }
  std::cout << "\nInterpretation: with an infrastructure backbone the heads "
               "never change, so\nre-associating sensors need not re-upload "
               "readings the backbone already has\n(Remark 1) — the saving "
               "grows with churn.\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
