// Mobile ad-hoc network scenario: the workload the paper's introduction
// motivates.  Nodes move through the unit square (random waypoint), the
// communication graph is the induced geometric graph, a real clustering
// algorithm maintains the hierarchy round to round (measuring n_r and θ
// instead of assuming them), and Algorithm 2 is compared against KLO
// full-broadcast token forwarding on the *same* mobility trace.
//
// Unlike the generated (T,L)-HiNet traces, nothing here guarantees the
// model's stability properties — this example shows how the algorithms
// behave on "organic" dynamics, and reports delivery honestly.
//
//   ./examples/mobile_adhoc [--nodes=N] [--radius=R] [--k=K] [--seed=S]
#include <iostream>

#include "analysis/assignment.hpp"
#include "baseline/klo.hpp"
#include "cluster/maintenance.hpp"
#include "cluster/metrics.hpp"
#include "core/alg2.hpp"
#include "graph/interval.hpp"
#include "graph/mobility.hpp"
#include "sim/engine.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace hinet;

int main(int argc, char** argv) try {
  CliArgs args(argc, argv);
  MobilityConfig mob;
  mob.nodes =
      static_cast<std::size_t>(args.get_int("nodes", 50, "network size"));
  mob.radius = args.get_double("radius", 0.35, "communication radius");
  mob.min_speed = args.get_double("min-speed", 0.01, "min speed per round");
  mob.max_speed = args.get_double("max-speed", 0.04, "max speed per round");
  mob.seed = static_cast<std::uint64_t>(args.get_int("seed", 3, "seed"));
  const std::string model = args.get_string(
      "model", "waypoint", "mobility model: waypoint|walk|manhattan");
  if (model == "walk") {
    mob.model = MobilityModel::kRandomWalk;
  } else if (model == "manhattan") {
    mob.model = MobilityModel::kManhattan;
    mob.streets = static_cast<std::size_t>(
        args.get_int("streets", 5, "Manhattan streets per axis"));
  } else if (model != "waypoint") {
    std::cerr << "error: unknown mobility model '" << model << "'\n";
    return 2;
  }
  const auto k =
      static_cast<std::size_t>(args.get_int("k", 5, "tokens to disseminate"));
  if (args.help_requested()) {
    std::cout << args.usage("mobile_adhoc: dissemination under mobility");
    return 0;
  }
  mob.rounds = mob.nodes;  // Theorem 2 horizon: n-1 rounds (+1 slack)

  std::cout << "mobile ad-hoc network example\n"
            << "=============================\n\n";
  std::cout << "Simulating " << mob.nodes << " nodes, radius " << mob.radius
            << ", " << model << " mobility, " << mob.rounds << " rounds.\n";

  MobilityTrace trace(mob);
  const std::size_t usable = mob.rounds;
  const bool connected = is_one_interval_connected(trace.network(), usable);
  std::cout << "Trace is 1-interval connected: " << (connected ? "yes" : "no")
            << " (Theorem 2 assumes yes; delivery is best-effort otherwise)\n";

  // Maintain a real hierarchy over the mobility trace.
  MaintainedHierarchy mh = maintain_over(trace.network(), usable);
  const HierarchyMetrics hm = measure_hierarchy(mh.hierarchy, usable);
  std::cout << "\nMaintained hierarchy (lowest-ID + least-cluster-change):\n"
            << "  mean heads / round: " << hm.mean_heads
            << "   max heads (theta): " << hm.max_heads << "\n"
            << "  mean members / round: " << hm.mean_members << "\n"
            << "  re-affiliations: " << mh.stats.reaffiliations
            << " (mean per node " << mh.stats.mean_reaffiliations() << ")\n"
            << "  head promotions/abdications: " << mh.stats.head_promotions
            << "/" << mh.stats.head_abdications << "\n\n";

  Rng assign_rng(mob.seed ^ 0x5555ULL);
  const auto init =
      assign_tokens(mob.nodes, k, AssignmentMode::kDistinctRandom, assign_rng);

  // Algorithm 2 on the maintained hierarchy.
  Alg2Params a2;
  a2.k = k;
  a2.rounds = usable;
  Engine hinet_engine(trace.network(), &mh.hierarchy,
                      make_alg2_processes(init, a2));
  const SimMetrics hinet_m = hinet_engine.run(
      {.max_rounds = usable, .stop_when_complete = false});

  // KLO token forwarding on the very same trace, hierarchy ignored.
  KloFloodParams kf;
  kf.k = k;
  kf.rounds = usable;
  Engine klo_engine(trace.network(), nullptr,
                    make_klo_flood_processes(init, kf));
  const SimMetrics klo_m =
      klo_engine.run({.max_rounds = usable, .stop_when_complete = false});

  TextTable t({"algorithm", "delivered", "rounds", "packets", "tokens sent"});
  auto row = [&](const char* name, const SimMetrics& m) {
    t.add(name, m.all_delivered ? "yes" : "no",
          m.all_delivered ? std::to_string(m.rounds_to_completion) : "-",
          m.packets_sent, m.tokens_sent);
  };
  row("Algorithm 2 ((1,L)-HiNet)", hinet_m);
  row("KLO token forwarding [7]", klo_m);
  std::cout << t;

  if (hinet_m.all_delivered && klo_m.all_delivered) {
    const double saving = 1.0 - static_cast<double>(hinet_m.tokens_sent) /
                                    static_cast<double>(klo_m.tokens_sent);
    std::cout << "\nCommunication saving vs KLO: " << saving * 100.0
              << "%  (paper claims up to ~50% on its example)\n";
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
