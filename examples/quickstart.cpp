// Quickstart: generate a (T, L)-HiNet trace, run Algorithm 1 on it with
// the Theorem 1 schedule, verify the model properties, and print the
// costs next to the analytic Table 2 prediction.
//
//   ./examples/quickstart [--nodes=N] [--heads=H] [--k=K] [--seed=S]
#include <iostream>

#include "analysis/scenarios.hpp"
#include "core/hinet_generator.hpp"
#include "core/hinet_properties.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace hinet;

int main(int argc, char** argv) try {
  CliArgs args(argc, argv);
  ScenarioConfig cfg;
  cfg.nodes =
      static_cast<std::size_t>(args.get_int("nodes", 60, "network size n0"));
  cfg.heads = static_cast<std::size_t>(
      args.get_int("heads", 8, "cluster-head budget (theta)"));
  cfg.k = static_cast<std::size_t>(args.get_int("k", 6, "tokens to spread"));
  cfg.alpha =
      static_cast<std::size_t>(args.get_int("alpha", 2, "coefficient alpha"));
  cfg.hop_l = static_cast<int>(
      args.get_int("l", 2, "L-hop cluster-head connectivity"));
  const auto seed =
      static_cast<std::uint64_t>(args.get_int("seed", 7, "trace seed"));
  if (args.help_requested()) {
    std::cout << args.usage("quickstart: Algorithm 1 on a (T,L)-HiNet trace");
    return 0;
  }

  std::cout << "hinet quickstart\n================\n\n";
  std::cout << "1. Generating a (k+aL, L)-HiNet trace: n0=" << cfg.nodes
            << ", heads=" << cfg.heads << ", k=" << cfg.k
            << ", alpha=" << cfg.alpha << ", L=" << cfg.hop_l << "\n";

  // Generate the trace ourselves so it can be inspected and
  // property-checked before being handed over to the simulation.
  HiNetTrace trace =
      make_hinet_trace(scenario_generator(Scenario::kHiNetInterval, cfg, seed));
  std::cout << "   trace dynamics: theta=" << trace.stats.theta
            << "  n_m=" << trace.stats.mean_members
            << "  n_r=" << trace.stats.mean_reaffiliations << "\n\n";

  std::cout << "2. Checking the trace against Definition 8 ((T,L)-HiNet)\n";
  {
    ScenarioSchedule sched;
    (void)scenario_generator(Scenario::kHiNetInterval, cfg, seed, &sched);
    const PropertyResult ok =
        check_hinet(trace.ctvg, trace.ctvg.round_count(), sched.phase_length,
                    cfg.hop_l);
    std::cout << "   " << (ok ? "model properties hold" : ok.violation)
              << "\n\n";
  }

  std::cout << "3. Running Algorithm 1 (k-token dissemination)\n";
  ScenarioRun run = make_scenario_from_trace(Scenario::kHiNetInterval, cfg,
                                             std::move(trace), seed);
  std::cout << "   scheduled: " << run.scheduled_rounds << " rounds ("
            << alg1_phase_count(run.analytic) << " phases of "
            << alg1_min_phase_length(run.analytic) << " rounds)\n";
  const SimMetrics m = run_simulation(std::move(run.spec));
  std::cout << "   " << m.to_string() << "\n\n";

  std::cout << "4. Comparing with the analytic cost model (Table 2 row)\n";
  TextTable tbl({"quantity", "measured", "analytic bound"});
  tbl.add("time (rounds)",
          m.all_delivered ? std::to_string(m.rounds_to_completion) : "never",
          std::to_string(time_hinet_interval(run.analytic)));
  CostParams bound = run.analytic;
  bound.n_r += 1;  // initial member uploads (see EXPERIMENTS.md)
  tbl.add("communication (tokens)", std::to_string(m.tokens_sent),
          std::to_string(comm_hinet_interval(bound)));
  std::cout << tbl;

  std::cout << "\nDone: all " << cfg.k << " tokens reached all " << cfg.nodes
            << " nodes — " << (m.all_delivered ? "success" : "FAILURE")
            << ".\n";
  return m.all_delivered ? 0 : 1;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
