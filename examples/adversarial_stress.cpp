// Adversarial stress: runs the flat baselines on worst-case T-interval
// connected traces (path backbones relabelled every window, plus churn)
// and on edge-Markovian dynamics, verifying the model checkers agree with
// the generators and showing how flooding/gossip degrade where the
// deterministic algorithms keep their guarantees.
//
//   ./examples/adversarial_stress [--nodes=N] [--k=K] [--seed=S]
#include <iostream>

#include "analysis/assignment.hpp"
#include "baseline/flooding.hpp"
#include "baseline/gossip.hpp"
#include "baseline/klo.hpp"
#include "graph/adversary.hpp"
#include "graph/interval.hpp"
#include "graph/markovian.hpp"
#include "sim/engine.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace hinet;

namespace {

SimMetrics run_on(GraphSequence& net, std::vector<ProcessPtr> procs,
                  std::size_t rounds) {
  Engine engine(net, nullptr, std::move(procs));
  return engine.run({.max_rounds = rounds, .stop_when_complete = false});
}

}  // namespace

int main(int argc, char** argv) try {
  CliArgs args(argc, argv);
  const auto n =
      static_cast<std::size_t>(args.get_int("nodes", 32, "network size"));
  const auto k =
      static_cast<std::size_t>(args.get_int("k", 4, "token count"));
  const auto seed =
      static_cast<std::uint64_t>(args.get_int("seed", 9, "seed"));
  if (args.help_requested()) {
    std::cout << args.usage("adversarial_stress: baselines on hostile traces");
    return 0;
  }

  std::cout << "adversarial dynamics stress test\n"
            << "================================\n\n";

  // --- Worst-case T-interval connected trace (relabelled paths). ---------
  const std::size_t t_interval = 6;
  const std::size_t rounds = 4 * (n - 1);
  AdversaryConfig adv;
  adv.nodes = n;
  adv.interval = t_interval;
  adv.rounds = rounds;
  adv.churn_edges = 4;
  adv.seed = seed;
  GraphSequence worst = make_t_interval_path_trace(adv);
  std::cout << "Worst-case trace: " << n << " nodes, stable path backbone "
            << "relabelled every " << t_interval << " rounds, 4 churn "
            << "edges/round.\n";
  std::cout << "  checker: T-interval connected for T=" << t_interval << ": "
            << (is_t_interval_connected(worst, rounds, t_interval) ? "yes"
                                                                   : "NO")
            << ", measured max T: "
            << max_interval_connectivity(worst, rounds) << "\n\n";

  Rng rng(seed);
  const auto init = assign_tokens(n, k, AssignmentMode::kDistinctRandom, rng);

  TextTable t({"algorithm", "delivered", "rounds", "tokens sent"});
  auto add_row = [&](const char* name, const SimMetrics& m) {
    t.add(name, m.all_delivered ? "yes" : "no",
          m.all_delivered ? std::to_string(m.rounds_to_completion) : "-",
          m.tokens_sent);
  };

  {
    GraphSequence net = worst;
    KloFloodParams p;
    p.k = k;
    p.rounds = rounds;
    add_row("KLO token forwarding",
            run_on(net, make_klo_flood_processes(init, p), rounds));
  }
  {
    GraphSequence net = worst;
    KloPipelineParams p;
    p.k = k;
    p.phase_length = t_interval;
    p.phases = (rounds + t_interval - 1) / t_interval;
    add_row("KLO pipeline (T-interval)",
            run_on(net, make_klo_pipeline_processes(init, p), rounds));
  }
  {
    GraphSequence net = worst;
    FloodingParams p;
    p.k = k;
    p.rounds = rounds;
    add_row("classic flooding",
            run_on(net, make_flooding_processes(init, p), rounds));
  }
  {
    GraphSequence net = worst;
    FloodingParams p;
    p.k = k;
    p.rounds = rounds;
    p.activity = 2;
    add_row("2-active (parsimonious) flooding",
            run_on(net, make_flooding_processes(init, p), rounds));
  }
  {
    GraphSequence net = worst;
    GossipParams p;
    p.k = k;
    p.rounds = rounds;
    p.seed = seed;
    add_row("push gossip (1 token/round)",
            run_on(net, make_gossip_processes(init, p), rounds));
  }
  std::cout << t;

  // --- Edge-Markovian dynamics (future-work model of Section VI). --------
  std::cout << "\nEdge-Markovian trace (birth=0.05, death=0.3, the Section "
               "VI future-work model):\n";
  MarkovianConfig mc;
  mc.nodes = n;
  mc.birth = 0.05;
  mc.death = 0.3;
  mc.initial = 0.2;
  mc.rounds = rounds;
  mc.seed = seed;
  GraphSequence emdg = make_edge_markovian_trace(mc);
  std::cout << "  stationary density "
            << edge_markovian_stationary_density(mc.birth, mc.death)
            << ", 1-interval connected: "
            << (is_one_interval_connected(emdg, rounds) ? "yes" : "no")
            << "\n\n";

  TextTable t2({"algorithm", "delivered", "rounds", "tokens sent"});
  {
    GraphSequence net = emdg;
    KloFloodParams p;
    p.k = k;
    p.rounds = rounds;
    Engine engine(net, nullptr, make_klo_flood_processes(init, p));
    const SimMetrics m =
        engine.run({.max_rounds = rounds, .stop_when_complete = false});
    t2.add("KLO token forwarding", m.all_delivered ? "yes" : "no",
           m.all_delivered ? std::to_string(m.rounds_to_completion) : "-",
           m.tokens_sent);
  }
  {
    GraphSequence net = emdg;
    GossipParams p;
    p.k = k;
    p.rounds = rounds;
    p.seed = seed;
    p.push_full_set = true;
    Engine engine(net, nullptr, make_gossip_processes(init, p));
    const SimMetrics m =
        engine.run({.max_rounds = rounds, .stop_when_complete = false});
    t2.add("push gossip (full set)", m.all_delivered ? "yes" : "no",
           m.all_delivered ? std::to_string(m.rounds_to_completion) : "-",
           m.tokens_sent);
  }
  std::cout << t2;
  std::cout << "\nNote: on EMDG traces connectivity is probabilistic — "
               "deterministic n-1 round\nguarantees do not apply, which is "
               "exactly why the paper's model assumptions matter.\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
