// trace_tool: generate / validate / estimate / export CTVG traces from the
// command line — the operational companion to the library.
//
//   ./examples/trace_tool --mode=generate --out=trace.txt [gen options]
//   ./examples/trace_tool --mode=validate --in=trace.txt [--t=T --l=L]
//   ./examples/trace_tool --mode=estimate --in=trace.txt
//   ./examples/trace_tool --mode=dot --in=trace.txt [--round=R]
//
// generate  builds a (T, L)-HiNet trace and writes the portable text
//           format of core/trace_io.hpp;
// validate  structural validation + Definition 8 check at given (T, L);
// estimate  empirical stability estimation (largest T, worst L);
// dot       Graphviz export of one round (pipe into `dot -Tsvg`).
#include <iostream>

#include "analysis/model_estimation.hpp"
#include "cluster/dot.hpp"
#include "cluster/maintenance.hpp"
#include "core/hinet_generator.hpp"
#include "core/trace_io.hpp"
#include "graph/markovian.hpp"
#include "graph/mobility.hpp"
#include "util/cli.hpp"

using namespace hinet;

namespace {

/// Builds an organic CTVG: a flat dynamics source plus a maintained
/// lowest-ID hierarchy — the input the `estimate` mode is made for.
Ctvg organic_trace(const std::string& kind, std::size_t nodes,
                   std::size_t rounds, std::uint64_t seed) {
  GraphSequence topo = [&]() -> GraphSequence {
    if (kind == "emdg") {
      MarkovianConfig mc;
      mc.nodes = nodes;
      mc.birth = 0.08;
      mc.death = 0.06;
      mc.initial = edge_markovian_stationary_density(mc.birth, mc.death);
      mc.rounds = rounds;
      mc.seed = seed;
      return make_edge_markovian_trace(mc);
    }
    MobilityConfig mob;
    mob.nodes = nodes;
    mob.rounds = rounds;
    mob.radius = 0.3;
    mob.seed = seed;
    if (kind == "manhattan") mob.model = MobilityModel::kManhattan;
    MobilityTrace trace(mob);
    return trace.network();
  }();
  MaintainedHierarchy mh = maintain_over(topo, rounds);
  std::vector<Graph> graphs;
  for (Round r = 0; r < rounds; ++r) graphs.push_back(topo.graph_at(r));
  return Ctvg(GraphSequence(std::move(graphs)), std::move(mh.hierarchy));
}

}  // namespace

int main(int argc, char** argv) try {
  CliArgs args(argc, argv);
  const std::string mode =
      args.get_string("mode", "generate", "generate|validate|estimate|dot");
  const std::string in = args.get_string("in", "", "input trace path");
  const std::string out = args.get_string("out", "", "output path (generate)");
  // Generation parameters.
  HiNetConfig cfg;
  cfg.nodes = static_cast<std::size_t>(args.get_int("nodes", 40, "nodes"));
  cfg.heads = static_cast<std::size_t>(args.get_int("heads", 6, "heads"));
  cfg.phase_length =
      static_cast<std::size_t>(args.get_int("t", 10, "phase length T"));
  cfg.phases = static_cast<std::size_t>(args.get_int("phases", 4, "phases"));
  cfg.hop_l = static_cast<int>(args.get_int("l", 2, "L"));
  cfg.reaffiliation_prob =
      args.get_double("reaff", 0.2, "re-affiliation probability");
  cfg.churn_edges =
      static_cast<std::size_t>(args.get_int("churn", 4, "churn edges/round"));
  cfg.stable_heads = args.get_bool("stable-heads", false, "∞-stable head set");
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1, "seed"));
  const auto round =
      static_cast<std::size_t>(args.get_int("round", 0, "round (dot mode)"));
  if (args.help_requested()) {
    std::cout << args.usage("trace_tool: CTVG trace utility");
    return 0;
  }

  const std::string source = args.get_string(
      "source", "hinet", "generate source: hinet|waypoint|manhattan|emdg");

  if (mode == "generate") {
    if (source == "hinet") {
      HiNetTrace trace = make_hinet_trace(cfg);
      if (out.empty()) {
        serialize_ctvg(trace.ctvg, std::cout);
      } else {
        save_ctvg(trace.ctvg, out);
        std::cerr << "wrote " << trace.ctvg.round_count() << " rounds, "
                  << trace.ctvg.node_count() << " nodes to " << out << "\n"
                  << "dynamics: theta=" << trace.stats.theta
                  << " n_m=" << trace.stats.mean_members
                  << " n_r=" << trace.stats.mean_reaffiliations << "\n";
      }
      return 0;
    }
    // Organic sources: flat dynamics + maintained lowest-ID hierarchy.
    Ctvg trace = organic_trace(source, cfg.nodes,
                               cfg.phases * cfg.phase_length, cfg.seed);
    if (out.empty()) {
      serialize_ctvg(trace, std::cout);
    } else {
      save_ctvg(trace, out);
      std::cerr << "wrote " << trace.round_count() << " rounds ("
                << source << " dynamics + maintained hierarchy) to " << out
                << "\n";
    }
    return 0;
  }

  if (in.empty()) {
    std::cerr << "error: --in=<trace file> required for mode " << mode << "\n";
    return 2;
  }
  Ctvg trace = load_ctvg(in);

  if (mode == "validate") {
    const std::string err = trace.validate();
    if (!err.empty()) {
      std::cout << "STRUCTURE: FAIL — " << err << "\n";
      return 1;
    }
    std::cout << "STRUCTURE: OK (" << trace.node_count() << " nodes, "
              << trace.round_count() << " rounds)\n";
    const std::size_t t = cfg.phase_length;
    if (t >= 1 && t <= trace.round_count()) {
      const PropertyResult r =
          check_hinet(trace, trace.round_count(), t, cfg.hop_l);
      std::cout << "(T=" << t << ", L=" << cfg.hop_l << ")-HiNet: "
                << (r ? "OK" : "FAIL — " + r.violation) << "\n";
      return r ? 0 : 1;
    }
    return 0;
  }

  if (mode == "estimate") {
    const StabilityEstimate est =
        estimate_stability(trace, trace.round_count(),
                           std::min<std::size_t>(trace.round_count(), 32));
    std::cout << "max T, stable head set (Def. 2):     "
              << est.max_t_stable_head_set << "\n"
              << "max T, stable hierarchy (Def. 4):    "
              << est.max_t_stable_hierarchy << "\n"
              << "max T, head connectivity (Def. 5):   "
              << est.max_t_head_connectivity << "\n"
              << "worst L (Def. 6):                    " << est.worst_l << "\n"
              << "max T, (T, L)-HiNet (Def. 8):        " << est.max_t_hinet
              << "\n";
    return 0;
  }

  if (mode == "dot") {
    if (round >= trace.round_count()) {
      std::cerr << "error: round " << round << " out of range\n";
      return 2;
    }
    std::cout << to_dot(trace.graph_at(round), trace.hierarchy_at(round));
    return 0;
  }

  std::cerr << "error: unknown mode '" << mode << "'\n";
  return 2;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
