
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/trace_tool.cpp" "examples-build/CMakeFiles/trace_tool.dir/trace_tool.cpp.o" "gcc" "examples-build/CMakeFiles/trace_tool.dir/trace_tool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/hinet_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hinet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/hinet_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hinet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/hinet_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/hinet_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hinet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
