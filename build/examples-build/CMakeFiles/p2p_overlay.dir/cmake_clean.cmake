file(REMOVE_RECURSE
  "../examples/p2p_overlay"
  "../examples/p2p_overlay.pdb"
  "CMakeFiles/p2p_overlay.dir/p2p_overlay.cpp.o"
  "CMakeFiles/p2p_overlay.dir/p2p_overlay.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
