file(REMOVE_RECURSE
  "../examples/adversarial_stress"
  "../examples/adversarial_stress.pdb"
  "CMakeFiles/adversarial_stress.dir/adversarial_stress.cpp.o"
  "CMakeFiles/adversarial_stress.dir/adversarial_stress.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversarial_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
