file(REMOVE_RECURSE
  "../examples/mobile_adhoc"
  "../examples/mobile_adhoc.pdb"
  "CMakeFiles/mobile_adhoc.dir/mobile_adhoc.cpp.o"
  "CMakeFiles/mobile_adhoc.dir/mobile_adhoc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_adhoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
