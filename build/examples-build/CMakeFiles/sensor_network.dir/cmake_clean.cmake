file(REMOVE_RECURSE
  "../examples/sensor_network"
  "../examples/sensor_network.pdb"
  "CMakeFiles/sensor_network.dir/sensor_network.cpp.o"
  "CMakeFiles/sensor_network.dir/sensor_network.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
