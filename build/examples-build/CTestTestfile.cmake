# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples-build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(smoke.quickstart "/root/repo/build/examples/quickstart" "--nodes=30" "--heads=4" "--k=3")
set_tests_properties(smoke.quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke.mobile_adhoc "/root/repo/build/examples/mobile_adhoc" "--nodes=24" "--k=3")
set_tests_properties(smoke.mobile_adhoc PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke.mobile_adhoc_manhattan "/root/repo/build/examples/mobile_adhoc" "--nodes=24" "--k=3" "--model=manhattan")
set_tests_properties(smoke.mobile_adhoc_manhattan PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke.sensor_network "/root/repo/build/examples/sensor_network" "--sensors=30" "--heads=4" "--readings=4" "--reps=2")
set_tests_properties(smoke.sensor_network PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke.adversarial_stress "/root/repo/build/examples/adversarial_stress" "--nodes=16")
set_tests_properties(smoke.adversarial_stress PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke.p2p_overlay "/root/repo/build/examples/p2p_overlay" "--peers=20")
set_tests_properties(smoke.p2p_overlay PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke.trace_tool "/root/repo/build/examples/trace_tool" "--mode=generate" "--nodes=16" "--heads=3")
set_tests_properties(smoke.trace_tool PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
