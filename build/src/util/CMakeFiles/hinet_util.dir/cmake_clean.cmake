file(REMOVE_RECURSE
  "CMakeFiles/hinet_util.dir/cli.cpp.o"
  "CMakeFiles/hinet_util.dir/cli.cpp.o.d"
  "CMakeFiles/hinet_util.dir/csv.cpp.o"
  "CMakeFiles/hinet_util.dir/csv.cpp.o.d"
  "CMakeFiles/hinet_util.dir/logging.cpp.o"
  "CMakeFiles/hinet_util.dir/logging.cpp.o.d"
  "CMakeFiles/hinet_util.dir/rng.cpp.o"
  "CMakeFiles/hinet_util.dir/rng.cpp.o.d"
  "CMakeFiles/hinet_util.dir/stats.cpp.o"
  "CMakeFiles/hinet_util.dir/stats.cpp.o.d"
  "CMakeFiles/hinet_util.dir/table.cpp.o"
  "CMakeFiles/hinet_util.dir/table.cpp.o.d"
  "CMakeFiles/hinet_util.dir/token_set.cpp.o"
  "CMakeFiles/hinet_util.dir/token_set.cpp.o.d"
  "libhinet_util.a"
  "libhinet_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hinet_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
