# Empty compiler generated dependencies file for hinet_util.
# This may be replaced when dependencies are built.
