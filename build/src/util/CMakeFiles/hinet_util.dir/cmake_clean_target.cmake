file(REMOVE_RECURSE
  "libhinet_util.a"
)
