# Empty compiler generated dependencies file for hinet_sim.
# This may be replaced when dependencies are built.
