file(REMOVE_RECURSE
  "CMakeFiles/hinet_sim.dir/channel.cpp.o"
  "CMakeFiles/hinet_sim.dir/channel.cpp.o.d"
  "CMakeFiles/hinet_sim.dir/engine.cpp.o"
  "CMakeFiles/hinet_sim.dir/engine.cpp.o.d"
  "CMakeFiles/hinet_sim.dir/trace.cpp.o"
  "CMakeFiles/hinet_sim.dir/trace.cpp.o.d"
  "libhinet_sim.a"
  "libhinet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hinet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
