file(REMOVE_RECURSE
  "libhinet_sim.a"
)
