file(REMOVE_RECURSE
  "libhinet_graph.a"
)
