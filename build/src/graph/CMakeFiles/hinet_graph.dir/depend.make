# Empty dependencies file for hinet_graph.
# This may be replaced when dependencies are built.
