
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/adversary.cpp" "src/graph/CMakeFiles/hinet_graph.dir/adversary.cpp.o" "gcc" "src/graph/CMakeFiles/hinet_graph.dir/adversary.cpp.o.d"
  "/root/repo/src/graph/crashes.cpp" "src/graph/CMakeFiles/hinet_graph.dir/crashes.cpp.o" "gcc" "src/graph/CMakeFiles/hinet_graph.dir/crashes.cpp.o.d"
  "/root/repo/src/graph/dynamic.cpp" "src/graph/CMakeFiles/hinet_graph.dir/dynamic.cpp.o" "gcc" "src/graph/CMakeFiles/hinet_graph.dir/dynamic.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/graph/CMakeFiles/hinet_graph.dir/generators.cpp.o" "gcc" "src/graph/CMakeFiles/hinet_graph.dir/generators.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/graph/CMakeFiles/hinet_graph.dir/graph.cpp.o" "gcc" "src/graph/CMakeFiles/hinet_graph.dir/graph.cpp.o.d"
  "/root/repo/src/graph/interval.cpp" "src/graph/CMakeFiles/hinet_graph.dir/interval.cpp.o" "gcc" "src/graph/CMakeFiles/hinet_graph.dir/interval.cpp.o.d"
  "/root/repo/src/graph/markovian.cpp" "src/graph/CMakeFiles/hinet_graph.dir/markovian.cpp.o" "gcc" "src/graph/CMakeFiles/hinet_graph.dir/markovian.cpp.o.d"
  "/root/repo/src/graph/mobility.cpp" "src/graph/CMakeFiles/hinet_graph.dir/mobility.cpp.o" "gcc" "src/graph/CMakeFiles/hinet_graph.dir/mobility.cpp.o.d"
  "/root/repo/src/graph/tvg.cpp" "src/graph/CMakeFiles/hinet_graph.dir/tvg.cpp.o" "gcc" "src/graph/CMakeFiles/hinet_graph.dir/tvg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hinet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
