file(REMOVE_RECURSE
  "CMakeFiles/hinet_graph.dir/adversary.cpp.o"
  "CMakeFiles/hinet_graph.dir/adversary.cpp.o.d"
  "CMakeFiles/hinet_graph.dir/crashes.cpp.o"
  "CMakeFiles/hinet_graph.dir/crashes.cpp.o.d"
  "CMakeFiles/hinet_graph.dir/dynamic.cpp.o"
  "CMakeFiles/hinet_graph.dir/dynamic.cpp.o.d"
  "CMakeFiles/hinet_graph.dir/generators.cpp.o"
  "CMakeFiles/hinet_graph.dir/generators.cpp.o.d"
  "CMakeFiles/hinet_graph.dir/graph.cpp.o"
  "CMakeFiles/hinet_graph.dir/graph.cpp.o.d"
  "CMakeFiles/hinet_graph.dir/interval.cpp.o"
  "CMakeFiles/hinet_graph.dir/interval.cpp.o.d"
  "CMakeFiles/hinet_graph.dir/markovian.cpp.o"
  "CMakeFiles/hinet_graph.dir/markovian.cpp.o.d"
  "CMakeFiles/hinet_graph.dir/mobility.cpp.o"
  "CMakeFiles/hinet_graph.dir/mobility.cpp.o.d"
  "CMakeFiles/hinet_graph.dir/tvg.cpp.o"
  "CMakeFiles/hinet_graph.dir/tvg.cpp.o.d"
  "libhinet_graph.a"
  "libhinet_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hinet_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
