file(REMOVE_RECURSE
  "libhinet_baseline.a"
)
