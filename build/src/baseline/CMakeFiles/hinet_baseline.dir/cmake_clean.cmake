file(REMOVE_RECURSE
  "CMakeFiles/hinet_baseline.dir/flooding.cpp.o"
  "CMakeFiles/hinet_baseline.dir/flooding.cpp.o.d"
  "CMakeFiles/hinet_baseline.dir/gossip.cpp.o"
  "CMakeFiles/hinet_baseline.dir/gossip.cpp.o.d"
  "CMakeFiles/hinet_baseline.dir/klo.cpp.o"
  "CMakeFiles/hinet_baseline.dir/klo.cpp.o.d"
  "CMakeFiles/hinet_baseline.dir/network_coding.cpp.o"
  "CMakeFiles/hinet_baseline.dir/network_coding.cpp.o.d"
  "libhinet_baseline.a"
  "libhinet_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hinet_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
