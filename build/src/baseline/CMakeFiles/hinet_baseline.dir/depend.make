# Empty dependencies file for hinet_baseline.
# This may be replaced when dependencies are built.
