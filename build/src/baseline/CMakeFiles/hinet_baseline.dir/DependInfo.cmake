
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/flooding.cpp" "src/baseline/CMakeFiles/hinet_baseline.dir/flooding.cpp.o" "gcc" "src/baseline/CMakeFiles/hinet_baseline.dir/flooding.cpp.o.d"
  "/root/repo/src/baseline/gossip.cpp" "src/baseline/CMakeFiles/hinet_baseline.dir/gossip.cpp.o" "gcc" "src/baseline/CMakeFiles/hinet_baseline.dir/gossip.cpp.o.d"
  "/root/repo/src/baseline/klo.cpp" "src/baseline/CMakeFiles/hinet_baseline.dir/klo.cpp.o" "gcc" "src/baseline/CMakeFiles/hinet_baseline.dir/klo.cpp.o.d"
  "/root/repo/src/baseline/network_coding.cpp" "src/baseline/CMakeFiles/hinet_baseline.dir/network_coding.cpp.o" "gcc" "src/baseline/CMakeFiles/hinet_baseline.dir/network_coding.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hinet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hinet_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/hinet_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/hinet_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
