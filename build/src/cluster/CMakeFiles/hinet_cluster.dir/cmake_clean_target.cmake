file(REMOVE_RECURSE
  "libhinet_cluster.a"
)
