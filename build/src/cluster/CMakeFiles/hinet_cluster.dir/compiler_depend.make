# Empty compiler generated dependencies file for hinet_cluster.
# This may be replaced when dependencies are built.
