file(REMOVE_RECURSE
  "CMakeFiles/hinet_cluster.dir/algorithms.cpp.o"
  "CMakeFiles/hinet_cluster.dir/algorithms.cpp.o.d"
  "CMakeFiles/hinet_cluster.dir/dhop.cpp.o"
  "CMakeFiles/hinet_cluster.dir/dhop.cpp.o.d"
  "CMakeFiles/hinet_cluster.dir/dot.cpp.o"
  "CMakeFiles/hinet_cluster.dir/dot.cpp.o.d"
  "CMakeFiles/hinet_cluster.dir/hierarchy.cpp.o"
  "CMakeFiles/hinet_cluster.dir/hierarchy.cpp.o.d"
  "CMakeFiles/hinet_cluster.dir/maintenance.cpp.o"
  "CMakeFiles/hinet_cluster.dir/maintenance.cpp.o.d"
  "CMakeFiles/hinet_cluster.dir/metrics.cpp.o"
  "CMakeFiles/hinet_cluster.dir/metrics.cpp.o.d"
  "CMakeFiles/hinet_cluster.dir/routing.cpp.o"
  "CMakeFiles/hinet_cluster.dir/routing.cpp.o.d"
  "libhinet_cluster.a"
  "libhinet_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hinet_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
