
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/algorithms.cpp" "src/cluster/CMakeFiles/hinet_cluster.dir/algorithms.cpp.o" "gcc" "src/cluster/CMakeFiles/hinet_cluster.dir/algorithms.cpp.o.d"
  "/root/repo/src/cluster/dhop.cpp" "src/cluster/CMakeFiles/hinet_cluster.dir/dhop.cpp.o" "gcc" "src/cluster/CMakeFiles/hinet_cluster.dir/dhop.cpp.o.d"
  "/root/repo/src/cluster/dot.cpp" "src/cluster/CMakeFiles/hinet_cluster.dir/dot.cpp.o" "gcc" "src/cluster/CMakeFiles/hinet_cluster.dir/dot.cpp.o.d"
  "/root/repo/src/cluster/hierarchy.cpp" "src/cluster/CMakeFiles/hinet_cluster.dir/hierarchy.cpp.o" "gcc" "src/cluster/CMakeFiles/hinet_cluster.dir/hierarchy.cpp.o.d"
  "/root/repo/src/cluster/maintenance.cpp" "src/cluster/CMakeFiles/hinet_cluster.dir/maintenance.cpp.o" "gcc" "src/cluster/CMakeFiles/hinet_cluster.dir/maintenance.cpp.o.d"
  "/root/repo/src/cluster/metrics.cpp" "src/cluster/CMakeFiles/hinet_cluster.dir/metrics.cpp.o" "gcc" "src/cluster/CMakeFiles/hinet_cluster.dir/metrics.cpp.o.d"
  "/root/repo/src/cluster/routing.cpp" "src/cluster/CMakeFiles/hinet_cluster.dir/routing.cpp.o" "gcc" "src/cluster/CMakeFiles/hinet_cluster.dir/routing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/hinet_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hinet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
