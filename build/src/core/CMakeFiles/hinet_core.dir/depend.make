# Empty dependencies file for hinet_core.
# This may be replaced when dependencies are built.
