file(REMOVE_RECURSE
  "CMakeFiles/hinet_core.dir/alg1.cpp.o"
  "CMakeFiles/hinet_core.dir/alg1.cpp.o.d"
  "CMakeFiles/hinet_core.dir/alg2.cpp.o"
  "CMakeFiles/hinet_core.dir/alg2.cpp.o.d"
  "CMakeFiles/hinet_core.dir/alg_dhop.cpp.o"
  "CMakeFiles/hinet_core.dir/alg_dhop.cpp.o.d"
  "CMakeFiles/hinet_core.dir/applications.cpp.o"
  "CMakeFiles/hinet_core.dir/applications.cpp.o.d"
  "CMakeFiles/hinet_core.dir/cost_model.cpp.o"
  "CMakeFiles/hinet_core.dir/cost_model.cpp.o.d"
  "CMakeFiles/hinet_core.dir/ctvg.cpp.o"
  "CMakeFiles/hinet_core.dir/ctvg.cpp.o.d"
  "CMakeFiles/hinet_core.dir/hinet_generator.cpp.o"
  "CMakeFiles/hinet_core.dir/hinet_generator.cpp.o.d"
  "CMakeFiles/hinet_core.dir/hinet_properties.cpp.o"
  "CMakeFiles/hinet_core.dir/hinet_properties.cpp.o.d"
  "CMakeFiles/hinet_core.dir/trace_io.cpp.o"
  "CMakeFiles/hinet_core.dir/trace_io.cpp.o.d"
  "libhinet_core.a"
  "libhinet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hinet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
