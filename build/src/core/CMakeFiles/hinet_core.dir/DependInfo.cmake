
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/alg1.cpp" "src/core/CMakeFiles/hinet_core.dir/alg1.cpp.o" "gcc" "src/core/CMakeFiles/hinet_core.dir/alg1.cpp.o.d"
  "/root/repo/src/core/alg2.cpp" "src/core/CMakeFiles/hinet_core.dir/alg2.cpp.o" "gcc" "src/core/CMakeFiles/hinet_core.dir/alg2.cpp.o.d"
  "/root/repo/src/core/alg_dhop.cpp" "src/core/CMakeFiles/hinet_core.dir/alg_dhop.cpp.o" "gcc" "src/core/CMakeFiles/hinet_core.dir/alg_dhop.cpp.o.d"
  "/root/repo/src/core/applications.cpp" "src/core/CMakeFiles/hinet_core.dir/applications.cpp.o" "gcc" "src/core/CMakeFiles/hinet_core.dir/applications.cpp.o.d"
  "/root/repo/src/core/cost_model.cpp" "src/core/CMakeFiles/hinet_core.dir/cost_model.cpp.o" "gcc" "src/core/CMakeFiles/hinet_core.dir/cost_model.cpp.o.d"
  "/root/repo/src/core/ctvg.cpp" "src/core/CMakeFiles/hinet_core.dir/ctvg.cpp.o" "gcc" "src/core/CMakeFiles/hinet_core.dir/ctvg.cpp.o.d"
  "/root/repo/src/core/hinet_generator.cpp" "src/core/CMakeFiles/hinet_core.dir/hinet_generator.cpp.o" "gcc" "src/core/CMakeFiles/hinet_core.dir/hinet_generator.cpp.o.d"
  "/root/repo/src/core/hinet_properties.cpp" "src/core/CMakeFiles/hinet_core.dir/hinet_properties.cpp.o" "gcc" "src/core/CMakeFiles/hinet_core.dir/hinet_properties.cpp.o.d"
  "/root/repo/src/core/trace_io.cpp" "src/core/CMakeFiles/hinet_core.dir/trace_io.cpp.o" "gcc" "src/core/CMakeFiles/hinet_core.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baseline/CMakeFiles/hinet_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hinet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/hinet_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/hinet_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hinet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
