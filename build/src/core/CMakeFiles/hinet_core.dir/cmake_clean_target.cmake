file(REMOVE_RECURSE
  "libhinet_core.a"
)
