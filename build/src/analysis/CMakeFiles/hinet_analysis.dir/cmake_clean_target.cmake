file(REMOVE_RECURSE
  "libhinet_analysis.a"
)
