# Empty dependencies file for hinet_analysis.
# This may be replaced when dependencies are built.
