file(REMOVE_RECURSE
  "CMakeFiles/hinet_analysis.dir/assignment.cpp.o"
  "CMakeFiles/hinet_analysis.dir/assignment.cpp.o.d"
  "CMakeFiles/hinet_analysis.dir/experiment.cpp.o"
  "CMakeFiles/hinet_analysis.dir/experiment.cpp.o.d"
  "CMakeFiles/hinet_analysis.dir/model_estimation.cpp.o"
  "CMakeFiles/hinet_analysis.dir/model_estimation.cpp.o.d"
  "CMakeFiles/hinet_analysis.dir/scenarios.cpp.o"
  "CMakeFiles/hinet_analysis.dir/scenarios.cpp.o.d"
  "libhinet_analysis.a"
  "libhinet_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hinet_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
