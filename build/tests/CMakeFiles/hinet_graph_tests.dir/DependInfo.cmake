
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/graph/test_crashes.cpp" "tests/CMakeFiles/hinet_graph_tests.dir/graph/test_crashes.cpp.o" "gcc" "tests/CMakeFiles/hinet_graph_tests.dir/graph/test_crashes.cpp.o.d"
  "/root/repo/tests/graph/test_dynamic.cpp" "tests/CMakeFiles/hinet_graph_tests.dir/graph/test_dynamic.cpp.o" "gcc" "tests/CMakeFiles/hinet_graph_tests.dir/graph/test_dynamic.cpp.o.d"
  "/root/repo/tests/graph/test_generators.cpp" "tests/CMakeFiles/hinet_graph_tests.dir/graph/test_generators.cpp.o" "gcc" "tests/CMakeFiles/hinet_graph_tests.dir/graph/test_generators.cpp.o.d"
  "/root/repo/tests/graph/test_graph.cpp" "tests/CMakeFiles/hinet_graph_tests.dir/graph/test_graph.cpp.o" "gcc" "tests/CMakeFiles/hinet_graph_tests.dir/graph/test_graph.cpp.o.d"
  "/root/repo/tests/graph/test_manhattan.cpp" "tests/CMakeFiles/hinet_graph_tests.dir/graph/test_manhattan.cpp.o" "gcc" "tests/CMakeFiles/hinet_graph_tests.dir/graph/test_manhattan.cpp.o.d"
  "/root/repo/tests/graph/test_tvg.cpp" "tests/CMakeFiles/hinet_graph_tests.dir/graph/test_tvg.cpp.o" "gcc" "tests/CMakeFiles/hinet_graph_tests.dir/graph/test_tvg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/hinet_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hinet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/hinet_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hinet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/hinet_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/hinet_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hinet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
