file(REMOVE_RECURSE
  "CMakeFiles/hinet_graph_tests.dir/graph/test_crashes.cpp.o"
  "CMakeFiles/hinet_graph_tests.dir/graph/test_crashes.cpp.o.d"
  "CMakeFiles/hinet_graph_tests.dir/graph/test_dynamic.cpp.o"
  "CMakeFiles/hinet_graph_tests.dir/graph/test_dynamic.cpp.o.d"
  "CMakeFiles/hinet_graph_tests.dir/graph/test_generators.cpp.o"
  "CMakeFiles/hinet_graph_tests.dir/graph/test_generators.cpp.o.d"
  "CMakeFiles/hinet_graph_tests.dir/graph/test_graph.cpp.o"
  "CMakeFiles/hinet_graph_tests.dir/graph/test_graph.cpp.o.d"
  "CMakeFiles/hinet_graph_tests.dir/graph/test_manhattan.cpp.o"
  "CMakeFiles/hinet_graph_tests.dir/graph/test_manhattan.cpp.o.d"
  "CMakeFiles/hinet_graph_tests.dir/graph/test_tvg.cpp.o"
  "CMakeFiles/hinet_graph_tests.dir/graph/test_tvg.cpp.o.d"
  "hinet_graph_tests"
  "hinet_graph_tests.pdb"
  "hinet_graph_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hinet_graph_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
