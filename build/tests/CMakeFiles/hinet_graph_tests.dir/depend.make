# Empty dependencies file for hinet_graph_tests.
# This may be replaced when dependencies are built.
