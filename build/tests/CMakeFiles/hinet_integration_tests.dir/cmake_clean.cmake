file(REMOVE_RECURSE
  "CMakeFiles/hinet_integration_tests.dir/analysis/test_analysis.cpp.o"
  "CMakeFiles/hinet_integration_tests.dir/analysis/test_analysis.cpp.o.d"
  "CMakeFiles/hinet_integration_tests.dir/analysis/test_model_estimation.cpp.o"
  "CMakeFiles/hinet_integration_tests.dir/analysis/test_model_estimation.cpp.o.d"
  "CMakeFiles/hinet_integration_tests.dir/baseline/test_baselines.cpp.o"
  "CMakeFiles/hinet_integration_tests.dir/baseline/test_baselines.cpp.o.d"
  "CMakeFiles/hinet_integration_tests.dir/baseline/test_network_coding.cpp.o"
  "CMakeFiles/hinet_integration_tests.dir/baseline/test_network_coding.cpp.o.d"
  "hinet_integration_tests"
  "hinet_integration_tests.pdb"
  "hinet_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hinet_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
