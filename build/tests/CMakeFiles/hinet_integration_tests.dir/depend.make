# Empty dependencies file for hinet_integration_tests.
# This may be replaced when dependencies are built.
