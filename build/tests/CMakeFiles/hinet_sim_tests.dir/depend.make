# Empty dependencies file for hinet_sim_tests.
# This may be replaced when dependencies are built.
