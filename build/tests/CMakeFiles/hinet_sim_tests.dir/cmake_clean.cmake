file(REMOVE_RECURSE
  "CMakeFiles/hinet_sim_tests.dir/sim/test_channel.cpp.o"
  "CMakeFiles/hinet_sim_tests.dir/sim/test_channel.cpp.o.d"
  "CMakeFiles/hinet_sim_tests.dir/sim/test_engine.cpp.o"
  "CMakeFiles/hinet_sim_tests.dir/sim/test_engine.cpp.o.d"
  "hinet_sim_tests"
  "hinet_sim_tests.pdb"
  "hinet_sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hinet_sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
