# Empty compiler generated dependencies file for hinet_util_tests.
# This may be replaced when dependencies are built.
