file(REMOVE_RECURSE
  "CMakeFiles/hinet_util_tests.dir/util/test_io.cpp.o"
  "CMakeFiles/hinet_util_tests.dir/util/test_io.cpp.o.d"
  "CMakeFiles/hinet_util_tests.dir/util/test_require.cpp.o"
  "CMakeFiles/hinet_util_tests.dir/util/test_require.cpp.o.d"
  "CMakeFiles/hinet_util_tests.dir/util/test_rng.cpp.o"
  "CMakeFiles/hinet_util_tests.dir/util/test_rng.cpp.o.d"
  "CMakeFiles/hinet_util_tests.dir/util/test_stats.cpp.o"
  "CMakeFiles/hinet_util_tests.dir/util/test_stats.cpp.o.d"
  "CMakeFiles/hinet_util_tests.dir/util/test_token_set.cpp.o"
  "CMakeFiles/hinet_util_tests.dir/util/test_token_set.cpp.o.d"
  "hinet_util_tests"
  "hinet_util_tests.pdb"
  "hinet_util_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hinet_util_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
