
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/test_io.cpp" "tests/CMakeFiles/hinet_util_tests.dir/util/test_io.cpp.o" "gcc" "tests/CMakeFiles/hinet_util_tests.dir/util/test_io.cpp.o.d"
  "/root/repo/tests/util/test_require.cpp" "tests/CMakeFiles/hinet_util_tests.dir/util/test_require.cpp.o" "gcc" "tests/CMakeFiles/hinet_util_tests.dir/util/test_require.cpp.o.d"
  "/root/repo/tests/util/test_rng.cpp" "tests/CMakeFiles/hinet_util_tests.dir/util/test_rng.cpp.o" "gcc" "tests/CMakeFiles/hinet_util_tests.dir/util/test_rng.cpp.o.d"
  "/root/repo/tests/util/test_stats.cpp" "tests/CMakeFiles/hinet_util_tests.dir/util/test_stats.cpp.o" "gcc" "tests/CMakeFiles/hinet_util_tests.dir/util/test_stats.cpp.o.d"
  "/root/repo/tests/util/test_token_set.cpp" "tests/CMakeFiles/hinet_util_tests.dir/util/test_token_set.cpp.o" "gcc" "tests/CMakeFiles/hinet_util_tests.dir/util/test_token_set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/hinet_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hinet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/hinet_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hinet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/hinet_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/hinet_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hinet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
