# Empty compiler generated dependencies file for hinet_core_tests.
# This may be replaced when dependencies are built.
