file(REMOVE_RECURSE
  "CMakeFiles/hinet_core_tests.dir/core/test_alg1.cpp.o"
  "CMakeFiles/hinet_core_tests.dir/core/test_alg1.cpp.o.d"
  "CMakeFiles/hinet_core_tests.dir/core/test_alg2.cpp.o"
  "CMakeFiles/hinet_core_tests.dir/core/test_alg2.cpp.o.d"
  "CMakeFiles/hinet_core_tests.dir/core/test_alg_dhop.cpp.o"
  "CMakeFiles/hinet_core_tests.dir/core/test_alg_dhop.cpp.o.d"
  "CMakeFiles/hinet_core_tests.dir/core/test_applications.cpp.o"
  "CMakeFiles/hinet_core_tests.dir/core/test_applications.cpp.o.d"
  "CMakeFiles/hinet_core_tests.dir/core/test_cost_model.cpp.o"
  "CMakeFiles/hinet_core_tests.dir/core/test_cost_model.cpp.o.d"
  "CMakeFiles/hinet_core_tests.dir/core/test_cost_model_properties.cpp.o"
  "CMakeFiles/hinet_core_tests.dir/core/test_cost_model_properties.cpp.o.d"
  "CMakeFiles/hinet_core_tests.dir/core/test_differential.cpp.o"
  "CMakeFiles/hinet_core_tests.dir/core/test_differential.cpp.o.d"
  "CMakeFiles/hinet_core_tests.dir/core/test_edge_cases.cpp.o"
  "CMakeFiles/hinet_core_tests.dir/core/test_edge_cases.cpp.o.d"
  "CMakeFiles/hinet_core_tests.dir/core/test_hinet_generator.cpp.o"
  "CMakeFiles/hinet_core_tests.dir/core/test_hinet_generator.cpp.o.d"
  "CMakeFiles/hinet_core_tests.dir/core/test_hinet_properties.cpp.o"
  "CMakeFiles/hinet_core_tests.dir/core/test_hinet_properties.cpp.o.d"
  "CMakeFiles/hinet_core_tests.dir/core/test_lemma2.cpp.o"
  "CMakeFiles/hinet_core_tests.dir/core/test_lemma2.cpp.o.d"
  "CMakeFiles/hinet_core_tests.dir/core/test_quiescence.cpp.o"
  "CMakeFiles/hinet_core_tests.dir/core/test_quiescence.cpp.o.d"
  "CMakeFiles/hinet_core_tests.dir/core/test_trace_io.cpp.o"
  "CMakeFiles/hinet_core_tests.dir/core/test_trace_io.cpp.o.d"
  "CMakeFiles/hinet_core_tests.dir/core/test_trace_io_fuzz.cpp.o"
  "CMakeFiles/hinet_core_tests.dir/core/test_trace_io_fuzz.cpp.o.d"
  "hinet_core_tests"
  "hinet_core_tests.pdb"
  "hinet_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hinet_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
