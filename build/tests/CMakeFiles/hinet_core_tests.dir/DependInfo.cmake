
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_alg1.cpp" "tests/CMakeFiles/hinet_core_tests.dir/core/test_alg1.cpp.o" "gcc" "tests/CMakeFiles/hinet_core_tests.dir/core/test_alg1.cpp.o.d"
  "/root/repo/tests/core/test_alg2.cpp" "tests/CMakeFiles/hinet_core_tests.dir/core/test_alg2.cpp.o" "gcc" "tests/CMakeFiles/hinet_core_tests.dir/core/test_alg2.cpp.o.d"
  "/root/repo/tests/core/test_alg_dhop.cpp" "tests/CMakeFiles/hinet_core_tests.dir/core/test_alg_dhop.cpp.o" "gcc" "tests/CMakeFiles/hinet_core_tests.dir/core/test_alg_dhop.cpp.o.d"
  "/root/repo/tests/core/test_applications.cpp" "tests/CMakeFiles/hinet_core_tests.dir/core/test_applications.cpp.o" "gcc" "tests/CMakeFiles/hinet_core_tests.dir/core/test_applications.cpp.o.d"
  "/root/repo/tests/core/test_cost_model.cpp" "tests/CMakeFiles/hinet_core_tests.dir/core/test_cost_model.cpp.o" "gcc" "tests/CMakeFiles/hinet_core_tests.dir/core/test_cost_model.cpp.o.d"
  "/root/repo/tests/core/test_cost_model_properties.cpp" "tests/CMakeFiles/hinet_core_tests.dir/core/test_cost_model_properties.cpp.o" "gcc" "tests/CMakeFiles/hinet_core_tests.dir/core/test_cost_model_properties.cpp.o.d"
  "/root/repo/tests/core/test_differential.cpp" "tests/CMakeFiles/hinet_core_tests.dir/core/test_differential.cpp.o" "gcc" "tests/CMakeFiles/hinet_core_tests.dir/core/test_differential.cpp.o.d"
  "/root/repo/tests/core/test_edge_cases.cpp" "tests/CMakeFiles/hinet_core_tests.dir/core/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/hinet_core_tests.dir/core/test_edge_cases.cpp.o.d"
  "/root/repo/tests/core/test_hinet_generator.cpp" "tests/CMakeFiles/hinet_core_tests.dir/core/test_hinet_generator.cpp.o" "gcc" "tests/CMakeFiles/hinet_core_tests.dir/core/test_hinet_generator.cpp.o.d"
  "/root/repo/tests/core/test_hinet_properties.cpp" "tests/CMakeFiles/hinet_core_tests.dir/core/test_hinet_properties.cpp.o" "gcc" "tests/CMakeFiles/hinet_core_tests.dir/core/test_hinet_properties.cpp.o.d"
  "/root/repo/tests/core/test_lemma2.cpp" "tests/CMakeFiles/hinet_core_tests.dir/core/test_lemma2.cpp.o" "gcc" "tests/CMakeFiles/hinet_core_tests.dir/core/test_lemma2.cpp.o.d"
  "/root/repo/tests/core/test_quiescence.cpp" "tests/CMakeFiles/hinet_core_tests.dir/core/test_quiescence.cpp.o" "gcc" "tests/CMakeFiles/hinet_core_tests.dir/core/test_quiescence.cpp.o.d"
  "/root/repo/tests/core/test_trace_io.cpp" "tests/CMakeFiles/hinet_core_tests.dir/core/test_trace_io.cpp.o" "gcc" "tests/CMakeFiles/hinet_core_tests.dir/core/test_trace_io.cpp.o.d"
  "/root/repo/tests/core/test_trace_io_fuzz.cpp" "tests/CMakeFiles/hinet_core_tests.dir/core/test_trace_io_fuzz.cpp.o" "gcc" "tests/CMakeFiles/hinet_core_tests.dir/core/test_trace_io_fuzz.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/hinet_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hinet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/hinet_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hinet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/hinet_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/hinet_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hinet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
