file(REMOVE_RECURSE
  "CMakeFiles/hinet_cluster_tests.dir/cluster/test_clustering.cpp.o"
  "CMakeFiles/hinet_cluster_tests.dir/cluster/test_clustering.cpp.o.d"
  "CMakeFiles/hinet_cluster_tests.dir/cluster/test_dhop.cpp.o"
  "CMakeFiles/hinet_cluster_tests.dir/cluster/test_dhop.cpp.o.d"
  "CMakeFiles/hinet_cluster_tests.dir/cluster/test_dot.cpp.o"
  "CMakeFiles/hinet_cluster_tests.dir/cluster/test_dot.cpp.o.d"
  "CMakeFiles/hinet_cluster_tests.dir/cluster/test_hierarchy.cpp.o"
  "CMakeFiles/hinet_cluster_tests.dir/cluster/test_hierarchy.cpp.o.d"
  "CMakeFiles/hinet_cluster_tests.dir/cluster/test_maintenance.cpp.o"
  "CMakeFiles/hinet_cluster_tests.dir/cluster/test_maintenance.cpp.o.d"
  "CMakeFiles/hinet_cluster_tests.dir/cluster/test_routing.cpp.o"
  "CMakeFiles/hinet_cluster_tests.dir/cluster/test_routing.cpp.o.d"
  "hinet_cluster_tests"
  "hinet_cluster_tests.pdb"
  "hinet_cluster_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hinet_cluster_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
