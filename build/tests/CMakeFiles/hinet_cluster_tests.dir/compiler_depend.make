# Empty compiler generated dependencies file for hinet_cluster_tests.
# This may be replaced when dependencies are built.
