# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/hinet_util_tests[1]_include.cmake")
include("/root/repo/build/tests/hinet_graph_tests[1]_include.cmake")
include("/root/repo/build/tests/hinet_cluster_tests[1]_include.cmake")
include("/root/repo/build/tests/hinet_sim_tests[1]_include.cmake")
include("/root/repo/build/tests/hinet_core_tests[1]_include.cmake")
include("/root/repo/build/tests/hinet_integration_tests[1]_include.cmake")
