file(REMOVE_RECURSE
  "../bench/full_report"
  "../bench/full_report.pdb"
  "CMakeFiles/full_report.dir/full_report.cpp.o"
  "CMakeFiles/full_report.dir/full_report.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
