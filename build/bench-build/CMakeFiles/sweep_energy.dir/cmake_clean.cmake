file(REMOVE_RECURSE
  "../bench/sweep_energy"
  "../bench/sweep_energy.pdb"
  "CMakeFiles/sweep_energy.dir/sweep_energy.cpp.o"
  "CMakeFiles/sweep_energy.dir/sweep_energy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
