# Empty compiler generated dependencies file for sweep_energy.
# This may be replaced when dependencies are built.
