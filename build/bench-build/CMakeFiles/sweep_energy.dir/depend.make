# Empty dependencies file for sweep_energy.
# This may be replaced when dependencies are built.
