# Empty dependencies file for fig3_walkthrough.
# This may be replaced when dependencies are built.
