file(REMOVE_RECURSE
  "../bench/fig3_walkthrough"
  "../bench/fig3_walkthrough.pdb"
  "CMakeFiles/fig3_walkthrough.dir/fig3_walkthrough.cpp.o"
  "CMakeFiles/fig3_walkthrough.dir/fig3_walkthrough.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
