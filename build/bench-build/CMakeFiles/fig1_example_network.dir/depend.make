# Empty dependencies file for fig1_example_network.
# This may be replaced when dependencies are built.
