file(REMOVE_RECURSE
  "../bench/fig1_example_network"
  "../bench/fig1_example_network.pdb"
  "CMakeFiles/fig1_example_network.dir/fig1_example_network.cpp.o"
  "CMakeFiles/fig1_example_network.dir/fig1_example_network.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_example_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
