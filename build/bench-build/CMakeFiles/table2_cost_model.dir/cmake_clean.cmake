file(REMOVE_RECURSE
  "../bench/table2_cost_model"
  "../bench/table2_cost_model.pdb"
  "CMakeFiles/table2_cost_model.dir/table2_cost_model.cpp.o"
  "CMakeFiles/table2_cost_model.dir/table2_cost_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_cost_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
