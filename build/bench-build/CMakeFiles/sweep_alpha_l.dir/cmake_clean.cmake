file(REMOVE_RECURSE
  "../bench/sweep_alpha_l"
  "../bench/sweep_alpha_l.pdb"
  "CMakeFiles/sweep_alpha_l.dir/sweep_alpha_l.cpp.o"
  "CMakeFiles/sweep_alpha_l.dir/sweep_alpha_l.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_alpha_l.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
