# Empty dependencies file for sweep_alpha_l.
# This may be replaced when dependencies are built.
