file(REMOVE_RECURSE
  "../bench/sweep_reaffiliation"
  "../bench/sweep_reaffiliation.pdb"
  "CMakeFiles/sweep_reaffiliation.dir/sweep_reaffiliation.cpp.o"
  "CMakeFiles/sweep_reaffiliation.dir/sweep_reaffiliation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_reaffiliation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
