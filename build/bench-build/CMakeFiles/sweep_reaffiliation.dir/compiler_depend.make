# Empty compiler generated dependencies file for sweep_reaffiliation.
# This may be replaced when dependencies are built.
