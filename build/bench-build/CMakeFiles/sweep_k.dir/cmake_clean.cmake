file(REMOVE_RECURSE
  "../bench/sweep_k"
  "../bench/sweep_k.pdb"
  "CMakeFiles/sweep_k.dir/sweep_k.cpp.o"
  "CMakeFiles/sweep_k.dir/sweep_k.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
