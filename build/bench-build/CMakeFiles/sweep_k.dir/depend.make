# Empty dependencies file for sweep_k.
# This may be replaced when dependencies are built.
