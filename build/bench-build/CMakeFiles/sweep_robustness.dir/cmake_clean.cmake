file(REMOVE_RECURSE
  "../bench/sweep_robustness"
  "../bench/sweep_robustness.pdb"
  "CMakeFiles/sweep_robustness.dir/sweep_robustness.cpp.o"
  "CMakeFiles/sweep_robustness.dir/sweep_robustness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
