# Empty compiler generated dependencies file for sweep_robustness.
# This may be replaced when dependencies are built.
