file(REMOVE_RECURSE
  "../bench/bounds_audit"
  "../bench/bounds_audit.pdb"
  "CMakeFiles/bounds_audit.dir/bounds_audit.cpp.o"
  "CMakeFiles/bounds_audit.dir/bounds_audit.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bounds_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
