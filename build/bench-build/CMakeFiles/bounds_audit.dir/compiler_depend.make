# Empty compiler generated dependencies file for bounds_audit.
# This may be replaced when dependencies are built.
