file(REMOVE_RECURSE
  "../bench/ablation_coding"
  "../bench/ablation_coding.pdb"
  "CMakeFiles/ablation_coding.dir/ablation_coding.cpp.o"
  "CMakeFiles/ablation_coding.dir/ablation_coding.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_coding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
