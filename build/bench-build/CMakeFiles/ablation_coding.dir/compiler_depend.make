# Empty compiler generated dependencies file for ablation_coding.
# This may be replaced when dependencies are built.
