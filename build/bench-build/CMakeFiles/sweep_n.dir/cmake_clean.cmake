file(REMOVE_RECURSE
  "../bench/sweep_n"
  "../bench/sweep_n.pdb"
  "CMakeFiles/sweep_n.dir/sweep_n.cpp.o"
  "CMakeFiles/sweep_n.dir/sweep_n.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
