# Empty dependencies file for sweep_n.
# This may be replaced when dependencies are built.
