# Empty dependencies file for fig2_definition_tree.
# This may be replaced when dependencies are built.
