file(REMOVE_RECURSE
  "../bench/fig2_definition_tree"
  "../bench/fig2_definition_tree.pdb"
  "CMakeFiles/fig2_definition_tree.dir/fig2_definition_tree.cpp.o"
  "CMakeFiles/fig2_definition_tree.dir/fig2_definition_tree.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_definition_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
