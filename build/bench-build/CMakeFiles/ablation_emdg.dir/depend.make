# Empty dependencies file for ablation_emdg.
# This may be replaced when dependencies are built.
