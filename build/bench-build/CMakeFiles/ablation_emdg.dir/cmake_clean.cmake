file(REMOVE_RECURSE
  "../bench/ablation_emdg"
  "../bench/ablation_emdg.pdb"
  "CMakeFiles/ablation_emdg.dir/ablation_emdg.cpp.o"
  "CMakeFiles/ablation_emdg.dir/ablation_emdg.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_emdg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
