file(REMOVE_RECURSE
  "../bench/table3_numeric"
  "../bench/table3_numeric.pdb"
  "CMakeFiles/table3_numeric.dir/table3_numeric.cpp.o"
  "CMakeFiles/table3_numeric.dir/table3_numeric.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
