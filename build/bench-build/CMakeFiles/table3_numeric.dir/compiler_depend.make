# Empty compiler generated dependencies file for table3_numeric.
# This may be replaced when dependencies are built.
