# Empty dependencies file for ablation_dhop.
# This may be replaced when dependencies are built.
