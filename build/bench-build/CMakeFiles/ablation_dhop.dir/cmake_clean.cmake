file(REMOVE_RECURSE
  "../bench/ablation_dhop"
  "../bench/ablation_dhop.pdb"
  "CMakeFiles/ablation_dhop.dir/ablation_dhop.cpp.o"
  "CMakeFiles/ablation_dhop.dir/ablation_dhop.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dhop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
