# Empty compiler generated dependencies file for ablation_quiescence.
# This may be replaced when dependencies are built.
