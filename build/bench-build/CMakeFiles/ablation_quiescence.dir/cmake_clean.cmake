file(REMOVE_RECURSE
  "../bench/ablation_quiescence"
  "../bench/ablation_quiescence.pdb"
  "CMakeFiles/ablation_quiescence.dir/ablation_quiescence.cpp.o"
  "CMakeFiles/ablation_quiescence.dir/ablation_quiescence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_quiescence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
