# The `tidy` target: clang-tidy (configuration in .clang-tidy) plus cppcheck
# over the production sources.  Both tools are optional at configure time so
# the target always exists — on machines without them it prints what it
# skipped and exits 0; the CI lint job installs both, so findings still gate
# every push.
find_program(HINET_CLANG_TIDY NAMES clang-tidy)
find_program(HINET_RUN_CLANG_TIDY NAMES run-clang-tidy run-clang-tidy.py)
find_program(HINET_CPPCHECK NAMES cppcheck)

# The directories both tools analyze, listed explicitly so adding a
# subsystem is a reviewed decision rather than a glob accident.  Keep in
# sync with the layer manifest (tools/detlint/layers.txt).
set(HINET_TIDY_DIRS
  src/util
  src/graph
  src/cluster
  src/sim
  src/baseline
  src/core
  src/analysis
  src/service
  tools)

set(_tidy_commands)
set(_tidy_sources)
set(_tidy_dir_paths)
foreach(_dir IN LISTS HINET_TIDY_DIRS)
  file(GLOB_RECURSE _dir_sources CONFIGURE_DEPENDS
    ${CMAKE_SOURCE_DIR}/${_dir}/*.cpp)
  list(APPEND _tidy_sources ${_dir_sources})
  list(APPEND _tidy_dir_paths ${CMAKE_SOURCE_DIR}/${_dir})
endforeach()

if(HINET_CLANG_TIDY)
  if(HINET_RUN_CLANG_TIDY)
    list(APPEND _tidy_commands
      COMMAND ${HINET_RUN_CLANG_TIDY} -quiet -p ${CMAKE_BINARY_DIR}
              "^${CMAKE_SOURCE_DIR}/(src|tools)/")
  else()
    list(APPEND _tidy_commands
      COMMAND ${HINET_CLANG_TIDY} -p ${CMAKE_BINARY_DIR} --quiet
              ${_tidy_sources})
  endif()
else()
  list(APPEND _tidy_commands
    COMMAND ${CMAKE_COMMAND} -E echo
            "tidy: clang-tidy not found, skipping (CI runs it)")
endif()

if(HINET_CPPCHECK)
  list(APPEND _tidy_commands
    COMMAND ${HINET_CPPCHECK}
            --enable=warning,performance,portability
            --std=c++20 --inline-suppr --error-exitcode=1 --quiet
            --suppressions-list=${CMAKE_SOURCE_DIR}/.cppcheck-suppressions
            -I ${CMAKE_SOURCE_DIR}/src -I ${CMAKE_SOURCE_DIR}/tools
            ${_tidy_dir_paths})
else()
  list(APPEND _tidy_commands
    COMMAND ${CMAKE_COMMAND} -E echo
            "tidy: cppcheck not found, skipping (CI runs it)")
endif()

add_custom_target(tidy
  ${_tidy_commands}
  WORKING_DIRECTORY ${CMAKE_SOURCE_DIR}
  COMMENT "tidy: clang-tidy + cppcheck over src/ (incl. service) and tools/"
  VERBATIM)
