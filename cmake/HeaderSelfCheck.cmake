# Header self-sufficiency gate: every public header under src/ must compile
# as the sole include of a translation unit, so users (and tests) can include
# any header first without relying on transitive include order.
#
# One TU is generated per header into an EXCLUDE_FROM_ALL object library; the
# HeaderSelfSufficiency ctest builds that target, so a header that loses an
# include fails the test without breaking the main build.
file(GLOB_RECURSE _hinet_public_headers RELATIVE ${CMAKE_SOURCE_DIR}/src
  CONFIGURE_DEPENDS ${CMAKE_SOURCE_DIR}/src/*.hpp)
list(SORT _hinet_public_headers)

set(_selfcheck_tus)
foreach(_hdr IN LISTS _hinet_public_headers)
  string(MAKE_C_IDENTIFIER ${_hdr} _id)
  set(_tu ${CMAKE_BINARY_DIR}/header_selfcheck/${_id}.cpp)
  set(_content "#include \"${_hdr}\"\n\n// Anchor so the TU is never empty under -Wpedantic.\nnamespace hinet::selfcheck { int anchor_${_id}() { return 0; } }\n")
  # Only rewrite when the content changes, so re-running cmake does not dirty
  # every generated TU.
  set(_stale TRUE)
  if(EXISTS ${_tu})
    file(READ ${_tu} _existing)
    if(_existing STREQUAL _content)
      set(_stale FALSE)
    endif()
  endif()
  if(_stale)
    file(WRITE ${_tu} "${_content}")
  endif()
  list(APPEND _selfcheck_tus ${_tu})
endforeach()

add_library(header_selfcheck OBJECT EXCLUDE_FROM_ALL ${_selfcheck_tus})
target_include_directories(header_selfcheck PRIVATE ${CMAKE_SOURCE_DIR}/src)
target_link_libraries(header_selfcheck PRIVATE hinet_warnings)

add_test(NAME HeaderSelfSufficiency
  COMMAND ${CMAKE_COMMAND} --build ${CMAKE_BINARY_DIR}
          --target header_selfcheck --config $<CONFIG>)
set_tests_properties(HeaderSelfSufficiency PROPERTIES
  LABELS "static_analysis"
  TIMEOUT 600)
