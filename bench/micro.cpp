// Microbenchmarks (google-benchmark): substrate throughput — TokenSet
// algebra, graph generators, clustering, property checking, and end-to-end
// engine rounds.  These quantify simulator cost, not paper results.
#include <benchmark/benchmark.h>

#include "analysis/assignment.hpp"
#include "analysis/scenarios.hpp"
#include "baseline/network_coding.hpp"
#include "cluster/algorithms.hpp"
#include "cluster/dhop.hpp"
#include "cluster/routing.hpp"
#include "core/alg1.hpp"
#include "core/hinet_generator.hpp"
#include "core/hinet_properties.hpp"
#include "core/trace_io.hpp"
#include "graph/adversary.hpp"
#include "graph/generators.hpp"
#include "graph/interval.hpp"
#include "graph/tvg.hpp"
#include "sim/engine.hpp"

namespace hinet {
namespace {

void BM_TokenSetUnite(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  TokenSet a(k), b(k);
  for (std::size_t i = 0; i < k / 2; ++i) {
    a.insert(static_cast<TokenId>(rng.below(k)));
    b.insert(static_cast<TokenId>(rng.below(k)));
  }
  for (auto _ : state) {
    TokenSet c = a;
    benchmark::DoNotOptimize(c.unite(b));
  }
}
BENCHMARK(BM_TokenSetUnite)->Arg(64)->Arg(512)->Arg(4096);

void BM_TokenSetMinDiff(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  TokenSet a(k), b(k);
  for (TokenId t = 0; t < k; t += 2) a.insert(t);
  for (TokenId t = 0; t < k / 2; t += 2) b.insert(t);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.min_diff(b));
  }
}
BENCHMARK(BM_TokenSetMinDiff)->Arg(64)->Arg(4096);

void BM_RandomTree(benchmark::State& state) {
  Rng rng(7);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen::random_tree(n, rng));
  }
}
BENCHMARK(BM_RandomTree)->Arg(100)->Arg(1000);

void BM_GraphBfs(benchmark::State& state) {
  Rng rng(3);
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = gen::random_connected(n, 4 * n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.distances_from(0));
  }
}
BENCHMARK(BM_GraphBfs)->Arg(100)->Arg(1000);

void BM_LowestIdClustering(benchmark::State& state) {
  Rng rng(5);
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = gen::random_connected(n, 4 * n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lowest_id_clustering(g));
  }
}
BENCHMARK(BM_LowestIdClustering)->Arg(100)->Arg(500);

void BM_WcdsClustering(benchmark::State& state) {
  Rng rng(5);
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = gen::random_connected(n, 4 * n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wcds_clustering(g));
  }
}
BENCHMARK(BM_WcdsClustering)->Arg(100)->Arg(300);

void BM_HiNetTraceGeneration(benchmark::State& state) {
  HiNetConfig cfg;
  cfg.nodes = static_cast<std::size_t>(state.range(0));
  cfg.heads = cfg.nodes / 8;
  cfg.phase_length = 16;
  cfg.phases = 8;
  cfg.hop_l = 2;
  cfg.churn_edges = 4;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    cfg.seed = ++seed;
    benchmark::DoNotOptimize(make_hinet_trace(cfg));
  }
}
BENCHMARK(BM_HiNetTraceGeneration)->Arg(64)->Arg(256);

void BM_TIntervalCheck(benchmark::State& state) {
  AdversaryConfig cfg;
  cfg.nodes = 50;
  cfg.interval = 5;
  cfg.rounds = 50;
  cfg.churn_edges = 5;
  cfg.seed = 2;
  GraphSequence seq = make_t_interval_trace(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(is_t_interval_connected(seq, 50, 5));
  }
}
BENCHMARK(BM_TIntervalCheck);

void BM_HiNetPropertyCheck(benchmark::State& state) {
  HiNetConfig cfg;
  cfg.nodes = 64;
  cfg.heads = 8;
  cfg.phase_length = 10;
  cfg.phases = 6;
  cfg.hop_l = 2;
  cfg.seed = 3;
  HiNetTrace trace = make_hinet_trace(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        check_hinet(trace.ctvg, trace.ctvg.round_count(), 10, 2));
  }
}
BENCHMARK(BM_HiNetPropertyCheck);

void BM_EngineAlg1EndToEnd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ScenarioConfig cfg;
  cfg.nodes = n;
  cfg.heads = n / 8;
  cfg.k = 8;
  cfg.alpha = 2;
  cfg.hop_l = 2;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_simulation(make_scenario(Scenario::kHiNetInterval, cfg, ++seed)
                           .spec));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EngineAlg1EndToEnd)->Arg(64)->Arg(128);

void BM_EngineKloFloodEndToEnd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ScenarioConfig cfg;
  cfg.nodes = n;
  cfg.heads = n / 8;
  cfg.k = 8;
  cfg.alpha = 2;
  cfg.hop_l = 2;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_simulation(make_scenario(Scenario::kKloOne, cfg, ++seed).spec));
  }
}
BENCHMARK(BM_EngineKloFloodEndToEnd)->Arg(64)->Arg(128);

void BM_Gf2BasisInsert(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  for (auto _ : state) {
    Gf2Basis basis(k);
    while (!basis.full_rank()) {
      std::vector<std::uint64_t> vec(Gf2Basis::words_for(k));
      for (auto& w : vec) w = rng();
      basis.insert(std::move(vec));
    }
    benchmark::DoNotOptimize(basis.rank());
  }
}
BENCHMARK(BM_Gf2BasisInsert)->Arg(64)->Arg(256);

void BM_TvgForemostArrival(benchmark::State& state) {
  AdversaryConfig cfg;
  cfg.nodes = 40;
  cfg.interval = 4;
  cfg.rounds = 40;
  cfg.churn_edges = 5;
  cfg.seed = 13;
  GraphSequence seq = make_t_interval_trace(cfg);
  Tvg tvg = Tvg::from_sequence(seq, 40);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tvg.foremost_arrival(0, 0));
  }
}
BENCHMARK(BM_TvgForemostArrival);

void BM_DynamicDiameter(benchmark::State& state) {
  AdversaryConfig cfg;
  cfg.nodes = 16;
  cfg.interval = 1;
  cfg.rounds = 24;
  cfg.churn_edges = 3;
  cfg.seed = 14;
  GraphSequence seq = make_t_interval_trace(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dynamic_diameter(seq, 24));
  }
}
BENCHMARK(BM_DynamicDiameter);

void BM_DhopClustering(benchmark::State& state) {
  Rng rng(15);
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = gen::random_connected(n, 3 * n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(maxmin_dhop_clustering(g, 2));
  }
}
BENCHMARK(BM_DhopClustering)->Arg(100)->Arg(300);

void BM_ClusterRouting(benchmark::State& state) {
  Rng rng(16);
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = gen::random_connected(n, 3 * n, rng);
  const HierarchyView h = greedy_dhop_clustering(g, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_cluster_routing(h, g));
  }
}
BENCHMARK(BM_ClusterRouting)->Arg(100)->Arg(300);

void BM_TraceSerialization(benchmark::State& state) {
  HiNetConfig cfg;
  cfg.nodes = 64;
  cfg.heads = 8;
  cfg.phase_length = 10;
  cfg.phases = 6;
  cfg.hop_l = 2;
  cfg.seed = 17;
  HiNetTrace trace = make_hinet_trace(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(serialize_ctvg(trace.ctvg));
  }
}
BENCHMARK(BM_TraceSerialization);

}  // namespace
}  // namespace hinet

BENCHMARK_MAIN();
