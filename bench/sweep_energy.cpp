// Validation figure V7: energy accounting (the WSN motivation made
// concrete).  Total network energy and the most-loaded node's energy for
// each algorithm under a linear radio model — the hierarchy trades lower
// totals for a hotter backbone, which this bench quantifies.
#include "common.hpp"

#include "sim/engine.hpp"

using namespace hinet;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto reps =
      static_cast<std::size_t>(args.get_int("reps", 3, "seeds per cell"));
  const double tx = args.get_double("tx", 1.0, "energy per transmitted token");
  const double rx = args.get_double("rx", 0.5, "energy per received token");
  const std::size_t jobs = args.get_jobs();

  return bench::run_main(args, "V7 — energy accounting", [&] {
    std::cout << "=== V7: radio energy per algorithm (n0=64, heads=8, k=6, "
                 "alpha=2, L=2; tx=" << tx << ", rx=" << rx << ") ===\n\n";
    const EnergyModel model{tx, rx, 0.0};
    ScenarioConfig cfg;
    cfg.nodes = 64;
    cfg.heads = 8;
    cfg.k = 6;
    cfg.alpha = 2;
    cfg.hop_l = 2;
    cfg.reaffiliation_prob = 0.1;

    TextTable t({"scenario", "total energy", "mean node", "max node",
                 "max/mean", "delivery%"});
    for (Scenario s : {Scenario::kKloInterval, Scenario::kHiNetInterval,
                       Scenario::kKloOne, Scenario::kHiNetOne}) {
      double total_sum = 0.0, max_sum = 0.0;
      std::size_t delivered = 0;
      const auto runs =
          run_replicates(scenario_factory(s, cfg), reps, 0, jobs);
      for (const ReplicateResult& r : runs) {
        total_sum += total_energy(r.metrics, model);
        max_sum += max_node_energy(r.metrics, model);
        if (r.metrics.all_delivered) ++delivered;
      }
      const double total = total_sum / static_cast<double>(reps);
      const double mean_node = total / static_cast<double>(cfg.nodes);
      const double max_node = max_sum / static_cast<double>(reps);
      t.add(scenario_name(s), total, mean_node, max_node,
            mean_node > 0.0 ? max_node / mean_node : 0.0,
            static_cast<double>(delivered) / static_cast<double>(reps) *
                100.0);
    }
    std::cout << t;
    std::cout << "\nReading: the hierarchy lowers both the network total "
                 "(members stay silent) and\nthe per-node peak — KLO makes "
                 "every node pay the full broadcast bill, so even\nits "
                 "busiest node outspends a cluster head.  The max/mean "
                 "column shows load\nconcentration: the backbone carries a "
                 "similar *relative* share in both designs.\n";
  });
}
