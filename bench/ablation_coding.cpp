// Ablation A3: token forwarding vs pipelining vs network coding.
//
// Haeupler & Karger [8] improved KLO's bounds via network coding; the
// paper's Section II cites this as the state of the art it trades against.
// This bench measures all dissemination strategies on identical
// adversarial T-interval traces: rounds to completion and tokens sent.
#include "common.hpp"

#include "analysis/assignment.hpp"
#include "baseline/flooding.hpp"
#include "baseline/gossip.hpp"
#include "baseline/klo.hpp"
#include "baseline/network_coding.hpp"
#include "graph/adversary.hpp"
#include "sim/engine.hpp"

using namespace hinet;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto nodes =
      static_cast<std::size_t>(args.get_int("nodes", 24, "network size"));
  const auto k =
      static_cast<std::size_t>(args.get_int("k", 6, "token count"));
  const auto reps =
      static_cast<std::size_t>(args.get_int("reps", 3, "seeds per cell"));

  return bench::run_main(args, "A3 — dissemination-strategy ablation", [&] {
    std::cout << "=== A3: forwarding vs pipelining vs coding on adversarial "
                 "T-interval traces ===\n\n";
    TextTable t({"T", "algorithm", "delivery%", "rounds (mean)",
                 "tokens (mean)"});
    const std::size_t horizon = 6 * nodes;
    for (std::size_t interval : {1u, 4u, 8u}) {
      struct Cell {
        const char* name;
        std::function<std::vector<ProcessPtr>(const std::vector<TokenSet>&,
                                              std::uint64_t)> make;
      };
      const Cell cells[] = {
          {"KLO token forwarding",
           [&](const std::vector<TokenSet>& init, std::uint64_t) {
             KloFloodParams p;
             p.k = k;
             p.rounds = horizon;
             return make_klo_flood_processes(init, p);
           }},
          {"KLO pipeline",
           [&](const std::vector<TokenSet>& init, std::uint64_t) {
             KloPipelineParams p;
             p.k = k;
             p.phase_length = std::max<std::size_t>(interval, k + 2);
             p.phases = horizon / p.phase_length;
             return make_klo_pipeline_processes(init, p);
           }},
          {"RLNC coding",
           [&](const std::vector<TokenSet>& init, std::uint64_t seed) {
             NetworkCodingParams p;
             p.k = k;
             p.rounds = horizon;
             p.seed = seed ^ 0xabcdULL;
             return make_network_coding_processes(init, p);
           }},
          {"classic flooding",
           [&](const std::vector<TokenSet>& init, std::uint64_t) {
             FloodingParams p;
             p.k = k;
             p.rounds = horizon;
             return make_flooding_processes(init, p);
           }},
          {"push gossip",
           [&](const std::vector<TokenSet>& init, std::uint64_t seed) {
             GossipParams p;
             p.k = k;
             p.rounds = horizon;
             p.seed = seed ^ 0x1111ULL;
             return make_gossip_processes(init, p);
           }},
      };
      for (const Cell& cell : cells) {
        double rounds_sum = 0.0, tokens_sum = 0.0;
        std::size_t delivered = 0;
        for (std::uint64_t seed = 0; seed < reps; ++seed) {
          AdversaryConfig cfg;
          cfg.nodes = nodes;
          cfg.interval = interval;
          cfg.rounds = horizon;
          cfg.churn_edges = 3;
          cfg.seed = seed;
          GraphSequence net = make_t_interval_trace(cfg);
          Rng rng(seed ^ 0x4242ULL);
          const auto init =
              assign_tokens(nodes, k, AssignmentMode::kDistinctRandom, rng);
          Engine engine(net, nullptr, cell.make(init, seed));
          const SimMetrics m =
              engine.run({.max_rounds = horizon, .stop_when_complete = true});
          if (m.all_delivered) {
            ++delivered;
            rounds_sum += static_cast<double>(m.rounds_to_completion);
          }
          tokens_sum += static_cast<double>(m.tokens_sent);
        }
        const double dr = static_cast<double>(delivered) /
                          static_cast<double>(reps) * 100.0;
        t.add(interval, cell.name, dr,
              delivered > 0 ? rounds_sum / static_cast<double>(delivered)
                            : 0.0,
              tokens_sum / static_cast<double>(reps));
      }
    }
    std::cout << t;
    std::cout << "\nReading: RLNC completes with ~1 token-equivalent per "
                 "packet; the oracle-stopped\ntoken counts here show the "
                 "coding advantage [8] on the same traces the paper's\n"
                 "hierarchy exploits differently (structure vs coding).\n";
  });
}
