// Regenerates Fig. 2: the relationship tree among Definitions 2-8 — and,
// beyond the paper's static drawing, *audits* the implication structure on
// generated traces: whenever a parent definition holds, its children must
// hold too.
#include "common.hpp"

#include "core/hinet_generator.hpp"
#include "core/hinet_properties.hpp"

using namespace hinet;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto seeds = static_cast<std::uint64_t>(
      args.get_int("seeds", 8, "number of audited traces"));

  return bench::run_main(args, "Fig. 2 — definition relationship tree", [&] {
    std::cout << "=== Fig. 2: Relationship among definitions on dynamics of "
                 "clusters ===\n\n";
    std::cout <<
        "  (T,L)-HiNet (Def. 8)\n"
        "  ├── T-interval Stable Hierarchy, Th (Def. 4)\n"
        "  │   ├── T-interval Stable Cluster Head Set, Ts (Def. 2)\n"
        "  │   └── T-interval Stable Cluster, Tc (Def. 3, every cluster)\n"
        "  └── T-interval L-hop Cluster Head Connectivity (Def. 7)\n"
        "      ├── T-interval Cluster Head Connectivity, Td (Def. 5)\n"
        "      └── L-hop Cluster Head Connectivity (Def. 6)\n\n";

    std::cout << "Implication audit on " << seeds
              << " generated traces (parent holds => children hold):\n\n";
    TextTable t({"seed", "Def8", "Def4", "Def2", "Def3(all)", "Def7", "Def5",
                 "Def6<=L", "consistent"});
    std::size_t violations = 0;
    for (std::uint64_t seed = 0; seed < seeds; ++seed) {
      HiNetConfig cfg;
      cfg.nodes = 36;
      cfg.heads = 5;
      cfg.phase_length = 6;
      cfg.phases = 4;
      cfg.hop_l = 2;
      cfg.reaffiliation_prob = 0.25;
      cfg.churn_edges = 4;
      cfg.seed = seed;
      HiNetTrace trace = make_hinet_trace(cfg);
      Ctvg& g = trace.ctvg;
      const std::size_t rounds = g.round_count();
      const bool d8 = static_cast<bool>(
          check_hinet(g, rounds, cfg.phase_length, cfg.hop_l));
      const bool d4 =
          static_cast<bool>(check_stable_hierarchy(g, rounds, cfg.phase_length));
      const bool d2 =
          static_cast<bool>(check_stable_head_set(g, rounds, cfg.phase_length));
      bool d3 = true;
      for (NodeId kk = 0; kk < g.node_count(); ++kk) {
        d3 = d3 && static_cast<bool>(
                       check_stable_cluster(g, rounds, cfg.phase_length, kk));
      }
      const bool d7 = static_cast<bool>(
          check_t_interval_l_hop(g, rounds, cfg.phase_length, cfg.hop_l));
      const bool d5 =
          static_cast<bool>(check_head_connectivity(g, rounds, cfg.phase_length));
      const int l0 = measure_l_hop(g, 0);
      const bool d6 = l0 >= 0 && l0 <= cfg.hop_l;

      const bool consistent = (!d8 || (d4 && d7)) && (!d4 || (d2 && d3)) &&
                              (!d7 || (d5 && d6));
      if (!consistent) ++violations;
      auto yn = [](bool b) { return b ? "yes" : "no"; };
      t.add(seed, yn(d8), yn(d4), yn(d2), yn(d3), yn(d7), yn(d5), yn(d6),
            consistent ? "OK" : "VIOLATED");
    }
    std::cout << t;
    std::cout << "\nImplication violations: " << violations << '\n';
  });
}
