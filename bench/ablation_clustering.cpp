// Ablation A1: which clustering substrate should carry the hierarchy?
//
// The paper treats clustering as out of scope, but the cost model depends
// on what the clustering delivers (θ, n_m, gateway count, L).  This bench
// runs all three 1-hop schemes plus the d-hop extensions on identical
// topologies and measures the hierarchy shape and the end-to-end cost of
// Algorithm 2 on a maintained mobility trace.
#include "common.hpp"

#include "analysis/assignment.hpp"
#include "baseline/klo.hpp"
#include "cluster/dhop.hpp"
#include "cluster/maintenance.hpp"
#include "cluster/metrics.hpp"
#include "core/alg2.hpp"
#include "graph/generators.hpp"
#include "graph/mobility.hpp"
#include "sim/engine.hpp"

using namespace hinet;

namespace {

struct Scheme {
  const char* name;
  ClusterMaintainer::InitialClustering fn;
};

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto nodes =
      static_cast<std::size_t>(args.get_int("nodes", 48, "network size"));
  const auto k =
      static_cast<std::size_t>(args.get_int("k", 5, "token count"));
  const auto seed =
      static_cast<std::uint64_t>(args.get_int("seed", 7, "seed"));

  return bench::run_main(args, "A1 — clustering-scheme ablation", [&] {
    std::cout << "=== A1: clustering substrate ablation ===\n\n";

    // Part 1: hierarchy shape on one random geometric snapshot.
    Rng rng(seed);
    const auto pts = gen::random_points(nodes, rng);
    const Graph g = gen::geometric(pts, 0.3);
    std::cout << "Snapshot: " << nodes << "-node geometric graph, radius "
              << 0.3 << ", " << g.edge_count() << " edges\n\n";
    TextTable shape({"scheme", "heads", "gateways", "members", "L (Def.6)"});
    const Scheme schemes[] = {
        {"lowest-ID", lowest_id_clustering},
        {"highest-degree", highest_degree_clustering},
        {"greedy WCDS", wcds_clustering},
        {"greedy 2-hop", [](const Graph& gg) {
           return greedy_dhop_clustering(gg, 2);
         }},
        {"Max-Min 2-hop", [](const Graph& gg) {
           return maxmin_dhop_clustering(gg, 2);
         }},
    };
    for (const Scheme& s : schemes) {
      const HierarchyView h = s.fn(g);
      shape.add(s.name, h.head_count(), h.gateway_count(), h.member_count(),
                measure_l_hop_connectivity(h, g));
    }
    std::cout << shape << '\n';

    // Part 2: end-to-end Algorithm 2 on a maintained mobility trace, one
    // run per 1-hop scheme (d-hop hierarchies violate Alg. 2's 1-hop
    // member-upload assumption and are excluded).
    std::cout << "Algorithm 2 on a random-waypoint trace, hierarchy "
                 "maintained per scheme:\n\n";
    TextTable e2e({"scheme", "theta", "n_m", "reaffs", "delivered",
                   "tokens sent"});
    for (const Scheme& s : {schemes[0], schemes[1], schemes[2]}) {
      MobilityConfig mob;
      mob.nodes = nodes;
      mob.radius = 0.35;
      mob.rounds = nodes;
      mob.seed = seed;
      MobilityTrace trace(mob);
      MaintainedHierarchy mh = maintain_over(trace.network(), mob.rounds, s.fn);
      const HierarchyMetrics hm = measure_hierarchy(mh.hierarchy, mob.rounds);

      Rng arng(seed ^ 0x77ULL);
      const auto init =
          assign_tokens(nodes, k, AssignmentMode::kDistinctRandom, arng);
      Alg2Params p;
      p.k = k;
      p.rounds = mob.rounds;
      Engine engine(trace.network(), &mh.hierarchy,
                    make_alg2_processes(init, p));
      const SimMetrics m =
          engine.run({.max_rounds = mob.rounds, .stop_when_complete = false});
      e2e.add(s.name, hm.max_heads, hm.mean_members,
              static_cast<long long>(mh.stats.reaffiliations),
              m.all_delivered ? "yes" : "no", m.tokens_sent);
    }
    // Flat baseline for reference.
    {
      MobilityConfig mob;
      mob.nodes = nodes;
      mob.radius = 0.35;
      mob.rounds = nodes;
      mob.seed = seed;
      MobilityTrace trace(mob);
      Rng arng(seed ^ 0x77ULL);
      const auto init =
          assign_tokens(nodes, k, AssignmentMode::kDistinctRandom, arng);
      KloFloodParams p;
      p.k = k;
      p.rounds = mob.rounds;
      Engine engine(trace.network(), nullptr,
                    make_klo_flood_processes(init, p));
      const SimMetrics m =
          engine.run({.max_rounds = mob.rounds, .stop_when_complete = false});
      e2e.add("(flat KLO reference)", "-", "-", "-",
              m.all_delivered ? "yes" : "no", m.tokens_sent);
    }
    std::cout << e2e;
  });
}
