// Engine delivery hot-path benchmark.
//
// Measures the per-round delivery machinery itself (send step, channel,
// inbox construction, receive step, completion tracking) with the most
// delivery-heavy workload in the repo: KLO full-broadcast flooding on a
// (1, L)-HiNet trace, where every node transmits its whole token set every
// round.  Trace generation and process construction happen outside the
// timed region, so rounds/sec and delivered-tokens/sec reflect Engine::run
// alone.
//
// Two trace modes feed the same workload:
//   - materialized: the whole GraphSequence is resident (the historical
//     path, memory O(n · Γ)) — kept for the small sizes so throughput
//     stays comparable with the pre-streaming baseline;
//   - streaming: rounds are synthesized on demand through make_hinet_stream
//     with a 2-round ring, memory O(n · W) — the only mode that reaches
//     n = 10^4 and 10^5 (a materialized trace at n = 10^5 × 400 rounds
//     would need several GiB; CI pins this with an address-space rlimit).
// The memory columns report the process RSS sampled right after the timed
// run with the spec still alive (resident, attributable to the trace +
// engine) and the process-lifetime peak (monotone; points run
// smallest-first so each reading is attributable).
//
// Results go to stdout and, with --out, to a BENCH_*.json file;
// BENCH_engine_hotpath.json keeps the streaming-vs-materialized comparison
// on record.
#include "common.hpp"

#include <chrono>
#include <cstdlib>
#include <numeric>

#include "baseline/klo.hpp"
#include "core/hinet_generator.hpp"
#include "sim/engine.hpp"

using namespace hinet;

namespace {

struct Point {
  std::size_t nodes = 0;
  std::size_t rounds = 0;
  bool streaming = false;
  double seconds = 0.0;             ///< best-of-reps wall time of Engine::run
  double rounds_per_second = 0.0;
  std::size_t delivered_tokens = 0; ///< Σ per_node_rx_tokens of one run
  double delivered_tokens_per_second = 0.0;
  std::size_t tokens_sent = 0;
  std::size_t resident_bytes = 0;   ///< RSS after the run, spec alive
  std::size_t peak_rss_bytes = 0;   ///< process high-water mark after point
  double bytes_per_node = 0.0;      ///< resident_bytes / nodes
};

SimulationSpec build_spec(std::size_t nodes, std::size_t rounds, std::size_t k,
                          std::uint64_t seed, bool streaming) {
  ScenarioConfig cfg;
  cfg.nodes = nodes;
  cfg.heads = std::max<std::size_t>(2, nodes / 8);
  cfg.k = k;
  cfg.alpha = 2;
  cfg.hop_l = 2;
  HiNetConfig gen = scenario_generator(Scenario::kKloOne, cfg, seed);
  gen.phases = rounds;  // shorten the trace to the measured horizon

  Rng assign_rng(seed ^ 0xa5a5a5a5a5a5a5a5ULL);
  const auto initial =
      assign_tokens(nodes, k, AssignmentMode::kDistinctRandom, assign_rng);

  KloFloodParams p;
  p.k = k;
  p.rounds = rounds;

  SimulationSpec spec;
  if (streaming) {
    HiNetStream stream = make_hinet_stream(gen);
    spec.network = std::move(stream.topology);
  } else {
    HiNetTrace trace = make_hinet_trace(gen);
    spec.network =
        std::make_unique<GraphSequence>(std::move(trace.ctvg.topology()));
  }
  spec.processes = make_klo_flood_processes(initial, p);
  spec.engine.max_rounds = rounds;
  spec.engine.stop_when_complete = false;
  return spec;
}

Point measure(std::size_t nodes, std::size_t rounds, std::size_t k,
              std::uint64_t seed, std::size_t reps, bool streaming) {
  Point pt;
  pt.nodes = nodes;
  pt.rounds = rounds;
  pt.streaming = streaming;
  pt.seconds = -1.0;
  for (std::size_t rep = 0; rep < reps + 1; ++rep) {
    Engine engine(build_spec(nodes, rounds, k, seed, streaming));
    const auto t0 = std::chrono::steady_clock::now();
    const SimMetrics m = engine.run();
    const auto t1 = std::chrono::steady_clock::now();
    // Sample memory while the engine (and thus the trace) is still alive,
    // so the reading reflects this configuration's working set.
    pt.resident_bytes = bench::current_rss_bytes();
    pt.peak_rss_bytes = bench::peak_rss_bytes();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    if (rep == 0) continue;  // warm-up
    if (pt.seconds < 0.0 || secs < pt.seconds) pt.seconds = secs;
    pt.delivered_tokens = std::accumulate(m.per_node_rx_tokens.begin(),
                                          m.per_node_rx_tokens.end(),
                                          std::size_t{0});
    pt.tokens_sent = m.tokens_sent;
    HINET_ENSURE(m.rounds_executed == rounds, "bench ran short");
  }
  pt.rounds_per_second = static_cast<double>(rounds) / pt.seconds;
  pt.delivered_tokens_per_second =
      static_cast<double>(pt.delivered_tokens) / pt.seconds;
  pt.bytes_per_node = static_cast<double>(pt.resident_bytes) /
                      static_cast<double>(nodes);
  return pt;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto reps = static_cast<std::size_t>(
      args.get_int("reps", 3, "timed repetitions per size (best is kept)"));
  const auto seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1, "trace seed"));
  const auto k = static_cast<std::size_t>(
      args.get_int("k", 16, "token universe size"));
  const auto only_nodes = static_cast<std::size_t>(args.get_int(
      "nodes", 0, "measure a single network size (0 = the full sweep)"));
  const auto only_rounds = static_cast<std::size_t>(args.get_int(
      "rounds", 0, "rounds for --nodes (0 = min(nodes-1, 150))"));
  const std::string mode = args.get_string(
      "mode", "both",
      "trace mode: both | materialized | streaming (with --nodes the "
      "default is streaming)");
  const std::string out_path = args.get_string(
      "out", "", "write BENCH json to this path (empty = stdout only)");

  return bench::run_main(args, "engine delivery hot-path throughput", [&] {
    struct Size {
      std::size_t nodes;
      std::size_t rounds;
      bool streaming;
    };
    const bool want_mat = mode == "both" || mode == "materialized";
    const bool want_stream = mode == "both" || mode == "streaming";
    if (!want_mat && !want_stream) {
      std::cerr << "unknown --mode: " << mode
                << " (expected both | materialized | streaming)\n";
      std::exit(2);
    }
    std::vector<Size> sizes;
    if (only_nodes != 0) {
      const std::size_t r =
          only_rounds != 0
              ? only_rounds
              : std::min(only_nodes - 1, static_cast<std::size_t>(150));
      // A single explicit size defaults to the streaming path (the mode
      // that scales); ask for --mode=materialized to compare.
      sizes.push_back({only_nodes, r, mode != "materialized"});
    } else {
      // Smallest-first so the monotone peak-RSS column stays attributable;
      // the large-n points exist only on the streaming path.
      if (want_mat) {
        sizes.push_back({100, 99, false});
        sizes.push_back({400, 150, false});
        sizes.push_back({1000, 120, false});
      }
      if (want_stream) {
        sizes.push_back({1000, 120, true});  // cross-mode comparison point
        sizes.push_back({10000, 100, true});
        sizes.push_back({100000, 50, true});
      }
    }

    std::cout << "=== Engine delivery hot path (KLO flood on (1, L)-HiNet, "
                 "k=" << k << ", seed=" << seed << ") ===\n\n";
    TextTable t({"n", "rounds", "mode", "wall s", "rounds/s",
                 "delivered tok/s", "rss MiB", "B/node"});
    std::vector<Point> points;
    for (const Size& s : sizes) {
      const Point p = measure(s.nodes, s.rounds, k, seed, reps, s.streaming);
      t.add(p.nodes, p.rounds, p.streaming ? "streaming" : "materialized",
            p.seconds, p.rounds_per_second, p.delivered_tokens_per_second,
            static_cast<double>(p.resident_bytes) / (1024.0 * 1024.0),
            p.bytes_per_node);
      points.push_back(p);
    }
    std::cout << t;
    std::cout << "\nmemory: rss MiB samples the process RSS right after the "
                 "timed run with the trace\nstill alive; on the streaming "
                 "path it stays O(n * window) regardless of rounds,\non the "
                 "materialized path it grows with n * rounds.\n";

    if (!out_path.empty()) {
      std::ofstream f(out_path);
      f << "{\n";
      f << "  \"bench\": \"engine_hotpath\",\n";
      f << "  \"workload\": \"klo_flood_on_hinet_one_trace\",\n";
      f << "  \"k\": " << k << ",\n";
      f << "  \"seed\": " << seed << ",\n";
      f << "  \"reps\": " << reps << ",\n";
      f << "  \"notes\": \"resident_bytes = process RSS sampled after the "
           "timed run with the spec alive; peak_rss_bytes = process "
           "high-water mark (monotone, points run smallest-first). "
           "Streaming points hold only a 2-round ring, so resident_bytes "
           "is O(n) while materialized grows O(n*rounds).\",\n";
      f << "  \"points\": [\n";
      for (std::size_t i = 0; i < points.size(); ++i) {
        const Point& p = points[i];
        f << "    {\"nodes\": " << p.nodes << ", \"rounds\": " << p.rounds
          << ", \"mode\": \"" << (p.streaming ? "streaming" : "materialized")
          << "\", \"seconds\": " << p.seconds
          << ", \"rounds_per_second\": " << p.rounds_per_second
          << ", \"delivered_tokens_per_second\": "
          << p.delivered_tokens_per_second
          << ", \"tokens_sent\": " << p.tokens_sent
          << ", \"resident_bytes\": " << p.resident_bytes
          << ", \"peak_rss_bytes\": " << p.peak_rss_bytes
          << ", \"bytes_per_node\": " << p.bytes_per_node << "}"
          << (i + 1 < points.size() ? "," : "") << "\n";
      }
      f << "  ]\n}\n";
      std::cout << "\nJSON written to " << out_path << '\n';
    }
  });
}
