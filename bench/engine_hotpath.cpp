// Engine delivery hot-path benchmark.
//
// Measures the per-round delivery machinery itself (send step, channel,
// inbox construction, receive step, completion tracking) with the most
// delivery-heavy workload in the repo: KLO full-broadcast flooding on a
// (1, L)-HiNet trace, where every node transmits its whole token set every
// round.  Trace generation and process construction happen outside the
// timed region, so rounds/sec and delivered-tokens/sec reflect Engine::run
// alone.  Results go to stdout and, with --out, to a BENCH_*.json file;
// BENCH_engine_hotpath.json keeps the pre-refactor baseline next to the
// current numbers.
#include "common.hpp"

#include <chrono>
#include <fstream>
#include <numeric>

#include "baseline/klo.hpp"
#include "core/hinet_generator.hpp"
#include "sim/engine.hpp"

using namespace hinet;

namespace {

struct Point {
  std::size_t nodes = 0;
  std::size_t rounds = 0;
  double seconds = 0.0;             ///< best-of-reps wall time of Engine::run
  double rounds_per_second = 0.0;
  std::size_t delivered_tokens = 0; ///< Σ per_node_rx_tokens of one run
  double delivered_tokens_per_second = 0.0;
  std::size_t tokens_sent = 0;
};

SimulationSpec build_spec(std::size_t nodes, std::size_t rounds, std::size_t k,
                          std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.nodes = nodes;
  cfg.heads = std::max<std::size_t>(2, nodes / 8);
  cfg.k = k;
  cfg.alpha = 2;
  cfg.hop_l = 2;
  HiNetConfig gen = scenario_generator(Scenario::kKloOne, cfg, seed);
  gen.phases = rounds;  // shorten the trace to the measured horizon
  HiNetTrace trace = make_hinet_trace(gen);

  Rng assign_rng(seed ^ 0xa5a5a5a5a5a5a5a5ULL);
  const auto initial =
      assign_tokens(nodes, k, AssignmentMode::kDistinctRandom, assign_rng);

  KloFloodParams p;
  p.k = k;
  p.rounds = rounds;

  SimulationSpec spec;
  spec.network =
      std::make_unique<GraphSequence>(std::move(trace.ctvg.topology()));
  spec.processes = make_klo_flood_processes(initial, p);
  spec.engine.max_rounds = rounds;
  spec.engine.stop_when_complete = false;
  return spec;
}

Point measure(std::size_t nodes, std::size_t rounds, std::size_t k,
              std::uint64_t seed, std::size_t reps) {
  Point pt;
  pt.nodes = nodes;
  pt.rounds = rounds;
  pt.seconds = -1.0;
  for (std::size_t rep = 0; rep < reps + 1; ++rep) {
    SimulationSpec spec = build_spec(nodes, rounds, k, seed);
    const auto t0 = std::chrono::steady_clock::now();
    const SimMetrics m = run_simulation(std::move(spec));
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    if (rep == 0) continue;  // warm-up
    if (pt.seconds < 0.0 || secs < pt.seconds) pt.seconds = secs;
    pt.delivered_tokens = std::accumulate(m.per_node_rx_tokens.begin(),
                                          m.per_node_rx_tokens.end(),
                                          std::size_t{0});
    pt.tokens_sent = m.tokens_sent;
    HINET_ENSURE(m.rounds_executed == rounds, "bench ran short");
  }
  pt.rounds_per_second = static_cast<double>(rounds) / pt.seconds;
  pt.delivered_tokens_per_second =
      static_cast<double>(pt.delivered_tokens) / pt.seconds;
  return pt;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto reps = static_cast<std::size_t>(
      args.get_int("reps", 3, "timed repetitions per size (best is kept)"));
  const auto seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1, "trace seed"));
  const auto k = static_cast<std::size_t>(
      args.get_int("k", 16, "token universe size"));
  const auto only_nodes = static_cast<std::size_t>(args.get_int(
      "nodes", 0, "measure a single network size (0 = the full sweep)"));
  const std::string out_path = args.get_string(
      "out", "", "write BENCH json to this path (empty = stdout only)");

  return bench::run_main(args, "engine delivery hot-path throughput", [&] {
    struct Size {
      std::size_t nodes;
      std::size_t rounds;
    };
    std::vector<Size> sizes;
    if (only_nodes != 0) {
      sizes.push_back({only_nodes, std::min(only_nodes - 1,
                                            static_cast<std::size_t>(150))});
    } else {
      sizes = {{100, 99}, {400, 150}, {1000, 120}};
    }

    std::cout << "=== Engine delivery hot path (KLO flood on (1, L)-HiNet, "
                 "k=" << k << ", seed=" << seed << ") ===\n\n";
    TextTable t({"n", "rounds", "wall s", "rounds/s", "delivered tok/s",
                 "tokens sent"});
    std::vector<Point> points;
    for (const Size& s : sizes) {
      const Point p = measure(s.nodes, s.rounds, k, seed, reps);
      t.add(p.nodes, p.rounds, p.seconds, p.rounds_per_second,
            p.delivered_tokens_per_second, p.tokens_sent);
      points.push_back(p);
    }
    std::cout << t;

    if (!out_path.empty()) {
      std::ofstream f(out_path);
      f << "{\n";
      f << "  \"bench\": \"engine_hotpath\",\n";
      f << "  \"workload\": \"klo_flood_on_hinet_one_trace\",\n";
      f << "  \"k\": " << k << ",\n";
      f << "  \"seed\": " << seed << ",\n";
      f << "  \"reps\": " << reps << ",\n";
      f << "  \"points\": [\n";
      for (std::size_t i = 0; i < points.size(); ++i) {
        const Point& p = points[i];
        f << "    {\"nodes\": " << p.nodes << ", \"rounds\": " << p.rounds
          << ", \"seconds\": " << p.seconds
          << ", \"rounds_per_second\": " << p.rounds_per_second
          << ", \"delivered_tokens_per_second\": "
          << p.delivered_tokens_per_second
          << ", \"tokens_sent\": " << p.tokens_sent << "}"
          << (i + 1 < points.size() ? "," : "") << "\n";
      }
      f << "  ]\n}\n";
      std::cout << "\nJSON written to " << out_path << '\n';
    }
  });
}
