// Ablation A4: scheduled vs adaptive termination.
//
// The theorems prescribe worst-case schedules (M phases / n-1 rounds); the
// paper notes heads "can stop broadcasting after a specific number of time
// intervals".  This ablation measures the cost saved and the delivery risk
// introduced by adaptive quiescence at several thresholds.
#include "common.hpp"

#include "analysis/assignment.hpp"
#include "core/alg2.hpp"
#include "core/hinet_generator.hpp"
#include "sim/engine.hpp"

using namespace hinet;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto reps =
      static_cast<std::size_t>(args.get_int("reps", 5, "seeds per cell"));
  const auto nodes =
      static_cast<std::size_t>(args.get_int("nodes", 48, "network size"));
  const auto k =
      static_cast<std::size_t>(args.get_int("k", 5, "token count"));

  return bench::run_main(args, "A4 — scheduled vs adaptive termination", [&] {
    std::cout << "=== A4: Algorithm 2 quiescence ablation ((1,L)-HiNet, n0="
              << nodes << ", k=" << k << ") ===\n\n";
    TextTable t({"quiescence", "delivery%", "tokens (mean)",
                 "saving vs schedule"});
    double baseline_tokens = 0.0;
    for (std::size_t q : {0u, 2u, 4u, 8u, 16u}) {
      double tokens_sum = 0.0;
      std::size_t delivered = 0;
      for (std::uint64_t seed = 0; seed < reps; ++seed) {
        HiNetConfig gen;
        gen.nodes = nodes;
        gen.heads = nodes / 6;
        gen.phase_length = 1;
        gen.phases = nodes - 1;
        gen.hop_l = 2;
        gen.reaffiliation_prob = 0.1;
        gen.seed = seed;
        HiNetTrace trace = make_hinet_trace(gen);
        Rng arng(seed ^ 0xcafeULL);
        const auto init =
            assign_tokens(nodes, k, AssignmentMode::kDistinctRandom, arng);
        Alg2Params p;
        p.k = k;
        p.rounds = nodes - 1;
        p.quiescence_rounds = q;
        Engine engine(trace.ctvg.topology(), &trace.ctvg.hierarchy(),
                      make_alg2_processes(init, p));
        const SimMetrics m = engine.run(
            {.max_rounds = nodes - 1, .stop_when_complete = false});
        tokens_sum += static_cast<double>(m.tokens_sent);
        if (m.all_delivered) ++delivered;
      }
      const double mean = tokens_sum / static_cast<double>(reps);
      if (q == 0) baseline_tokens = mean;
      std::ostringstream saving;
      if (q == 0) {
        saving << "(baseline)";
      } else {
        saving << (1.0 - mean / baseline_tokens) * 100.0 << "%";
      }
      t.add(q == 0 ? std::string("off (full schedule)") : std::to_string(q),
            static_cast<double>(delivered) / static_cast<double>(reps) *
                100.0,
            mean, saving.str());
    }
    std::cout << t;
    std::cout << "\nReading: small thresholds risk stopping before slow "
                 "tokens arrive; a modest\nthreshold keeps 100% delivery on "
                 "these traces while cutting the tail of the\nworst-case "
                 "schedule.\n";
  });
}
