// Validation figure V4: time and communication versus the schedule knobs
// α and L.  Larger α shortens the schedule (fewer phases) at the price of
// longer phases; larger L stretches the backbone.  Includes L in {1..4},
// covering the paper's future-work multi-hop-cluster case (L between
// adjacent heads beyond the 1-hop bound of 3).
#include "common.hpp"

using namespace hinet;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto reps =
      static_cast<std::size_t>(args.get_int("reps", 3, "seeds per point"));
  const auto seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1, "base seed"));
  const std::string csv_path =
      args.get_string("csv", "", "write CSV to this path (empty = skip)");
  const std::size_t jobs = args.get_jobs();

  return bench::run_main(args, "Sweep V4 — cost vs alpha and L", [&] {
    std::cout << "=== V4: Algorithm 1 cost vs alpha and L (n0=72, heads=8, "
                 "k=6) ===\n\n";
    std::vector<std::string> header{"alpha",       "L",
                                    "sched_rounds", "rounds_meas",
                                    "comm_meas",   "comm_analytic",
                                    "delivery"};
    std::unique_ptr<CsvWriter> csv;
    if (csv_path.empty()) {
      csv = std::make_unique<CsvWriter>(header);
    } else {
      csv = std::make_unique<CsvWriter>(csv_path, header);
    }

    TextTable t({"alpha", "L", "sched", "rounds meas", "comm meas",
                 "comm analytic", "delivery%"});
    for (std::size_t alpha : {1u, 2u, 4u}) {
      for (int l : {1, 2, 3, 4}) {
        ScenarioConfig cfg;
        cfg.nodes = 72;
        cfg.heads = 8;
        cfg.k = 6;
        cfg.alpha = alpha;
        cfg.hop_l = l;
        cfg.reaffiliation_prob = 0.1;
        const bench::MeasuredRow row = bench::measure_scenario(
            Scenario::kHiNetInterval, cfg, reps, seed, jobs);
        const auto [at, ac] = bench::analytic_costs(Scenario::kHiNetInterval,
                                                    row.analytic);
        (void)at;
        t.add(alpha, l, row.time_sched, row.time_mean, row.comm_mean, ac,
              row.delivery * 100.0);
        csv->row(alpha, l, row.time_sched, row.time_mean, row.comm_mean, ac,
                 row.delivery);
      }
    }
    std::cout << t;
    if (!csv_path.empty()) std::cout << "\nCSV written to " << csv_path << '\n';
  });
}
