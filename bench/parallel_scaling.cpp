// Parallel-runner scaling benchmark.
//
// Runs a fixed repetition batch of one scenario at several worker counts,
// checks that every parallel run reproduces the serial statistics exactly
// (the runner's core contract), and reports wall time, throughput and
// speedup per worker count.  Results go to stdout and, with --out, to a
// BENCH_*.json file for the repo's record of measured numbers.
#include "common.hpp"

#include <fstream>
#include <thread>

using namespace hinet;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto reps = static_cast<std::size_t>(
      args.get_int("reps", 16, "repetitions in the batch"));
  const auto seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1, "base seed"));
  const auto nodes = static_cast<std::size_t>(
      args.get_int("nodes", 100, "network size of the workload"));
  const auto max_jobs = static_cast<std::size_t>(
      args.get_int("max-jobs", 8, "largest worker count to measure"));
  const std::string out_path = args.get_string(
      "out", "", "write BENCH json to this path (empty = stdout only)");

  return bench::run_main(args, "parallel runner scaling", [&] {
    ScenarioConfig cfg;
    cfg.nodes = nodes;
    cfg.heads = std::max<std::size_t>(2, nodes / 8);
    cfg.k = 8;
    cfg.alpha = 2;
    cfg.hop_l = 2;
    cfg.reaffiliation_prob = 0.1;
    const SpecFactory factory =
        scenario_factory(Scenario::kHiNetInterval, cfg);

    const unsigned hw = std::thread::hardware_concurrency();
    std::cout << "=== Parallel runner scaling (kHiNetInterval, n0=" << nodes
              << ", reps=" << reps << ", hardware_concurrency=" << hw
              << ") ===\n\n";

    const AggregateResult serial = run_experiment(factory, reps, seed);

    struct Point {
      std::size_t jobs;
      double seconds;
      double runs_per_second;
      double speedup;
      bool identical;
    };
    std::vector<Point> points;
    TextTable t({"jobs", "wall s", "runs/s", "speedup", "stats identical"});
    for (std::size_t jobs = 1; jobs <= max_jobs; jobs *= 2) {
      const AggregateResult agg =
          run_experiment_parallel(factory, reps, seed, jobs);
      Point p;
      p.jobs = jobs;
      p.seconds = agg.timing.wall_seconds;
      p.runs_per_second = agg.timing.runs_per_second;
      p.speedup = agg.timing.wall_seconds > 0.0
                      ? serial.timing.wall_seconds / agg.timing.wall_seconds
                      : 0.0;
      p.identical = agg.same_statistics(serial);
      t.add(p.jobs, p.seconds, p.runs_per_second, p.speedup,
            p.identical ? "yes" : "NO");
      points.push_back(p);
    }
    std::cout << t;
    std::cout << "\nSerial reference: " << serial.timing.wall_seconds
              << " s (" << serial.timing.runs_per_second << " runs/s).\n"
              << "Speedups above 1 require free hardware threads; on a "
                 "single-core host the\nparallel path must still reproduce "
                 "the serial statistics bit-for-bit.\n";

    if (!out_path.empty()) {
      std::ofstream f(out_path);
      f << "{\n";
      f << "  \"bench\": \"parallel_runner_scaling\",\n";
      f << "  \"scenario\": \"kHiNetInterval\",\n";
      f << "  \"nodes\": " << nodes << ",\n";
      f << "  \"reps\": " << reps << ",\n";
      f << "  \"base_seed\": " << seed << ",\n";
      f << "  \"hardware_concurrency\": " << hw << ",\n";
      f << "  \"serial_seconds\": " << serial.timing.wall_seconds << ",\n";
      f << "  \"points\": [\n";
      for (std::size_t i = 0; i < points.size(); ++i) {
        const Point& p = points[i];
        f << "    {\"jobs\": " << p.jobs << ", \"seconds\": " << p.seconds
          << ", \"runs_per_second\": " << p.runs_per_second
          << ", \"speedup\": " << p.speedup << ", \"stats_identical\": "
          << (p.identical ? "true" : "false") << "}"
          << (i + 1 < points.size() ? "," : "") << "\n";
      }
      f << "  ]\n}\n";
      std::cout << "\nJSON written to " << out_path << '\n';
    }
  });
}
