// Execution-policy scaling benchmark.
//
// Runs a fixed repetition batch of one scenario under every ExecutionPolicy
// — serial, threaded at several worker counts, lockstep-batched at several
// batch widths, and the threaded×batched composition — checks that every
// run reproduces the serial statistics exactly (the runner's core
// contract), and reports wall time, throughput and speedup per policy.
// Results go to stdout and, with --out, to a BENCH_*.json file for the
// repo's record of measured numbers.
#include "common.hpp"

#include <fstream>
#include <thread>

using namespace hinet;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto reps = static_cast<std::size_t>(
      args.get_int("reps", 16, "repetitions in the batch"));
  const auto seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1, "base seed"));
  const auto nodes = static_cast<std::size_t>(
      args.get_int("nodes", 100, "network size of the workload"));
  const auto max_jobs = static_cast<std::size_t>(
      args.get_int("max-jobs", 8, "largest worker count to measure"));
  const std::string out_path = args.get_string(
      "out", "", "write BENCH json to this path (empty = stdout only)");

  return bench::run_main(args, "execution policy scaling", [&] {
    ScenarioConfig cfg;
    cfg.nodes = nodes;
    cfg.heads = std::max<std::size_t>(2, nodes / 8);
    cfg.k = 8;
    cfg.alpha = 2;
    cfg.hop_l = 2;
    cfg.reaffiliation_prob = 0.1;
    const SpecFactory factory =
        scenario_factory(Scenario::kHiNetInterval, cfg);

    const unsigned hw = std::thread::hardware_concurrency();
    std::cout << "=== Execution policy scaling (kHiNetInterval, n0=" << nodes
              << ", reps=" << reps << ", hardware_concurrency=" << hw
              << ") ===\n\n";

    const AggregateResult serial = run_experiment(
        factory, ExperimentOptions{reps, seed, ExecutionPolicy::serial()});

    struct Point {
      std::string label;
      std::string mode;
      std::size_t jobs;
      std::size_t replicates_per_batch;
      double seconds;
      double runs_per_second;
      double speedup;
      bool identical;
    };
    std::vector<Point> points;
    TextTable t({"policy", "wall s", "runs/s", "speedup", "stats identical"});
    const auto measure = [&](const std::string& label,
                             const ExecutionPolicy& policy) {
      const AggregateResult agg =
          run_experiment(factory, ExperimentOptions{reps, seed, policy});
      Point p;
      p.label = label;
      p.mode = to_string(policy.mode);
      p.jobs = policy.effective_jobs();
      p.replicates_per_batch = agg.timing.replicates_per_batch;
      p.seconds = agg.timing.wall_seconds;
      p.runs_per_second = agg.timing.runs_per_second;
      p.speedup = agg.timing.wall_seconds > 0.0
                      ? serial.timing.wall_seconds / agg.timing.wall_seconds
                      : 0.0;
      p.identical = agg.same_statistics(serial);
      t.add(p.label, p.seconds, p.runs_per_second, p.speedup,
            p.identical ? "yes" : "NO");
      points.push_back(p);
    };

    measure("serial", ExecutionPolicy::serial());
    for (std::size_t jobs = 1; jobs <= max_jobs; jobs *= 2) {
      measure("threaded j=" + std::to_string(jobs),
              ExecutionPolicy::threaded(jobs));
    }
    for (std::size_t r : {std::size_t{4}, std::size_t{8}, std::size_t{16}}) {
      if (r > reps) continue;
      measure("batched R=" + std::to_string(r), ExecutionPolicy::batched(r));
    }
    if (reps >= 8) {
      const std::size_t tb_jobs = std::max<std::size_t>(2, max_jobs / 2);
      measure("threaded-batched j=" + std::to_string(tb_jobs) + " R=8",
              ExecutionPolicy::threaded_batched(tb_jobs, 8));
    }
    std::cout << t;
    std::cout << "\nSerial reference: " << serial.timing.wall_seconds
              << " s (" << serial.timing.runs_per_second << " runs/s).\n"
              << "Threaded speedups above 1 require free hardware threads; "
                 "batched speedups\ncome from lockstep cache locality and "
                 "shared scratch, so they also show on a\nsingle-core host. "
                 "Every policy must reproduce the serial statistics "
                 "bit-for-bit.\n";

    if (!out_path.empty()) {
      std::ofstream f(out_path);
      f << "{\n";
      f << "  \"bench\": \"parallel_runner_scaling\",\n";
      f << "  \"scenario\": \"kHiNetInterval\",\n";
      f << "  \"nodes\": " << nodes << ",\n";
      f << "  \"reps\": " << reps << ",\n";
      f << "  \"base_seed\": " << seed << ",\n";
      f << "  \"hardware_concurrency\": " << hw << ",\n";
      f << "  \"serial_seconds\": " << serial.timing.wall_seconds << ",\n";
      f << "  \"serial_runs_per_second\": " << serial.timing.runs_per_second
        << ",\n";
      f << "  \"points\": [\n";
      for (std::size_t i = 0; i < points.size(); ++i) {
        const Point& p = points[i];
        f << "    {\"policy\": \"" << p.mode << "\", \"jobs\": " << p.jobs
          << ", \"replicates_per_batch\": " << p.replicates_per_batch
          << ", \"seconds\": " << p.seconds
          << ", \"runs_per_second\": " << p.runs_per_second
          << ", \"speedup\": " << p.speedup << ", \"stats_identical\": "
          << (p.identical ? "true" : "false") << "}"
          << (i + 1 < points.size() ? "," : "") << "\n";
      }
      f << "  ],\n";
      // The record of measured numbers carries its own interpretation so a
      // regenerated file never loses it.
      f << "  \"notes\": [\n"
        << "    \"Replicate throughput on this workload is dominated by "
           "per-replicate spec construction (trace generation), which every "
           "policy pays identically; on a 1-core host the batched policies "
           "therefore sit at parity with serial, within noise.\",\n"
        << "    \"Against the v0 record of this file (commit d5daf3d, same "
           "nodes=100 workload, 1-core host: serial 155.5 runs/s), the "
           "current batched R=8 point clears the 1.5x acceptance floor "
           "several times over; the bulk of that is the removal of the "
           "provably redundant whole-trace Ctvg::validate() in "
           "make_hinet_trace plus lazy validate error strings, which landed "
           "together with the lockstep engine.\",\n"
        << "    \"Multi-core target: threaded-batched (jobs x lockstep "
           "batches) is the sweep configuration expected to reach 10x "
           "serial runs/s on a >=8-core host; hardware_concurrency above "
           "records what this box offered.\"\n"
        << "  ]\n}\n";
      std::cout << "\nJSON written to " << out_path << '\n';
    }
  });
}
