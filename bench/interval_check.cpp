// Incremental vs reference T-interval connectivity checking.
//
// The incremental checker (graph/interval.hpp) maintains per-edge run
// lengths across window shifts and answers max_interval_connectivity in
// one forward pass; the *_reference forms recompute every window's
// intersection from scratch (O(rounds * T) graph work per T probed).
// This bench times both on the same EMDG traces and reports the speedup —
// tests/graph/test_interval_incremental.cpp pins that they agree.
#include "common.hpp"

#include <chrono>
#include <functional>

#include "graph/interval.hpp"
#include "graph/markovian.hpp"

using namespace hinet;

namespace {

double time_once(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto reps = static_cast<std::size_t>(
      args.get_int("reps", 3, "timed repetitions (best is kept)"));
  const auto seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1, "trace seed"));

  return bench::run_main(args, "T-interval checker throughput", [&] {
    std::cout << "=== max_interval_connectivity: incremental vs reference "
                 "(EMDG traces, seed=" << seed << ") ===\n\n";
    TextTable t({"n", "rounds", "T*", "incremental s", "reference s",
                 "speedup"});
    struct Size {
      std::size_t nodes;
      std::size_t rounds;
    };
    for (const Size& s : {Size{32, 64}, Size{64, 128}, Size{128, 192}}) {
      MarkovianConfig cfg;
      cfg.nodes = s.nodes;
      cfg.rounds = s.rounds;
      cfg.initial = 0.4;
      cfg.birth = 0.10;
      cfg.death = 0.05;  // sticky edges so nontrivial windows stay stable
      cfg.seed = seed;
      GraphSequence seq = make_edge_markovian_trace(cfg);

      std::size_t t_star = 0;
      double inc = -1.0;
      double ref = -1.0;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        const double a = time_once(
            [&] { t_star = max_interval_connectivity(seq, s.rounds); });
        std::size_t t_ref = 0;
        const double b = time_once([&] {
          t_ref = max_interval_connectivity_reference(seq, s.rounds);
        });
        HINET_ENSURE(t_star == t_ref, "checkers disagree");
        if (inc < 0.0 || a < inc) inc = a;
        if (ref < 0.0 || b < ref) ref = b;
      }
      t.add(s.nodes, s.rounds, t_star, inc, ref, ref / inc);
    }
    std::cout << t;
    std::cout << "\nBoth forms answer the largest T such that the trace is "
                 "T-interval connected;\nthe incremental form is the one "
                 "the online assumption monitor streams with.\n";
  });
}
