// Shared helpers for the benchmark/reproduction binaries.
#pragma once

#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

#include "analysis/experiment.hpp"
#include "analysis/scenarios.hpp"
#include "core/cost_model.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace hinet::bench {

/// Peak resident set size of this process in bytes, 0 where unsupported.
/// Monotone over the process lifetime (the high-water mark): order bench
/// points smallest-first so each point's reading is attributable to it.
inline std::size_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::size_t>(ru.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::size_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

/// Current resident set size in bytes (Linux /proc/self/statm), 0 where
/// unsupported.  Unlike the peak this goes back down when a large trace is
/// freed, so sampling it while a run's spec is still alive attributes the
/// reading to that run's working set.
inline std::size_t current_rss_bytes() {
#if defined(__linux__)
  std::ifstream f("/proc/self/statm");
  std::size_t pages_total = 0;
  std::size_t pages_resident = 0;
  if (!(f >> pages_total >> pages_resident)) return 0;
  const long page = sysconf(_SC_PAGESIZE);
  return pages_resident * static_cast<std::size_t>(page > 0 ? page : 4096);
#else
  return 0;
#endif
}

/// One measured row: a scenario run `reps` times with derived seeds.
struct MeasuredRow {
  std::string model;
  double time_mean = 0.0;       ///< measured rounds to completion
  std::size_t time_sched = 0;   ///< scheduled rounds (the analytic "time")
  double comm_mean = 0.0;       ///< measured tokens sent
  double delivery = 0.0;        ///< fraction of runs that delivered
  CostParams analytic;          ///< with measured θ/n_m/n_r
};

inline MeasuredRow measure_scenario(Scenario s, const ScenarioConfig& cfg,
                                    std::size_t reps, std::uint64_t seed,
                                    std::size_t jobs = 1) {
  MeasuredRow row;
  row.model = scenario_name(s);
  const ScenarioRun probe = make_scenario(s, cfg, seed);
  row.time_sched = probe.scheduled_rounds;
  row.analytic = probe.analytic;
  const ExecutionPolicy policy =
      jobs <= 1 ? ExecutionPolicy::serial() : ExecutionPolicy::threaded(jobs);
  const AggregateResult agg = run_experiment(
      scenario_factory(s, cfg), ExperimentOptions{reps, seed, policy});
  row.time_mean = agg.rounds_to_completion.mean;
  row.comm_mean = agg.tokens_sent.mean;
  row.delivery = agg.delivery_rate;
  return row;
}

/// Analytic (time, comm) for a scenario at given parameters.
inline std::pair<std::size_t, std::size_t> analytic_costs(Scenario s,
                                                          const CostParams& p) {
  switch (s) {
    case Scenario::kKloInterval:
      return {time_klo_interval(p), comm_klo_interval(p)};
    case Scenario::kHiNetInterval:
    case Scenario::kHiNetIntervalStable:
      return {time_hinet_interval(p), comm_hinet_interval(p)};
    case Scenario::kKloOne:
      return {time_klo_one(p), comm_klo_one(p)};
    case Scenario::kHiNetOne:
      return {time_hinet_one(p), comm_hinet_one(p)};
  }
  return {0, 0};
}

inline int run_main(CliArgs& args, const std::string& summary,
                    const std::function<void()>& body) {
  if (args.help_requested()) {
    std::cout << args.usage(summary);
    return 0;
  }
  const auto unknown = args.unknown_options();
  if (!unknown.empty()) {
    std::cerr << "unknown option: --" << unknown.front() << "\n";
    return 2;
  }
  body();
  return 0;
}

}  // namespace hinet::bench
