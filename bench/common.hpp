// Shared helpers for the benchmark/reproduction binaries.
#pragma once

#include <functional>
#include <iostream>
#include <string>
#include <utility>

#include "analysis/experiment.hpp"
#include "analysis/scenarios.hpp"
#include "core/cost_model.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace hinet::bench {

/// One measured row: a scenario run `reps` times with derived seeds.
struct MeasuredRow {
  std::string model;
  double time_mean = 0.0;       ///< measured rounds to completion
  std::size_t time_sched = 0;   ///< scheduled rounds (the analytic "time")
  double comm_mean = 0.0;       ///< measured tokens sent
  double delivery = 0.0;        ///< fraction of runs that delivered
  CostParams analytic;          ///< with measured θ/n_m/n_r
};

inline MeasuredRow measure_scenario(Scenario s, const ScenarioConfig& cfg,
                                    std::size_t reps, std::uint64_t seed,
                                    std::size_t jobs = 1) {
  MeasuredRow row;
  row.model = scenario_name(s);
  const ScenarioRun probe = make_scenario(s, cfg, seed);
  row.time_sched = probe.scheduled_rounds;
  row.analytic = probe.analytic;
  const ExecutionPolicy policy =
      jobs <= 1 ? ExecutionPolicy::serial() : ExecutionPolicy::threaded(jobs);
  const AggregateResult agg = run_experiment(
      scenario_factory(s, cfg), ExperimentOptions{reps, seed, policy});
  row.time_mean = agg.rounds_to_completion.mean;
  row.comm_mean = agg.tokens_sent.mean;
  row.delivery = agg.delivery_rate;
  return row;
}

/// Analytic (time, comm) for a scenario at given parameters.
inline std::pair<std::size_t, std::size_t> analytic_costs(Scenario s,
                                                          const CostParams& p) {
  switch (s) {
    case Scenario::kKloInterval:
      return {time_klo_interval(p), comm_klo_interval(p)};
    case Scenario::kHiNetInterval:
    case Scenario::kHiNetIntervalStable:
      return {time_hinet_interval(p), comm_hinet_interval(p)};
    case Scenario::kKloOne:
      return {time_klo_one(p), comm_klo_one(p)};
    case Scenario::kHiNetOne:
      return {time_hinet_one(p), comm_hinet_one(p)};
  }
  return {0, 0};
}

inline int run_main(CliArgs& args, const std::string& summary,
                    const std::function<void()>& body) {
  if (args.help_requested()) {
    std::cout << args.usage(summary);
    return 0;
  }
  const auto unknown = args.unknown_options();
  if (!unknown.empty()) {
    std::cerr << "unknown option: --" << unknown.front() << "\n";
    return 2;
  }
  body();
  return 0;
}

}  // namespace hinet::bench
