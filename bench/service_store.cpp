// Results-store overhead benchmark: what does "simulate once, serve many"
// actually buy, and what does durability cost?
//
// For each job size the same scenario job is measured three ways:
//
//   simulate   — executing the job's replicates (the cost a cache hit
//                avoids, and the floor a cold submit must pay anyway)
//   publish    — the staged commit protocol end to end (WAL intent fsync,
//                checksummed segment write + rename + directory fsync,
//                index rewrite, commit fsync)
//   serve      — a content-addressed load from a freshly opened store
//                (CRC-validated segment read, the `hinetd query` path)
//
// publish/serve are durability overhead; simulate/serve is the speedup a
// repeat submission gets.  The served result is asserted byte-identical
// (query digest) to the simulated one, so the bench doubles as a smoke
// check of the round trip.  Results go to stdout and, with --out, to
// BENCH_service_store.json.
#include "common.hpp"

#include <chrono>
#include <filesystem>

#include "service/service.hpp"

using namespace hinet;

namespace {

struct Point {
  std::size_t nodes = 0;
  std::size_t reps = 0;
  std::size_t segment_bytes = 0;
  double simulate_seconds = 0.0;  ///< best-of-reps replicate execution
  double publish_ms = 0.0;        ///< best-of-reps staged commit
  double serve_ms = 0.0;          ///< best-of-reps open+load+digest
  double speedup = 0.0;           ///< simulate_seconds / serve_seconds
};

ScenarioConfig size_config(std::size_t nodes) {
  ScenarioConfig cfg;
  cfg.nodes = nodes;
  cfg.heads = std::max<std::size_t>(4, nodes / 5);
  cfg.k = 8;
  cfg.alpha = 3;
  cfg.hop_l = 2;
  return cfg;
}

double seconds_since(const std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

Point measure(std::size_t nodes, std::uint64_t seed, std::size_t job_reps,
              std::size_t bench_reps) {
  JobSpec spec;
  spec.scenario = Scenario::kHiNetInterval;
  spec.config = size_config(nodes);
  spec.base_seed = seed;
  spec.repetitions = job_reps;

  Point pt;
  pt.nodes = nodes;
  pt.reps = job_reps;

  const SpecFactory factory = scenario_factory(spec.scenario, spec.config);
  std::vector<ReplicateResult> replicates;
  pt.simulate_seconds = -1.0;
  for (std::size_t rep = 0; rep < bench_reps + 1; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    replicates = run_replicates(factory, job_reps, seed, 1);
    const double secs = seconds_since(t0);
    if (rep == 0) continue;  // warm-up
    if (pt.simulate_seconds < 0.0 || secs < pt.simulate_seconds) {
      pt.simulate_seconds = secs;
    }
  }
  const std::uint64_t expected =
      query_digest(StoredResult{spec, replicates});

  const std::string dir = "service_store.bench.tmp";
  double publish_best = -1.0;
  double serve_best = -1.0;
  for (std::size_t rep = 0; rep < bench_reps; ++rep) {
    std::filesystem::remove_all(dir);
    {
      ResultsStore store(dir);
      const auto t0 = std::chrono::steady_clock::now();
      store.publish(spec, replicates);
      const double secs = seconds_since(t0);
      if (publish_best < 0.0 || secs < publish_best) publish_best = secs;
      pt.segment_bytes =
          std::filesystem::file_size(store.segment_path(spec.content_hash()));
    }
    {
      const auto t0 = std::chrono::steady_clock::now();
      ResultsStore store(dir);
      const std::optional<StoredResult> got = store.load(spec);
      HINET_ENSURE(got.has_value(), "published job must serve");
      const std::uint64_t digest = query_digest(*got);
      const double secs = seconds_since(t0);
      HINET_ENSURE(digest == expected,
                   "served digest differs from the simulated one");
      if (serve_best < 0.0 || secs < serve_best) serve_best = secs;
    }
  }
  std::filesystem::remove_all(dir);
  pt.publish_ms = publish_best * 1e3;
  pt.serve_ms = serve_best * 1e3;
  if (serve_best > 0.0) pt.speedup = pt.simulate_seconds / serve_best;
  return pt;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto bench_reps = static_cast<std::size_t>(args.get_int(
      "reps", 3, "timed repetitions per size (best is kept)"));
  const auto seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1, "job base seed"));
  const auto job_reps = static_cast<std::size_t>(
      args.get_int("job-reps", 5, "replicates per job"));
  const auto only_nodes = static_cast<std::size_t>(args.get_int(
      "nodes", 0, "measure a single network size (0 = the full sweep)"));
  const std::string out_path = args.get_string(
      "out", "", "write BENCH json to this path (empty = stdout only)");

  return bench::run_main(args, "results-store publish/serve overhead", [&] {
    std::vector<std::size_t> sizes;
    if (only_nodes != 0) {
      sizes.push_back(only_nodes);
    } else {
      sizes = {60, 120, 240};
    }

    std::cout << "=== Results-store overhead ((T, L)-HiNet interval "
                 "scenario, " << job_reps << " replicate(s) per job, seed="
              << seed << ") ===\n\n";
    TextTable t({"n", "job reps", "simulate s", "publish ms", "serve ms",
                 "seg bytes", "serve speedup"});
    std::vector<Point> points;
    for (const std::size_t n : sizes) {
      const Point pt = measure(n, seed, job_reps, bench_reps);
      points.push_back(pt);
      t.add(pt.nodes, pt.reps, pt.simulate_seconds, pt.publish_ms,
            pt.serve_ms, pt.segment_bytes, pt.speedup);
    }
    std::cout << t;

    if (!out_path.empty()) {
      std::ofstream out(out_path);
      out << "{\n"
          << "  \"bench\": \"service_store\",\n"
          << "  \"workload\": \"hinet_interval_publish_serve\",\n"
          << "  \"description\": \"ResultsStore staged-commit publish and "
             "content-addressed serve vs re-simulating the job: best-of-"
          << bench_reps
          << " wall time, build RelWithDebInfo (-O2). serve opens a fresh "
             "store, loads the job and computes the query digest — the "
             "hinetd query path. Reproduce with: build/bench/service_store "
             "--reps=" << bench_reps << " --out=...\",\n"
          << "  \"job_reps\": " << job_reps << ",\n"
          << "  \"seed\": " << seed << ",\n"
          << "  \"reps\": " << bench_reps << ",\n"
          << "  \"points\": [\n";
      for (std::size_t i = 0; i < points.size(); ++i) {
        const Point& p = points[i];
        out << "    {\"nodes\": " << p.nodes << ", \"job_reps\": " << p.reps
            << ", \"simulate_seconds\": " << p.simulate_seconds
            << ", \"publish_ms\": " << p.publish_ms
            << ", \"serve_ms\": " << p.serve_ms
            << ", \"segment_bytes\": " << p.segment_bytes
            << ", \"serve_speedup\": " << p.speedup << "}"
            << (i + 1 < points.size() ? "," : "") << "\n";
      }
      out << "  ]\n}\n";
      std::cout << "\nwrote " << out_path << "\n";
    }
  });
}
