// Ablation A2: clusters over edge-Markovian dynamics — the Section VI
// future-work direction ("other flat dynamic network models ... should
// also be extended with clusters"), made executable.
//
// Pipeline: EMDG topology -> maintained hierarchy -> (a) estimate which
// (T, L) stability the combination empirically provides, (b) run
// Algorithm 2 vs the flat baselines on the very same trace.
#include "common.hpp"

#include "analysis/assignment.hpp"
#include "analysis/model_estimation.hpp"
#include "baseline/klo.hpp"
#include "baseline/network_coding.hpp"
#include "cluster/maintenance.hpp"
#include "core/alg2.hpp"
#include "graph/interval.hpp"
#include "graph/markovian.hpp"
#include "sim/engine.hpp"

using namespace hinet;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto nodes =
      static_cast<std::size_t>(args.get_int("nodes", 32, "network size"));
  const auto k =
      static_cast<std::size_t>(args.get_int("k", 5, "token count"));
  const auto seed =
      static_cast<std::uint64_t>(args.get_int("seed", 13, "seed"));

  return bench::run_main(args, "A2 — clusters over EMDG dynamics", [&] {
    std::cout << "=== A2: cluster hierarchy over an edge-Markovian dynamic "
                 "graph ===\n\n";
    TextTable est_t({"birth", "death", "density", "1-int conn", "max T (Def2)",
                     "max T (Def4)", "max T (Def5)", "worst L",
                     "max T (Def8)"});
    struct Case {
      double birth, death;
    };
    const Case cases[] = {{0.02, 0.02}, {0.08, 0.05}, {0.15, 0.3}};
    const std::size_t rounds = 2 * nodes;
    for (const Case& c : cases) {
      MarkovianConfig mc;
      mc.nodes = nodes;
      mc.birth = c.birth;
      mc.death = c.death;
      mc.initial = edge_markovian_stationary_density(c.birth, c.death);
      mc.rounds = rounds;
      mc.seed = seed;
      GraphSequence net = make_edge_markovian_trace(mc);
      MaintainedHierarchy mh = maintain_over(net, rounds);
      std::vector<Graph> graphs;
      for (Round r = 0; r < rounds; ++r) graphs.push_back(net.graph_at(r));
      GraphSequence topo(std::move(graphs));
      const bool one_conn = is_one_interval_connected(topo, rounds);
      Ctvg trace(std::move(topo), std::move(mh.hierarchy));
      const StabilityEstimate est =
          estimate_stability(trace, rounds, /*t_cap=*/16);
      est_t.add(c.birth, c.death,
                edge_markovian_stationary_density(c.birth, c.death),
                one_conn ? "yes" : "no", est.max_t_stable_head_set,
                est.max_t_stable_hierarchy, est.max_t_head_connectivity,
                est.worst_l, est.max_t_hinet);
    }
    std::cout << est_t << '\n';

    // End-to-end dissemination comparison on one EMDG trace.
    MarkovianConfig mc;
    mc.nodes = nodes;
    mc.birth = 0.08;
    mc.death = 0.05;
    mc.initial = edge_markovian_stationary_density(mc.birth, mc.death);
    mc.rounds = rounds;
    mc.seed = seed;
    GraphSequence net = make_edge_markovian_trace(mc);
    MaintainedHierarchy mh = maintain_over(net, rounds);

    Rng arng(seed ^ 0x99ULL);
    const auto init =
        assign_tokens(nodes, k, AssignmentMode::kDistinctRandom, arng);

    TextTable run_t({"algorithm", "delivered", "rounds", "tokens sent"});
    auto add = [&](const char* name, const SimMetrics& m) {
      run_t.add(name, m.all_delivered ? "yes" : "no",
                m.all_delivered ? std::to_string(m.rounds_to_completion) : "-",
                m.tokens_sent);
    };
    {
      GraphSequence topo = net;
      Alg2Params p;
      p.k = k;
      p.rounds = rounds;
      Engine e(topo, &mh.hierarchy, make_alg2_processes(init, p));
      add("Algorithm 2 (maintained clusters)",
          e.run({.max_rounds = rounds, .stop_when_complete = false}));
    }
    {
      GraphSequence topo = net;
      KloFloodParams p;
      p.k = k;
      p.rounds = rounds;
      Engine e(topo, nullptr, make_klo_flood_processes(init, p));
      add("KLO token forwarding [7]",
          e.run({.max_rounds = rounds, .stop_when_complete = false}));
    }
    {
      GraphSequence topo = net;
      NetworkCodingParams p;
      p.k = k;
      p.rounds = rounds;
      p.seed = seed;
      Engine e(topo, nullptr, make_network_coding_processes(init, p));
      add("RLNC (Haeupler-Karger [8])",
          e.run({.max_rounds = rounds, .stop_when_complete = false}));
    }
    std::cout << run_t;
    std::cout << "\nNote: EMDG gives probabilistic connectivity only; the "
                 "deterministic guarantees\nof Theorems 1-4 do not apply — "
                 "this is the regime the future-work extension\nwould need "
                 "to formalise.\n";
  });
}
