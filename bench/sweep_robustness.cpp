// Validation figure V6: robustness under channel failures.
//
// The paper's correctness proofs assume perfect local broadcast.  This
// sweep injects i.i.d. packet loss and collision interference and measures
// how each algorithm's delivery rate and completion time degrade — the
// price of the model's idealisation, quantified.
#include "common.hpp"

#include "analysis/assignment.hpp"
#include "baseline/klo.hpp"
#include "core/alg2.hpp"
#include "core/hinet_generator.hpp"
#include "sim/channel.hpp"
#include "sim/engine.hpp"

using namespace hinet;

namespace {

struct Outcome {
  double delivery = 0.0;
  double rounds_mean = 0.0;
  double tokens_mean = 0.0;
};

/// SpecFactory for one (algorithm, loss) cell; pure function of the seed.
SpecFactory cell_factory(bool hinet, double loss, std::size_t nodes,
                         std::size_t k, std::size_t slack) {
  const std::size_t horizon = slack * (nodes - 1);
  return [=](std::uint64_t seed) {
    HiNetConfig gen;
    gen.nodes = nodes;
    gen.heads = nodes / 6;
    gen.phase_length = 1;
    gen.phases = horizon;
    gen.hop_l = 2;
    gen.reaffiliation_prob = 0.1;
    gen.seed = seed;
    HiNetTrace trace = make_hinet_trace(gen);
    Rng arng(seed ^ 0xa11ceULL);
    const auto init =
        assign_tokens(nodes, k, AssignmentMode::kDistinctRandom, arng);
    SimulationSpec spec;
    if (hinet) {
      Alg2Params p;
      p.k = k;
      p.rounds = horizon;
      spec.processes = make_alg2_processes(init, p);
      spec.hierarchy = std::make_unique<HierarchySequence>(
          std::move(trace.ctvg.hierarchy()));
    } else {
      KloFloodParams p;
      p.k = k;
      p.rounds = horizon;
      spec.processes = make_klo_flood_processes(init, p);
    }
    spec.network =
        std::make_unique<GraphSequence>(std::move(trace.ctvg.topology()));
    spec.channel = std::make_unique<LossyChannel>(loss, seed ^ 0x10553ULL);
    spec.engine.max_rounds = horizon;
    spec.engine.stop_when_complete = true;
    return spec;
  };
}

Outcome run_cells(bool hinet, double loss, std::size_t reps,
                  std::size_t nodes, std::size_t k, std::size_t slack,
                  std::size_t jobs) {
  const AggregateResult agg = run_experiment(
      cell_factory(hinet, loss, nodes, k, slack),
      ExperimentOptions{reps, 0, ExecutionPolicy::threaded(jobs)});
  Outcome o;
  o.delivery = agg.delivery_rate;
  o.rounds_mean = agg.rounds_to_completion.mean;
  o.tokens_mean = agg.tokens_sent.mean;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto reps =
      static_cast<std::size_t>(args.get_int("reps", 4, "seeds per cell"));
  const auto nodes =
      static_cast<std::size_t>(args.get_int("nodes", 36, "network size"));
  const auto k =
      static_cast<std::size_t>(args.get_int("k", 5, "token count"));
  const std::size_t jobs = args.get_jobs();

  return bench::run_main(args, "V6 — robustness under packet loss", [&] {
    std::cout << "=== V6: delivery under i.i.d. packet loss ((1,L)-HiNet "
                 "traces, horizon 3(n-1) rounds) ===\n\n";
    TextTable t({"loss", "algorithm", "delivery%", "rounds (mean)",
                 "tokens (mean)"});
    for (double loss : {0.0, 0.1, 0.25, 0.5, 0.75}) {
      const Outcome hi = run_cells(true, loss, reps, nodes, k, 3, jobs);
      const Outcome klo = run_cells(false, loss, reps, nodes, k, 3, jobs);
      t.add(loss, "Algorithm 2 ((1,L)-HiNet)", hi.delivery * 100.0,
            hi.rounds_mean, hi.tokens_mean);
      t.add(loss, "KLO token forwarding [7]", klo.delivery * 100.0,
            klo.rounds_mean, klo.tokens_mean);
    }
    std::cout << t;
    std::cout << "\nReading: per-round re-broadcasting makes both algorithms "
                 "self-healing under\ni.i.d. loss (delivery stays high with "
                 "a 3(n-1)-round horizon), but completion\nslows more for "
                 "Algorithm 2 — its economy (silent members, single relay "
                 "paths)\nmeans fewer redundant copies per round — while its "
                 "token cost stays below KLO's\nat every loss level.\n";
  });
}
