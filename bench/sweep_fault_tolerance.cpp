// Validation figure V8: fault tolerance under crash/recovery churn and
// burst loss.
//
// Sweeps crash rate × loss burstiness × retransmit budget and measures
// completion rate, degradation (completion fraction / token coverage at
// cutoff) and cost for Algorithm 1/2 as specified versus their
// loss-tolerant variants, against flooding and gossip baselines.  Faults
// are injected as a FaultyNetwork decorator over a clean (T, L)-HiNet
// trace; the paper's hierarchy stays as generated, so a crashed cluster
// head is exactly the failure the paper's single-shot schedules cannot
// absorb: the member's one upload falls on a dead link and is never
// retried.  Results go to stdout and, with --out, to a BENCH json file.
#include "common.hpp"

#include <fstream>

#include "analysis/assignment.hpp"
#include "baseline/gossip.hpp"
#include "baseline/klo.hpp"
#include "cluster/maintenance.hpp"
#include "core/alg1.hpp"
#include "core/alg2.hpp"
#include "core/hinet_generator.hpp"
#include "sim/faults.hpp"

using namespace hinet;

namespace {

enum class Algo { kAlg1, kAlg2, kKloFlood, kGossip };

const char* algo_name(Algo a) {
  switch (a) {
    case Algo::kAlg1: return "alg1";
    case Algo::kAlg2: return "alg2";
    case Algo::kKloFlood: return "klo_flood";
    case Algo::kGossip: return "gossip";
  }
  return "?";
}

struct BurstLevel {
  const char* name;
  bool enabled = false;
  GilbertElliottParams params;
};

struct Cell {
  Algo algo = Algo::kAlg1;
  std::size_t budget = 0;    ///< Alg1 retransmit budget (0 = paper)
  std::size_t reupload = 0;  ///< Alg2 member re-upload interval (0 = paper)
  double crash_frac = 0.0;
  BurstLevel burst;
};

struct Workload {
  std::size_t nodes = 36;
  std::size_t heads = 6;
  std::size_t k = 5;
  std::size_t phase_length = 11;  ///< T = k + alpha * L
  std::size_t phases = 6;
  std::size_t downtime = 16;      ///< crash/recovery churn window
  std::size_t horizon() const { return phase_length * phases; }
};

SpecFactory cell_factory(const Cell& cell, const Workload& w) {
  return [cell, w](std::uint64_t seed) {
    HiNetConfig gen;
    gen.nodes = w.nodes;
    gen.heads = w.heads;
    gen.phase_length = w.phase_length;
    gen.phases = w.phases;
    gen.hop_l = 2;
    gen.reaffiliation_prob = 0.05;
    gen.seed = seed;
    HiNetTrace trace = make_hinet_trace(gen);
    const std::size_t horizon = w.horizon();

    // Faults edit the realized topology only; the hierarchy stays as
    // generated, so uploads towards a crashed head land on dead links.
    GraphSequence topo = std::move(trace.ctvg.topology());
    std::unique_ptr<GraphSequence> realized;
    const auto crash_count = static_cast<std::size_t>(
        cell.crash_frac * static_cast<double>(w.nodes) + 0.5);
    if (crash_count > 0) {
      FaultyNetwork faulty(
          topo, random_churn_plan(w.nodes, crash_count, horizon / 2,
                                  w.downtime, seed ^ 0xfa0175ULL));
      realized = std::make_unique<GraphSequence>(materialize(faulty, horizon));
    } else {
      realized = std::make_unique<GraphSequence>(std::move(topo));
    }

    Rng arng(seed ^ 0xa11ceULL);
    const auto init = assign_tokens(w.nodes, w.k,
                                    AssignmentMode::kDistinctRandom, arng);
    SimulationSpec spec;
    switch (cell.algo) {
      case Algo::kAlg1: {
        Alg1Params p;
        p.k = w.k;
        p.phase_length = w.phase_length;
        p.phases = w.phases;
        p.retransmit_budget = cell.budget;
        p.ack_piggyback = cell.budget > 0;
        spec.processes = make_alg1_processes(init, p);
        break;
      }
      case Algo::kAlg2: {
        Alg2Params p;
        p.k = w.k;
        p.rounds = horizon;
        p.member_reupload_interval = cell.reupload;
        spec.processes = make_alg2_processes(init, p);
        break;
      }
      case Algo::kKloFlood: {
        KloFloodParams p;
        p.k = w.k;
        p.rounds = horizon;
        spec.processes = make_klo_flood_processes(init, p);
        break;
      }
      case Algo::kGossip: {
        GossipParams p;
        p.k = w.k;
        p.rounds = horizon;
        p.seed = seed ^ 0x90551bULL;
        spec.processes = make_gossip_processes(init, p);
        break;
      }
    }
    spec.hierarchy = std::make_unique<HierarchySequence>(
        std::move(trace.ctvg.hierarchy()));
    spec.network = std::move(realized);
    if (cell.burst.enabled) {
      spec.channel = std::make_unique<GilbertElliottChannel>(
          cell.burst.params, seed ^ 0x6e0b57ULL);
    }
    spec.engine.max_rounds = horizon;
    spec.engine.stop_when_complete = true;
    return spec;
  };
}

struct Row {
  Cell cell;
  AggregateResult agg;
};

std::string variant_label(const Cell& c) {
  std::ostringstream os;
  os << algo_name(c.algo);
  if (c.algo == Algo::kAlg1 && c.budget > 0) {
    os << " +retx" << c.budget << "+ack";
  }
  if (c.algo == Algo::kAlg2 && c.reupload > 0) {
    os << " +reup" << c.reupload;
  }
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  Workload w;
  const auto reps =
      static_cast<std::size_t>(args.get_int("reps", 6, "seeds per cell"));
  w.nodes =
      static_cast<std::size_t>(args.get_int("nodes", 36, "network size"));
  w.heads = w.nodes / 6;
  const std::size_t jobs = args.get_jobs();
  const std::string out_path = args.get_string(
      "out", "", "write BENCH json to this path (empty = stdout only)");

  return bench::run_main(args, "V8 — fault tolerance sweep", [&] {
    const BurstLevel bursts[] = {
        {"none", false, {}},
        // GE defaults: mean 4-round total-loss bursts, ~17% of time Bad.
        {"mild", true, {0.05, 0.25, 0.0, 1.0}},
        // Half the time inside mean ~6.7-round bursts.
        {"heavy", true, {0.15, 0.15, 0.0, 1.0}},
    };
    const double crash_fracs[] = {0.0, 0.15};
    const std::size_t alg1_budgets[] = {0, 1, 2, 4};
    const std::size_t alg2_reuploads[] = {0, 5};

    std::vector<Row> rows;
    std::cout << "=== V8: completion under crash/recovery churn and "
                 "Gilbert-Elliott burst loss ===\n"
              << "(T, L)-HiNet trace, n=" << w.nodes << ", k=" << w.k
              << ", T=" << w.phase_length << ", M=" << w.phases
              << "; crashes recover after " << w.downtime << " rounds\n\n";
    TextTable t({"crash", "burst", "variant", "delivery%", "completion",
                 "coverage", "rounds", "tokens"});
    for (double crash : crash_fracs) {
      for (const BurstLevel& burst : bursts) {
        std::vector<Cell> cells;
        for (std::size_t b : alg1_budgets) {
          cells.push_back({Algo::kAlg1, b, 0, crash, burst});
        }
        for (std::size_t r : alg2_reuploads) {
          cells.push_back({Algo::kAlg2, 0, r, crash, burst});
        }
        cells.push_back({Algo::kKloFlood, 0, 0, crash, burst});
        cells.push_back({Algo::kGossip, 0, 0, crash, burst});
        for (const Cell& cell : cells) {
          Row row{cell, run_experiment(
                            cell_factory(cell, w),
                            ExperimentOptions{
                                reps, 1, ExecutionPolicy::threaded(jobs)})};
          t.add(crash, burst.name, variant_label(cell),
                row.agg.delivery_rate * 100.0,
                row.agg.completion_fraction.mean, row.agg.token_coverage.mean,
                row.agg.rounds_to_completion.mean, row.agg.tokens_sent.mean);
          rows.push_back(std::move(row));
        }
      }
    }
    std::cout << t;
    std::cout << "\nReading: the paper's single-shot schedules stall once a "
                 "member upload falls into\na crash window or a loss burst — "
                 "delivery collapses while flooding shrugs it\noff at many "
                 "times the token cost.  A small retransmit budget (Alg 1) "
                 "or periodic\nre-upload (Alg 2) restores completion at a "
                 "token cost still far below flooding.\n";

    if (!out_path.empty()) {
      std::ofstream f(out_path);
      f << "{\n  \"bench\": \"fault_tolerance\",\n"
        << "  \"workload\": \"alg1_alg2_variants_vs_baselines_on_faulty_"
           "hinet_trace\",\n"
        << "  \"description\": \"Completion under crash/recovery churn "
           "(FaultyNetwork + random_churn_plan, crashes in the first half, "
           "downtime "
        << w.downtime
        << " rounds) and Gilbert-Elliott burst loss; hierarchy as generated "
           "(dead heads are not repaired), stop_when_complete, "
        << reps
        << " seeds per cell.  Reproduce with: build/bench/"
           "sweep_fault_tolerance --reps="
        << reps << " --nodes=" << w.nodes << " --out=...\",\n"
        << "  \"nodes\": " << w.nodes << ",\n  \"k\": " << w.k
        << ",\n  \"phase_length\": " << w.phase_length
        << ",\n  \"phases\": " << w.phases << ",\n  \"reps\": " << reps
        << ",\n  \"cells\": [\n";
      for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        f << "    {\"crash_frac\": " << r.cell.crash_frac
          << ", \"burst\": \"" << r.cell.burst.name << "\", \"algorithm\": \""
          << algo_name(r.cell.algo)
          << "\", \"retransmit_budget\": " << r.cell.budget
          << ", \"reupload_interval\": " << r.cell.reupload
          << ", \"delivery_rate\": " << r.agg.delivery_rate
          << ", \"completion_fraction_mean\": "
          << r.agg.completion_fraction.mean
          << ", \"token_coverage_mean\": " << r.agg.token_coverage.mean
          << ", \"rounds_mean\": " << r.agg.rounds_to_completion.mean
          << ", \"tokens_mean\": " << r.agg.tokens_sent.mean << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
      }
      f << "  ]\n}\n";
      std::cout << "\nJSON written to " << out_path << '\n';
    }
  });
}
