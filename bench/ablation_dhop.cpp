// Ablation A5: 1-hop vs multi-hop clusters — the paper's future-work
// question evaluated end to end.
//
// On identical geometric topologies: cluster with radius d in {1, 2, 3},
// disseminate with the tree-based multi-hop algorithm, and compare the
// hierarchy shape (θ shrinks with d) and total communication against the
// 1-hop Algorithm 2 and flat KLO forwarding.
#include "common.hpp"

#include "analysis/assignment.hpp"
#include "baseline/klo.hpp"
#include "cluster/algorithms.hpp"
#include "cluster/dhop.hpp"
#include "core/alg2.hpp"
#include "core/alg_dhop.hpp"
#include "graph/generators.hpp"
#include "sim/engine.hpp"

using namespace hinet;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto nodes =
      static_cast<std::size_t>(args.get_int("nodes", 60, "network size"));
  const auto k =
      static_cast<std::size_t>(args.get_int("k", 6, "token count"));
  const auto reps =
      static_cast<std::size_t>(args.get_int("reps", 3, "topologies"));

  return bench::run_main(args, "A5 — 1-hop vs multi-hop clusters", [&] {
    std::cout << "=== A5: multi-hop clusters (Section VI future work), "
                 "static geometric topologies ===\n\n";
    TextTable t({"scheme", "heads (mean)", "delivered", "rounds (mean)",
                 "tokens (mean)"});

    struct Cell {
      std::string name;
      double heads_sum = 0.0;
      double rounds_sum = 0.0;
      double tokens_sum = 0.0;
      std::size_t delivered = 0;
    };
    std::vector<Cell> cells;
    cells.push_back({"1-hop lowest-ID + Algorithm 2", 0, 0, 0, 0});
    for (int d : {1, 2, 3}) {
      cells.push_back({"greedy " + std::to_string(d) + "-hop + tree dissem.",
                       0, 0, 0, 0});
    }
    cells.push_back({"flat KLO forwarding", 0, 0, 0, 0});

    const std::size_t rounds = 3 * nodes;
    for (std::uint64_t seed = 0; seed < reps; ++seed) {
      Rng rng(seed ^ 0x5eedULL);
      const auto pts = gen::random_points(nodes, rng);
      Graph g = gen::geometric(pts, 0.28);
      if (!g.is_connected()) {
        // Densify until connected so every algorithm can finish.
        double r = 0.28;
        while (!g.is_connected() && r < 1.0) {
          r += 0.04;
          g = gen::geometric(pts, r);
        }
      }
      Rng arng(seed ^ 0xbeadULL);
      const auto init =
          assign_tokens(nodes, k, AssignmentMode::kDistinctRandom, arng);

      auto account = [&](Cell& cell, std::size_t heads, const SimMetrics& m) {
        cell.heads_sum += static_cast<double>(heads);
        cell.tokens_sum += static_cast<double>(m.tokens_sent);
        if (m.all_delivered) {
          ++cell.delivered;
          cell.rounds_sum += static_cast<double>(m.rounds_to_completion);
        }
      };

      {  // 1-hop Algorithm 2
        const HierarchyView h = lowest_id_clustering(g);
        StaticNetwork net(g);
        HierarchySequence hier({h});
        Alg2Params p;
        p.k = k;
        p.rounds = rounds;
        Engine e(net, &hier, make_alg2_processes(init, p));
        account(cells[0], h.head_count(),
                e.run({.max_rounds = rounds, .stop_when_complete = true}));
      }
      for (int d : {1, 2, 3}) {  // multi-hop tree dissemination
        const HierarchyView h = greedy_dhop_clustering(g, static_cast<std::size_t>(d));
        StaticNetwork net(g);
        HierarchySequence hier({h});
        RoutingSequence routing = build_routing_over(net, hier, rounds);
        DhopParams p;
        p.k = k;
        p.rounds = rounds;
        Engine e(net, &hier, make_dhop_processes(init, p, routing));
        account(cells[static_cast<std::size_t>(d)], h.head_count(),
                e.run({.max_rounds = rounds, .stop_when_complete = true}));
      }
      {  // flat KLO
        StaticNetwork net(g);
        KloFloodParams p;
        p.k = k;
        p.rounds = rounds;
        Engine e(net, nullptr, make_klo_flood_processes(init, p));
        account(cells.back(), 0,
                e.run({.max_rounds = rounds, .stop_when_complete = true}));
      }
    }

    const auto r = static_cast<double>(reps);
    for (const Cell& c : cells) {
      t.add(c.name, c.heads_sum / r,
            std::to_string(c.delivered) + "/" + std::to_string(reps),
            c.delivered > 0 ? c.rounds_sum / static_cast<double>(c.delivered)
                            : 0.0,
            c.tokens_sum / r);
    }
    std::cout << t;
    std::cout << "\nReading: deeper clusters shrink the head set (cheaper "
                 "backbone) while the tree\ndissemination keeps leaf nodes "
                 "on delta-only uploads — the trade the paper's\nfuture-work "
                 "section anticipates, quantified.\n";
  });
}
