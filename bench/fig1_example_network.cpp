// Regenerates Fig. 1: "An Example Network with Clusters" — a snapshot of a
// clustered dynamic network showing heads, gateways and members, produced
// by the actual generator + clustering substrate rather than drawn by
// hand.
#include "common.hpp"

#include "cluster/algorithms.hpp"
#include "core/hinet_generator.hpp"

using namespace hinet;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto nodes =
      static_cast<std::size_t>(args.get_int("nodes", 16, "node count"));
  const auto heads =
      static_cast<std::size_t>(args.get_int("heads", 3, "cluster heads"));
  const auto seed =
      static_cast<std::uint64_t>(args.get_int("seed", 4, "trace seed"));

  return bench::run_main(args, "Fig. 1 — example clustered network", [&] {
    HiNetConfig cfg;
    cfg.nodes = nodes;
    cfg.heads = heads;
    cfg.phase_length = 4;
    cfg.phases = 1;
    cfg.hop_l = 2;
    cfg.churn_edges = 2;
    cfg.seed = seed;
    HiNetTrace trace = make_hinet_trace(cfg);
    const Graph& g = trace.ctvg.graph_at(0);
    const HierarchyView& h = trace.ctvg.hierarchy_at(0);

    std::cout << "=== Fig. 1: An Example Network with Clusters ===\n\n";
    TextTable t({"node", "role", "cluster", "neighbours"});
    for (NodeId v = 0; v < g.node_count(); ++v) {
      std::string neigh;
      for (NodeId u : g.neighbors(v)) {
        if (!neigh.empty()) neigh += ' ';
        neigh += std::to_string(u);
      }
      const ClusterId c = h.cluster_of(v);
      t.add(v, node_role_name(h.role(v)),
            c == kNoCluster ? std::string("-") : std::to_string(c), neigh);
    }
    std::cout << t << '\n';

    std::cout << "Clusters:\n";
    for (NodeId head : h.heads()) {
      std::cout << "  cluster " << head << " = {";
      bool first = true;
      for (NodeId v : h.members_of(head)) {
        if (!first) std::cout << ", ";
        std::cout << v;
        if (h.is_head(v)) std::cout << "(h)";
        else if (h.is_gateway(v)) std::cout << "(g)";
        first = false;
      }
      std::cout << "}\n";
    }

    std::cout << "\nBackbone (heads + gateways): ";
    for (NodeId v : h.backbone()) std::cout << v << ' ';
    std::cout << "\nL-hop cluster-head connectivity (Definition 6): "
              << measure_l_hop_connectivity(h, g) << '\n';
    std::cout << "Structural validation: "
              << (trace.ctvg.validate().empty() ? "OK" : "FAILED") << '\n';
  });
}
