// Regenerates Fig. 3: "An example illustration of Algorithm 1" — the
// token's journey member -> head -> gateway -> next head -> members,
// printed round by round from an actual Algorithm 1 execution.
#include "common.hpp"

#include "core/alg1.hpp"
#include "core/ctvg.hpp"
#include "sim/trace.hpp"

using namespace hinet;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  return bench::run_main(args, "Fig. 3 — Algorithm 1 walkthrough", [&] {
    std::cout << "=== Fig. 3: An example illustration of Algorithm 1 ===\n\n";
    // The Fig. 3 scenario: node u (member) wants to disseminate token t.
    // Topology: two clusters bridged by a gateway.
    //   cluster 0: head 0, members 1 (=u), 2; gateway 3
    //   cluster 5: head 5, members 4, 6
    //   backbone: 0 - 3 - 5   (L = 2)
    const std::size_t n = 7;
    Graph g(n, {{0, 1}, {0, 2}, {0, 3}, {3, 5}, {4, 5}, {5, 6}});
    HierarchyView h(n);
    h.set_head(0);
    h.set_head(5);
    h.set_member(1, 0);
    h.set_member(2, 0);
    h.set_member(3, 0, /*gateway=*/true);
    h.set_member(4, 5);
    h.set_member(6, 5);

    const std::size_t t_len = 6, phases = 2, k = 1;
    std::vector<Graph> graphs(t_len * phases, g);
    std::vector<HierarchyView> views(t_len * phases, h);
    Ctvg world(GraphSequence(std::move(graphs)),
               HierarchySequence(std::move(views)));

    std::cout << "Topology: head 0 {members 1, 2; gateway 3} -- gateway 3 "
                 "-- head 5 {members 4, 6}\n";
    std::cout << "Node u = 1 holds the only token t = 0.\n\n";

    std::vector<TokenSet> init(n, TokenSet(k));
    init[1].insert(0);
    Alg1Params params;
    params.k = k;
    params.phase_length = t_len;
    params.phases = phases;
    Engine engine(world.topology(), &world.hierarchy(),
                  make_alg1_processes(init, params));
    TraceRecorder rec;
    engine.set_observer(rec.observer());
    const SimMetrics m = engine.run(
        {.max_rounds = t_len * phases, .stop_when_complete = false});

    std::cout << rec.render();
    std::cout << "\n(send t to cluster head; head broadcasts; gateway "
                 "relays; next head broadcasts)\n";
    std::cout << "\nResult: " << m.to_string() << '\n';
    std::cout << "All nodes received the token: "
              << (m.all_delivered ? "yes" : "NO") << '\n';

    // Knowledge table at the end.
    TextTable kt({"node", "role", "TA"});
    for (NodeId v = 0; v < n; ++v) {
      kt.add(v, node_role_name(h.role(v)),
             engine.process(v).knowledge().to_string());
    }
    std::cout << '\n' << kt;
  });
}
