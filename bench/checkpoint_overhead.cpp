// Checkpoint overhead benchmark.
//
// Quantifies what crash-safety costs: the same (T, L)-HiNet interval
// scenario is run twice per network size — once uninterrupted through
// Engine::run, once through the round-granular start/step/finish loop with
// Engine::snapshot() taken every --every rounds — and the wall-time delta
// is attributed to checkpointing.  A separate timed section measures the
// durable path (save_snapshot_file + load_snapshot_file round trip, i.e.
// serialize + CRC + atomic rename + re-validate).  Both runs must produce
// identical SimMetrics, so the bench doubles as a smoke check that
// snapshotting never perturbs the simulation it observes.  Results go to
// stdout and, with --out, to BENCH_checkpoint_overhead.json.
#include "common.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>

#include "sim/engine.hpp"
#include "sim/snapshot.hpp"

using namespace hinet;

namespace {

struct Point {
  std::size_t nodes = 0;
  std::size_t rounds = 0;            ///< rounds the scenario actually ran
  double plain_seconds = 0.0;        ///< best-of-reps uninterrupted run
  double ckpt_seconds = 0.0;         ///< best-of-reps run with snapshots
  std::size_t snapshots = 0;         ///< snapshots taken per checkpointed run
  std::size_t snapshot_bytes = 0;    ///< payload size (constant per spec)
  double snapshot_us = 0.0;          ///< mean in-memory snapshot() cost
  double overhead_pct = 0.0;         ///< (ckpt - plain) / plain * 100
  double file_roundtrip_us = 0.0;    ///< save + load of one snapshot file
};

ScenarioConfig size_config(std::size_t nodes) {
  ScenarioConfig cfg;
  cfg.nodes = nodes;
  cfg.heads = std::max<std::size_t>(4, nodes / 5);
  cfg.k = 8;
  cfg.alpha = 3;
  cfg.hop_l = 2;
  return cfg;
}

Point measure(std::size_t nodes, std::uint64_t seed, std::size_t reps,
              std::size_t every) {
  const SpecFactory factory =
      scenario_factory(Scenario::kHiNetInterval, size_config(nodes));
  Point pt;
  pt.nodes = nodes;
  pt.plain_seconds = -1.0;
  pt.ckpt_seconds = -1.0;

  SimMetrics plain_metrics;
  for (std::size_t rep = 0; rep < reps + 1; ++rep) {
    Engine eng(factory(seed));
    const auto t0 = std::chrono::steady_clock::now();
    const SimMetrics m = eng.run();
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    if (rep == 0) {
      plain_metrics = m;
      continue;  // warm-up
    }
    if (pt.plain_seconds < 0.0 || secs < pt.plain_seconds) {
      pt.plain_seconds = secs;
    }
  }
  pt.rounds = plain_metrics.rounds_executed;

  SimSnapshot last;
  for (std::size_t rep = 0; rep < reps + 1; ++rep) {
    SimulationSpec spec = factory(seed);
    const EngineConfig cfg = spec.engine;
    Engine eng(std::move(spec));
    std::size_t snapshots = 0;
    const auto t0 = std::chrono::steady_clock::now();
    eng.start(cfg);
    while (eng.step()) {
      if (eng.current_round() % every == 0) {
        last = eng.snapshot();
        ++snapshots;
      }
    }
    const SimMetrics m = eng.finish();
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    HINET_ENSURE(m == plain_metrics,
                 "snapshotting perturbed the run: checkpointed metrics "
                 "differ from the uninterrupted run");
    if (rep == 0) continue;  // warm-up
    if (pt.ckpt_seconds < 0.0 || secs < pt.ckpt_seconds) {
      pt.ckpt_seconds = secs;
    }
    pt.snapshots = snapshots;
  }
  pt.snapshot_bytes = last.size_bytes();
  if (pt.snapshots > 0) {
    pt.snapshot_us = (pt.ckpt_seconds - pt.plain_seconds) * 1e6 /
                     static_cast<double>(pt.snapshots);
    if (pt.snapshot_us < 0.0) pt.snapshot_us = 0.0;  // noise floor
  }
  if (pt.plain_seconds > 0.0) {
    pt.overhead_pct =
        (pt.ckpt_seconds - pt.plain_seconds) / pt.plain_seconds * 100.0;
  }

  const std::string path = "checkpoint_overhead.snap.tmp";
  double best = -1.0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    save_snapshot_file(last, path);
    const SimSnapshot back = load_snapshot_file(path);
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    HINET_ENSURE(back.payload == last.payload,
                 "snapshot file round trip changed the payload");
    if (best < 0.0 || secs < best) best = secs;
  }
  std::remove(path.c_str());
  pt.file_roundtrip_us = best * 1e6;
  return pt;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto reps = static_cast<std::size_t>(
      args.get_int("reps", 3, "timed repetitions per size (best is kept)"));
  const auto seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1, "scenario seed"));
  const auto every = static_cast<std::size_t>(args.get_int(
      "every", 1, "take a snapshot every this many rounds"));
  const auto only_nodes = static_cast<std::size_t>(args.get_int(
      "nodes", 0, "measure a single network size (0 = the full sweep)"));
  const std::string out_path = args.get_string(
      "out", "", "write BENCH json to this path (empty = stdout only)");

  return bench::run_main(args, "engine checkpoint/restore overhead", [&] {
    std::vector<std::size_t> sizes;
    if (only_nodes != 0) {
      sizes.push_back(only_nodes);
    } else {
      sizes = {60, 120, 240};
    }

    std::cout << "=== Checkpoint overhead ((T, L)-HiNet interval scenario, "
                 "snapshot every " << every << " round(s), seed=" << seed
              << ") ===\n\n";
    TextTable t({"n", "rounds", "plain s", "ckpt s", "overhead %",
                 "snap bytes", "snap us", "file rt us"});
    std::vector<Point> points;
    for (const std::size_t n : sizes) {
      const Point p = measure(n, seed, reps, every);
      t.add(p.nodes, p.rounds, p.plain_seconds, p.ckpt_seconds,
            p.overhead_pct, p.snapshot_bytes, p.snapshot_us,
            p.file_roundtrip_us);
      points.push_back(p);
    }
    std::cout << t;

    if (!out_path.empty()) {
      std::ofstream f(out_path);
      f << "{\n";
      f << "  \"bench\": \"checkpoint_overhead\",\n";
      f << "  \"workload\": \"hinet_interval_snapshot_every_round\",\n";
      f << "  \"description\": \"Engine::snapshot cost on the (T, L)-HiNet "
           "interval scenario: uninterrupted Engine::run vs a "
           "start/step/finish loop snapshotting every "
        << every
        << " round(s) (worst case); best-of-" << reps
        << " wall time, build RelWithDebInfo (-O2). snapshot_us is the "
           "in-memory serialize cost per checkpoint, file_roundtrip_us adds "
           "the checksummed atomic write + validated re-read. Reproduce "
           "with: build/bench/checkpoint_overhead --reps=" << reps
        << " --out=...\",\n";
      f << "  \"every\": " << every << ",\n";
      f << "  \"seed\": " << seed << ",\n";
      f << "  \"reps\": " << reps << ",\n";
      f << "  \"points\": [\n";
      for (std::size_t i = 0; i < points.size(); ++i) {
        const Point& p = points[i];
        f << "    {\"nodes\": " << p.nodes << ", \"rounds\": " << p.rounds
          << ", \"plain_seconds\": " << p.plain_seconds
          << ", \"ckpt_seconds\": " << p.ckpt_seconds
          << ", \"overhead_pct\": " << p.overhead_pct
          << ", \"snapshots\": " << p.snapshots
          << ", \"snapshot_bytes\": " << p.snapshot_bytes
          << ", \"snapshot_us\": " << p.snapshot_us
          << ", \"file_roundtrip_us\": " << p.file_roundtrip_us << "}"
          << (i + 1 < points.size() ? "," : "") << "\n";
      }
      f << "  ]\n}\n";
      std::cout << "\nJSON written to " << out_path << '\n';
    }
  });
}
