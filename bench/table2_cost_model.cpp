// Reproduces Table 2: the analytic time/communication cost of the four
// dynamics models, printed both symbolically and evaluated across a
// parameter grid, with the Table 2 ordering and row labels.
#include "common.hpp"

using namespace hinet;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const bool csv = args.get_bool("csv", false, "also emit CSV to stdout");

  return bench::run_main(args, "Table 2 — analytic cost model", [&] {
    std::cout << "=== Table 2: Performance of Different Algorithms ===\n\n";
    std::cout << "Symbolic forms (paper, Section V):\n";
    TextTable sym({"Network model", "Time (rounds)", "Comm (tokens)"});
    sym.add("(k+aL)-interval connected [7]", "ceil(n0/(aL)) * (k+aL)",
            "ceil(n0/(2a)) * n0 * k");
    sym.add("(k+aL, L)-HiNet", "(ceil(th/a)+1) * (k+aL)",
            "(ceil(th/a)+1)(n0-nm)k + nm*nr*k");
    sym.add("1-interval connected [7]", "n0 - 1", "(n0-1) * n0 * k");
    sym.add("(1, L)-HiNet", "n0 - 1", "(n0-1)(n0-nm)k + nm*nr*k");
    std::cout << sym << '\n';

    struct GridPoint {
      const char* label;
      CostParams p;
    };
    const GridPoint grid[] = {
        {"paper (Table 3, nr=3)", table3_params_hinet_interval()},
        {"paper (Table 3, nr=10)", table3_params_hinet_one()},
        {"small", {50, 10, 25, 2, 4, 2, 2}},
        {"medium", {200, 40, 100, 4, 16, 5, 2}},
        {"large", {400, 60, 220, 5, 32, 8, 3}},
        {"dense-heads", {100, 50, 30, 5, 8, 5, 2}},
    };

    CsvWriter csv_out({"grid", "model", "time_rounds", "comm_tokens"});
    for (const auto& gp : grid) {
      std::cout << "Evaluated at " << gp.label << ": n0=" << gp.p.n0
                << " theta=" << gp.p.theta << " nm=" << gp.p.n_m
                << " nr=" << gp.p.n_r << " k=" << gp.p.k
                << " alpha=" << gp.p.alpha << " L=" << gp.p.l << '\n';
      TextTable t({"Network model", "Time (rounds)", "Comm (tokens)"});
      for (const CostRow& row : evaluate_table2(gp.p)) {
        t.add(row.model, row.time, row.comm);
        csv_out.row(gp.label, row.model, row.time, row.comm);
      }
      std::cout << t << '\n';
    }
    if (csv) std::cout << "CSV:\n" << csv_out.content();
  });
}
