// One-command reproduction report.
//
// Runs the complete paper reproduction — Table 2/3 analytics, the measured
// simulation counterparts, the theorem-bound audit, and the headline-claim
// checks — and emits a self-contained markdown report (stdout, or --out).
// This is the artifact a reviewer would ask for.
#include "common.hpp"

#include <fstream>

#include "core/hinet_generator.hpp"
#include "core/hinet_properties.hpp"

using namespace hinet;

namespace {

void md_table(std::ostream& os, const std::vector<std::string>& header,
              const std::vector<std::vector<std::string>>& rows) {
  auto line = [&](const std::vector<std::string>& cells) {
    os << "| ";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) os << " | ";
      os << cells[i];
    }
    os << " |\n";
  };
  line(header);
  std::vector<std::string> rule(header.size(), "---");
  line(rule);
  for (const auto& r : rows) line(r);
}

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(1);
  os << std::fixed << v;
  std::string s = os.str();
  if (s.size() > 2 && s.substr(s.size() - 2) == ".0") {
    s.resize(s.size() - 2);
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto reps =
      static_cast<std::size_t>(args.get_int("reps", 5, "seeds per scenario"));
  const auto seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1, "base seed"));
  const std::string out_path =
      args.get_string("out", "", "write report to this path (default stdout)");
  const std::size_t jobs = args.get_jobs();

  return bench::run_main(args, "full reproduction report", [&] {
    std::ostringstream md;
    md << "# Reproduction report — Efficient Information Dissemination in "
          "Dynamic Networks (ICPP 2013)\n\n";
    md << "Deterministic run: base seed " << seed << ", " << reps
       << " repetitions per measured cell.\n\n";

    std::size_t checks_passed = 0, checks_total = 0;
    auto check = [&](bool ok) {
      ++checks_total;
      if (ok) ++checks_passed;
      return ok ? std::string("PASS") : std::string("**FAIL**");
    };

    // ---- Table 3 analytic ------------------------------------------------
    md << "## Table 3 (analytic, exact reproduction)\n\n";
    {
      const auto rows = evaluate_table3();
      const char* paper_time[] = {"180", "126", "99", "99"};
      const char* paper_comm[] = {"8000", "4320", "79200", "51680"};
      const std::size_t expect_comm[] = {8000, 4320, 79200, 50720};
      const std::size_t expect_time[] = {180, 126, 99, 99};
      std::vector<std::vector<std::string>> cells;
      for (std::size_t i = 0; i < rows.size(); ++i) {
        const bool time_ok = rows[i].time == expect_time[i];
        const bool comm_ok = rows[i].comm == expect_comm[i];
        cells.push_back({rows[i].model, paper_time[i],
                         std::to_string(rows[i].time), paper_comm[i],
                         std::to_string(rows[i].comm),
                         check(time_ok && comm_ok)});
      }
      md_table(md,
               {"model", "paper time", "our time", "paper comm", "our comm",
                "status"},
               cells);
      md << "\nNote: the paper's (1,L)-HiNet communication entry 51680 is "
            "an arithmetic slip;\nits own formula gives 50720 "
            "(see EXPERIMENTS.md), which we reproduce.\n\n";
    }

    // ---- Measured counterpart -------------------------------------------
    md << "## Measured simulation counterpart (Table 3 parameters)\n\n";
    {
      ScenarioConfig interval_cfg;
      interval_cfg.nodes = 100;
      interval_cfg.heads = 30;
      interval_cfg.k = 8;
      interval_cfg.alpha = 5;
      interval_cfg.hop_l = 2;
      interval_cfg.reaffiliation_prob = 0.5;
      ScenarioConfig one_cfg = interval_cfg;
      one_cfg.reaffiliation_prob = 0.1;

      const struct {
        Scenario s;
        const ScenarioConfig* cfg;
      } plan[] = {
          {Scenario::kKloInterval, &interval_cfg},
          {Scenario::kHiNetInterval, &interval_cfg},
          {Scenario::kKloOne, &one_cfg},
          {Scenario::kHiNetOne, &one_cfg},
      };
      std::vector<bench::MeasuredRow> measured;
      std::vector<std::vector<std::string>> cells;
      for (const auto& item : plan) {
        bench::MeasuredRow row =
            bench::measure_scenario(item.s, *item.cfg, reps, seed, jobs);
        const auto [at, ac] = bench::analytic_costs(item.s, row.analytic);
        (void)at;
        cells.push_back({row.model, std::to_string(row.time_sched),
                         fmt(row.time_mean), fmt(row.comm_mean),
                         std::to_string(ac),
                         check(row.delivery == 1.0 &&
                               row.comm_mean <= static_cast<double>(ac) * 1.2)});
        measured.push_back(std::move(row));
      }
      md_table(md,
               {"scenario", "sched rounds", "rounds (meas)", "comm (meas)",
                "comm (analytic@measured)", "status"},
               cells);

      md << "\n### Headline claims (Section V)\n\n";
      std::vector<std::vector<std::string>> claims;
      const double save_i = 1.0 - measured[1].comm_mean / measured[0].comm_mean;
      const double save_1 = 1.0 - measured[3].comm_mean / measured[2].comm_mean;
      claims.push_back(
          {"HiNet saves communication, (k+aL) setting",
           fmt(save_i * 100.0) + "% saved", check(save_i > 0.0)});
      claims.push_back(
          {"HiNet saves communication, (1,L) setting",
           fmt(save_1 * 100.0) + "% saved", check(save_1 > 0.0)});
      claims.push_back({"time similar or smaller, (k+aL) setting",
                        fmt(measured[1].time_mean) + " vs " +
                            fmt(measured[0].time_mean) + " rounds",
                        check(measured[1].time_mean <=
                              1.2 * measured[0].time_mean)});
      claims.push_back({"time similar or smaller, (1,L) setting",
                        fmt(measured[3].time_mean) + " vs " +
                            fmt(measured[2].time_mean) + " rounds",
                        check(measured[3].time_mean <=
                              1.2 * measured[2].time_mean)});
      claims.push_back({"benefit can reach ~50%",
                        fmt(std::max(save_i, save_1) * 100.0) + "% best",
                        check(std::max(save_i, save_1) >= 0.45)});
      md_table(md, {"claim", "measured", "status"}, claims);
    }

    // ---- Theorem audit ----------------------------------------------------
    md << "\n## Theorem audit (delivery within proved schedules)\n\n";
    {
      ScenarioConfig cfg;
      cfg.nodes = 60;
      cfg.heads = 8;
      cfg.k = 6;
      cfg.alpha = 2;
      cfg.hop_l = 2;
      cfg.reaffiliation_prob = 0.15;
      std::vector<std::vector<std::string>> cells;
      for (Scenario s : {Scenario::kKloInterval, Scenario::kHiNetInterval,
                         Scenario::kHiNetIntervalStable, Scenario::kKloOne,
                         Scenario::kHiNetOne}) {
        std::size_t ok_count = 0;
        ScenarioSchedule sched;
        (void)scenario_generator(s, cfg, seed, &sched);
        const auto runs =
            run_replicates(scenario_factory(s, cfg), reps, seed, jobs);
        for (const ReplicateResult& r : runs) {
          if (r.metrics.all_delivered &&
              r.metrics.rounds_to_completion <= sched.rounds()) {
            ++ok_count;
          }
        }
        cells.push_back({scenario_name(s),
                         std::to_string(ok_count) + "/" + std::to_string(reps),
                         check(ok_count == reps)});
      }
      md_table(md, {"scenario", "within schedule", "status"}, cells);
    }

    // ---- Model self-check --------------------------------------------------
    md << "\n## Model self-check (generated traces satisfy Definition 8)\n\n";
    {
      std::size_t ok_count = 0;
      const std::size_t trials = reps;
      for (std::uint64_t sd = 0; sd < trials; ++sd) {
        HiNetConfig gen;
        gen.nodes = 40;
        gen.heads = 6;
        gen.phase_length = 8;
        gen.phases = 4;
        gen.hop_l = 2;
        gen.reaffiliation_prob = 0.2;
        gen.seed = seed + sd;
        HiNetTrace trace = make_hinet_trace(gen);
        if (trace.ctvg.validate().empty() &&
            check_hinet(trace.ctvg, trace.ctvg.round_count(), 8, 2)) {
          ++ok_count;
        }
      }
      md << "Definition 8 holds on " << ok_count << "/" << trials
         << " generated traces: " << check(ok_count == trials) << "\n";
    }

    md << "\n---\n**" << checks_passed << "/" << checks_total
       << " checks passed.**\n";

    if (out_path.empty()) {
      std::cout << md.str();
    } else {
      std::ofstream f(out_path);
      f << md.str();
      std::cout << "report written to " << out_path << " (" << checks_passed
                << "/" << checks_total << " checks passed)\n";
    }
  });
}
