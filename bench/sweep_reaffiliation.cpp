// Validation figure V3: communication cost versus member churn.  The
// HiNet member term is n_m * n_r * k, so its advantage erodes as
// re-affiliation grows — this sweep locates where, which the paper only
// gestures at ("n_r should be much less than n_0").
#include "common.hpp"

using namespace hinet;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto reps =
      static_cast<std::size_t>(args.get_int("reps", 3, "seeds per point"));
  const auto seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1, "base seed"));
  const std::string csv_path =
      args.get_string("csv", "", "write CSV to this path (empty = skip)");
  const std::size_t jobs = args.get_jobs();

  return bench::run_main(args, "Sweep V3 — communication vs churn", [&] {
    std::cout << "=== V3: communication vs re-affiliation churn (n0=64, "
                 "heads=8, k=6, alpha=2, L=2) ===\n\n";
    std::vector<std::string> header{"reaff_prob", "model", "measured_nr",
                                    "comm_meas", "comm_analytic", "delivery"};
    std::unique_ptr<CsvWriter> csv;
    if (csv_path.empty()) {
      csv = std::make_unique<CsvWriter>(header);
    } else {
      csv = std::make_unique<CsvWriter>(csv_path, header);
    }

    TextTable t({"reaff p", "model", "measured n_r", "comm meas",
                 "comm analytic", "delivery%"});
    for (double p : {0.0, 0.1, 0.25, 0.5, 0.75, 1.0}) {
      ScenarioConfig cfg;
      cfg.nodes = 64;
      cfg.heads = 8;
      cfg.k = 6;
      cfg.alpha = 2;
      cfg.hop_l = 2;
      cfg.reaffiliation_prob = p;
      for (Scenario s : {Scenario::kHiNetInterval, Scenario::kHiNetOne,
                         Scenario::kHiNetIntervalStable}) {
        const bench::MeasuredRow row =
            bench::measure_scenario(s, cfg, reps, seed, jobs);
        const auto [at, ac] = bench::analytic_costs(s, row.analytic);
        (void)at;
        t.add(p, row.model, static_cast<long long>(row.analytic.n_r),
              row.comm_mean, ac, row.delivery * 100.0);
        csv->row(p, row.model, row.analytic.n_r, row.comm_mean, ac,
                 row.delivery);
      }
    }
    std::cout << t;
    std::cout << "\nReference (churn-independent) KLO costs at these "
                 "parameters:\n";
    ScenarioConfig ref;
    ref.nodes = 64;
    ref.heads = 8;
    ref.k = 6;
    ref.alpha = 2;
    ref.hop_l = 2;
    for (Scenario s : {Scenario::kKloInterval, Scenario::kKloOne}) {
      const bench::MeasuredRow row =
          bench::measure_scenario(s, ref, reps, seed, jobs);
      std::cout << "  " << row.model << ": measured " << row.comm_mean
                << " tokens\n";
    }
    if (!csv_path.empty()) std::cout << "\nCSV written to " << csv_path << '\n';
  });
}
