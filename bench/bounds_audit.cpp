// Validation experiment V5: theorem-bound audit.  For every scenario and
// seed, the measured run must respect the paper's guarantees:
//   - delivery completes within the scheduled rounds (Theorems 1 and 2);
//   - measured communication does not exceed the Table 2 worst case
//     (evaluated at measured θ, n_m, n_r; member initial uploads counted
//     as one extra n_r unit, see EXPERIMENTS.md).
#include "common.hpp"

#include <map>
#include <mutex>

using namespace hinet;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto seeds =
      static_cast<std::uint64_t>(args.get_int("seeds", 6, "seeds to audit"));
  const std::size_t jobs = args.get_jobs();

  return bench::run_main(args, "V5 — theorem bound audit", [&] {
    std::cout << "=== V5: measured behaviour vs proved bounds ===\n\n";
    TextTable t({"scenario", "seed", "rounds<=sched", "comm<=analytic",
                 "delivered"});
    std::size_t failures = 0;
    for (Scenario s : {Scenario::kKloInterval, Scenario::kHiNetInterval,
                       Scenario::kHiNetIntervalStable, Scenario::kKloOne,
                       Scenario::kHiNetOne}) {
      ScenarioConfig cfg;
      cfg.nodes = 60;
      cfg.heads = 8;
      cfg.k = 6;
      cfg.alpha = 2;
      cfg.hop_l = 2;
      cfg.reaffiliation_prob = 0.15;

      // The per-seed analytic params (measured θ, n_m, n_r) are a
      // by-product of spec construction; collect them through a locked
      // side table so the factory stays safe under concurrent invocation.
      std::mutex analytics_mutex;
      std::map<std::uint64_t, ScenarioRun> probes;
      const SpecFactory factory = [&](std::uint64_t seed) {
        ScenarioRun sr = make_scenario(s, cfg, seed);
        SimulationSpec spec = std::move(sr.spec);
        std::lock_guard<std::mutex> lock(analytics_mutex);
        probes.emplace(seed, std::move(sr));
        return spec;
      };
      const auto runs = run_replicates(factory, seeds, 0, jobs);

      for (std::uint64_t seed = 0; seed < seeds; ++seed) {
        const ScenarioRun& sr = probes.at(replicate_seed(0, seed));
        CostParams bound = sr.analytic;
        bound.n_r += 1;  // member initial upload allowance
        const std::size_t sched = sr.scheduled_rounds;
        const SimMetrics& m = runs[seed].metrics;
        const auto [at, ac] = bench::analytic_costs(s, bound);
        (void)at;
        const bool time_ok =
            m.all_delivered && m.rounds_to_completion <= sched;
        const bool comm_ok = m.tokens_sent <= ac;
        if (!time_ok || !comm_ok || !m.all_delivered) ++failures;
        auto yn = [](bool b) { return b ? "yes" : "NO"; };
        t.add(scenario_name(s), seed, yn(time_ok), yn(comm_ok),
              yn(m.all_delivered));
      }
    }
    std::cout << t;
    std::cout << "\nAudit failures: " << failures << '\n';
  });
}
