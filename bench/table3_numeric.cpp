// Reproduces Table 3: the paper's numeric example (n0=100, θ=30, n_m=40,
// n_r=3/10, k=8, α=5, L=2), and extends it with *measured* columns from
// running the actual algorithms on generated traces with matching
// parameters — the validation the paper itself never ran.
#include "common.hpp"

using namespace hinet;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto reps = static_cast<std::size_t>(
      args.get_int("reps", 5, "repetitions per scenario"));
  const auto seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1, "base seed"));
  const std::size_t jobs = args.get_jobs();

  return bench::run_main(args, "Table 3 — numeric example + measured", [&] {
    std::cout << "=== Table 3: Numerical Results of Performance Analysis "
                 "===\n\n";
    TextTable t({"Models of Dynamic Networks", "Time (rounds)",
                 "Comm (tokens)", "Paper prints"});
    const auto rows = evaluate_table3();
    const char* paper_values[] = {"180 / 8000", "126 / 4320", "99 / 79200",
                                  "99 / 51680 (*)"};
    for (std::size_t i = 0; i < rows.size(); ++i) {
      t.add(rows[i].model, rows[i].time, rows[i].comm, paper_values[i]);
    }
    std::cout << t;
    std::cout << "(*) The paper prints 51680, but its own formula "
                 "(n0-1)(n0-nm)k + nm*nr*k\n    with n0=100, nm=40, nr=10, "
                 "k=8 gives 99*60*8 + 40*10*8 = 50720.\n    We reproduce "
                 "the formula; see EXPERIMENTS.md.\n\n";

    std::cout << "--- Measured counterpart (simulation, " << reps
              << " seeds each) ---\n";
    std::cout << "Traces: generated (T,L)-HiNet / (1,L)-HiNet with n0=100, "
                 "heads=30, k=8, alpha=5, L=2;\nKLO baselines run on the "
                 "same trace family with the hierarchy ignored.\n\n";

    ScenarioConfig interval_cfg;
    interval_cfg.nodes = 100;
    interval_cfg.heads = 30;
    interval_cfg.k = 8;
    interval_cfg.alpha = 5;
    interval_cfg.hop_l = 2;
    // Tuned so measured n_r lands near the paper's assumption (3).
    interval_cfg.reaffiliation_prob = 0.5;

    ScenarioConfig one_cfg = interval_cfg;
    // (1,L): boundaries are per-round; the paper assumes higher churn
    // (n_r = 10) in this setting.
    one_cfg.reaffiliation_prob = 0.1;

    TextTable m({"Scenario", "Sched. rounds", "Rounds (meas.)",
                 "Comm (meas.)", "Comm (analytic@measured)", "Delivery"});
    const struct {
      Scenario s;
      const ScenarioConfig* cfg;
    } plan[] = {
        {Scenario::kKloInterval, &interval_cfg},
        {Scenario::kHiNetInterval, &interval_cfg},
        {Scenario::kKloOne, &one_cfg},
        {Scenario::kHiNetOne, &one_cfg},
    };
    for (const auto& item : plan) {
      const bench::MeasuredRow row =
          bench::measure_scenario(item.s, *item.cfg, reps, seed, jobs);
      const auto [at, ac] = bench::analytic_costs(item.s, row.analytic);
      (void)at;
      m.add(row.model, row.time_sched, row.time_mean, row.comm_mean, ac,
            row.delivery * 100.0);
    }
    std::cout << m;
    std::cout << "\nShape check (paper Section V): the HiNet rows must beat "
                 "the [7] rows on\ncommunication at similar-or-smaller "
                 "time.\n";
  });
}
