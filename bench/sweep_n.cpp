// Validation figure V1: communication and time cost versus network size
// n0, for all four Table 2 rows — measured from simulation plus the
// analytic model evaluated at measured dynamics (θ, n_m, n_r).  The
// paper's claim to validate: the HiNet curves stay well below the KLO [7]
// curves in communication across the whole range, with similar time.
#include "common.hpp"

using namespace hinet;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto reps =
      static_cast<std::size_t>(args.get_int("reps", 3, "seeds per point"));
  const auto seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1, "base seed"));
  const auto max_n = static_cast<std::size_t>(
      args.get_int("max-n", 160, "largest network size"));
  const std::string csv_path =
      args.get_string("csv", "", "write CSV to this path (empty = skip)");
  const std::size_t jobs = args.get_jobs();

  return bench::run_main(args, "Sweep V1 — cost vs n0", [&] {
    std::cout << "=== V1: communication & time vs n0 (k=6, alpha=2, L=2, "
                 "heads=n0/8) ===\n\n";
    std::vector<std::string> header{"n0",          "model",
                                    "sched_rounds", "rounds_meas",
                                    "comm_meas",   "comm_analytic",
                                    "delivery"};
    std::unique_ptr<CsvWriter> csv;
    if (csv_path.empty()) {
      csv = std::make_unique<CsvWriter>(header);
    } else {
      csv = std::make_unique<CsvWriter>(csv_path, header);
    }

    TextTable t({"n0", "model", "sched", "rounds", "comm meas",
                 "comm analytic", "delivery%"});
    for (std::size_t n = 40; n <= max_n; n += 40) {
      ScenarioConfig cfg;
      cfg.nodes = n;
      cfg.heads = std::max<std::size_t>(2, n / 8);
      cfg.k = 6;
      cfg.alpha = 2;
      cfg.hop_l = 2;
      cfg.reaffiliation_prob = 0.1;
      for (Scenario s : {Scenario::kKloInterval, Scenario::kHiNetInterval,
                         Scenario::kKloOne, Scenario::kHiNetOne}) {
        const bench::MeasuredRow row =
            bench::measure_scenario(s, cfg, reps, seed, jobs);
        const auto [at, ac] = bench::analytic_costs(s, row.analytic);
        (void)at;
        t.add(n, row.model, row.time_sched, row.time_mean, row.comm_mean, ac,
              row.delivery * 100.0);
        csv->row(n, row.model, row.time_sched, row.time_mean, row.comm_mean,
                 ac, row.delivery);
      }
    }
    std::cout << t;
    if (!csv_path.empty()) {
      std::cout << "\nCSV written to " << csv_path << '\n';
    }
  });
}
