// Validation figure V2: communication cost versus token count k.  Both
// models scale linearly in k analytically; measured curves must preserve
// the HiNet-vs-KLO gap at every k.
#include "common.hpp"

using namespace hinet;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto reps =
      static_cast<std::size_t>(args.get_int("reps", 3, "seeds per point"));
  const auto seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1, "base seed"));
  const std::string csv_path =
      args.get_string("csv", "", "write CSV to this path (empty = skip)");
  const std::size_t jobs = args.get_jobs();

  return bench::run_main(args, "Sweep V2 — communication vs k", [&] {
    std::cout << "=== V2: communication vs k (n0=64, heads=8, alpha=2, L=2) "
                 "===\n\n";
    std::vector<std::string> header{"k", "model", "comm_meas", "comm_analytic",
                                    "rounds_meas", "delivery"};
    std::unique_ptr<CsvWriter> csv;
    if (csv_path.empty()) {
      csv = std::make_unique<CsvWriter>(header);
    } else {
      csv = std::make_unique<CsvWriter>(csv_path, header);
    }

    TextTable t({"k", "model", "comm meas", "comm analytic", "rounds",
                 "delivery%"});
    for (std::size_t k : {2u, 4u, 8u, 16u, 32u}) {
      ScenarioConfig cfg;
      cfg.nodes = 64;
      cfg.heads = 8;
      cfg.k = k;
      cfg.alpha = 2;
      cfg.hop_l = 2;
      cfg.reaffiliation_prob = 0.1;
      for (Scenario s : {Scenario::kKloInterval, Scenario::kHiNetInterval,
                         Scenario::kKloOne, Scenario::kHiNetOne}) {
        const bench::MeasuredRow row =
            bench::measure_scenario(s, cfg, reps, seed, jobs);
        const auto [at, ac] = bench::analytic_costs(s, row.analytic);
        (void)at;
        t.add(k, row.model, row.comm_mean, ac, row.time_mean,
              row.delivery * 100.0);
        csv->row(k, row.model, row.comm_mean, ac, row.time_mean,
                 row.delivery);
      }
    }
    std::cout << t;
    if (!csv_path.empty()) std::cout << "\nCSV written to " << csv_path << '\n';
  });
}
