// SimulationSpec: a complete, self-owning description of one simulation
// run — the value-semantic replacement for the old PreparedRun's
// type-erased `shared_ptr<void> holder` + raw borrow pointers.
//
// A spec owns its dynamic network, optional hierarchy provider, optional
// channel model, per-node processes and engine configuration.  Because
// nothing inside a spec aliases outside storage, a spec can be built on
// one thread and executed on another, which is what makes the batch
// experiment executor (analysis/experiment.hpp) safe to parallelise.
//
// Specs are move-only: ownership of a run is transferred, never shared.
#pragma once

#include <memory>
#include <vector>

#include "cluster/hierarchy.hpp"
#include "graph/dynamic.hpp"
#include "sim/channel.hpp"
#include "sim/metrics.hpp"
#include "sim/process.hpp"

namespace hinet {

struct EngineConfig {
  /// Hard cap on executed rounds.
  std::size_t max_rounds = 0;

  /// Stop as soon as every node knows every token (after completing the
  /// round).  When false the engine always runs max_rounds rounds, which
  /// measures the algorithm's *scheduled* cost rather than its oracle
  /// stopping time.
  bool stop_when_complete = true;

  /// Wall-clock budget for the whole run, in milliseconds; 0 = unlimited.
  /// Checked once per round: an over-budget run throws DeadlineError (see
  /// sim/engine.hpp) instead of occupying its worker forever — the
  /// supervised experiment runner uses this to bound stuck replicates.
  /// The budget never influences simulation results (a run either finishes
  /// with its deterministic metrics or throws); resuming from a snapshot
  /// restarts the budget.
  std::size_t deadline_ms = 0;
};

struct SimulationSpec {
  /// The per-round communication graphs.  Required.
  std::unique_ptr<DynamicNetwork> network;

  /// Per-round roles/clusters; null for flat (non-clustered) algorithms.
  std::unique_ptr<HierarchyProvider> hierarchy;

  /// Failure-injecting medium; null means perfect delivery (the paper's
  /// model, zero-overhead path).
  std::unique_ptr<ChannelModel> channel;

  /// One process per node, in node-id order.
  std::vector<ProcessPtr> processes;

  EngineConfig engine;
};

/// Spec-level validation with actionable, field-naming messages: network
/// present, max_rounds non-zero, process/hierarchy node counts matching.
/// run_simulation and the batch engine both call this; exposed so callers
/// that assemble specs by hand can fail early with the same diagnostics.
void validate_simulation_spec(const SimulationSpec& spec);

/// Consumes the spec and executes it to completion on a fresh engine.
/// Throws PreconditionError when the spec has no network or the processes
/// do not match the network's node count.
SimMetrics run_simulation(SimulationSpec spec);

}  // namespace hinet
