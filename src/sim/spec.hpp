// SimulationSpec: a complete, self-owning description of one simulation
// run — the value-semantic replacement for the old PreparedRun's
// type-erased `shared_ptr<void> holder` + raw borrow pointers.
//
// A spec owns its dynamic network, optional hierarchy provider, optional
// channel model, per-node processes and engine configuration.  Because
// nothing inside a spec aliases outside storage, a spec can be built on
// one thread and executed on another, which is what makes the batch
// experiment executor (analysis/experiment.hpp) safe to parallelise.
//
// Specs are move-only: ownership of a run is transferred, never shared.
#pragma once

#include <memory>
#include <vector>

#include "cluster/hierarchy.hpp"
#include "graph/dynamic.hpp"
#include "sim/channel.hpp"
#include "sim/metrics.hpp"
#include "sim/process.hpp"

namespace hinet {

struct EngineConfig {
  /// Hard cap on executed rounds.
  std::size_t max_rounds = 0;

  /// Stop as soon as every node knows every token (after completing the
  /// round).  When false the engine always runs max_rounds rounds, which
  /// measures the algorithm's *scheduled* cost rather than its oracle
  /// stopping time.
  bool stop_when_complete = true;
};

struct SimulationSpec {
  /// The per-round communication graphs.  Required.
  std::unique_ptr<DynamicNetwork> network;

  /// Per-round roles/clusters; null for flat (non-clustered) algorithms.
  std::unique_ptr<HierarchyProvider> hierarchy;

  /// Failure-injecting medium; null means perfect delivery (the paper's
  /// model, zero-overhead path).
  std::unique_ptr<ChannelModel> channel;

  /// One process per node, in node-id order.
  std::vector<ProcessPtr> processes;

  EngineConfig engine;
};

/// Consumes the spec and executes it to completion on a fresh engine.
/// Throws PreconditionError when the spec has no network or the processes
/// do not match the network's node count.
SimMetrics run_simulation(SimulationSpec spec);

}  // namespace hinet
