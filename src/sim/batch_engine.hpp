// BatchEngine: lockstep execution of R replicates of one SimulationSpec
// family.
//
// A run is a pure function of (spec, seed), so R replicates built by the
// same SpecFactory at derived seeds can be advanced round by round in
// lockstep instead of run to run.  Per lockstep round the engine executes:
//
//   phase A — per replicate, in index order: the send step (transmit()
//             collection, node-id order);
//   phase B — ONE ChannelModel::begin_round_batch call covering every
//             active replicate, when the channel type certifies batching
//             via supports_batching() (otherwise a per-replicate
//             begin_round loop — always correct, never sniffed by
//             dynamic_cast in the engine);
//   phase C — per replicate, in index order: scatter, channel filtering,
//             receive() and completion bookkeeping.
//
// Every replicate owns its trace, hierarchy, channel and processes; the
// only cross-replicate sharing is pure scratch (one inbox buffer serves
// the whole batch, replicate-major per round).  The per-replicate round
// body is detail::RunCore — the same code the serial Engine runs — so
// each replicate's sequence of process calls, channel RNG draws and
// metrics is byte-identical to a serial Engine run of the same spec.
// (tests/sim/test_batch_engine.cpp and the batch-equivalence suites pin
// this for every scenario × channel × seed.)
//
// Failure isolation: one replicate throwing (a process bug, a channel
// precondition, a poisoned seed) removes only that replicate from the
// lockstep; the rest finish normally.  Failures carry the original
// exception_ptr so supervised callers can classify and retry by type.
//
// Deadline: the largest EngineConfig::deadline_ms across the batch bounds
// the whole lockstep run (checked once per lockstep round).  On expiry
// every still-unfinished replicate fails with DeadlineError — a batch is
// the unit of scheduling here, so the budget is per batch, not per
// replicate (documented in analysis/experiment.hpp).
//
// Single-shot, like Engine: run() consumes the replicates' process state.
// No observer support — record traces through a serial Engine.
#pragma once

#include <exception>
#include <optional>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/round_core.hpp"
#include "sim/spec.hpp"

namespace hinet {

/// One replicate's terminal failure inside a lockstep batch.
struct BatchReplicateFailure {
  std::size_t index = 0;      ///< position in the spec vector
  std::string message;
  std::exception_ptr error;   ///< rethrowable, for error classification
};

/// Outcome of a lockstep batch: metrics per replicate index (nullopt =
/// failed; see failures, sorted by index).
struct BatchOutcome {
  std::vector<std::optional<SimMetrics>> slots;
  std::vector<BatchReplicateFailure> failures;

  std::size_t completed() const;
};

class BatchEngine {
 public:
  /// Consumes the specs.  Every spec is validated up front
  /// (validate_simulation_spec) and the batch must be channel-homogeneous:
  /// either every spec owns a channel or none does (one factory built
  /// them, so a mixed batch is a mis-assembled call).
  explicit BatchEngine(std::vector<SimulationSpec> specs);

  std::size_t size() const { return replicates_.size(); }

  /// Runs every replicate to completion (or failure) in lockstep.
  /// Single-shot; never throws for per-replicate failures (they land in
  /// the outcome), only for engine misuse (second run()).
  BatchOutcome run();

 private:
  struct Replicate {
    std::unique_ptr<DynamicNetwork> network;
    std::unique_ptr<HierarchyProvider> hierarchy;
    std::unique_ptr<ChannelModel> channel;
    std::vector<ProcessPtr> processes;
    EngineConfig config;
    HierarchyView flat_view;
    detail::RunCore core;
    // Round-scoped: the graph/hierarchy the send step bound, reused by
    // the delivery phase of the same lockstep round.
    const Graph* round_graph = nullptr;
    const HierarchyView* round_view = nullptr;
    bool active = false;
  };

  void bind(Replicate& rep);

  std::vector<Replicate> replicates_;
  detail::InboxScratch scratch_;
  bool ran_ = false;
};

}  // namespace hinet
