// Synchronous round engine.
//
// Executes one Process per node over a DynamicNetwork (and optional
// HierarchyProvider) for up to max_rounds rounds:
//
//   for each round r:
//     1. collect transmit() from every unfinished node      (send step)
//     2. scatter each packet to its sender's G_r neighbours (delivery)
//     3. receive() per node; account costs; track completion
//
// Delivery is sender-centric and zero-copy: the engine walks the round's
// packet list once, pushing a PacketView into each CSR neighbour's inbox
// index list (a counting-sort over receivers — O(Σ deg(sender)) instead
// of the receiver-centric O(n · packets) edge probing, with no per-packet
// TokenSet copies).  Because packets are collected in sender order and the
// scatter is stable, every inbox stays sorted by sender id — the ordering
// the determinism guarantee and the algorithms' tie-breaking rely on.
// Channel filtering runs receiver-major over the prebuilt lists, which
// preserves the exact deliver() call order (and hence RNG draw order) of
// the receiver-centric engine: a (trace, seed) pair reproduces
// byte-identical metrics across engine generations.
//
// Completion is tracked incrementally: knowledge is monotone and grows
// only in receive() (see Process), so each node is checked once per round
// with an O(1) TokenSet::full() and never re-scanned once complete.
//
// All per-round scratch (packet buffer, per-packet costs, inbox offsets /
// cursors / view lists) is hoisted out of the round loop and reused, so a
// steady-state round performs no heap allocation inside the engine.
//
// Execution is round-granular: run() is start() + step()-until-done +
// finish(), and the three stages are public so callers can pause between
// rounds.  At any round boundary snapshot() serializes the complete run
// state (round counter, partial metrics, per-process state, channel RNG /
// Markov state) into a versioned, CRC-guarded SimSnapshot; restore()
// re-attaches that state to a freshly built identical spec, and the
// resumed run finishes with byte-identical SimMetrics to an uninterrupted
// one (pinned by tests/sim/test_snapshot.cpp for every scenario×channel).
//
// Two ownership modes:
//   - spec-owning (preferred): Engine(SimulationSpec) takes the whole run
//     — network, hierarchy, channel, processes, config — so the engine's
//     lifetime alone keeps every dependency alive;
//   - borrowing: Engine(net, hierarchy, processes) references
//     caller-owned topology, for unit tests and tools that inspect the
//     trace after the run.
#pragma once

#include <chrono>
#include <functional>
#include <vector>

#include "cluster/hierarchy.hpp"
#include "graph/dynamic.hpp"
#include "sim/channel.hpp"
#include "sim/round_core.hpp"
#include "sim/snapshot.hpp"
#include "sim/spec.hpp"

namespace hinet {

/// Thrown by step() when EngineConfig::deadline_ms elapses before the run
/// finishes.  The run is abandoned, never resumed: a deadline is a
/// supervision boundary, not a pause (use snapshot() for pausing).
class DeadlineError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Observer invoked after each round with a view of that round's packets
/// (valid only during the call); used by trace recording and the
/// walkthrough bench.  Return value ignored.
using RoundObserver = std::function<void(Round, std::span<const Packet>,
                                         const Graph&, const HierarchyView&)>;

class Engine {
 public:
  /// Spec-owning mode: consumes the spec; the engine owns every part of
  /// the run.  The spec's channel (if any) is installed automatically.
  explicit Engine(SimulationSpec spec);

  /// Borrowing mode: `net` (and `hierarchy`, which may be null for flat
  /// algorithms) must outlive the engine; the caller keeps ownership.
  Engine(DynamicNetwork& net, HierarchyProvider* hierarchy,
         std::vector<ProcessPtr> processes);

  /// Runs the simulation: start(cfg), step() until done, finish().
  /// Single-shot: a second run on the same engine is a hard
  /// PreconditionError (processes hold consumed per-run state, so
  /// re-running would silently measure garbage).
  SimMetrics run(const EngineConfig& cfg);

  /// Spec-owning mode only: runs with the owned spec's engine config.
  SimMetrics run();

  // Round-granular execution, for callers that pause, checkpoint, or
  // interleave with other work.  Exactly one of start()/restore() begins a
  // run; step() executes one round; finish() seals the metrics.

  /// Begins a run.  PreconditionError if a run already started.
  void start(const EngineConfig& cfg);

  /// Executes one round.  Returns true while more rounds remain (schedule
  /// not exhausted and, with stop_when_complete, dissemination not yet
  /// complete).  Throws DeadlineError when the config's wall-clock budget
  /// is exhausted.
  bool step();

  /// Finalizes and returns the run's metrics; the engine is spent after.
  SimMetrics finish();

  /// Serializes the full run state at the current round boundary.  Valid
  /// between start()/restore() and finish().  Requires every process (and
  /// the channel, if stateful) to implement the checkpoint hooks.
  SimSnapshot snapshot() const;

  /// Begins a run by re-attaching snapshotted state to this engine, which
  /// must be freshly built from a spec identical to the one the snapshot
  /// was taken from (same factory, same seed).  The engine config is
  /// restored from the snapshot.  Throws IoError when the payload is
  /// corrupt or belongs to a structurally different run (node count,
  /// channel presence, per-process state shape).
  void restore(const SimSnapshot& snap);

  /// Round index of the next round step() would execute.
  Round current_round() const { return core_.round; }

  void set_observer(RoundObserver obs) { observer_ = std::move(obs); }

  /// Installs a failure-injecting channel; the engine does not own it.
  /// Default: perfect delivery (the paper's model).  A spec-owning engine
  /// installs (and owns) its spec's channel instead.
  void set_channel(ChannelModel* channel) { channel_ = channel; }

  const Process& process(NodeId v) const { return *processes_[v]; }

 private:
  void validate() const;

  /// Points the run core's bindings at this engine's topology, processes
  /// and channel (called at start()/restore(), and per step for the
  /// channel, which set_channel may swap between rounds).
  void bind_core();

  /// Arms (or disarms) the wall-clock budget from the core's deadline_ms,
  /// saturating un-representable budgets to "no deadline".
  void arm_deadline();

  // Owned storage (spec-owning mode only; empty when borrowing).
  std::unique_ptr<DynamicNetwork> owned_network_;
  std::unique_ptr<HierarchyProvider> owned_hierarchy_;
  std::unique_ptr<ChannelModel> owned_channel_;
  EngineConfig owned_config_;
  bool owning_ = false;

  DynamicNetwork* net_;
  HierarchyProvider* hierarchy_;
  HierarchyView flat_view_;
  std::vector<ProcessPtr> processes_;
  RoundObserver observer_;
  ChannelModel* channel_ = nullptr;

  // Run state and per-round scratch, valid between start()/restore() and
  // finish().  The round body itself lives in detail::RunCore, shared
  // verbatim with the lockstep BatchEngine; the core's state (round
  // counter, metrics, completion flags) is what snapshot() captures.
  bool started_ = false;
  bool finished_ = false;
  detail::RunCore core_;
  detail::InboxScratch scratch_;
  // Supervision deadline: over-budget runs throw, they never degrade, so
  // results stay a pure function of (spec, seed).
  // detlint-allow(banned-time): deadline only gates abort, never results
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
};

}  // namespace hinet
