// Synchronous round engine.
//
// Executes one Process per node over a DynamicNetwork (and optional
// HierarchyProvider) for up to max_rounds rounds:
//
//   for each round r:
//     1. collect transmit() from every unfinished node      (send step)
//     2. scatter each packet to its sender's G_r neighbours (delivery)
//     3. receive() per node; account costs; track completion
//
// Delivery is sender-centric and zero-copy: the engine walks the round's
// packet list once, pushing a PacketView into each CSR neighbour's inbox
// index list (a counting-sort over receivers — O(Σ deg(sender)) instead
// of the receiver-centric O(n · packets) edge probing, with no per-packet
// TokenSet copies).  Because packets are collected in sender order and the
// scatter is stable, every inbox stays sorted by sender id — the ordering
// the determinism guarantee and the algorithms' tie-breaking rely on.
// Channel filtering runs receiver-major over the prebuilt lists, which
// preserves the exact deliver() call order (and hence RNG draw order) of
// the receiver-centric engine: a (trace, seed) pair reproduces
// byte-identical metrics across engine generations.
//
// Completion is tracked incrementally: knowledge is monotone and grows
// only in receive() (see Process), so each node is checked once per round
// with an O(1) TokenSet::full() and never re-scanned once complete.
//
// All per-round scratch (packet buffer, per-packet costs, inbox offsets /
// cursors / view lists) is hoisted out of the round loop and reused, so a
// steady-state round performs no heap allocation inside the engine.
//
// Two ownership modes:
//   - spec-owning (preferred): Engine(SimulationSpec) takes the whole run
//     — network, hierarchy, channel, processes, config — so the engine's
//     lifetime alone keeps every dependency alive;
//   - borrowing: Engine(net, hierarchy, processes) references
//     caller-owned topology, for unit tests and tools that inspect the
//     trace after the run.
#pragma once

#include <functional>
#include <vector>

#include "cluster/hierarchy.hpp"
#include "graph/dynamic.hpp"
#include "sim/channel.hpp"
#include "sim/spec.hpp"

namespace hinet {

/// Observer invoked after each round with a view of that round's packets
/// (valid only during the call); used by trace recording and the
/// walkthrough bench.  Return value ignored.
using RoundObserver = std::function<void(Round, std::span<const Packet>,
                                         const Graph&, const HierarchyView&)>;

class Engine {
 public:
  /// Spec-owning mode: consumes the spec; the engine owns every part of
  /// the run.  The spec's channel (if any) is installed automatically.
  explicit Engine(SimulationSpec spec);

  /// Borrowing mode: `net` (and `hierarchy`, which may be null for flat
  /// algorithms) must outlive the engine; the caller keeps ownership.
  Engine(DynamicNetwork& net, HierarchyProvider* hierarchy,
         std::vector<ProcessPtr> processes);

  /// Runs the simulation.  Single-shot: a second call on the same engine
  /// is a hard PreconditionError (processes hold consumed per-run state,
  /// so re-running would silently measure garbage).
  SimMetrics run(const EngineConfig& cfg);

  /// Spec-owning mode only: runs with the owned spec's engine config.
  SimMetrics run();

  void set_observer(RoundObserver obs) { observer_ = std::move(obs); }

  /// Installs a failure-injecting channel; the engine does not own it.
  /// Default: perfect delivery (the paper's model).  A spec-owning engine
  /// installs (and owns) its spec's channel instead.
  void set_channel(ChannelModel* channel) { channel_ = channel; }

  const Process& process(NodeId v) const { return *processes_[v]; }

 private:
  void validate() const;

  // Owned storage (spec-owning mode only; empty when borrowing).
  std::unique_ptr<DynamicNetwork> owned_network_;
  std::unique_ptr<HierarchyProvider> owned_hierarchy_;
  std::unique_ptr<ChannelModel> owned_channel_;
  EngineConfig owned_config_;
  bool owning_ = false;

  DynamicNetwork* net_;
  HierarchyProvider* hierarchy_;
  HierarchyView flat_view_;
  std::vector<ProcessPtr> processes_;
  RoundObserver observer_;
  ChannelModel* channel_ = nullptr;
  bool ran_ = false;
};

}  // namespace hinet
