// Synchronous round engine.
//
// Executes one Process per node over a DynamicNetwork (and optional
// HierarchyProvider) for up to max_rounds rounds:
//
//   for each round r:
//     1. collect transmit() from every unfinished node      (send step)
//     2. deliver to each node all packets whose sender is a
//        G_r-neighbour                                      (receive step)
//     3. account costs; check global completion
//
// The engine is strictly deterministic: processes are stepped in node-id
// order and packet inboxes are ordered by sender id, so a (trace, seed)
// pair reproduces byte-identical metrics.
#pragma once

#include <functional>
#include <vector>

#include "cluster/hierarchy.hpp"
#include "graph/dynamic.hpp"
#include "sim/channel.hpp"
#include "sim/metrics.hpp"
#include "sim/process.hpp"

namespace hinet {

struct EngineConfig {
  /// Hard cap on executed rounds.
  std::size_t max_rounds = 0;

  /// Stop as soon as every node knows every token (after completing the
  /// round).  When false the engine always runs max_rounds rounds, which
  /// measures the algorithm's *scheduled* cost rather than its oracle
  /// stopping time.
  bool stop_when_complete = true;
};

/// Observer invoked after each round with that round's packets; used by
/// trace recording and the walkthrough bench.  Return value ignored.
using RoundObserver =
    std::function<void(Round, const std::vector<Packet>&, const Graph&,
                       const HierarchyView&)>;

class Engine {
 public:
  /// `hierarchy` may be null for flat (non-clustered) algorithms; the
  /// engine then presents an all-unaffiliated view.
  Engine(DynamicNetwork& net, HierarchyProvider* hierarchy,
         std::vector<ProcessPtr> processes);

  /// Runs the simulation; callable once per Engine instance.
  SimMetrics run(const EngineConfig& cfg);

  void set_observer(RoundObserver obs) { observer_ = std::move(obs); }

  /// Installs a failure-injecting channel; the engine does not own it.
  /// Default: perfect delivery (the paper's model).
  void set_channel(ChannelModel* channel) { channel_ = channel; }

  const Process& process(NodeId v) const { return *processes_[v]; }

 private:
  bool all_complete() const;
  std::size_t complete_count() const;

  DynamicNetwork& net_;
  HierarchyProvider* hierarchy_;
  HierarchyView flat_view_;
  std::vector<ProcessPtr> processes_;
  RoundObserver observer_;
  ChannelModel* channel_ = nullptr;
  bool ran_ = false;
};

}  // namespace hinet
