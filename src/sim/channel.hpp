// Channel models: failure injection for the wireless medium.
//
// The paper's model assumes perfect local broadcast; real MANET/WSN
// deployments (its motivating platforms) drop packets.  A ChannelModel
// decides per (packet, receiver) whether delivery succeeds, letting the
// robustness benches measure how the correctness guarantees degrade when
// the model's assumptions are violated.
//
//   PerfectChannel        — the paper's model (default; zero overhead path).
//   LossyChannel          — i.i.d. Bernoulli loss per (packet, receiver).
//   CollisionChannel      — a receiver whose transmitting-neighbour count
//                           exceeds a capture threshold hears nothing that
//                           round (slotted-ALOHA-style interference).
//   GilbertElliottChannel — two-state burst-loss Markov channel: each
//                           receiver is Good or Bad, transitions once per
//                           round, and loses packets with a state-dependent
//                           probability.  Models correlated outages (deep
//                           fades, interference bursts) that i.i.d. loss
//                           cannot — the mean burst length is
//                           1 / p_bad_to_good rounds.
//
// All models are deterministic per seed.
#pragma once

#include <span>
#include <vector>

#include "graph/dynamic.hpp"
#include "sim/packet.hpp"
#include "util/binary_io.hpp"
#include "util/rng.hpp"

namespace hinet {

class ChannelModel {
 public:
  virtual ~ChannelModel() = default;

  /// Called once at the start of each round with that round's graph and
  /// the full transmission list (for interference models).
  virtual void begin_round(Round r, const Graph& g,
                           std::span<const Packet> packets);

  /// True when `receiver` successfully hears `pkt` this round.  Called
  /// only for (packet, receiver) pairs that are graph neighbours, in
  /// receiver-major order (receivers ascending; per receiver, packets in
  /// sender order) — stateful channels (LossyChannel's RNG stream) depend
  /// on that order for per-seed determinism.
  virtual bool deliver(Round r, const Packet& pkt, NodeId receiver) = 0;

  // Checkpoint hooks (engine snapshot/resume).  Saved at a round boundary
  // and restored into an identically-constructed channel, the restored
  // instance must produce the same deliver()/begin_round() decisions from
  // that round on.  Per-round scratch that begin_round() rebuilds (e.g.
  // CollisionChannel's interference counts) need not be serialized; RNG
  // stream positions and cross-round Markov state must be.  The defaults
  // save/restore nothing, which is exactly right for stateless channels.
  virtual void save_state(ByteWriter& w) const;
  virtual void restore_state(ByteReader& r);
};

/// The paper's idealised medium: everything is heard.
class PerfectChannel final : public ChannelModel {
 public:
  bool deliver(Round, const Packet&, NodeId) override { return true; }
};

/// Independent per-(packet, receiver) loss with probability `loss`.
class LossyChannel final : public ChannelModel {
 public:
  LossyChannel(double loss, std::uint64_t seed);

  bool deliver(Round r, const Packet& pkt, NodeId receiver) override;

  double loss() const { return loss_; }

  void save_state(ByteWriter& w) const override;
  void restore_state(ByteReader& r) override;

 private:
  double loss_;
  Rng rng_;
};

/// Capture-threshold interference: if more than `capture` of a receiver's
/// neighbours transmit in the same round, the receiver hears nothing.
class CollisionChannel final : public ChannelModel {
 public:
  explicit CollisionChannel(std::size_t capture);

  void begin_round(Round r, const Graph& g,
                   std::span<const Packet> packets) override;
  bool deliver(Round r, const Packet& pkt, NodeId receiver) override;

 private:
  std::size_t capture_;
  // Scratch reused across rounds (assign() keeps capacity): who transmits
  // this round, and per receiver how many of its CSR neighbours do.
  std::vector<char> transmitting_;
  std::vector<std::size_t> transmitting_neighbors_;
};

/// Gilbert–Elliott two-state Markov chain parameters.  Defaults give long
/// good spells (mean 20 rounds) with total loss inside 4-round bursts.
struct GilbertElliottParams {
  double p_good_to_bad = 0.05;  ///< per-round Good -> Bad transition
  double p_bad_to_good = 0.25;  ///< per-round Bad -> Good (mean burst 4)
  double loss_good = 0.0;       ///< per-(packet, receiver) loss when Good
  double loss_bad = 1.0;        ///< per-(packet, receiver) loss when Bad
};

/// Per-receiver burst loss: every node runs its own Good/Bad chain,
/// advanced once per round in node-id order (begin_round), so the state
/// stream is a fixed function of the seed regardless of traffic.  Loss
/// draws come from a separate stream in deliver() call order, matching the
/// LossyChannel determinism contract.
class GilbertElliottChannel final : public ChannelModel {
 public:
  GilbertElliottChannel(const GilbertElliottParams& params,
                        std::uint64_t seed);

  void begin_round(Round r, const Graph& g,
                   std::span<const Packet> packets) override;
  bool deliver(Round r, const Packet& pkt, NodeId receiver) override;

  const GilbertElliottParams& params() const { return params_; }

  /// True when `v`'s chain is currently in the Bad state (introspection
  /// for tests).
  bool in_bad_state(NodeId v) const;

  void save_state(ByteWriter& w) const override;
  void restore_state(ByteReader& r) override;

 private:
  GilbertElliottParams params_;
  Rng state_rng_;  ///< drives the per-node chains (n draws per round)
  Rng loss_rng_;   ///< drives per-delivery loss (draw order = deliver order)
  std::vector<char> bad_;  ///< per-node state; all-Good before round 0
};

}  // namespace hinet
