// Channel models: failure injection for the wireless medium.
//
// The paper's model assumes perfect local broadcast; real MANET/WSN
// deployments (its motivating platforms) drop packets.  A ChannelModel
// decides per (packet, receiver) whether delivery succeeds, letting the
// robustness benches measure how the correctness guarantees degrade when
// the model's assumptions are violated.
//
//   PerfectChannel        — the paper's model (default; zero overhead path).
//   LossyChannel          — i.i.d. Bernoulli loss per (packet, receiver).
//   CollisionChannel      — a receiver whose transmitting-neighbour count
//                           exceeds a capture threshold hears nothing that
//                           round (slotted-ALOHA-style interference).
//   GilbertElliottChannel — two-state burst-loss Markov channel: each
//                           receiver is Good or Bad, transitions once per
//                           round, and loses packets with a state-dependent
//                           probability.  Models correlated outages (deep
//                           fades, interference bursts) that i.i.d. loss
//                           cannot — the mean burst length is
//                           1 / p_bad_to_good rounds.
//
// All models are deterministic per seed.
#pragma once

#include <span>
#include <vector>

#include "graph/dynamic.hpp"
#include "sim/packet.hpp"
#include "util/binary_io.hpp"
#include "util/rng.hpp"

namespace hinet {

class ChannelModel;

/// One replicate's slice of a lockstep round, for begin_round_batch: that
/// replicate's own channel instance, round graph and transmission list.
/// Replicates never share channel state — `channel` is the instance whose
/// per-seed RNG streams must advance exactly as a serial run would.
struct ChannelRoundInput {
  ChannelModel* channel = nullptr;
  const Graph* graph = nullptr;
  std::span<const Packet> packets;
};

class ChannelModel {
 public:
  virtual ~ChannelModel() = default;

  /// Called once at the start of each round with that round's graph and
  /// the full transmission list (for interference models).
  virtual void begin_round(Round r, const Graph& g,
                           std::span<const Packet> packets);

  /// Capability query for the lockstep batch engine: true certifies that
  /// begin_round_batch(r, batch) leaves every batch entry in exactly the
  /// state N independent begin_round calls would have (pinned for the
  /// built-in channels by the conformance template in
  /// tests/sim/test_channel_batch.cpp).  The default is false — the batch
  /// engine then falls back to per-replicate begin_round, which is always
  /// correct — so unknown channel types take the conservative path and
  /// opt in explicitly, instead of the engine sniffing types with
  /// dynamic_cast.
  virtual bool supports_batching() const { return false; }

  /// Advances every replicate's channel for round `r` in one call.  The
  /// batch engine invokes this once per lockstep round, on the first
  /// replicate's channel, with one entry per active replicate (the batch
  /// is homogeneous: one SpecFactory built every spec).
  ///
  /// Contract: process entries in index order and, within an entry, make
  /// exactly the RNG draws / state transitions begin_round would on that
  /// entry's channel — every entry must end byte-identical to a serial
  /// run.  The default implementation loops begin_round, which satisfies
  /// the contract for any channel type; overrides may restructure the
  /// loop (e.g. replicate-major state sweeps) but never change its
  /// observable effect.
  virtual void begin_round_batch(Round r,
                                 std::span<const ChannelRoundInput> batch);

  /// True when `receiver` successfully hears `pkt` this round.  Called
  /// only for (packet, receiver) pairs that are graph neighbours, in
  /// receiver-major order (receivers ascending; per receiver, packets in
  /// sender order) — stateful channels (LossyChannel's RNG stream) depend
  /// on that order for per-seed determinism.
  virtual bool deliver(Round r, const Packet& pkt, NodeId receiver) = 0;

  // Checkpoint hooks (engine snapshot/resume).  Saved at a round boundary
  // and restored into an identically-constructed channel, the restored
  // instance must produce the same deliver()/begin_round() decisions from
  // that round on.  Per-round scratch that begin_round() rebuilds (e.g.
  // CollisionChannel's interference counts) need not be serialized; RNG
  // stream positions and cross-round Markov state must be.  The defaults
  // save/restore nothing, which is exactly right for stateless channels.
  virtual void save_state(ByteWriter& w) const;
  virtual void restore_state(ByteReader& r);
};

/// The paper's idealised medium: everything is heard.
class PerfectChannel final : public ChannelModel {
 public:
  bool deliver(Round, const Packet&, NodeId) override { return true; }

  bool supports_batching() const override { return true; }  // stateless
};

/// Independent per-(packet, receiver) loss with probability `loss`.
class LossyChannel final : public ChannelModel {
 public:
  LossyChannel(double loss, std::uint64_t seed);

  bool deliver(Round r, const Packet& pkt, NodeId receiver) override;

  double loss() const { return loss_; }

  /// begin_round is a no-op and deliver draws only from this instance's
  /// RNG, so the default batch loop is trivially conformant.
  bool supports_batching() const override { return true; }

  void save_state(ByteWriter& w) const override;
  void restore_state(ByteReader& r) override;

 private:
  double loss_;
  Rng rng_;
};

/// Capture-threshold interference: if more than `capture` of a receiver's
/// neighbours transmit in the same round, the receiver hears nothing.
class CollisionChannel final : public ChannelModel {
 public:
  explicit CollisionChannel(std::size_t capture);

  void begin_round(Round r, const Graph& g,
                   std::span<const Packet> packets) override;
  bool deliver(Round r, const Packet& pkt, NodeId receiver) override;

  /// Deterministic per round (no RNG) and all scratch is per instance, so
  /// the default batch loop is conformant.
  bool supports_batching() const override { return true; }

 private:
  std::size_t capture_;
  // Scratch reused across rounds (assign() keeps capacity): who transmits
  // this round, and per receiver how many of its CSR neighbours do.
  std::vector<char> transmitting_;
  std::vector<std::size_t> transmitting_neighbors_;
};

/// Gilbert–Elliott two-state Markov chain parameters.  Defaults give long
/// good spells (mean 20 rounds) with total loss inside 4-round bursts.
struct GilbertElliottParams {
  double p_good_to_bad = 0.05;  ///< per-round Good -> Bad transition
  double p_bad_to_good = 0.25;  ///< per-round Bad -> Good (mean burst 4)
  double loss_good = 0.0;       ///< per-(packet, receiver) loss when Good
  double loss_bad = 1.0;        ///< per-(packet, receiver) loss when Bad
};

/// Per-receiver burst loss: every node runs its own Good/Bad chain,
/// advanced once per round in node-id order (begin_round), so the state
/// stream is a fixed function of the seed regardless of traffic.  Loss
/// draws come from a separate stream in deliver() call order, matching the
/// LossyChannel determinism contract.
class GilbertElliottChannel final : public ChannelModel {
 public:
  GilbertElliottChannel(const GilbertElliottParams& params,
                        std::uint64_t seed);

  void begin_round(Round r, const Graph& g,
                   std::span<const Packet> packets) override;
  bool deliver(Round r, const Packet& pkt, NodeId receiver) override;

  bool supports_batching() const override { return true; }

  /// Replicate-major exemplar of the batch hook: one pass over the batch
  /// advances every replicate's Markov chains, each from its own
  /// state_rng_ with exactly begin_round's draw sequence — byte-identical
  /// to N serial calls (pinned by the conformance template).
  void begin_round_batch(Round r,
                         std::span<const ChannelRoundInput> batch) override;

  const GilbertElliottParams& params() const { return params_; }

  /// True when `v`'s chain is currently in the Bad state (introspection
  /// for tests).
  bool in_bad_state(NodeId v) const;

  void save_state(ByteWriter& w) const override;
  void restore_state(ByteReader& r) override;

 private:
  GilbertElliottParams params_;
  Rng state_rng_;  ///< drives the per-node chains (n draws per round)
  Rng loss_rng_;   ///< drives per-delivery loss (draw order = deliver order)
  std::vector<char> bad_;  ///< per-node state; all-Good before round 0
};

}  // namespace hinet
