#include "sim/channel.hpp"

namespace hinet {

void ChannelModel::begin_round(Round, const Graph&, std::span<const Packet>) {
}

LossyChannel::LossyChannel(double loss, std::uint64_t seed)
    : loss_(loss), rng_(seed) {
  HINET_REQUIRE(loss >= 0.0 && loss <= 1.0, "loss outside [0,1]");
}

bool LossyChannel::deliver(Round, const Packet&, NodeId) {
  return !rng_.bernoulli(loss_);
}

CollisionChannel::CollisionChannel(std::size_t capture) : capture_(capture) {
  HINET_REQUIRE(capture >= 1, "capture threshold must be >= 1");
}

void CollisionChannel::begin_round(Round, const Graph& g,
                                   std::span<const Packet> packets) {
  // Mark the round's transmitters, then count each receiver's transmitting
  // neighbours with one contiguous CSR sweep per node.  Both buffers are
  // reused across rounds (assign() preserves capacity).
  const std::size_t n = g.node_count();
  transmitting_.assign(n, 0);
  transmitting_neighbors_.assign(n, 0);
  for (const Packet& pkt : packets) transmitting_[pkt.src] = 1;
  for (NodeId v = 0; v < n; ++v) {
    std::size_t busy = 0;
    for (NodeId u : g.neighbors(v)) {
      busy += static_cast<std::size_t>(transmitting_[u]);
    }
    transmitting_neighbors_[v] = busy;
  }
}

bool CollisionChannel::deliver(Round, const Packet&, NodeId receiver) {
  return transmitting_neighbors_[receiver] <= capture_;
}

}  // namespace hinet
