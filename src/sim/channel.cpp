#include "sim/channel.hpp"

#include <array>

namespace hinet {

void ChannelModel::begin_round(Round, const Graph&, std::span<const Packet>) {
}

void ChannelModel::begin_round_batch(Round r,
                                     std::span<const ChannelRoundInput> batch) {
  // Reference implementation of the batch contract: per-replicate
  // begin_round in index order.  Always conformant, for any channel type.
  for (const ChannelRoundInput& item : batch) {
    item.channel->begin_round(r, *item.graph, item.packets);
  }
}

void ChannelModel::save_state(ByteWriter&) const {}

void ChannelModel::restore_state(ByteReader&) {}

namespace {

// Rng state words as a fixed 32-byte section.
void save_rng(ByteWriter& w, const Rng& rng) {
  for (std::uint64_t word : rng.state()) w.u64(word);
}

void restore_rng(ByteReader& r, Rng& rng) {
  std::array<std::uint64_t, 4> s{};
  for (auto& word : s) word = r.u64();
  rng.set_state(s);
}

}  // namespace

void LossyChannel::save_state(ByteWriter& w) const { save_rng(w, rng_); }

void LossyChannel::restore_state(ByteReader& r) { restore_rng(r, rng_); }

LossyChannel::LossyChannel(double loss, std::uint64_t seed)
    : loss_(loss), rng_(seed) {
  HINET_REQUIRE(loss >= 0.0 && loss <= 1.0, "loss outside [0,1]");
}

// detlint: hot-path-begin — deliver() runs once per (packet, receiver) pair
// every round.
bool LossyChannel::deliver(Round, const Packet&, NodeId) {
  return !rng_.bernoulli(loss_);
}
// detlint: hot-path-end

CollisionChannel::CollisionChannel(std::size_t capture) : capture_(capture) {
  HINET_REQUIRE(capture >= 1, "capture threshold must be >= 1");
}

// detlint: hot-path-begin — the CSR sweep touches every adjacency each round;
// assign() reuses capacity, so steady-state rounds stay off the heap.
void CollisionChannel::begin_round(Round, const Graph& g,
                                   std::span<const Packet> packets) {
  // Mark the round's transmitters, then count each receiver's transmitting
  // neighbours with one contiguous CSR sweep per node.  Both buffers are
  // reused across rounds (assign() preserves capacity).
  const std::size_t n = g.node_count();
  transmitting_.assign(n, 0);
  transmitting_neighbors_.assign(n, 0);
  for (const Packet& pkt : packets) transmitting_[pkt.src] = 1;
  for (NodeId v = 0; v < n; ++v) {
    std::size_t busy = 0;
    for (NodeId u : g.neighbors(v)) {
      busy += static_cast<std::size_t>(transmitting_[u]);
    }
    transmitting_neighbors_[v] = busy;
  }
}

bool CollisionChannel::deliver(Round, const Packet&, NodeId receiver) {
  return transmitting_neighbors_[receiver] <= capture_;
}
// detlint: hot-path-end

namespace {
bool is_probability(double p) { return p >= 0.0 && p <= 1.0; }
}  // namespace

GilbertElliottChannel::GilbertElliottChannel(
    const GilbertElliottParams& params, std::uint64_t seed)
    : params_(params),
      state_rng_(seed),
      loss_rng_(SplitMix64(seed ^ 0x9e3779b97f4a7c15ULL).next()) {
  HINET_REQUIRE(is_probability(params.p_good_to_bad),
                "p_good_to_bad outside [0,1]");
  HINET_REQUIRE(is_probability(params.p_bad_to_good),
                "p_bad_to_good outside [0,1]");
  HINET_REQUIRE(is_probability(params.loss_good), "loss_good outside [0,1]");
  HINET_REQUIRE(is_probability(params.loss_bad), "loss_bad outside [0,1]");
}

// detlint: hot-path-begin — n state-chain draws per round plus one bernoulli
// per delivery; the bad_ buffer allocates once and is reused thereafter.
void GilbertElliottChannel::begin_round(Round, const Graph& g,
                                        std::span<const Packet>) {
  const std::size_t n = g.node_count();
  if (bad_.size() != n) bad_.assign(n, 0);  // chains start Good
  // Advance every chain exactly once, in node order: n draws per round, so
  // the state sequence depends only on (seed, round), never on traffic.
  for (NodeId v = 0; v < n; ++v) {
    if (bad_[v]) {
      if (state_rng_.bernoulli(params_.p_bad_to_good)) bad_[v] = 0;
    } else {
      if (state_rng_.bernoulli(params_.p_good_to_bad)) bad_[v] = 1;
    }
  }
}

bool GilbertElliottChannel::deliver(Round, const Packet&, NodeId receiver) {
  const double loss =
      bad_[receiver] != 0 ? params_.loss_bad : params_.loss_good;
  return !loss_rng_.bernoulli(loss);
}

void GilbertElliottChannel::begin_round_batch(
    Round, std::span<const ChannelRoundInput> batch) {
  // Replicate-major chain advance: one flat sweep over every replicate's
  // per-node chains instead of N virtual begin_round dispatches.  Each
  // replicate's draws still come from its own state_rng_, in node order —
  // the exact sequence begin_round makes — so every instance ends
  // byte-identical to a serial run.
  for (const ChannelRoundInput& item : batch) {
    auto* ch = dynamic_cast<GilbertElliottChannel*>(item.channel);
    HINET_REQUIRE(ch != nullptr,
                  "GilbertElliottChannel::begin_round_batch requires a "
                  "homogeneous batch (every replicate's channel must be a "
                  "GilbertElliottChannel)");
    const std::size_t n = item.graph->node_count();
    if (ch->bad_.size() != n) ch->bad_.assign(n, 0);  // chains start Good
    const GilbertElliottParams& p = ch->params_;
    Rng& rng = ch->state_rng_;
    std::vector<char>& bad = ch->bad_;
    for (NodeId v = 0; v < n; ++v) {
      if (bad[v]) {
        if (rng.bernoulli(p.p_bad_to_good)) bad[v] = 0;
      } else {
        if (rng.bernoulli(p.p_good_to_bad)) bad[v] = 1;
      }
    }
  }
}
// detlint: hot-path-end

bool GilbertElliottChannel::in_bad_state(NodeId v) const {
  return v < bad_.size() && bad_[v] != 0;
}

void GilbertElliottChannel::save_state(ByteWriter& w) const {
  save_rng(w, state_rng_);
  save_rng(w, loss_rng_);
  w.u64(bad_.size());
  for (char b : bad_) w.u8(static_cast<std::uint8_t>(b));
}

void GilbertElliottChannel::restore_state(ByteReader& r) {
  restore_rng(r, state_rng_);
  restore_rng(r, loss_rng_);
  const std::uint64_t n = r.u64();
  bad_.resize(static_cast<std::size_t>(n));
  for (auto& b : bad_) b = static_cast<char>(r.u8());
}

}  // namespace hinet
