#include "sim/channel.hpp"

namespace hinet {

void ChannelModel::begin_round(Round, const Graph&,
                               const std::vector<Packet>&) {}

LossyChannel::LossyChannel(double loss, std::uint64_t seed)
    : loss_(loss), rng_(seed) {
  HINET_REQUIRE(loss >= 0.0 && loss <= 1.0, "loss outside [0,1]");
}

bool LossyChannel::deliver(Round, const Packet&, NodeId) {
  return !rng_.bernoulli(loss_);
}

CollisionChannel::CollisionChannel(std::size_t capture) : capture_(capture) {
  HINET_REQUIRE(capture >= 1, "capture threshold must be >= 1");
}

void CollisionChannel::begin_round(Round, const Graph& g,
                                   const std::vector<Packet>& packets) {
  transmitting_neighbors_.assign(g.node_count(), 0);
  for (const Packet& pkt : packets) {
    for (NodeId v : g.neighbors(pkt.src)) {
      ++transmitting_neighbors_[v];
    }
  }
}

bool CollisionChannel::deliver(Round, const Packet&, NodeId receiver) {
  return transmitting_neighbors_[receiver] <= capture_;
}

}  // namespace hinet
