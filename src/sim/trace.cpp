#include "sim/trace.hpp"

#include <sstream>

namespace hinet {

RoundObserver TraceRecorder::observer() {
  return [this](Round r, std::span<const Packet> packets, const Graph&,
                const HierarchyView&) {
    RecordedRound rec;
    rec.round = r;
    rec.packets.assign(packets.begin(), packets.end());
    rounds_.push_back(std::move(rec));
  };
}

std::string TraceRecorder::render() const {
  std::ostringstream os;
  for (const auto& rec : rounds_) {
    os << "round " << rec.round << ":";
    if (rec.packets.empty()) {
      os << " (silent)\n";
      continue;
    }
    os << '\n';
    for (const Packet& p : rec.packets) {
      os << "  " << p.src;
      if (p.dest == kBroadcastDest) {
        os << " -> *";
      } else {
        os << " -> " << p.dest;
      }
      os << "  " << p.tokens.to_string() << '\n';
    }
  }
  return os.str();
}

}  // namespace hinet
