// Metrics collected by the engine, matching the paper's two cost measures:
// time cost (rounds) and communication cost (total number of tokens sent).
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace hinet {

inline constexpr std::size_t kNever = std::numeric_limits<std::size_t>::max();

struct SimMetrics {
  std::size_t rounds_executed = 0;

  /// Total transmissions (packets).
  std::size_t packets_sent = 0;

  /// The paper's communication cost: Σ tokens over all packets sent.
  std::size_t tokens_sent = 0;

  /// First round index r such that after round r every node knows all k
  /// tokens; kNever if dissemination did not complete.  Time cost in the
  /// paper's sense is rounds_to_completion (number of rounds consumed).
  std::size_t rounds_to_completion = kNever;

  bool all_delivered = false;

  /// Per-round series, for the sweep figures.
  std::vector<std::size_t> tokens_sent_per_round;
  std::vector<std::size_t> complete_nodes_per_round;

  /// Per-node accounting, for energy models: token-equivalents transmitted
  /// and successfully received by each node.
  std::vector<std::size_t> per_node_tx_tokens;
  std::vector<std::size_t> per_node_rx_tokens;

  // Degradation metrics: under faults and loss a run that misses
  // all_delivered is not a single bit of failure — these measure how much
  // of the dissemination still happened at the cutoff.
  std::size_t token_universe = 0;        ///< k (0 before any run)
  std::size_t complete_nodes_final = 0;  ///< nodes holding all k at cutoff
  std::vector<std::size_t> per_node_tokens_known;  ///< |TA_v| at cutoff

  /// Fraction of nodes that held all k tokens when the run ended.
  double completion_fraction() const;

  /// Mean over nodes of |TA_v| / k at cutoff (1.0 iff all_delivered).
  double token_coverage() const;

  std::string to_string() const;

  /// Byte-identical comparison of every recorded metric; the determinism
  /// regression tests rely on this being exhaustive.
  friend bool operator==(const SimMetrics&, const SimMetrics&) = default;
};

/// Simple linear radio energy model (WSN-style): energy per transmitted
/// and per received token-equivalent, plus per-round idle draw.
struct EnergyModel {
  double tx_per_token = 1.0;
  double rx_per_token = 0.5;
  double idle_per_round = 0.0;
};

/// Total network energy for a run under the model.
double total_energy(const SimMetrics& m, const EnergyModel& e);

/// Energy of the single most-loaded node (the bottleneck that dies first
/// in a sensor network).
double max_node_energy(const SimMetrics& m, const EnergyModel& e);

/// Wire-size model: turns the token/packet counts into bytes, making the
/// per-packet header overhead visible (the paper's cost metric is tokens;
/// this quantifies what that abstraction hides).
struct WireModel {
  std::size_t token_bytes = 64;  ///< payload bytes per token
  std::size_t header_bytes = 16; ///< fixed per-packet header
};

/// Total bytes on the wire for a run: packets·header + tokens·payload.
std::size_t total_wire_bytes(const SimMetrics& m, const WireModel& w);

}  // namespace hinet
