#include "sim/faults.hpp"

#include <algorithm>

#include "util/binary_io.hpp"
#include "util/rng.hpp"

namespace hinet {

bool FaultPlan::active_at(Round r) const {
  for (const CrashEvent& c : crashes) {
    if (c.down_at(r)) return true;
  }
  for (const PartitionEvent& p : partitions) {
    if (p.active_at(r)) return true;
  }
  for (const LinkBurst& b : bursts) {
    if (b.active_at(r)) return true;
  }
  return false;
}

bool FaultPlan::node_down(NodeId v, Round r) const {
  for (const CrashEvent& c : crashes) {
    if (c.node == v && c.down_at(r)) return true;
  }
  return false;
}

void FaultPlan::validate(std::size_t node_count) const {
  for (const CrashEvent& c : crashes) {
    HINET_REQUIRE(c.node < node_count, "crash node out of range");
    HINET_REQUIRE(c.recovery > c.round, "recovery must be after the crash");
  }
  for (const PartitionEvent& p : partitions) {
    HINET_REQUIRE(p.heal > p.start, "partition must heal after it starts");
    HINET_REQUIRE(!p.group.empty(), "partition group must be non-empty");
    for (NodeId v : p.group) {
      HINET_REQUIRE(v < node_count, "partition node out of range");
    }
  }
  for (const LinkBurst& b : bursts) {
    HINET_REQUIRE(b.length >= 1, "link burst needs length >= 1");
    for (const Edge& e : b.links) {
      HINET_REQUIRE(e.u < node_count && e.v < node_count,
                    "burst link endpoint out of range");
    }
  }
}

FaultPlan random_churn_plan(std::size_t node_count, std::size_t crash_count,
                            std::size_t horizon, std::size_t downtime,
                            std::uint64_t seed) {
  HINET_REQUIRE(crash_count <= node_count, "cannot crash more nodes than exist");
  HINET_REQUIRE(horizon >= 1, "horizon must be >= 1");
  HINET_REQUIRE(downtime >= 1, "downtime must be >= 1");
  Rng rng(seed);
  FaultPlan plan;
  const auto victims = rng.sample(node_count, crash_count);
  plan.crashes.reserve(crash_count);
  for (std::size_t v : victims) {
    CrashEvent c;
    c.node = static_cast<NodeId>(v);
    c.round = rng.below(horizon);
    c.recovery = downtime == kNoRecovery ? kNoRecovery : c.round + downtime;
    plan.crashes.push_back(c);
  }
  // Sort by crash round so plans read chronologically in logs and JSON.
  std::sort(plan.crashes.begin(), plan.crashes.end(),
            [](const CrashEvent& a, const CrashEvent& b) {
              return a.round != b.round ? a.round < b.round : a.node < b.node;
            });
  return plan;
}

FaultyNetwork::FaultyNetwork(std::unique_ptr<DynamicNetwork> base,
                             FaultPlan plan)
    : owned_(std::move(base)), base_(owned_.get()), plan_(std::move(plan)) {
  HINET_REQUIRE(base_ != nullptr, "FaultyNetwork needs a base network");
  plan_.validate(base_->node_count());
}

FaultyNetwork::FaultyNetwork(DynamicNetwork& base, FaultPlan plan)
    : base_(&base), plan_(std::move(plan)) {
  plan_.validate(base_->node_count());
}

const Graph& FaultyNetwork::graph_at(Round r) {
  // Fault-free rounds (in particular: every round of an empty plan) forward
  // the base graph by reference — the decorator is zero-cost when unused.
  if (!plan_.active_at(r)) return base_->graph_at(r);
  if (cache_valid_ && cache_round_ == r) return cache_;
  return rebuild(r);
}

const Graph& FaultyNetwork::rebuild(Round r) {
  Graph g = base_->graph_at(r);
  for (const CrashEvent& c : plan_.crashes) {
    if (!c.down_at(r)) continue;
    const auto neigh = g.neighbors(c.node);
    // Copy the neighbour list: remove_edge mutates it during iteration.
    const std::vector<NodeId> copy(neigh.begin(), neigh.end());
    for (NodeId u : copy) g.remove_edge(c.node, u);
  }
  for (const PartitionEvent& p : plan_.partitions) {
    if (!p.active_at(r)) continue;
    std::vector<char> inside(g.node_count(), 0);
    for (NodeId v : p.group) inside[v] = 1;
    for (NodeId v : p.group) {
      const auto neigh = g.neighbors(v);
      const std::vector<NodeId> copy(neigh.begin(), neigh.end());
      for (NodeId u : copy) {
        if (!inside[u]) g.remove_edge(v, u);
      }
    }
  }
  for (const LinkBurst& b : plan_.bursts) {
    if (!b.active_at(r)) continue;
    for (const Edge& e : b.links) g.remove_edge(e.u, e.v);
  }
  cache_ = std::move(g);
  cache_round_ = r;
  cache_valid_ = true;
  return cache_;
}

void FaultyNetwork::save_trace_state(ByteWriter& w) const {
  // The decorator itself is stateless (the plan is construction data);
  // forward the capability to the base when it has one.
  const auto* src = dynamic_cast<const TraceStateSource*>(base_);
  w.u8(src != nullptr ? 1 : 0);
  if (src != nullptr) src->save_trace_state(w);
}

void FaultyNetwork::restore_trace_state(ByteReader& r) {
  const bool has_base = r.u8() != 0;
  auto* src = dynamic_cast<TraceStateSource*>(base_);
  if (has_base != (src != nullptr)) {
    throw IoError(
        "fault decorator state corrupt or mismatched: base network "
        "checkpoint capability differs from the snapshot's");
  }
  if (src != nullptr) src->restore_trace_state(r);
  cache_valid_ = false;
}

}  // namespace hinet
