// Wire format of the simulator.
//
// The model is wireless local broadcast: one transmission per node per
// round, heard by every current graph neighbour.  A packet may carry an
// addressee (the pseudocode's "send t to its cluster head"); physically it
// is still overheard by all neighbours, and receivers decide — per the
// algorithm — whether to consume overheard traffic.  Communication cost is
// counted per *transmission* (not per receiver): the paper's metric is the
// total number of tokens sent.
#pragma once

#include <optional>
#include <span>

#include "graph/graph.hpp"
#include "util/token_set.hpp"

namespace hinet {

/// Addressee value meaning "no specific addressee" (plain broadcast).
inline constexpr NodeId kBroadcastDest = static_cast<NodeId>(-1);

struct Packet {
  NodeId src = 0;
  NodeId dest = kBroadcastDest;  ///< addressee, or kBroadcastDest
  TokenSet tokens;

  /// Wire size override in token-equivalents.  Unset: the packet carries
  /// the listed tokens verbatim and costs tokens.count().  Set: the
  /// `tokens` field is reinterpreted by the algorithm (e.g. as the GF(2)
  /// coefficient vector of a network-coded payload) and the wire carries
  /// this many token-equivalents instead.
  std::optional<std::size_t> wire_tokens;

  std::size_t cost() const {
    return wire_tokens ? *wire_tokens : tokens.count();
  }
};

/// Non-owning view of one transmitted packet: a pointer into the engine's
/// per-round packet buffer.  The delivery path hands these out instead of
/// copying packets (a Packet copy heap-allocates its TokenSet), so a
/// delivery is one pointer push.
using PacketView = const Packet*;

/// One round's inbox as delivered to Process::receive: views into the
/// round's packet buffer, sorted by sender id.  Both the span and the
/// packets it points to are valid only for the duration of the receive
/// call — processes must copy whatever they keep.
using InboxView = std::span<const PacketView>;

}  // namespace hinet
