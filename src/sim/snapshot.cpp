#include "sim/snapshot.hpp"

#include <sstream>

namespace hinet {

void save_snapshot_file(const SimSnapshot& snap, const std::string& path) {
  write_checksummed_file(path, SimSnapshot::kMagic, SimSnapshot::kVersion,
                         snap.payload);
}

SimSnapshot load_snapshot_file(const std::string& path) {
  SimSnapshot snap;
  snap.payload = read_checksummed_file(path, SimSnapshot::kMagic,
                                       SimSnapshot::kVersion, "snapshot");
  return snap;
}

void save_token_set(ByteWriter& w, const TokenSet& s) {
  w.u64(s.universe());
  const auto words = s.words();
  w.u64(words.size());
  for (std::uint64_t word : words) w.u64(word);
}

TokenSet load_token_set(ByteReader& r, std::size_t expected_universe) {
  const std::uint64_t universe = r.u64();
  if (universe != expected_universe) {
    std::ostringstream os;
    os << r.what() << " corrupt or mismatched: stored TokenSet universe "
       << universe << " differs from the run's universe " << expected_universe
       << " — the snapshot belongs to a differently-parameterised spec";
    throw IoError(os.str());
  }
  const std::uint64_t word_count = r.u64();
  const std::size_t expect_words = (expected_universe + 63) / 64;
  if (word_count != expect_words) {
    std::ostringstream os;
    os << r.what() << " corrupt: TokenSet of universe " << universe
       << " stores " << word_count << " word(s), expected " << expect_words;
    throw IoError(os.str());
  }
  std::vector<std::uint64_t> words(static_cast<std::size_t>(word_count));
  for (auto& word : words) word = r.u64();
  return TokenSet::from_words(static_cast<std::size_t>(universe),
                              std::move(words));
}

void save_metrics(ByteWriter& w, const SimMetrics& m) {
  w.u64(m.rounds_executed);
  w.u64(m.packets_sent);
  w.u64(m.tokens_sent);
  w.u64(m.rounds_to_completion);
  w.u8(m.all_delivered ? 1 : 0);
  w.vec_size(m.tokens_sent_per_round);
  w.vec_size(m.complete_nodes_per_round);
  w.vec_size(m.per_node_tx_tokens);
  w.vec_size(m.per_node_rx_tokens);
  w.u64(m.token_universe);
  w.u64(m.complete_nodes_final);
  w.vec_size(m.per_node_tokens_known);
}

SimMetrics load_metrics(ByteReader& r) {
  SimMetrics m;
  m.rounds_executed = r.u64();
  m.packets_sent = r.u64();
  m.tokens_sent = r.u64();
  m.rounds_to_completion = r.u64();
  m.all_delivered = r.u8() != 0;
  m.tokens_sent_per_round = r.vec_size();
  m.complete_nodes_per_round = r.vec_size();
  m.per_node_tx_tokens = r.vec_size();
  m.per_node_rx_tokens = r.vec_size();
  m.token_universe = r.u64();
  m.complete_nodes_final = r.u64();
  m.per_node_tokens_known = r.vec_size();
  return m;
}

}  // namespace hinet
