#include "sim/round_core.hpp"

#include <algorithm>

namespace hinet::detail {

void RunCore::begin(const EngineConfig& config) {
  cfg = config;
  round = 0;
  const std::size_t n = node_count();

  metrics = SimMetrics{};
  metrics.per_node_tx_tokens.assign(n, 0);
  metrics.per_node_rx_tokens.assign(n, 0);
  {
    // Pre-size the per-round series (capped, so a huge max_rounds with an
    // early stop_when_complete exit cannot over-commit memory).
    const std::size_t cap = std::min<std::size_t>(cfg.max_rounds, 1u << 20);
    metrics.tokens_sent_per_round.reserve(cap);
    metrics.complete_nodes_per_round.reserve(cap);
  }

  rescan_completion();

  packets.clear();
  packet_costs.clear();
}

void RunCore::rescan_completion() {
  // Incremental completion: knowledge is monotone and grows only in
  // receive() (see Process), so scan once up front and afterwards re-check
  // only not-yet-complete nodes right after their receive() call.
  const std::size_t n = node_count();
  complete.assign(n, 0);
  complete_nodes = 0;
  for (NodeId v = 0; v < n; ++v) {
    if ((*processes)[v]->knowledge().full()) {
      complete[v] = 1;
      ++complete_nodes;
    }
  }
}

// detlint: hot-path-begin — the round body must not allocate in steady
// state; scratch buffers are reused via clear()/assign(), and the only
// growth is the documented high-water resize of the inbox view array.
void RunCore::send_step(const Graph& g, const HierarchyView& h) {
  const std::size_t n = node_count();
  HINET_REQUIRE(g.node_count() == n, "round graph node count changed");

  // Send step: node-id order for determinism.  Each packet's cost is
  // computed once here and reused for tx and rx accounting.
  packets.clear();
  packet_costs.clear();
  std::size_t round_tokens = 0;
  for (NodeId v = 0; v < n; ++v) {
    RoundContext ctx{round, v, &g, &h};
    if ((*processes)[v]->finished(ctx)) continue;
    if (auto pkt = (*processes)[v]->transmit(ctx)) {
      HINET_REQUIRE(pkt->src == v, "packet src must be the sender");
      const std::size_t cost = pkt->cost();
      round_tokens += cost;
      metrics.per_node_tx_tokens[v] += cost;
      packet_costs.push_back(cost);
      packets.push_back(std::move(*pkt));
    }
  }
  metrics.packets_sent += packets.size();
  metrics.tokens_sent += round_tokens;
  metrics.tokens_sent_per_round.push_back(round_tokens);
}

void RunCore::deliver_and_receive(const Graph& g, const HierarchyView& h,
                                  InboxScratch& scratch) {
  const std::size_t n = node_count();
  const Round r = round;

  // Delivery: sender-centric scatter.  One pass over the packet list
  // counts each CSR neighbour's candidates, a prefix sum carves the flat
  // view array into per-receiver segments, and a second stable pass
  // places the views — packets are in sender order, so every segment
  // stays sorted by sender id.
  scratch.offsets.assign(n + 1, 0u);
  for (const Packet& pkt : packets) {
    for (NodeId u : g.neighbors(pkt.src)) ++scratch.offsets[u + 1];
  }
  for (std::size_t v = 0; v < n; ++v) {
    scratch.offsets[v + 1] += scratch.offsets[v];
  }
  // detlint-allow(hot-path-alloc): grows to the high-water inbox total
  scratch.views.resize(scratch.offsets[n]);  // once, then capacity is reused
  scratch.cursor.assign(n, 0u);
  std::copy(scratch.offsets.begin(), scratch.offsets.end() - 1,
            scratch.cursor.begin());
  for (const Packet& pkt : packets) {
    for (NodeId u : g.neighbors(pkt.src)) {
      scratch.views[scratch.cursor[u]++] = &pkt;
    }
  }

  // Receive step: receiver-major, so stateful channels see deliver()
  // calls in exactly the order the receiver-centric engine made them
  // (receivers ascending, packets in sender order per receiver).
  // Surviving views are compacted in place within each segment.
  for (NodeId v = 0; v < n; ++v) {
    PacketView* seg = scratch.views.data() + scratch.offsets[v];
    std::uint32_t len = scratch.offsets[v + 1] - scratch.offsets[v];
    if (channel != nullptr) {
      std::uint32_t kept = 0;
      for (std::uint32_t i = 0; i < len; ++i) {
        PacketView pkt = seg[i];
        if (channel->deliver(r, *pkt, v)) seg[kept++] = pkt;
      }
      len = kept;
    }
    for (std::uint32_t i = 0; i < len; ++i) {
      metrics.per_node_rx_tokens[v] +=
          packet_costs[static_cast<std::size_t>(seg[i] - packets.data())];
    }
    RoundContext ctx{r, v, &g, &h};
    (*processes)[v]->receive(ctx, InboxView(seg, len));
    if (complete[v] == 0 && (*processes)[v]->knowledge().full()) {
      complete[v] = 1;
      ++complete_nodes;
    }
  }
}

bool RunCore::end_round() {
  const std::size_t n = node_count();
  ++round;
  ++metrics.rounds_executed;
  metrics.complete_nodes_per_round.push_back(complete_nodes);
  if (complete_nodes == n && metrics.rounds_to_completion == kNever) {
    metrics.rounds_to_completion = metrics.rounds_executed;
    if (cfg.stop_when_complete) return false;
  }
  return round < cfg.max_rounds;
}
// detlint: hot-path-end

SimMetrics RunCore::seal() {
  const std::size_t n = node_count();
  metrics.all_delivered = complete_nodes == n;
  if (metrics.all_delivered && metrics.rounds_to_completion == kNever) {
    metrics.rounds_to_completion = metrics.rounds_executed;
  }
  metrics.complete_nodes_final = complete_nodes;
  metrics.per_node_tokens_known.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    metrics.per_node_tokens_known[v] = (*processes)[v]->knowledge().count();
  }
  metrics.token_universe =
      n > 0 ? processes->front()->knowledge().universe() : 0;
  return std::move(metrics);
}

}  // namespace hinet::detail
