#include "sim/engine.hpp"

#include <algorithm>
#include <sstream>

namespace hinet {

double total_energy(const SimMetrics& m, const EnergyModel& e) {
  double energy = e.idle_per_round * static_cast<double>(m.rounds_executed) *
                  static_cast<double>(m.per_node_tx_tokens.size());
  for (std::size_t v = 0; v < m.per_node_tx_tokens.size(); ++v) {
    energy += e.tx_per_token * static_cast<double>(m.per_node_tx_tokens[v]);
    energy += e.rx_per_token * static_cast<double>(m.per_node_rx_tokens[v]);
  }
  return energy;
}

double max_node_energy(const SimMetrics& m, const EnergyModel& e) {
  double worst = 0.0;
  for (std::size_t v = 0; v < m.per_node_tx_tokens.size(); ++v) {
    const double node =
        e.idle_per_round * static_cast<double>(m.rounds_executed) +
        e.tx_per_token * static_cast<double>(m.per_node_tx_tokens[v]) +
        e.rx_per_token * static_cast<double>(m.per_node_rx_tokens[v]);
    worst = std::max(worst, node);
  }
  return worst;
}

std::size_t total_wire_bytes(const SimMetrics& m, const WireModel& w) {
  return m.packets_sent * w.header_bytes + m.tokens_sent * w.token_bytes;
}

std::string SimMetrics::to_string() const {
  std::ostringstream os;
  os << "rounds=" << rounds_executed << " packets=" << packets_sent
     << " tokens_sent=" << tokens_sent << " completed="
     << (all_delivered ? std::to_string(rounds_to_completion) : "never");
  return os.str();
}

Engine::Engine(SimulationSpec spec)
    : owned_network_(std::move(spec.network)),
      owned_hierarchy_(std::move(spec.hierarchy)),
      owned_channel_(std::move(spec.channel)),
      owned_config_(spec.engine),
      owning_(true),
      net_(owned_network_.get()),
      hierarchy_(owned_hierarchy_.get()),
      flat_view_(owned_network_ != nullptr ? owned_network_->node_count() : 0),
      processes_(std::move(spec.processes)),
      channel_(owned_channel_.get()) {
  HINET_REQUIRE(net_ != nullptr, "SimulationSpec must own a network");
  validate();
}

Engine::Engine(DynamicNetwork& net, HierarchyProvider* hierarchy,
               std::vector<ProcessPtr> processes)
    : net_(&net),
      hierarchy_(hierarchy),
      flat_view_(net.node_count()),
      processes_(std::move(processes)) {
  validate();
}

void Engine::validate() const {
  HINET_REQUIRE(processes_.size() == net_->node_count(),
                "one process per node required");
  if (hierarchy_ != nullptr) {
    HINET_REQUIRE(hierarchy_->node_count() == net_->node_count(),
                  "hierarchy and topology node counts differ");
  }
  for (const auto& p : processes_) {
    HINET_REQUIRE(p != nullptr, "null process");
    HINET_REQUIRE(p->knowledge().universe() ==
                      processes_.front()->knowledge().universe(),
                  "all processes must share the token universe");
  }
}

bool Engine::all_complete() const {
  return complete_count() == processes_.size();
}

std::size_t Engine::complete_count() const {
  std::size_t n = 0;
  for (const auto& p : processes_) {
    if (p->knowledge().full()) ++n;
  }
  return n;
}

SimMetrics Engine::run() {
  HINET_REQUIRE(owning_,
                "Engine::run() without a config requires a spec-owning "
                "engine; borrowing engines must pass an EngineConfig");
  return run(owned_config_);
}

SimMetrics Engine::run(const EngineConfig& cfg) {
  HINET_REQUIRE(!ran_, "Engine::run is single-shot");
  ran_ = true;
  const std::size_t n = net_->node_count();

  SimMetrics metrics;
  metrics.per_node_tx_tokens.assign(n, 0);
  metrics.per_node_rx_tokens.assign(n, 0);
  std::vector<Packet> packets;
  std::vector<Packet> inbox;

  for (Round r = 0; r < cfg.max_rounds; ++r) {
    const Graph& g = net_->graph_at(r);
    const HierarchyView& h =
        hierarchy_ != nullptr ? hierarchy_->hierarchy_at(r) : flat_view_;
    HINET_REQUIRE(g.node_count() == n, "round graph node count changed");

    // Send step: node-id order for determinism.
    packets.clear();
    std::size_t round_tokens = 0;
    for (NodeId v = 0; v < n; ++v) {
      RoundContext ctx{r, v, &g, &h};
      if (processes_[v]->finished(ctx)) continue;
      if (auto pkt = processes_[v]->transmit(ctx)) {
        HINET_REQUIRE(pkt->src == v, "packet src must be the sender");
        round_tokens += pkt->cost();
        metrics.per_node_tx_tokens[v] += pkt->cost();
        packets.push_back(std::move(*pkt));
      }
    }
    metrics.packets_sent += packets.size();
    metrics.tokens_sent += round_tokens;
    metrics.tokens_sent_per_round.push_back(round_tokens);

    if (channel_ != nullptr) channel_->begin_round(r, g, packets);

    // Receive step: each node hears packets from its G_r neighbours that
    // survive the channel.  Packets are already sorted by sender id (send
    // order).
    for (NodeId v = 0; v < n; ++v) {
      inbox.clear();
      for (const Packet& pkt : packets) {
        if (pkt.src == v || !g.has_edge(pkt.src, v)) continue;
        if (channel_ != nullptr && !channel_->deliver(r, pkt, v)) continue;
        metrics.per_node_rx_tokens[v] += pkt.cost();
        inbox.push_back(pkt);
      }
      RoundContext ctx{r, v, &g, &h};
      processes_[v]->receive(ctx, inbox);
    }

    if (observer_) observer_(r, packets, g, h);

    ++metrics.rounds_executed;
    const std::size_t complete = complete_count();
    metrics.complete_nodes_per_round.push_back(complete);
    if (complete == n && metrics.rounds_to_completion == kNever) {
      metrics.rounds_to_completion = metrics.rounds_executed;
      if (cfg.stop_when_complete) break;
    }
  }

  metrics.all_delivered = all_complete();
  if (metrics.all_delivered && metrics.rounds_to_completion == kNever) {
    metrics.rounds_to_completion = metrics.rounds_executed;
  }
  return metrics;
}

}  // namespace hinet
