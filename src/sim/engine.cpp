#include "sim/engine.hpp"

#include <algorithm>
#include <cstdint>
#include <sstream>

namespace hinet {

double total_energy(const SimMetrics& m, const EnergyModel& e) {
  double energy = e.idle_per_round * static_cast<double>(m.rounds_executed) *
                  static_cast<double>(m.per_node_tx_tokens.size());
  for (std::size_t v = 0; v < m.per_node_tx_tokens.size(); ++v) {
    energy += e.tx_per_token * static_cast<double>(m.per_node_tx_tokens[v]);
    energy += e.rx_per_token * static_cast<double>(m.per_node_rx_tokens[v]);
  }
  return energy;
}

double max_node_energy(const SimMetrics& m, const EnergyModel& e) {
  double worst = 0.0;
  for (std::size_t v = 0; v < m.per_node_tx_tokens.size(); ++v) {
    const double node =
        e.idle_per_round * static_cast<double>(m.rounds_executed) +
        e.tx_per_token * static_cast<double>(m.per_node_tx_tokens[v]) +
        e.rx_per_token * static_cast<double>(m.per_node_rx_tokens[v]);
    worst = std::max(worst, node);
  }
  return worst;
}

std::size_t total_wire_bytes(const SimMetrics& m, const WireModel& w) {
  return m.packets_sent * w.header_bytes + m.tokens_sent * w.token_bytes;
}

double SimMetrics::completion_fraction() const {
  const std::size_t n = per_node_tx_tokens.size();
  if (n == 0) return 0.0;
  return static_cast<double>(complete_nodes_final) / static_cast<double>(n);
}

double SimMetrics::token_coverage() const {
  if (per_node_tokens_known.empty() || token_universe == 0) return 0.0;
  std::size_t known = 0;
  for (std::size_t c : per_node_tokens_known) known += c;
  return static_cast<double>(known) /
         static_cast<double>(per_node_tokens_known.size() * token_universe);
}

std::string SimMetrics::to_string() const {
  std::ostringstream os;
  os << "rounds=" << rounds_executed << " packets=" << packets_sent
     << " tokens_sent=" << tokens_sent << " completed="
     << (all_delivered ? std::to_string(rounds_to_completion) : "never");
  if (!all_delivered && !per_node_tx_tokens.empty()) {
    os << " completion=" << completion_fraction()
       << " coverage=" << token_coverage();
  }
  return os.str();
}

Engine::Engine(SimulationSpec spec)
    : owned_network_(std::move(spec.network)),
      owned_hierarchy_(std::move(spec.hierarchy)),
      owned_channel_(std::move(spec.channel)),
      owned_config_(spec.engine),
      owning_(true),
      net_(owned_network_.get()),
      hierarchy_(owned_hierarchy_.get()),
      flat_view_(owned_network_ != nullptr ? owned_network_->node_count() : 0),
      processes_(std::move(spec.processes)),
      channel_(owned_channel_.get()) {
  HINET_REQUIRE(net_ != nullptr, "SimulationSpec must own a network");
  validate();
}

Engine::Engine(DynamicNetwork& net, HierarchyProvider* hierarchy,
               std::vector<ProcessPtr> processes)
    : net_(&net),
      hierarchy_(hierarchy),
      flat_view_(net.node_count()),
      processes_(std::move(processes)) {
  validate();
}

void Engine::validate() const {
  HINET_REQUIRE(processes_.size() == net_->node_count(),
                "one process per node required");
  if (hierarchy_ != nullptr) {
    HINET_REQUIRE(hierarchy_->node_count() == net_->node_count(),
                  "hierarchy and topology node counts differ");
  }
  for (const auto& p : processes_) {
    HINET_REQUIRE(p != nullptr, "null process");
    HINET_REQUIRE(p->knowledge().universe() ==
                      processes_.front()->knowledge().universe(),
                  "all processes must share the token universe");
  }
}

SimMetrics Engine::run() {
  HINET_REQUIRE(owning_,
                "Engine::run() without a config requires a spec-owning "
                "engine; borrowing engines must pass an EngineConfig");
  return run(owned_config_);
}

SimMetrics Engine::run(const EngineConfig& cfg) {
  start(cfg);
  while (step()) {
  }
  return finish();
}

void Engine::bind_core() {
  core_.net = net_;
  core_.hierarchy = hierarchy_;
  core_.flat_view = &flat_view_;
  core_.processes = &processes_;
  core_.channel = channel_;
}

void Engine::start(const EngineConfig& cfg) {
  HINET_REQUIRE(!started_, "Engine::run is single-shot: this engine already "
                           "started a run (processes hold consumed state)");
  started_ = true;
  bind_core();
  core_.begin(cfg);
  arm_deadline();
}

bool Engine::step() {
  HINET_REQUIRE(started_ && !finished_,
                "Engine::step() requires an active run: call start() or "
                "restore() first, and not after finish()");
  // Mirror the classic loop's exit conditions: schedule exhausted, or (with
  // stop_when_complete) the completion round already ran.
  if (!core_.pending()) return false;
  if (has_deadline_) {
    // detlint-allow(banned-time): supervision deadline (see start())
    if (std::chrono::steady_clock::now() >= deadline_) {
      std::ostringstream os;
      os << "engine deadline of " << core_.cfg.deadline_ms
         << " ms exceeded after " << core_.metrics.rounds_executed
         << " round(s); snapshot before the deadline or raise "
         << "EngineConfig::deadline_ms to resume";
      throw DeadlineError(os.str());
    }
  }

  // set_channel may legally swap the channel between rounds; the core
  // reads the binding, so refresh it each step.
  core_.channel = channel_;

  const Round r = core_.round;
  const Graph& g = net_->graph_at(r);
  const HierarchyView& h = core_.view_at(r);

  core_.send_step(g, h);
  if (channel_ != nullptr) channel_->begin_round(r, g, core_.packets);
  core_.deliver_and_receive(g, h, scratch_);

  if (observer_) observer_(r, core_.packets, g, h);

  return core_.end_round();
}

SimMetrics Engine::finish() {
  HINET_REQUIRE(started_ && !finished_,
                "Engine::finish() requires an active run");
  finished_ = true;
  return core_.seal();
}

SimSnapshot Engine::snapshot() const {
  HINET_REQUIRE(started_ && !finished_,
                "Engine::snapshot() is valid only between start()/restore() "
                "and finish()");
  const std::size_t n = net_->node_count();
  ByteWriter w;
  w.u64(core_.round);
  w.u64(n);
  w.u64(core_.cfg.max_rounds);
  w.u8(core_.cfg.stop_when_complete ? 1 : 0);
  w.u64(core_.cfg.deadline_ms);
  save_metrics(w, core_.metrics);
  w.u8(channel_ != nullptr ? 1 : 0);
  if (channel_ != nullptr) {
    ByteWriter cw;
    channel_->save_state(cw);
    w.blob(cw.buffer());
  }
  // Streaming topologies (StreamingNetwork and decorators over one) carry
  // generator state: persisting it lets restore continue synthesis at the
  // frontier instead of replaying the whole prefix.  Materialized traces
  // have no such state and store only the absence flag.
  const auto* trace = dynamic_cast<const TraceStateSource*>(net_);
  w.u8(trace != nullptr ? 1 : 0);
  if (trace != nullptr) {
    ByteWriter tw;
    trace->save_trace_state(tw);
    w.blob(tw.buffer());
  }
  // Each process state is length-framed so restore can hand every process a
  // bounded reader and verify it consumes its section exactly — a process
  // type mismatch surfaces as a diagnostic, not as silent misalignment.
  for (const auto& p : processes_) {
    ByteWriter pw;
    p->save_state(pw);
    w.blob(pw.buffer());
  }
  return SimSnapshot{.payload = w.take()};
}

void Engine::restore(const SimSnapshot& snap) {
  HINET_REQUIRE(!started_,
                "Engine::restore() requires a freshly built engine (rebuild "
                "the spec with the same factory and seed first)");
  const std::size_t n = net_->node_count();
  ByteReader r(snap.payload, "snapshot payload");

  const std::uint64_t stored_round = r.u64();
  const std::uint64_t stored_n = r.u64();
  if (stored_n != n) {
    std::ostringstream os;
    os << "snapshot corrupt or mismatched: stored node count " << stored_n
       << " differs from the spec's " << n
       << " — restore requires an identically-built spec";
    throw IoError(os.str());
  }
  EngineConfig cfg;
  cfg.max_rounds = r.u64();
  cfg.stop_when_complete = r.u8() != 0;
  cfg.deadline_ms = r.u64();
  SimMetrics metrics = load_metrics(r);
  if (metrics.per_node_tx_tokens.size() != n ||
      metrics.per_node_rx_tokens.size() != n) {
    std::ostringstream os;
    os << "snapshot corrupt: per-node metric vectors sized "
       << metrics.per_node_tx_tokens.size() << "/"
       << metrics.per_node_rx_tokens.size() << ", expected " << n;
    throw IoError(os.str());
  }
  if (metrics.rounds_executed != stored_round || stored_round > cfg.max_rounds ||
      metrics.tokens_sent_per_round.size() != stored_round ||
      metrics.complete_nodes_per_round.size() != stored_round) {
    std::ostringstream os;
    os << "snapshot corrupt: round counter " << stored_round
       << " disagrees with the recorded series (rounds_executed="
       << metrics.rounds_executed << ", per-round series "
       << metrics.tokens_sent_per_round.size() << "/"
       << metrics.complete_nodes_per_round.size() << ", max_rounds="
       << cfg.max_rounds << ")";
    throw IoError(os.str());
  }

  const bool stored_channel = r.u8() != 0;
  if (stored_channel != (channel_ != nullptr)) {
    throw IoError(
        std::string("snapshot corrupt or mismatched: snapshot was taken ") +
        (stored_channel ? "with" : "without") +
        " a channel model but this spec has the opposite — restore requires "
        "an identically-built spec");
  }
  if (channel_ != nullptr) {
    ByteReader cr(r.blob(), "snapshot channel state");
    channel_->restore_state(cr);
    cr.expect_done();
  }
  const bool stored_trace = r.u8() != 0;
  auto* trace = dynamic_cast<TraceStateSource*>(net_);
  if (stored_trace != (trace != nullptr)) {
    throw IoError(
        std::string("snapshot corrupt or mismatched: snapshot was taken ") +
        (stored_trace ? "with" : "without") +
        " a streaming network but this spec has the opposite — restore "
        "requires an identically-built spec");
  }
  if (trace != nullptr) {
    ByteReader tr(r.blob(), "snapshot network trace state");
    trace->restore_trace_state(tr);
    tr.expect_done();
  }
  for (NodeId v = 0; v < n; ++v) {
    ByteReader pr(r.blob(), "snapshot process state");
    processes_[v]->restore_state(pr);
    pr.expect_done();
  }
  r.expect_done();

  // Commit only after the whole payload decoded cleanly.
  started_ = true;
  bind_core();
  core_.cfg = cfg;
  core_.round = stored_round;
  core_.metrics = std::move(metrics);

  // Completion flags are derived, not stored: knowledge().full() is the
  // same predicate the live run used, so recomputing cannot disagree.
  core_.rescan_completion();
  core_.packets.clear();
  core_.packet_costs.clear();

  // The wall-clock budget restarts on resume (documented in spec.hpp).
  arm_deadline();
}

void Engine::arm_deadline() {
  // Budgets too large to represent as a clock offset (possible via a
  // corrupted-but-CRC-free snapshot payload, or a caller passing ~2^63 ms)
  // cannot ever fire; treat them as "no deadline" instead of overflowing
  // the duration arithmetic.
  constexpr std::uint64_t kMaxDeadlineMs = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          // detlint-allow(banned-time): compile-time clock range, not a read
          std::chrono::steady_clock::duration::max())
          .count() /
      2);
  has_deadline_ = core_.cfg.deadline_ms > 0 &&
                  core_.cfg.deadline_ms <= kMaxDeadlineMs;
  if (has_deadline_) {
    // An over-budget run throws DeadlineError instead of degrading, so
    // metrics never depend on the host clock.
    // detlint-allow(banned-time): deadline only gates abort, never results
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(core_.cfg.deadline_ms);
  }
}

}  // namespace hinet
