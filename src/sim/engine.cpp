#include "sim/engine.hpp"

#include <algorithm>
#include <cstdint>
#include <sstream>

namespace hinet {

double total_energy(const SimMetrics& m, const EnergyModel& e) {
  double energy = e.idle_per_round * static_cast<double>(m.rounds_executed) *
                  static_cast<double>(m.per_node_tx_tokens.size());
  for (std::size_t v = 0; v < m.per_node_tx_tokens.size(); ++v) {
    energy += e.tx_per_token * static_cast<double>(m.per_node_tx_tokens[v]);
    energy += e.rx_per_token * static_cast<double>(m.per_node_rx_tokens[v]);
  }
  return energy;
}

double max_node_energy(const SimMetrics& m, const EnergyModel& e) {
  double worst = 0.0;
  for (std::size_t v = 0; v < m.per_node_tx_tokens.size(); ++v) {
    const double node =
        e.idle_per_round * static_cast<double>(m.rounds_executed) +
        e.tx_per_token * static_cast<double>(m.per_node_tx_tokens[v]) +
        e.rx_per_token * static_cast<double>(m.per_node_rx_tokens[v]);
    worst = std::max(worst, node);
  }
  return worst;
}

std::size_t total_wire_bytes(const SimMetrics& m, const WireModel& w) {
  return m.packets_sent * w.header_bytes + m.tokens_sent * w.token_bytes;
}

double SimMetrics::completion_fraction() const {
  const std::size_t n = per_node_tx_tokens.size();
  if (n == 0) return 0.0;
  return static_cast<double>(complete_nodes_final) / static_cast<double>(n);
}

double SimMetrics::token_coverage() const {
  if (per_node_tokens_known.empty() || token_universe == 0) return 0.0;
  std::size_t known = 0;
  for (std::size_t c : per_node_tokens_known) known += c;
  return static_cast<double>(known) /
         static_cast<double>(per_node_tokens_known.size() * token_universe);
}

std::string SimMetrics::to_string() const {
  std::ostringstream os;
  os << "rounds=" << rounds_executed << " packets=" << packets_sent
     << " tokens_sent=" << tokens_sent << " completed="
     << (all_delivered ? std::to_string(rounds_to_completion) : "never");
  if (!all_delivered && !per_node_tx_tokens.empty()) {
    os << " completion=" << completion_fraction()
       << " coverage=" << token_coverage();
  }
  return os.str();
}

Engine::Engine(SimulationSpec spec)
    : owned_network_(std::move(spec.network)),
      owned_hierarchy_(std::move(spec.hierarchy)),
      owned_channel_(std::move(spec.channel)),
      owned_config_(spec.engine),
      owning_(true),
      net_(owned_network_.get()),
      hierarchy_(owned_hierarchy_.get()),
      flat_view_(owned_network_ != nullptr ? owned_network_->node_count() : 0),
      processes_(std::move(spec.processes)),
      channel_(owned_channel_.get()) {
  HINET_REQUIRE(net_ != nullptr, "SimulationSpec must own a network");
  validate();
}

Engine::Engine(DynamicNetwork& net, HierarchyProvider* hierarchy,
               std::vector<ProcessPtr> processes)
    : net_(&net),
      hierarchy_(hierarchy),
      flat_view_(net.node_count()),
      processes_(std::move(processes)) {
  validate();
}

void Engine::validate() const {
  HINET_REQUIRE(processes_.size() == net_->node_count(),
                "one process per node required");
  if (hierarchy_ != nullptr) {
    HINET_REQUIRE(hierarchy_->node_count() == net_->node_count(),
                  "hierarchy and topology node counts differ");
  }
  for (const auto& p : processes_) {
    HINET_REQUIRE(p != nullptr, "null process");
    HINET_REQUIRE(p->knowledge().universe() ==
                      processes_.front()->knowledge().universe(),
                  "all processes must share the token universe");
  }
}

SimMetrics Engine::run() {
  HINET_REQUIRE(owning_,
                "Engine::run() without a config requires a spec-owning "
                "engine; borrowing engines must pass an EngineConfig");
  return run(owned_config_);
}

SimMetrics Engine::run(const EngineConfig& cfg) {
  HINET_REQUIRE(!ran_, "Engine::run is single-shot");
  ran_ = true;
  const std::size_t n = net_->node_count();

  SimMetrics metrics;
  metrics.per_node_tx_tokens.assign(n, 0);
  metrics.per_node_rx_tokens.assign(n, 0);
  {
    // Pre-size the per-round series (capped, so a huge max_rounds with an
    // early stop_when_complete exit cannot over-commit memory).
    const std::size_t cap = std::min<std::size_t>(cfg.max_rounds, 1u << 20);
    metrics.tokens_sent_per_round.reserve(cap);
    metrics.complete_nodes_per_round.reserve(cap);
  }

  // Per-round scratch, hoisted out of the loop and reused (clear()/assign()
  // keep capacity): steady-state rounds perform no heap allocation here.
  std::vector<Packet> packets;            // the round's transmissions
  std::vector<std::size_t> packet_costs;  // cost() per packet, computed once
  std::vector<std::uint32_t> inbox_offsets(n + 1);  // counting-sort segments
  std::vector<std::uint32_t> inbox_cursor(n);
  std::vector<PacketView> inbox_views;  // all inboxes, one flat array

  // Incremental completion: knowledge is monotone and grows only in
  // receive() (see Process), so scan once up front and afterwards re-check
  // only not-yet-complete nodes right after their receive() call.
  std::vector<char> complete(n, 0);
  std::size_t complete_nodes = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (processes_[v]->knowledge().full()) {
      complete[v] = 1;
      ++complete_nodes;
    }
  }

  // detlint: hot-path-begin — the per-round loop must not allocate in steady
  // state; scratch buffers above are reused via clear()/assign().
  for (Round r = 0; r < cfg.max_rounds; ++r) {
    const Graph& g = net_->graph_at(r);
    const HierarchyView& h =
        hierarchy_ != nullptr ? hierarchy_->hierarchy_at(r) : flat_view_;
    HINET_REQUIRE(g.node_count() == n, "round graph node count changed");

    // Send step: node-id order for determinism.  Each packet's cost is
    // computed once here and reused for tx and rx accounting.
    packets.clear();
    packet_costs.clear();
    std::size_t round_tokens = 0;
    for (NodeId v = 0; v < n; ++v) {
      RoundContext ctx{r, v, &g, &h};
      if (processes_[v]->finished(ctx)) continue;
      if (auto pkt = processes_[v]->transmit(ctx)) {
        HINET_REQUIRE(pkt->src == v, "packet src must be the sender");
        const std::size_t cost = pkt->cost();
        round_tokens += cost;
        metrics.per_node_tx_tokens[v] += cost;
        packet_costs.push_back(cost);
        packets.push_back(std::move(*pkt));
      }
    }
    metrics.packets_sent += packets.size();
    metrics.tokens_sent += round_tokens;
    metrics.tokens_sent_per_round.push_back(round_tokens);

    if (channel_ != nullptr) channel_->begin_round(r, g, packets);

    // Delivery: sender-centric scatter.  One pass over the packet list
    // counts each CSR neighbour's candidates, a prefix sum carves the flat
    // view array into per-receiver segments, and a second stable pass
    // places the views — packets are in sender order, so every segment
    // stays sorted by sender id.
    std::fill(inbox_offsets.begin(), inbox_offsets.end(), 0u);
    for (const Packet& pkt : packets) {
      for (NodeId u : g.neighbors(pkt.src)) ++inbox_offsets[u + 1];
    }
    for (std::size_t v = 0; v < n; ++v) {
      inbox_offsets[v + 1] += inbox_offsets[v];
    }
    // detlint-allow(hot-path-alloc): grows to the high-water inbox total
    inbox_views.resize(inbox_offsets[n]);  // once, then capacity is reused
    std::copy(inbox_offsets.begin(), inbox_offsets.end() - 1,
              inbox_cursor.begin());
    for (const Packet& pkt : packets) {
      for (NodeId u : g.neighbors(pkt.src)) {
        inbox_views[inbox_cursor[u]++] = &pkt;
      }
    }

    // Receive step: receiver-major, so stateful channels see deliver()
    // calls in exactly the order the receiver-centric engine made them
    // (receivers ascending, packets in sender order per receiver).
    // Surviving views are compacted in place within each segment.
    for (NodeId v = 0; v < n; ++v) {
      PacketView* seg = inbox_views.data() + inbox_offsets[v];
      std::uint32_t len = inbox_offsets[v + 1] - inbox_offsets[v];
      if (channel_ != nullptr) {
        std::uint32_t kept = 0;
        for (std::uint32_t i = 0; i < len; ++i) {
          PacketView pkt = seg[i];
          if (channel_->deliver(r, *pkt, v)) seg[kept++] = pkt;
        }
        len = kept;
      }
      for (std::uint32_t i = 0; i < len; ++i) {
        metrics.per_node_rx_tokens[v] +=
            packet_costs[static_cast<std::size_t>(seg[i] - packets.data())];
      }
      RoundContext ctx{r, v, &g, &h};
      processes_[v]->receive(ctx, InboxView(seg, len));
      if (complete[v] == 0 && processes_[v]->knowledge().full()) {
        complete[v] = 1;
        ++complete_nodes;
      }
    }

    if (observer_) observer_(r, packets, g, h);

    ++metrics.rounds_executed;
    metrics.complete_nodes_per_round.push_back(complete_nodes);
    if (complete_nodes == n && metrics.rounds_to_completion == kNever) {
      metrics.rounds_to_completion = metrics.rounds_executed;
      if (cfg.stop_when_complete) break;
    }
  }
  // detlint: hot-path-end

  metrics.all_delivered = complete_nodes == n;
  if (metrics.all_delivered && metrics.rounds_to_completion == kNever) {
    metrics.rounds_to_completion = metrics.rounds_executed;
  }
  metrics.complete_nodes_final = complete_nodes;
  metrics.per_node_tokens_known.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    metrics.per_node_tokens_known[v] = processes_[v]->knowledge().count();
  }
  metrics.token_universe =
      n > 0 ? processes_.front()->knowledge().universe() : 0;
  return metrics;
}

}  // namespace hinet
