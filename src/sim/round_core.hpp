// Shared single-replicate round core.
//
// Engine (sim/engine.hpp, serial) and BatchEngine (sim/batch_engine.hpp,
// lockstep over R replicates) execute the identical per-replicate round
// logic through this core: send step, sender-centric counting-sort
// scatter, channel filtering, receive step and incremental completion
// bookkeeping.  Keeping one implementation makes "batched == serial, byte
// for byte" a structural property instead of a test-enforced hope: the
// two engines cannot drift apart, because there is only one round body.
//
// The round is split where the lockstep schedule needs a seam:
//
//   send_step()            collect transmit() in node-id order
//   -- channel begin_round / begin_round_batch runs here --
//   deliver_and_receive()  scatter, channel-filter, receive()
//   end_round()            round counters, completion, per-round series
//
// The serial engine runs the three parts back to back per round; the
// batch engine runs part one for every replicate, makes ONE channel
// begin_round_batch call covering the whole batch, then runs part two and
// three for every replicate.  Because each replicate owns its processes,
// channel and trace, and the only shared piece is pure scratch, the
// per-replicate sequence of process calls and RNG draws is exactly the
// serial one in either schedule.
//
// InboxScratch is the delivery-side scratch (inbox offsets / cursors /
// packet views).  It lives outside the core so a lockstep batch reuses
// ONE scratch across all replicates: per-replicate state stays small
// (processes, metrics, send buffers) while the O(Σ deg) delivery buffers
// exist once per batch instead of once per replicate.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/hierarchy.hpp"
#include "graph/dynamic.hpp"
#include "sim/channel.hpp"
#include "sim/metrics.hpp"
#include "sim/process.hpp"
#include "sim/spec.hpp"

namespace hinet::detail {

/// Delivery scratch, shareable across replicates within a round (each
/// replicate's delivery uses it transiently inside deliver_and_receive).
/// All buffers reuse capacity round to round; steady-state rounds perform
/// no heap allocation here beyond the documented high-water growth of
/// `views`.
struct InboxScratch {
  std::vector<std::uint32_t> offsets;  ///< per-receiver segment bounds
  std::vector<std::uint32_t> cursor;   ///< scatter write positions
  std::vector<PacketView> views;       ///< flat per-receiver view segments
};

/// Per-replicate run state plus the per-round send buffers — everything
/// one replicate needs between rounds.  Bindings are non-owning: the
/// owner (Engine or BatchEngine::Replicate) keeps the pointees alive and
/// re-binds after moves.
struct RunCore {
  // Bindings (non-owning).
  DynamicNetwork* net = nullptr;
  HierarchyProvider* hierarchy = nullptr;       ///< may be null (flat)
  const HierarchyView* flat_view = nullptr;     ///< used when hierarchy null
  std::vector<ProcessPtr>* processes = nullptr;
  ChannelModel* channel = nullptr;              ///< may be null (perfect)

  // Run state, valid between begin() and seal().  This is exactly what
  // Engine::snapshot() captures (plus the engine config).
  EngineConfig cfg;
  Round round = 0;
  SimMetrics metrics;
  std::vector<char> complete;
  std::size_t complete_nodes = 0;

  // Per-replicate send-side scratch, allocated once per run and reused
  // (clear() keeps capacity).
  std::vector<Packet> packets;
  std::vector<std::size_t> packet_costs;

  std::size_t node_count() const { return net->node_count(); }

  /// The round-r hierarchy view: the provider's, or the flat fallback.
  const HierarchyView& view_at(Round r) const {
    return hierarchy != nullptr ? hierarchy->hierarchy_at(r) : *flat_view;
  }

  /// Initialises run state for a fresh run under `config`: zeroed metrics
  /// with per-node vectors sized, the initial completion scan, and empty
  /// send buffers.  Bindings must be set first.
  void begin(const EngineConfig& config);

  /// Re-derives the completion flags from current process knowledge (used
  /// by begin() and snapshot restore; knowledge().full() is the same
  /// predicate the live run uses, so recomputing cannot disagree).
  void rescan_completion();

  /// True while step()-equivalent execution has more rounds to run:
  /// schedule not exhausted and, with stop_when_complete, dissemination
  /// not yet complete.
  bool pending() const {
    return round < cfg.max_rounds &&
           !(cfg.stop_when_complete && metrics.rounds_to_completion != kNever);
  }

  /// Send half of round `round`: collects transmit() from every
  /// unfinished node in node-id order into `packets`/`packet_costs` and
  /// accounts tx costs.  `g`/`h` are the round's graph and hierarchy.
  void send_step(const Graph& g, const HierarchyView& h);

  /// Delivery half: sender-centric scatter into `scratch`, channel
  /// filtering in receiver-major order, receive() per node, incremental
  /// completion tracking.  The channel's begin_round (or the batch hook)
  /// must have run between send_step and this call.
  void deliver_and_receive(const Graph& g, const HierarchyView& h,
                           InboxScratch& scratch);

  /// Round bookkeeping: advances the round counter and the per-round
  /// series.  Returns true while more rounds remain (same contract as
  /// Engine::step()'s return value).
  bool end_round();

  /// Finalises and returns the metrics (Engine::finish() body).
  SimMetrics seal();
};

}  // namespace hinet::detail
