#include "sim/batch_engine.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

namespace hinet {

std::size_t BatchOutcome::completed() const {
  std::size_t n = 0;
  for (const auto& slot : slots) {
    if (slot.has_value()) ++n;
  }
  return n;
}

BatchEngine::BatchEngine(std::vector<SimulationSpec> specs) {
  HINET_REQUIRE(!specs.empty(), "BatchEngine needs at least one replicate");
  const bool first_has_channel = specs.front().channel != nullptr;
  replicates_.reserve(specs.size());
  for (SimulationSpec& spec : specs) {
    validate_simulation_spec(spec);
    HINET_REQUIRE((spec.channel != nullptr) == first_has_channel,
                  "a lockstep batch must be channel-homogeneous: either "
                  "every spec owns a channel or none does (one SpecFactory "
                  "builds every replicate)");
    for (const auto& p : spec.processes) {
      HINET_REQUIRE(p != nullptr, "null process");
      HINET_REQUIRE(p->knowledge().universe() ==
                        spec.processes.front()->knowledge().universe(),
                    "all processes must share the token universe");
    }
    Replicate rep;
    rep.network = std::move(spec.network);
    rep.hierarchy = std::move(spec.hierarchy);
    rep.channel = std::move(spec.channel);
    rep.processes = std::move(spec.processes);
    rep.config = spec.engine;
    rep.flat_view = HierarchyView(rep.network->node_count());
    replicates_.push_back(std::move(rep));
  }
}

void BatchEngine::bind(Replicate& rep) {
  rep.core.net = rep.network.get();
  rep.core.hierarchy = rep.hierarchy.get();
  rep.core.flat_view = &rep.flat_view;
  rep.core.processes = &rep.processes;
  rep.core.channel = rep.channel.get();
}

namespace {

// Budgets too large to represent as a clock offset cannot ever fire;
// treat them as "no deadline" instead of overflowing the duration
// arithmetic (same saturation as Engine::arm_deadline).
constexpr std::uint64_t kMaxDeadlineMs = static_cast<std::uint64_t>(
    std::chrono::duration_cast<std::chrono::milliseconds>(
        // detlint-allow(banned-time): compile-time clock range, not a read
        std::chrono::steady_clock::duration::max())
        .count() /
    2);

}  // namespace

BatchOutcome BatchEngine::run() {
  HINET_REQUIRE(!ran_, "BatchEngine::run is single-shot: this batch already "
                       "ran (processes hold consumed state)");
  ran_ = true;

  const std::size_t count = replicates_.size();
  BatchOutcome out;
  out.slots.resize(count);
  std::size_t active_count = count;

  // The batch-wide wall budget: the largest per-spec deadline_ms bounds
  // the whole lockstep run (a batch is the unit of scheduling; documented
  // in analysis/experiment.hpp).
  std::uint64_t deadline_ms = 0;
  for (Replicate& rep : replicates_) {
    bind(rep);
    rep.core.begin(rep.config);
    rep.active = true;
    deadline_ms = std::max<std::uint64_t>(deadline_ms, rep.config.deadline_ms);
  }
  const bool has_deadline = deadline_ms > 0 && deadline_ms <= kMaxDeadlineMs;
  // detlint-allow(banned-time): deadline only gates abort, never results
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);

  // Channel batching capability, decided once: the explicit
  // supports_batching() query, never engine-side type sniffing.  Any
  // channel declining batching sends the whole batch down the
  // per-replicate begin_round path (always correct).
  const bool have_channels = replicates_.front().channel != nullptr;
  bool use_batch_hook = have_channels;
  for (const Replicate& rep : replicates_) {
    if (have_channels && !rep.channel->supports_batching()) {
      use_batch_hook = false;
    }
  }

  std::vector<ChannelRoundInput> channel_batch;
  channel_batch.reserve(count);

  // Deactivates `rep` and records the in-flight exception against index i.
  const auto fail_current = [&out, &active_count](Replicate& rep,
                                                  std::size_t i) {
    rep.active = false;
    --active_count;
    BatchReplicateFailure f;
    f.index = i;
    f.error = std::current_exception();
    f.message = "unknown exception";
    try {
      std::rethrow_exception(f.error);
    } catch (const std::exception& e) {
      f.message = e.what();
    } catch (...) {
    }
    out.failures.push_back(std::move(f));
  };

  // detlint: hot-path-begin — the lockstep round loop must not allocate in
  // steady state: per-replicate buffers live in each RunCore, the shared
  // inbox scratch and the channel-batch list are hoisted above and reuse
  // capacity.
  while (active_count > 0) {
    // Seal replicates whose schedule is done.
    for (std::size_t i = 0; i < count; ++i) {
      Replicate& rep = replicates_[i];
      if (rep.active && !rep.core.pending()) {
        out.slots[i] = rep.core.seal();
        rep.active = false;
        --active_count;
      }
    }
    if (active_count == 0) break;

    if (has_deadline) {
      // detlint-allow(banned-time): supervision deadline (see above)
      if (std::chrono::steady_clock::now() >= deadline) {
        for (std::size_t i = 0; i < count; ++i) {
          Replicate& rep = replicates_[i];
          if (!rep.active) continue;
          rep.active = false;
          --active_count;
          std::ostringstream os;
          os << "batch deadline of " << deadline_ms << " ms exceeded after "
             << rep.core.metrics.rounds_executed
             << " round(s); the lockstep batch shares one wall budget — "
             << "raise deadline_ms or shrink replicates_per_batch";
          BatchReplicateFailure f;
          f.index = i;
          f.message = os.str();
          f.error = std::make_exception_ptr(DeadlineError(f.message));
          out.failures.push_back(std::move(f));
        }
        break;
      }
    }

    // Phase A: send step, replicate-major.
    for (std::size_t i = 0; i < count; ++i) {
      Replicate& rep = replicates_[i];
      if (!rep.active) continue;
      try {
        const Round r = rep.core.round;
        rep.round_graph = &rep.network->graph_at(r);
        rep.round_view = &rep.core.view_at(r);
        rep.core.send_step(*rep.round_graph, *rep.round_view);
      } catch (...) {
        fail_current(rep, i);
      }
    }

    // Phase B: one batched channel advance covering every active
    // replicate (or the conservative per-replicate loop).
    if (have_channels && active_count > 0) {
      if (use_batch_hook) {
        channel_batch.clear();
        ChannelModel* lead = nullptr;
        Round lead_round = 0;
        for (Replicate& rep : replicates_) {
          if (!rep.active) continue;
          if (lead == nullptr) {
            lead = rep.channel.get();
            lead_round = rep.core.round;
          }
          channel_batch.push_back(ChannelRoundInput{
              rep.channel.get(), rep.round_graph, rep.core.packets});
        }
        try {
          lead->begin_round_batch(lead_round, channel_batch);
        } catch (...) {
          // A failing batch hook cannot be attributed to one replicate:
          // the whole batch fails with the same error.
          for (std::size_t i = 0; i < count; ++i) {
            if (replicates_[i].active) fail_current(replicates_[i], i);
          }
        }
      } else {
        for (std::size_t i = 0; i < count; ++i) {
          Replicate& rep = replicates_[i];
          if (!rep.active) continue;
          try {
            rep.channel->begin_round(rep.core.round, *rep.round_graph,
                                     rep.core.packets);
          } catch (...) {
            fail_current(rep, i);
          }
        }
      }
    }

    // Phase C: delivery, receive and round bookkeeping, replicate-major
    // over the one shared inbox scratch.
    for (std::size_t i = 0; i < count; ++i) {
      Replicate& rep = replicates_[i];
      if (!rep.active) continue;
      try {
        rep.core.deliver_and_receive(*rep.round_graph, *rep.round_view,
                                     scratch_);
        rep.core.end_round();
      } catch (...) {
        fail_current(rep, i);
      }
    }
  }
  // detlint: hot-path-end

  // Phases interleave failure discovery; report by replicate index.
  std::sort(out.failures.begin(), out.failures.end(),
            [](const BatchReplicateFailure& a, const BatchReplicateFailure& b) {
              return a.index < b.index;
            });
  return out;
}

}  // namespace hinet
