// Declarative fault injection over any DynamicNetwork.
//
// A FaultPlan is a schedule of topology-level faults:
//   - CrashEvent      — node down for [round, recovery) (graph/crashes.hpp);
//   - PartitionEvent  — every edge between `group` and its complement is cut
//                       for [start, heal) (a correlated outage: a moving
//                       obstacle, a jammed area, a split backbone);
//   - LinkBurst       — a listed set of links is down for [start,
//                       start+length) (per-window burst outages on specific
//                       links, the wired analogue of a deep fade).
//
// FaultyNetwork applies a plan as a *decorator*: it wraps any
// DynamicNetwork — precomputed trace, lazy generator, even another
// FaultyNetwork — and edits each round's graph on the fly.  No trace is
// copied up front; rounds in which no fault is active are forwarded by
// reference, so an empty plan (and every pre-fault round) is zero-cost and
// byte-identical to the undecorated network.
//
// The *realized* faulty topology is what the hierarchy maintainer and the
// assumption monitor must see: either freeze it with materialize(faulty,
// rounds) and replay the copy, or — at scales where a resident trace is
// off the table — run the monitor's one-pass checkers directly over the
// decorator (it streams: each round is edited on the fly and dropped).
//
// FaultyNetwork also forwards the TraceStateSource checkpoint capability:
// when the base network is streaming, an Engine snapshot taken through the
// decorator carries the base generator's state, so kill-and-resume works
// unchanged over faulty streamed traces (the fault plan itself is
// construction data and needs no serialization).
#pragma once

#include <memory>
#include <vector>

#include "graph/crashes.hpp"
#include "graph/dynamic.hpp"

namespace hinet {

/// Correlated outage: all edges between `group` and the rest of the node
/// set are cut while the partition is active.
struct PartitionEvent {
  Round start = 0;
  Round heal = kNoRecovery;  ///< first round the cut is gone (default: never)
  std::vector<NodeId> group;

  bool active_at(Round r) const { return r >= start && r < heal; }
};

/// Burst outage on specific links: every listed edge is removed for
/// `length` consecutive rounds.  Links absent from the underlying graph in
/// a given round are ignored.
struct LinkBurst {
  Round start = 0;
  std::size_t length = 1;
  std::vector<Edge> links;

  bool active_at(Round r) const { return r >= start && r < start + length; }
};

/// A complete, declarative fault schedule.  Value-semantic: plans can be
/// built once and shared across replicates, serialised into bench JSON, or
/// perturbed per seed.
struct FaultPlan {
  std::vector<CrashEvent> crashes;
  std::vector<PartitionEvent> partitions;
  std::vector<LinkBurst> bursts;

  bool empty() const {
    return crashes.empty() && partitions.empty() && bursts.empty();
  }

  /// True when any fault edits the topology of round r.
  bool active_at(Round r) const;

  /// True when node v is inside a crash window at round r.
  bool node_down(NodeId v, Round r) const;

  /// Nodes not inside a crash window at round r.
  std::vector<NodeId> alive_nodes(std::size_t node_count, Round r) const {
    return hinet::alive_nodes(node_count, r, crashes);
  }

  /// Structural validation against a node count; throws PreconditionError
  /// with the first offending event.
  void validate(std::size_t node_count) const;
};

/// Random crash/recovery churn: `crash_count` distinct nodes each crash
/// once at a uniform round in [0, horizon) and recover `downtime` rounds
/// later (kNoRecovery = permanent).  Deterministic per seed.
FaultPlan random_churn_plan(std::size_t node_count, std::size_t crash_count,
                            std::size_t horizon, std::size_t downtime,
                            std::uint64_t seed);

/// Applies a FaultPlan to a base network on the fly.  Composable with
/// every generator (anything implementing DynamicNetwork) and with other
/// FaultyNetworks; copies a round's graph only when a fault is active in
/// that round.
class FaultyNetwork final : public DynamicNetwork, public TraceStateSource {
 public:
  /// Owning mode: the decorator keeps the base network alive (the form a
  /// self-owning SimulationSpec needs).
  FaultyNetwork(std::unique_ptr<DynamicNetwork> base, FaultPlan plan);

  /// Borrowing mode: `base` must outlive the decorator (tests, tools).
  FaultyNetwork(DynamicNetwork& base, FaultPlan plan);

  std::size_t node_count() const override { return base_->node_count(); }
  const Graph& graph_at(Round r) override;

  const FaultPlan& plan() const { return plan_; }

  /// Forwards to the base network when it is itself a TraceStateSource;
  /// otherwise stores/checks only an absence flag (the plan is static).
  void save_trace_state(ByteWriter& w) const override;
  void restore_trace_state(ByteReader& r) override;

 private:
  const Graph& rebuild(Round r);

  std::unique_ptr<DynamicNetwork> owned_;
  DynamicNetwork* base_;
  FaultPlan plan_;

  // Single-round cache: the engine (and materialize) walk rounds in order
  // and hold each reference for the duration of one round.
  bool cache_valid_ = false;
  Round cache_round_ = 0;
  Graph cache_;
};

}  // namespace hinet
