// Human-readable trace recording: captures every packet of every round so
// examples and the Fig. 3 walkthrough bench can print the dissemination
// step by step, and tests can assert on exact message-level behaviour.
#pragma once

#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace hinet {

struct RecordedRound {
  Round round = 0;
  std::vector<Packet> packets;
  std::size_t complete_nodes = 0;
};

class TraceRecorder {
 public:
  /// Returns an observer bound to this recorder; pass to
  /// Engine::set_observer before run().
  RoundObserver observer();

  const std::vector<RecordedRound>& rounds() const { return rounds_; }

  /// Pretty-prints round-by-round packet activity.  `names` may be empty,
  /// in which case node ids are printed.
  std::string render() const;

 private:
  std::vector<RecordedRound> rounds_;
};

}  // namespace hinet
