#include "sim/spec.hpp"

#include <sstream>

#include "sim/engine.hpp"

namespace hinet {

/// Spec-level validation with actionable, distinct messages.  The engine
/// re-checks the structural invariants (it is also reachable through the
/// borrowing constructor); these messages exist so a mis-built spec fails
/// naming the field to fix rather than with a generic contract violation.
void validate_simulation_spec(const SimulationSpec& spec) {
  HINET_REQUIRE(spec.network != nullptr, "SimulationSpec must own a network");
  if (spec.engine.max_rounds == 0) {
    throw PreconditionError(
        "SimulationSpec.engine.max_rounds is 0 — the run would execute no "
        "rounds; set max_rounds to the algorithm's scheduled horizon (e.g. "
        "alg1_scheduled_rounds / Alg2Params::rounds)");
  }
  const std::size_t n = spec.network->node_count();
  if (spec.processes.size() != n) {
    std::ostringstream os;
    os << "SimulationSpec.processes has " << spec.processes.size()
       << " entries for a " << n << "-node network — build exactly one "
       << "process per node, in node-id order";
    throw PreconditionError(os.str());
  }
  if (spec.hierarchy != nullptr) {
    if (spec.hierarchy->node_count() != n) {
      std::ostringstream os;
      os << "SimulationSpec.hierarchy covers " << spec.hierarchy->node_count()
         << " nodes but the network has " << n
         << " — hierarchy and topology must describe the same node set";
      throw PreconditionError(os.str());
    }
    // When both sides are explicit traces their horizons must agree: a
    // shorter hierarchy would silently freeze roles (rounds past the end
    // repeat the last view) while the topology keeps evolving — almost
    // always a mis-assembled spec, never what an experiment means.
    const auto* net_seq = dynamic_cast<const GraphSequence*>(spec.network.get());
    const auto* hier_seq =
        dynamic_cast<const HierarchySequence*>(spec.hierarchy.get());
    if (net_seq != nullptr && hier_seq != nullptr &&
        net_seq->round_count() != hier_seq->round_count()) {
      std::ostringstream os;
      os << "SimulationSpec network trace has " << net_seq->round_count()
         << " rounds but the hierarchy trace has " << hier_seq->round_count()
         << " — generate both from the same trace (or maintain the "
         << "hierarchy over the realized topology) so their horizons match";
      throw PreconditionError(os.str());
    }
    // A streaming topology paired with a materialized hierarchy (or vice
    // versa) gets the same horizon check against the stream's declared
    // horizon.  Paired streaming views (e.g. make_hinet_stream) share one
    // generator core, so their horizons agree by construction and neither
    // side is a sequence — nothing to check.
    const auto* net_stream =
        dynamic_cast<const StreamingNetwork*>(spec.network.get());
    if (net_stream != nullptr && hier_seq != nullptr &&
        net_stream->round_count() != hier_seq->round_count()) {
      std::ostringstream os;
      os << "SimulationSpec streaming network has a horizon of "
         << net_stream->round_count() << " rounds but the hierarchy trace has "
         << hier_seq->round_count()
         << " — their horizons must match (or stream the hierarchy from the "
         << "same generator)";
      throw PreconditionError(os.str());
    }
  }
}

SimMetrics run_simulation(SimulationSpec spec) {
  validate_simulation_spec(spec);
  Engine engine(std::move(spec));
  return engine.run();
}

}  // namespace hinet
