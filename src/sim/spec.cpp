#include "sim/spec.hpp"

#include "sim/engine.hpp"

namespace hinet {

SimMetrics run_simulation(SimulationSpec spec) {
  Engine engine(std::move(spec));
  return engine.run();
}

}  // namespace hinet
