// Per-node algorithm interface for the synchronous round engine.
//
// Each round the engine calls, for every node: transmit() to obtain the
// node's (at most one) outgoing packet, then — after all transmissions of
// the round are collected — receive() with every packet heard over the
// round's communication graph.  This is exactly the send/receive round
// structure of the paper's lifetime Γ.
//
// The inbox is an InboxView: pointers into the engine's round packet
// buffer, sorted by sender id, valid only for the duration of the call.
// A process that wants to keep a payload must copy it (all the built-in
// algorithms just unite the TokenSet into their own state).
#pragma once

#include <memory>
#include <optional>
#include <span>

#include "cluster/hierarchy.hpp"
#include "graph/dynamic.hpp"
#include "sim/packet.hpp"
#include "util/binary_io.hpp"
#include "util/require.hpp"

namespace hinet {

/// Everything a node may legitimately observe in one round: the global
/// round index and its own local neighbourhood/role.  Processes must not
/// inspect the graph beyond their own neighbourhood (distributed-algorithm
/// discipline); the full graph reference exists so helpers can read
/// neighbour lists without copying.
struct RoundContext {
  Round round = 0;
  NodeId self = 0;
  const Graph* graph = nullptr;
  const HierarchyView* hierarchy = nullptr;

  std::span<const NodeId> neighbors() const { return graph->neighbors(self); }
  NodeRole role() const { return hierarchy->role(self); }
  ClusterId cluster() const { return hierarchy->cluster_of(self); }
};

class Process {
 public:
  virtual ~Process() = default;

  /// The node's transmission for this round, or nullopt to stay silent.
  virtual std::optional<Packet> transmit(const RoundContext& ctx) = 0;

  /// Delivery of every packet heard this round (senders are graph
  /// neighbours of this node in ctx.graph), as non-owning views ordered by
  /// sender id.  Called every round, even with an empty inbox, so
  /// processes can keep per-round state (phase boundaries) consistent.
  virtual void receive(const RoundContext& ctx, InboxView inbox) = 0;

  /// The node's collected token set TA (the algorithm's output).
  ///
  /// Contract: knowledge is monotone — it may only grow, and only during
  /// receive().  The engine relies on this for incremental completion
  /// tracking: a node is checked for completeness right after its
  /// receive() call and never re-scanned once complete.
  virtual const TokenSet& knowledge() const = 0;

  /// True once the node's own schedule is exhausted (e.g. M phases done).
  /// The engine may keep running other nodes; a finished node simply stays
  /// silent.  Default: never finishes on its own.
  virtual bool finished(const RoundContext&) const { return false; }

  // Checkpoint hooks (engine snapshot/resume, sim/snapshot.hpp).
  //
  // Contract: restore_state(r) applied to a process freshly built with the
  // same constructor arguments, where r decodes bytes from save_state of a
  // peer at round boundary b, must reproduce the peer's observable behavior
  // from round b on exactly — this is what makes snapshot-then-resume
  // byte-identical to an uninterrupted run.  Constructor parameters are
  // NOT serialized (the resuming caller rebuilds the spec from its seed);
  // only mutable per-run state is.  The defaults throw so that algorithms
  // without an implementation fail loudly at snapshot time rather than
  // resuming with silently reset state.

  /// Serializes the node's mutable per-run state.
  virtual void save_state(ByteWriter& w) const;

  /// Restores state saved by save_state on an identically-constructed
  /// process.  Must consume the reader exactly (the engine verifies).
  virtual void restore_state(ByteReader& r);

  /// True when this process type implements the checkpoint hooks.
  virtual bool snapshot_capable() const { return false; }
};

inline void Process::save_state(ByteWriter&) const {
  throw PreconditionError(
      "this Process type does not implement save_state/restore_state — "
      "engine snapshots require every process in the spec to support "
      "checkpointing (see sim/process.hpp)");
}

inline void Process::restore_state(ByteReader&) {
  throw PreconditionError(
      "this Process type does not implement save_state/restore_state — "
      "engine snapshots require every process in the spec to support "
      "checkpointing (see sim/process.hpp)");
}

using ProcessPtr = std::unique_ptr<Process>;

}  // namespace hinet
