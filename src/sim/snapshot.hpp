// Engine checkpoints: SimSnapshot and the shared metric serializers.
//
// A SimSnapshot captures everything an Engine needs to continue a paused
// run from a round boundary: the round counter, the partially accumulated
// SimMetrics, per-node completion flags, every process's mutable state
// (token/sent sets, phase bookkeeping — via Process::save_state) and the
// channel's cross-round state (RNG stream positions, Gilbert–Elliott chain
// states — via ChannelModel::save_state).  The topology's *graphs* are
// NOT serialized: DynamicNetwork/HierarchyProvider are deterministic
// functions of the spec's seed, so the resuming caller rebuilds the spec
// (same factory, same seed) and Engine::restore re-attaches the saved
// state to it.  Streaming topologies (TraceStateSource) additionally store
// their generator state (RNG positions, synthesis frontier — a few hundred
// bytes), so a resumed run continues emitting rounds at the frontier
// instead of replaying the whole prefix (version 2 payloads).
//
// The hard guarantee, pinned by tests/sim/test_snapshot.cpp over every
// scenario × channel pair: snapshot at round r, restore into a freshly
// built identical spec, run to the end — the final SimMetrics are
// byte-identical to an uninterrupted run.
//
// On disk a snapshot travels inside the shared checksummed container
// (util/binary_io.hpp): magic, version, length, CRC-32, payload.  Any
// truncation, bit flip or version skew is rejected with a diagnostic at
// load time; the fuzz suite (tests/sim/test_snapshot_fuzz.cpp) enforces
// "rejected, never UB" byte by byte.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/metrics.hpp"
#include "util/binary_io.hpp"
#include "util/token_set.hpp"

namespace hinet {

/// A serialized engine checkpoint.  Opaque payload; produced by
/// Engine::snapshot(), consumed by Engine::restore(), persisted with
/// save_snapshot_file / load_snapshot_file.
struct SimSnapshot {
  static constexpr std::uint32_t kMagic = 0x53'4e'48'53u;  // "SHNS"
  static constexpr std::uint16_t kVersion = 2;

  std::vector<std::uint8_t> payload;

  std::size_t size_bytes() const { return payload.size(); }
};

/// Writes the snapshot inside the checksummed container format (atomic
/// write-then-rename).  Throws IoError on I/O failure.
void save_snapshot_file(const SimSnapshot& snap, const std::string& path);

/// Reads a snapshot file, validating magic, version and CRC.  Throws
/// IoError describing the exact corruption otherwise.
SimSnapshot load_snapshot_file(const std::string& path);

// Shared serializers, used by the snapshot payload, the experiment journal
// and the process save_state implementations.

/// TokenSet as universe + raw bitmap words; load validates the stored
/// universe against `expected_universe` (a mismatch means the snapshot is
/// being restored into a differently-parameterised run).
void save_token_set(ByteWriter& w, const TokenSet& s);
TokenSet load_token_set(ByteReader& r, std::size_t expected_universe);

/// Full SimMetrics, bit-exact (doubles are not stored — SimMetrics holds
/// only integral series; derived fractions are recomputed).
void save_metrics(ByteWriter& w, const SimMetrics& m);
SimMetrics load_metrics(ByteReader& r);

}  // namespace hinet
