#include "graph/interval.hpp"

#include <algorithm>
#include <numeric>

namespace hinet {

namespace {

/// Union-find with path halving; small enough to live on the stack of one
/// max_connected_window call.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }

  std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Returns true when a and b were in different components.
  bool unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[b] = a;
    return true;
  }

 private:
  std::vector<std::uint32_t> parent_;
};

}  // namespace

void IntervalRunTracker::push(const Graph& g) {
  HINET_REQUIRE(g.node_count() == n_, "pushed round changed the node set");
  const std::vector<Edge> edges = g.edges();  // sorted lexicographically
  scratch_.clear();
  scratch_.reserve(edges.size());
  // runs_ is sorted by edge and edges is sorted, so one merge pass
  // computes the new run lengths: an edge also present last round extends
  // its run, a fresh edge starts at 1, and an edge absent this round is
  // dropped (its run is broken).
  std::size_t i = 0;
  for (const Edge& e : edges) {
    while (i < runs_.size() && runs_[i].first < e) ++i;
    const bool carried = i < runs_.size() && runs_[i].first == e;
    scratch_.emplace_back(e, carried ? runs_[i].second + 1 : 1);
  }
  runs_.swap(scratch_);
  ++rounds_seen_;
}

Graph IntervalRunTracker::threshold_subgraph(std::size_t t) const {
  HINET_REQUIRE(t >= 1, "window must span at least one round");
  HINET_REQUIRE(t <= rounds_seen_, "window longer than the rounds seen");
  Graph g(n_);
  for (const auto& [e, run] : runs_) {
    if (run >= t) g.add_edge(e.u, e.v);
  }
  return g;
}

std::size_t IntervalRunTracker::max_connected_window() const {
  if (n_ <= 1) return rounds_seen_;  // vacuously connected at any length
  // Largest T with {e : run(e) >= T} connected = the bottleneck (minimum)
  // run length on a maximum spanning forest under run-length weights:
  // scan edges by descending run and union-find until one component
  // remains.  Descending order makes the threshold set grow monotonically,
  // so the run of the edge that first connects everything is exact: any
  // higher threshold excludes it, and the strictly-heavier edges alone had
  // not connected the graph yet.
  std::vector<std::pair<Edge, std::size_t>> by_run(runs_);
  std::sort(by_run.begin(), by_run.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;  // deterministic tie-break
            });
  UnionFind uf(n_);
  std::size_t components = n_;
  for (const auto& [e, run] : by_run) {
    if (uf.unite(e.u, e.v)) {
      if (--components == 1) return run;
    }
  }
  return 0;  // the last round alone is already disconnected
}

Graph stable_subgraph(DynamicNetwork& net, Round start, std::size_t t) {
  HINET_REQUIRE(t >= 1, "window must span at least one round");
  Graph acc = net.graph_at(start);
  for (std::size_t i = 1; i < t; ++i) {
    acc = Graph::intersection(acc, net.graph_at(start + i));
    if (acc.edge_count() == 0) break;  // cannot get smaller
  }
  return acc;
}

bool is_one_interval_connected(DynamicNetwork& net, std::size_t rounds) {
  for (Round r = 0; r < rounds; ++r) {
    if (!net.graph_at(r).is_connected()) return false;
  }
  return true;
}

bool is_t_interval_connected(DynamicNetwork& net, std::size_t rounds,
                             std::size_t t) {
  HINET_REQUIRE(t >= 1, "T must be >= 1");
  HINET_REQUIRE(t <= rounds, "T larger than the trace");
  IntervalRunTracker tracker(net.node_count());
  for (Round r = 0; r < rounds; ++r) {
    tracker.push(net.graph_at(r));
    if (r + 1 >= t && !tracker.threshold_subgraph(t).is_connected()) {
      return false;
    }
  }
  return true;
}

std::size_t max_interval_connectivity(DynamicNetwork& net,
                                      std::size_t rounds) {
  if (rounds == 0) return 0;
  // One forward pass: best[r] = largest T whose window ending at r has a
  // connected intersection.  T-interval connectivity then requires
  // best[r] >= T for every r >= T-1, i.e. suffix_min(best, T-1) >= T.
  std::vector<std::size_t> best(rounds);
  IntervalRunTracker tracker(net.node_count());
  for (Round r = 0; r < rounds; ++r) {
    tracker.push(net.graph_at(r));
    best[r] = tracker.max_connected_window();
    if (best[r] == 0) return 0;  // a disconnected round caps every T at 0
  }
  std::size_t answer = 0;
  std::size_t suffix_min = static_cast<std::size_t>(-1);
  for (std::size_t t = rounds; t >= 1; --t) {
    suffix_min = std::min(suffix_min, best[t - 1]);
    if (suffix_min >= t) {
      answer = t;  // every longer T already failed; the first hit is max
      break;
    }
  }
  return answer;
}

bool is_t_interval_connected_reference(DynamicNetwork& net,
                                       std::size_t rounds, std::size_t t) {
  HINET_REQUIRE(t >= 1, "T must be >= 1");
  HINET_REQUIRE(t <= rounds, "T larger than the trace");
  for (Round start = 0; start + t <= rounds; ++start) {
    if (!stable_subgraph(net, start, t).is_connected()) return false;
  }
  return true;
}

std::size_t max_interval_connectivity_reference(DynamicNetwork& net,
                                                std::size_t rounds) {
  if (rounds == 0 || !is_one_interval_connected(net, rounds)) return 0;
  // T-interval connectivity is monotone downward in T, so binary search.
  std::size_t lo = 1;       // known connected
  std::size_t hi = rounds;  // candidate upper bound
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo + 1) / 2;
    if (is_t_interval_connected_reference(net, rounds, mid)) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

}  // namespace hinet
