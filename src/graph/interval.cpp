#include "graph/interval.hpp"

namespace hinet {

Graph stable_subgraph(DynamicNetwork& net, Round start, std::size_t t) {
  HINET_REQUIRE(t >= 1, "window must span at least one round");
  Graph acc = net.graph_at(start);
  for (std::size_t i = 1; i < t; ++i) {
    acc = Graph::intersection(acc, net.graph_at(start + i));
    if (acc.edge_count() == 0) break;  // cannot get smaller
  }
  return acc;
}

bool is_one_interval_connected(DynamicNetwork& net, std::size_t rounds) {
  for (Round r = 0; r < rounds; ++r) {
    if (!net.graph_at(r).is_connected()) return false;
  }
  return true;
}

bool is_t_interval_connected(DynamicNetwork& net, std::size_t rounds,
                             std::size_t t) {
  HINET_REQUIRE(t >= 1, "T must be >= 1");
  HINET_REQUIRE(t <= rounds, "T larger than the trace");
  for (Round start = 0; start + t <= rounds; ++start) {
    if (!stable_subgraph(net, start, t).is_connected()) return false;
  }
  return true;
}

std::size_t max_interval_connectivity(DynamicNetwork& net,
                                      std::size_t rounds) {
  if (rounds == 0 || !is_one_interval_connected(net, rounds)) return 0;
  // T-interval connectivity is monotone downward in T, so binary search.
  std::size_t lo = 1;       // known connected
  std::size_t hi = rounds;  // candidate upper bound
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo + 1) / 2;
    if (is_t_interval_connected(net, rounds, mid)) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

}  // namespace hinet
