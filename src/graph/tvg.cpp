#include "graph/tvg.hpp"

#include <algorithm>
#include <queue>

namespace hinet {

Tvg::Tvg(std::size_t n, Round lifetime)
    : n_(n),
      lifetime_(lifetime),
      zeta_([](const Edge&, Round) { return std::size_t{1}; }) {
  HINET_REQUIRE(lifetime >= 1, "lifetime must be at least one round");
}

void Tvg::check_node(NodeId v) const {
  HINET_REQUIRE(v < n_, "node id out of range");
}

void Tvg::add_presence(NodeId a, NodeId b, Round start, Round end) {
  check_node(a);
  check_node(b);
  HINET_REQUIRE(start < end, "empty presence interval");
  HINET_REQUIRE(end <= lifetime_, "presence beyond the lifetime");
  auto& ivals = presence_[make_edge(a, b)];
  ivals.push_back({start, end});
  // Normalise: sort and merge overlapping / adjacent intervals.
  std::sort(ivals.begin(), ivals.end(),
            [](const PresenceInterval& x, const PresenceInterval& y) {
              return x.start < y.start;
            });
  std::vector<PresenceInterval> merged;
  for (const auto& iv : ivals) {
    if (!merged.empty() && iv.start <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, iv.end);
    } else {
      merged.push_back(iv);
    }
  }
  ivals = std::move(merged);
}

void Tvg::set_latency(Latency zeta) {
  HINET_REQUIRE(static_cast<bool>(zeta), "null latency function");
  zeta_ = std::move(zeta);
}

bool Tvg::present(NodeId a, NodeId b, Round t) const {
  check_node(a);
  check_node(b);
  if (a == b) return false;
  const auto it = presence_.find(make_edge(a, b));
  if (it == presence_.end()) return false;
  for (const auto& iv : it->second) {
    if (iv.contains(t)) return true;
    if (iv.start > t) break;
  }
  return false;
}

std::size_t Tvg::latency(NodeId a, NodeId b, Round t) const {
  check_node(a);
  check_node(b);
  return zeta_(make_edge(a, b), t);
}

std::vector<PresenceInterval> Tvg::presence_of(NodeId a, NodeId b) const {
  const auto it = presence_.find(make_edge(a, b));
  if (it == presence_.end()) return {};
  return it->second;
}

Graph Tvg::snapshot(Round t) const {
  Graph g(n_);
  for (const auto& [edge, ivals] : presence_) {
    for (const auto& iv : ivals) {
      if (iv.contains(t)) {
        g.add_edge(edge.u, edge.v);
        break;
      }
    }
  }
  return g;
}

GraphSequence Tvg::to_sequence() const {
  std::vector<Graph> rounds;
  rounds.reserve(lifetime_);
  for (Round t = 0; t < lifetime_; ++t) rounds.push_back(snapshot(t));
  return GraphSequence(std::move(rounds));
}

Tvg Tvg::from_sequence(GraphSequence& seq, std::size_t rounds) {
  HINET_REQUIRE(rounds >= 1, "need at least one round");
  Tvg tvg(seq.node_count(), rounds);
  // For each edge, find maximal runs of consecutive rounds of presence.
  std::map<Edge, Round> open;  // edge -> run start
  for (Round t = 0; t < rounds; ++t) {
    const Graph& g = seq.graph_at(t);
    // Close runs for edges that vanished.
    for (auto it = open.begin(); it != open.end();) {
      if (!g.has_edge(it->first.u, it->first.v)) {
        tvg.add_presence(it->first.u, it->first.v, it->second, t);
        it = open.erase(it);
      } else {
        ++it;
      }
    }
    for (const Edge& e : g.edges()) {
      open.try_emplace(e, t);
    }
  }
  for (const auto& [e, start] : open) {
    tvg.add_presence(e.u, e.v, start, rounds);
  }
  return tvg;
}

std::vector<Round> Tvg::foremost_arrival(NodeId source, Round start) const {
  check_node(source);
  std::vector<Round> arrival(n_, kUnreachable);
  arrival[source] = start;
  // Dijkstra-like earliest-arrival search: repeatedly settle the node with
  // the smallest known arrival and relax its temporal edges.  An edge
  // (u, v) can be taken at the first time t >= arrival[u] such that the
  // edge is present for the whole crossing [t, t + zeta).
  std::vector<char> settled(n_, 0);
  using Item = std::pair<Round, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  pq.push({start, source});
  while (!pq.empty()) {
    const auto [t_u, u] = pq.top();
    pq.pop();
    if (settled[u]) continue;
    settled[u] = 1;
    for (const auto& [edge, ivals] : presence_) {
      NodeId v;
      if (edge.u == u) {
        v = edge.v;
      } else if (edge.v == u) {
        v = edge.u;
      } else {
        continue;
      }
      if (settled[v]) continue;
      for (const auto& iv : ivals) {
        const Round depart = std::max<Round>(t_u, iv.start);
        if (depart >= iv.end || depart >= lifetime_) continue;
        const std::size_t z = zeta_(edge, depart);
        // The crossing must fit inside the presence interval and lifetime.
        if (depart + z > iv.end || depart + z > lifetime_) continue;
        const Round arrive = depart + z;
        if (arrive < arrival[v]) {
          arrival[v] = arrive;
          pq.push({arrive, v});
        }
        break;  // later intervals cannot improve the earliest departure
      }
    }
  }
  return arrival;
}

bool Tvg::reachable(NodeId source, NodeId target, Round start) const {
  check_node(target);
  return foremost_arrival(source, start)[target] != kUnreachable;
}

std::optional<Round> Tvg::temporal_eccentricity(NodeId source,
                                                Round start) const {
  const auto arrival = foremost_arrival(source, start);
  Round worst = start;
  for (Round a : arrival) {
    if (a == kUnreachable) return std::nullopt;
    worst = std::max(worst, a);
  }
  return worst - start;
}

std::optional<Round> Tvg::temporal_diameter(Round start) const {
  Round worst = 0;
  for (NodeId v = 0; v < n_; ++v) {
    const auto ecc = temporal_eccentricity(v, start);
    if (!ecc) return std::nullopt;
    worst = std::max(worst, *ecc);
  }
  return worst;
}

std::vector<std::size_t> causal_arrival(DynamicNetwork& net, NodeId source,
                                        Round start, std::size_t horizon) {
  const std::size_t n = net.node_count();
  HINET_REQUIRE(source < n, "source out of range");
  std::vector<std::size_t> arrival(n, kNeverReached);
  std::vector<char> influenced(n, 0);
  influenced[source] = 1;
  arrival[source] = 0;
  std::size_t reached = 1;
  for (std::size_t step = 1; step <= horizon && reached < n; ++step) {
    const Graph& g = net.graph_at(start + step - 1);
    std::vector<NodeId> fresh;
    for (NodeId u = 0; u < n; ++u) {
      if (!influenced[u]) continue;
      for (NodeId v : g.neighbors(u)) {
        if (!influenced[v]) fresh.push_back(v);
      }
    }
    for (NodeId v : fresh) {
      if (!influenced[v]) {
        influenced[v] = 1;
        arrival[v] = step;
        ++reached;
      }
    }
  }
  return arrival;
}

std::optional<std::size_t> dynamic_diameter(DynamicNetwork& net,
                                            std::size_t rounds) {
  const std::size_t n = net.node_count();
  if (n <= 1) return 0;
  HINET_REQUIRE(rounds >= 1, "need at least one round");

  // f(start) = rounds needed for a causal flood from the worst source
  // starting at `start` to influence everyone, within the remaining
  // horizon (kNeverReached if some flood does not complete).
  std::vector<std::size_t> f(rounds, 0);
  for (Round start = 0; start < rounds; ++start) {
    const std::size_t horizon = rounds - start;
    std::size_t local = 0;
    for (NodeId source = 0; source < n && local != kNeverReached; ++source) {
      const auto arrival = causal_arrival(net, source, start, horizon);
      for (std::size_t a : arrival) {
        if (a == kNeverReached) {
          local = kNeverReached;
          break;
        }
        local = std::max(local, a);
      }
    }
    f[start] = local;
  }

  // The trace's dynamic diameter is the smallest D such that every start
  // with a full window left (start <= rounds - D) completes within D.
  for (std::size_t d = 1; d <= rounds; ++d) {
    bool ok = true;
    for (Round start = 0; start + d <= rounds; ++start) {
      if (f[start] > d) {  // includes kNeverReached
        ok = false;
        break;
      }
    }
    if (ok) return d;
  }
  return std::nullopt;
}

}  // namespace hinet
