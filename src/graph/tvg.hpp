// Time-Varying Graph (TVG) — Casteigts, Flocchini, Quattrociocchi &
// Santoro's unifying model, which CTVG (Definition 1) extends.
//
// G = (V, E, Γ, ρ, ζ):
//   ρ : E × Γ -> {0,1}   edge presence per round
//   ζ : E × Γ -> Γ       latency: rounds needed to cross the edge when
//                         entering it at a given time
// This module provides the general model with per-edge presence intervals
// and latency, *journey* computation (time-respecting paths), and the
// derived temporal metrics the dynamic-network literature uses:
// reachability, foremost-arrival times, and the temporal diameter.
// The synchronous round model used by the dissemination algorithms is the
// special case ζ ≡ 1 with per-round presence; `to_sequence` converts.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <vector>

#include "graph/dynamic.hpp"

namespace hinet {

/// A maximal interval [start, end) during which an edge is present.
struct PresenceInterval {
  Round start = 0;
  Round end = 0;  ///< exclusive

  bool contains(Round r) const { return r >= start && r < end; }
  friend bool operator==(const PresenceInterval&,
                         const PresenceInterval&) = default;
};

class Tvg {
 public:
  /// Latency function type: rounds to cross `e` when entering at time t.
  using Latency = std::function<std::size_t(const Edge&, Round)>;

  /// Creates a TVG on n nodes with lifetime [0, lifetime) and unit latency.
  Tvg(std::size_t n, Round lifetime);

  std::size_t node_count() const { return n_; }
  Round lifetime() const { return lifetime_; }

  /// Declares `e` present during [start, end).  Overlapping intervals for
  /// the same edge are merged.
  void add_presence(NodeId a, NodeId b, Round start, Round end);

  /// Replaces the latency function (default: constant 1 round).
  void set_latency(Latency zeta);

  /// ρ(e, t): presence of the edge at time t.
  bool present(NodeId a, NodeId b, Round t) const;

  /// ζ(e, t): crossing latency entering the edge at time t.
  std::size_t latency(NodeId a, NodeId b, Round t) const;

  /// The merged presence intervals of an edge (sorted, disjoint).
  std::vector<PresenceInterval> presence_of(NodeId a, NodeId b) const;

  /// Snapshot graph at time t (the footprint of ρ(·, t)).
  Graph snapshot(Round t) const;

  /// Conversion to the synchronous round model used by the simulator:
  /// one Graph per round of the lifetime.  Requires unit latency.
  GraphSequence to_sequence() const;

  /// Builds a TVG from a round sequence (unit latency, one presence
  /// interval per maximal run of rounds containing the edge).
  static Tvg from_sequence(GraphSequence& seq, std::size_t rounds);

  /// Foremost-arrival times from `source` starting at time `start`: the
  /// earliest time each node can be reached by a journey (a sequence of
  /// edges traversed at non-decreasing times, each present for the whole
  /// crossing).  Unreachable nodes get kUnreachable.
  static constexpr Round kUnreachable = std::numeric_limits<Round>::max();
  std::vector<Round> foremost_arrival(NodeId source, Round start) const;

  /// True when a journey source -> target departing at or after `start`
  /// exists within the lifetime.
  bool reachable(NodeId source, NodeId target, Round start) const;

  /// Temporal eccentricity of `source` from time `start`: the latest
  /// foremost-arrival over all nodes, or nullopt if some node is
  /// unreachable.
  std::optional<Round> temporal_eccentricity(NodeId source, Round start) const;

  /// Temporal diameter from time `start`: max temporal eccentricity over
  /// sources, or nullopt if any pair is unreachable.
  std::optional<Round> temporal_diameter(Round start) const;

 private:
  void check_node(NodeId v) const;

  std::size_t n_;
  Round lifetime_;
  std::map<Edge, std::vector<PresenceInterval>> presence_;
  Latency zeta_;
};

/// Kuhn & Oshman's *dynamic diameter* of a round sequence: the smallest D
/// such that, from every start round within [0, rounds - D] and every
/// source, a "causal influence" flood started at the source reaches every
/// node within D rounds (one hop per round over whichever edges are
/// present).  Returns nullopt when no such D exists within the horizon.
std::optional<std::size_t> dynamic_diameter(DynamicNetwork& net,
                                            std::size_t rounds);

/// Causal-influence arrival times: round (relative to `start`) at which
/// each node is first causally influenced by `source` when flooding one
/// hop per round from `start`.  kNeverReached for nodes not reached within
/// `horizon` rounds.
inline constexpr std::size_t kNeverReached =
    std::numeric_limits<std::size_t>::max();
std::vector<std::size_t> causal_arrival(DynamicNetwork& net, NodeId source,
                                        Round start, std::size_t horizon);

}  // namespace hinet
