// Edge-Markovian Dynamic Graph (EMDG) generator, after Clementi et al.
// (PODC 2008): every potential edge evolves as an independent two-state
// Markov chain.  A missing edge is *born* with probability p per round and
// an existing edge *dies* with probability q per round.
//
// The paper names EMDG as one of the flat dynamics models its hierarchy
// should eventually extend (Section VI future work); we provide it as a
// workload for the flooding/gossip baselines and for stress testing.
#pragma once

#include "graph/dynamic.hpp"
#include "util/rng.hpp"

namespace hinet {

struct MarkovianConfig {
  std::size_t nodes = 0;
  double birth = 0.05;   ///< P(absent -> present) per round.
  double death = 0.2;    ///< P(present -> absent) per round.
  double initial = 0.1;  ///< edge density of round 0.
  std::size_t rounds = 0;
  std::uint64_t seed = 1;
};

/// Pre-generates an EMDG trace of cfg.rounds rounds.
GraphSequence make_edge_markovian_trace(const MarkovianConfig& cfg);

/// Expected stationary edge density p / (p + q) of the chain; exposed so
/// experiments can pick (p, q) pairs with a known asymptotic density.
double edge_markovian_stationary_density(double birth, double death);

}  // namespace hinet
