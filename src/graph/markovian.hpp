// Edge-Markovian Dynamic Graph (EMDG) generator, after Clementi et al.
// (PODC 2008): every potential edge evolves as an independent two-state
// Markov chain.  A missing edge is *born* with probability p per round and
// an existing edge *dies* with probability q per round.
//
// The paper names EMDG as one of the flat dynamics models its hierarchy
// should eventually extend (Section VI future work); we provide it as a
// workload for the flooding/gossip baselines and for stress testing.
#pragma once

#include "graph/dynamic.hpp"
#include "util/rng.hpp"

namespace hinet {

struct MarkovianConfig {
  std::size_t nodes = 0;
  double birth = 0.05;   ///< P(absent -> present) per round.
  double death = 0.2;    ///< P(present -> absent) per round.
  double initial = 0.1;  ///< edge density of round 0.
  std::size_t rounds = 0;
  std::uint64_t seed = 1;
};

/// Streaming EMDG provider: synthesises each round from the chain state
/// (the previous round's graph + the RNG stream) with only the ring
/// window resident.  Byte-identical, round by round, to the materialized
/// trace from make_edge_markovian_trace with the same config.
class EdgeMarkovianNetwork final : public StreamingNetwork {
 public:
  explicit EdgeMarkovianNetwork(
      const MarkovianConfig& cfg,
      std::size_t window = StreamingNetwork::kDefaultWindow);

 private:
  Graph synthesize_next() override;
  void reset_generator() override;
  void save_generator_state(ByteWriter& w) const override;
  void load_generator_state(ByteReader& r) override;

  MarkovianConfig cfg_;
  Rng rng_;
  Graph prev_;  ///< chain state: the last synthesized round
};

/// Pre-generates an EMDG trace of cfg.rounds rounds (the materialized
/// special case — O(Γ·n) resident; prefer EdgeMarkovianNetwork at scale).
GraphSequence make_edge_markovian_trace(const MarkovianConfig& cfg);

/// Expected stationary edge density p / (p + q) of the chain; exposed so
/// experiments can pick (p, q) pairs with a known asymptotic density.
double edge_markovian_stationary_density(double birth, double death);

}  // namespace hinet
