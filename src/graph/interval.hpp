// T-interval connectivity checking (Kuhn–Lynch–Oshman, STOC 2010).
//
// A dynamic graph is T-interval connected when for every window of T
// consecutive rounds there exists a *stable* connected spanning subgraph —
// equivalently, the edge-wise intersection of the window's graphs is
// connected over all nodes.  These checkers validate that generated traces
// actually provide the guarantee the algorithms' correctness proofs assume.
//
// The primary checkers are *incremental*, after Casteigts et al.
// ("Efficiently Testing T-Interval Connectivity in Dynamic Graphs"):
// instead of recomputing each window's intersection from scratch, they
// maintain per-edge run lengths — run(e, r) = number of consecutive
// rounds ending at r that contain e — across window shifts.  The
// intersection of the window of length T ending at round r is then exactly
// {e : run(e, r) >= T}, so
//   - is_t_interval_connected makes ONE forward pass over the trace
//     (O(Γ·(n+m)) total instead of O(Γ·T·m)), and
//   - max_interval_connectivity computes, per round, the largest T for
//     which the window ending there is connected (the bottleneck weight of
//     a maximum spanning forest under run-length weights) and combines the
//     per-round values in one pass — no binary search, no re-scan.
// Both consume the trace strictly forward, so they run over a streaming
// provider (StreamingNetwork) without forcing replays, which is what lets
// the assumption monitor certify traces that are never fully resident.
//
// The naive per-window forms are kept as *_reference: they are the
// executable spec the differential suite pins the incremental versions
// against.
#pragma once

#include "graph/dynamic.hpp"

namespace hinet {

/// True when every round's graph in [0, rounds) is connected
/// (1-interval connectivity).
bool is_one_interval_connected(DynamicNetwork& net, std::size_t rounds);

/// True when every window [i, i+T) within [0, rounds) has a connected
/// edge-wise intersection.  T must be >= 1 and <= rounds.  Single forward
/// pass; early-exits on the first disconnected window.
bool is_t_interval_connected(DynamicNetwork& net, std::size_t rounds,
                             std::size_t t);

/// Largest T in [1, rounds] for which the trace is T-interval connected,
/// or 0 when it is not even 1-interval connected.  Single forward pass.
std::size_t max_interval_connectivity(DynamicNetwork& net, std::size_t rounds);

/// The stable subgraph (edge-wise intersection) of the window
/// [start, start+t).
Graph stable_subgraph(DynamicNetwork& net, Round start, std::size_t t);

/// Incremental run-length tracker over a forward scan of a trace: after
/// push(g_r) for rounds 0..r, run(e) is the number of consecutive rounds
/// ending at r whose graphs all contain e, and threshold_subgraph(T) is
/// the intersection of the window of length T ending at r.  This is the
/// reusable core of the one-pass checkers, exposed so online monitors can
/// maintain window intersections over a streamed trace themselves.
class IntervalRunTracker {
 public:
  explicit IntervalRunTracker(std::size_t nodes) : n_(nodes) {}

  /// Folds round r's graph in (rounds must be pushed in order).
  void push(const Graph& g);

  std::size_t rounds_seen() const { return rounds_seen_; }

  /// Edges with run length >= t, i.e. the stable subgraph of the last
  /// t pushed rounds.  Requires 1 <= t <= rounds_seen().
  Graph threshold_subgraph(std::size_t t) const;

  /// Largest T such that the window of length T ending at the last pushed
  /// round has a connected intersection; 0 when even the last round alone
  /// is disconnected.  (For n <= 1 every window is vacuously connected,
  /// so this returns rounds_seen().)
  std::size_t max_connected_window() const;

  /// Sorted (edge, run-length) pairs of the last pushed round.
  const std::vector<std::pair<Edge, std::size_t>>& runs() const {
    return runs_;
  }

 private:
  std::size_t n_;
  std::size_t rounds_seen_ = 0;
  /// Sorted by edge; only edges present in the last pushed round appear.
  std::vector<std::pair<Edge, std::size_t>> runs_;
  std::vector<std::pair<Edge, std::size_t>> scratch_;
};

/// Reference (naive per-window) implementations: recompute every window's
/// intersection from scratch, with a binary search on top for the maximum.
/// Kept as the executable spec for the differential suite and as the
/// baseline of the certification bench — not for production use on long
/// traces.
bool is_t_interval_connected_reference(DynamicNetwork& net,
                                       std::size_t rounds, std::size_t t);
std::size_t max_interval_connectivity_reference(DynamicNetwork& net,
                                                std::size_t rounds);

}  // namespace hinet
