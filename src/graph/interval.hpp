// T-interval connectivity checking (Kuhn–Lynch–Oshman, STOC 2010).
//
// A dynamic graph is T-interval connected when for every window of T
// consecutive rounds there exists a *stable* connected spanning subgraph —
// equivalently, the edge-wise intersection of the window's graphs is
// connected over all nodes.  These checkers validate that generated traces
// actually provide the guarantee the algorithms' correctness proofs assume.
#pragma once

#include "graph/dynamic.hpp"

namespace hinet {

/// True when every round's graph in [0, rounds) is connected
/// (1-interval connectivity).
bool is_one_interval_connected(DynamicNetwork& net, std::size_t rounds);

/// True when every window [i, i+T) within [0, rounds) has a connected
/// edge-wise intersection.  T must be >= 1 and <= rounds.
bool is_t_interval_connected(DynamicNetwork& net, std::size_t rounds,
                             std::size_t t);

/// Largest T in [1, rounds] for which the trace is T-interval connected,
/// or 0 when it is not even 1-interval connected.
std::size_t max_interval_connectivity(DynamicNetwork& net, std::size_t rounds);

/// The stable subgraph (edge-wise intersection) of the window
/// [start, start+t).
Graph stable_subgraph(DynamicNetwork& net, Round start, std::size_t t);

}  // namespace hinet
