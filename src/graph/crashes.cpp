#include "graph/crashes.hpp"

#include <algorithm>

#include "util/binary_io.hpp"

namespace hinet {

namespace {

bool any_down(std::span<const CrashEvent> crashes, Round r) {
  return std::any_of(crashes.begin(), crashes.end(),
                     [r](const CrashEvent& c) { return c.down_at(r); });
}

}  // namespace

CrashedNetwork::CrashedNetwork(DynamicNetwork& base,
                               std::vector<CrashEvent> crashes)
    : base_(&base), crashes_(std::move(crashes)) {
  validate();
}

CrashedNetwork::CrashedNetwork(std::unique_ptr<DynamicNetwork> base,
                               std::vector<CrashEvent> crashes)
    : owned_(std::move(base)), base_(owned_.get()), crashes_(std::move(crashes)) {
  HINET_REQUIRE(base_ != nullptr, "CrashedNetwork needs a base network");
  validate();
}

void CrashedNetwork::validate() const {
  const std::size_t n = base_->node_count();
  for (const CrashEvent& c : crashes_) {
    HINET_REQUIRE(c.node < n, "crash node out of range");
    HINET_REQUIRE(c.recovery > c.round, "recovery must be after the crash");
  }
}

const Graph& CrashedNetwork::graph_at(Round r) {
  const Graph& base = base_->graph_at(r);
  if (!any_down(crashes_, r)) return base;  // zero-cost pass-through
  if (cache_valid_ && cache_round_ == r) return cache_;
  Graph g = base;
  for (const CrashEvent& c : crashes_) {
    if (!c.down_at(r)) continue;
    // Copy the neighbour list: remove_edge mutates it during iteration.
    const auto neigh = g.neighbors(c.node);
    const std::vector<NodeId> copy(neigh.begin(), neigh.end());
    for (NodeId u : copy) g.remove_edge(c.node, u);
  }
  cache_ = std::move(g);
  cache_round_ = r;
  cache_valid_ = true;
  return cache_;
}

void CrashedNetwork::save_trace_state(ByteWriter& w) const {
  // The decorator itself is stateless (the crash plan is construction
  // data); forward the capability to the base when it has one.
  const auto* src = dynamic_cast<const TraceStateSource*>(base_);
  w.u8(src != nullptr ? 1 : 0);
  if (src != nullptr) src->save_trace_state(w);
}

void CrashedNetwork::restore_trace_state(ByteReader& r) {
  const bool has_base = r.u8() != 0;
  auto* src = dynamic_cast<TraceStateSource*>(base_);
  if (has_base != (src != nullptr)) {
    throw IoError(
        "crash decorator state corrupt or mismatched: base network "
        "checkpoint capability differs from the snapshot's");
  }
  if (src != nullptr) src->restore_trace_state(r);
  cache_valid_ = false;
}

GraphSequence apply_crashes(DynamicNetwork& base, std::size_t rounds,
                            std::span<const CrashEvent> crashes) {
  HINET_REQUIRE(rounds >= 1, "need at least one round");
  CrashedNetwork net(base, std::vector<CrashEvent>(crashes.begin(),
                                                   crashes.end()));
  return materialize(net, rounds);
}

std::vector<NodeId> alive_nodes(std::size_t node_count, Round r,
                                std::span<const CrashEvent> crashes) {
  std::vector<char> dead(node_count, 0);
  for (const CrashEvent& c : crashes) {
    if (c.node < node_count && c.down_at(r)) dead[c.node] = 1;
  }
  std::vector<NodeId> out;
  for (NodeId v = 0; v < node_count; ++v) {
    if (!dead[v]) out.push_back(v);
  }
  return out;
}

}  // namespace hinet
