#include "graph/crashes.hpp"

#include <algorithm>

namespace hinet {

GraphSequence apply_crashes(DynamicNetwork& base, std::size_t rounds,
                            std::span<const CrashEvent> crashes) {
  HINET_REQUIRE(rounds >= 1, "need at least one round");
  const std::size_t n = base.node_count();
  for (const CrashEvent& c : crashes) {
    HINET_REQUIRE(c.node < n, "crash node out of range");
    HINET_REQUIRE(c.recovery > c.round, "recovery must be after the crash");
  }
  std::vector<Graph> out;
  out.reserve(rounds);
  for (Round r = 0; r < rounds; ++r) {
    Graph g = base.graph_at(r);
    for (const CrashEvent& c : crashes) {
      if (!c.down_at(r)) continue;
      // Copy the neighbour list: remove_edge mutates it during iteration.
      const auto neigh = g.neighbors(c.node);
      const std::vector<NodeId> copy(neigh.begin(), neigh.end());
      for (NodeId u : copy) g.remove_edge(c.node, u);
    }
    out.push_back(std::move(g));
  }
  return GraphSequence(std::move(out));
}

std::vector<NodeId> alive_nodes(std::size_t node_count, Round r,
                                std::span<const CrashEvent> crashes) {
  std::vector<char> dead(node_count, 0);
  for (const CrashEvent& c : crashes) {
    if (c.node < node_count && c.down_at(r)) dead[c.node] = 1;
  }
  std::vector<NodeId> out;
  for (NodeId v = 0; v < node_count; ++v) {
    if (!dead[v]) out.push_back(v);
  }
  return out;
}

}  // namespace hinet
