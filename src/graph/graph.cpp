#include "graph/graph.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <sstream>

namespace hinet {

Edge make_edge(NodeId a, NodeId b) {
  HINET_REQUIRE(a != b, "self-loop");
  return a < b ? Edge{a, b} : Edge{b, a};
}

Graph::Graph(std::size_t n) : adj_(n) {}

Graph::Graph(std::size_t n, const std::vector<Edge>& edges) : adj_(n) {
  for (const Edge& e : edges) add_edge(e.u, e.v);
}

void Graph::check_node(NodeId v) const {
  HINET_REQUIRE(v < adj_.size(), "node id out of range");
}

bool Graph::add_edge(NodeId a, NodeId b) {
  check_node(a);
  check_node(b);
  HINET_REQUIRE(a != b, "self-loop");
  auto& na = adj_[a];
  auto it = std::lower_bound(na.begin(), na.end(), b);
  if (it != na.end() && *it == b) return false;
  na.insert(it, b);
  auto& nb = adj_[b];
  nb.insert(std::lower_bound(nb.begin(), nb.end(), a), a);
  ++edge_count_;
  csr_valid_ = false;
  return true;
}

bool Graph::remove_edge(NodeId a, NodeId b) {
  check_node(a);
  check_node(b);
  auto& na = adj_[a];
  auto it = std::lower_bound(na.begin(), na.end(), b);
  if (it == na.end() || *it != b) return false;
  na.erase(it);
  auto& nb = adj_[b];
  nb.erase(std::lower_bound(nb.begin(), nb.end(), a));
  --edge_count_;
  csr_valid_ = false;
  return true;
}

void Graph::ensure_csr() const {
  if (csr_valid_) return;
  csr_offsets_.resize(adj_.size() + 1);
  csr_neighbors_.resize(2 * edge_count_);
  std::uint32_t cursor = 0;
  for (std::size_t v = 0; v < adj_.size(); ++v) {
    csr_offsets_[v] = cursor;
    std::copy(adj_[v].begin(), adj_[v].end(), csr_neighbors_.begin() + cursor);
    cursor += static_cast<std::uint32_t>(adj_[v].size());
  }
  csr_offsets_[adj_.size()] = cursor;
  csr_valid_ = true;
}

bool Graph::has_edge(NodeId a, NodeId b) const {
  check_node(a);
  check_node(b);
  const auto& na = adj_[a];
  return std::binary_search(na.begin(), na.end(), b);
}

std::span<const NodeId> Graph::neighbors(NodeId v) const {
  check_node(v);
  ensure_csr();
  return std::span<const NodeId>(csr_neighbors_.data() + csr_offsets_[v],
                                 csr_offsets_[v + 1] - csr_offsets_[v]);
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  out.reserve(edge_count_);
  for (NodeId u = 0; u < adj_.size(); ++u) {
    for (NodeId v : adj_[u]) {
      if (u < v) out.push_back({u, v});
    }
  }
  return out;
}

std::vector<int> Graph::distances_from(NodeId source) const {
  check_node(source);
  ensure_csr();
  std::vector<int> dist(adj_.size(), -1);
  std::queue<NodeId> q;
  dist[source] = 0;
  q.push(source);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (NodeId v : neighbors(u)) {
      if (dist[v] < 0) {
        dist[v] = dist[u] + 1;
        q.push(v);
      }
    }
  }
  return dist;
}

int Graph::distance(NodeId a, NodeId b) const {
  check_node(b);
  return distances_from(a)[b];
}

bool Graph::is_connected() const {
  if (adj_.size() <= 1) return true;
  const auto dist = distances_from(0);
  return std::all_of(dist.begin(), dist.end(), [](int d) { return d >= 0; });
}

bool Graph::is_connected_subset(std::span<const NodeId> subset) const {
  if (subset.size() <= 1) return true;
  std::vector<char> allowed(adj_.size(), 0);
  for (NodeId v : subset) {
    check_node(v);
    allowed[v] = 1;
  }
  const auto dist = restricted_distances(*this, subset.front(), allowed);
  return std::all_of(subset.begin(), subset.end(),
                     [&](NodeId v) { return dist[v] >= 0; });
}

std::vector<std::uint32_t> Graph::components() const {
  ensure_csr();
  std::vector<std::uint32_t> label(adj_.size(),
                                   std::numeric_limits<std::uint32_t>::max());
  std::uint32_t next = 0;
  std::queue<NodeId> q;
  for (NodeId s = 0; s < adj_.size(); ++s) {
    if (label[s] != std::numeric_limits<std::uint32_t>::max()) continue;
    label[s] = next;
    q.push(s);
    while (!q.empty()) {
      const NodeId u = q.front();
      q.pop();
      for (NodeId v : neighbors(u)) {
        if (label[v] == std::numeric_limits<std::uint32_t>::max()) {
          label[v] = next;
          q.push(v);
        }
      }
    }
    ++next;
  }
  return label;
}

int Graph::diameter() const {
  if (adj_.empty()) return 0;
  int best = 0;
  for (NodeId s = 0; s < adj_.size(); ++s) {
    const auto dist = distances_from(s);
    for (int d : dist) {
      if (d < 0) return -1;
      best = std::max(best, d);
    }
  }
  return best;
}

Graph Graph::intersection(const Graph& a, const Graph& b) {
  HINET_REQUIRE(a.node_count() == b.node_count(),
                "intersection of graphs with different node counts");
  Graph out(a.node_count());
  for (NodeId u = 0; u < a.adj_.size(); ++u) {
    for (NodeId v : a.adj_[u]) {
      if (u < v && b.has_edge(u, v)) out.add_edge(u, v);
    }
  }
  return out;
}

Graph Graph::union_of(const Graph& a, const Graph& b) {
  HINET_REQUIRE(a.node_count() == b.node_count(),
                "union of graphs with different node counts");
  Graph out = a;
  for (NodeId u = 0; u < b.adj_.size(); ++u) {
    for (NodeId v : b.adj_[u]) {
      if (u < v) out.add_edge(u, v);
    }
  }
  return out;
}

bool Graph::contains_subgraph(const Graph& sub) const {
  HINET_REQUIRE(node_count() == sub.node_count(),
                "subgraph test over different node counts");
  for (NodeId u = 0; u < sub.adj_.size(); ++u) {
    for (NodeId v : sub.adj_[u]) {
      if (u < v && !has_edge(u, v)) return false;
    }
  }
  return true;
}

std::string Graph::to_string() const {
  std::ostringstream os;
  os << "Graph(n=" << node_count() << ", m=" << edge_count() << ")\n";
  for (NodeId u = 0; u < adj_.size(); ++u) {
    os << "  " << u << ":";
    for (NodeId v : adj_[u]) os << ' ' << v;
    os << '\n';
  }
  return os.str();
}

std::vector<int> restricted_distances(const Graph& g, NodeId source,
                                      std::span<const char> allowed) {
  HINET_REQUIRE(allowed.size() == g.node_count(),
                "allowed mask size mismatch");
  std::vector<int> dist(g.node_count(), -1);
  if (source >= g.node_count() || !allowed[source]) return dist;
  std::queue<NodeId> q;
  dist[source] = 0;
  q.push(source);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (NodeId v : g.neighbors(u)) {
      if (allowed[v] && dist[v] < 0) {
        dist[v] = dist[u] + 1;
        q.push(v);
      }
    }
  }
  return dist;
}

}  // namespace hinet
