// Static undirected graph with the queries the dynamic-network layer needs:
// BFS distances, connectivity (whole graph and induced subsets), diameter,
// and per-round set algebra (intersection/union) used by the T-interval
// connectivity checker.
//
// Representation: two views of the same edge set.
//   - Build view: per-node sorted adjacency vectors, the mutation target of
//     add_edge/remove_edge and the haystack of has_edge binary searches.
//   - CSR view (flat offsets + one contiguous neighbour array): the primary
//     access path.  neighbors() returns a span into the flat array, so the
//     engine's delivery loop and every BFS walk contiguous memory.
// The CSR is rebuilt lazily (O(n + m)) on the first query after a
// mutation.  The rebuild mutates `mutable` cache members, so a freshly
// mutated Graph must not be queried concurrently from several threads;
// graphs are per-run-owned everywhere in this codebase (SimulationSpec
// owns its trace), which makes that a non-constraint in practice.
//
// Graphs here are small (tens to low thousands of nodes) but queried
// millions of times per experiment: membership tests are binary searches,
// neighbour iteration is O(deg) over contiguous storage.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "util/require.hpp"

namespace hinet {

/// Node identifier; nodes of an n-node graph are exactly 0..n-1.
using NodeId = std::uint32_t;

/// An undirected edge, stored with u < v.
struct Edge {
  NodeId u;
  NodeId v;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// Canonicalises an unordered pair into an Edge (u < v).
Edge make_edge(NodeId a, NodeId b);

class Graph {
 public:
  Graph() = default;

  /// Creates an edgeless graph on n nodes.
  explicit Graph(std::size_t n);

  /// Creates a graph from an edge list (duplicates are ignored).
  Graph(std::size_t n, const std::vector<Edge>& edges);

  std::size_t node_count() const { return adj_.size(); }
  std::size_t edge_count() const { return edge_count_; }

  /// Adds an undirected edge; self-loops are rejected.  Returns true when
  /// the edge was new.
  bool add_edge(NodeId a, NodeId b);

  /// Removes an edge; returns true when it was present.
  bool remove_edge(NodeId a, NodeId b);

  /// Membership test (binary search in the build view; kept for tests,
  /// checkers and set algebra — the hot delivery path iterates CSR
  /// neighbour spans instead).
  bool has_edge(NodeId a, NodeId b) const;

  /// Sorted neighbour list of v as a span into the flat CSR neighbour
  /// array.  Invalidated by any mutation of the graph.
  std::span<const NodeId> neighbors(NodeId v) const;

  std::size_t degree(NodeId v) const {
    check_node(v);
    return adj_[v].size();
  }

  /// All edges with u < v, sorted lexicographically.
  std::vector<Edge> edges() const;

  /// BFS distances from `source`; unreachable nodes get -1.
  std::vector<int> distances_from(NodeId source) const;

  /// Hop distance between two nodes, or -1 if disconnected.
  int distance(NodeId a, NodeId b) const;

  /// True when the graph is connected over all of its nodes.  An empty
  /// graph and a single-node graph are connected.
  bool is_connected() const;

  /// True when the subgraph induced by `subset` is connected (edges must
  /// stay inside the subset).  An empty subset is connected.
  bool is_connected_subset(std::span<const NodeId> subset) const;

  /// Connected-component label per node (labels are 0-based, assigned in
  /// node order).
  std::vector<std::uint32_t> components() const;

  /// Longest shortest path over the whole graph, or -1 if disconnected.
  int diameter() const;

  /// Edge-wise intersection of two graphs on the same node set.
  static Graph intersection(const Graph& a, const Graph& b);

  /// Edge-wise union of two graphs on the same node set.
  static Graph union_of(const Graph& a, const Graph& b);

  /// True when every edge of `sub` is also an edge of *this.
  bool contains_subgraph(const Graph& sub) const;

  /// Multi-line adjacency dump for examples and debugging.
  std::string to_string() const;

  friend bool operator==(const Graph& a, const Graph& b) {
    return a.adj_ == b.adj_;
  }

 private:
  void check_node(NodeId v) const;
  void ensure_csr() const;

  std::vector<std::vector<NodeId>> adj_;
  std::size_t edge_count_ = 0;

  // CSR mirror of adj_: neighbours of v live at
  // csr_neighbors_[csr_offsets_[v] .. csr_offsets_[v+1]), sorted.  Rebuilt
  // lazily after mutations; mutable so const queries can refresh it.
  mutable std::vector<std::uint32_t> csr_offsets_;
  mutable std::vector<NodeId> csr_neighbors_;
  mutable bool csr_valid_ = false;
};

/// BFS distances from `source` restricted to the subgraph induced by
/// `allowed` (a node-indexed membership mask).  Nodes outside the mask or
/// unreachable get -1.  Used to measure L-hop cluster-head connectivity
/// along backbone (head/gateway) nodes only.
std::vector<int> restricted_distances(const Graph& g, NodeId source,
                                      std::span<const char> allowed);

}  // namespace hinet
