#include "graph/dynamic.hpp"

namespace hinet {

GraphSequence::GraphSequence(std::vector<Graph> rounds)
    : rounds_(std::move(rounds)) {
  HINET_REQUIRE(!rounds_.empty(), "GraphSequence needs at least one round");
  n_ = rounds_.front().node_count();
  for (const Graph& g : rounds_) {
    HINET_REQUIRE(g.node_count() == n_,
                  "all rounds must share the same node set");
  }
}

const Graph& GraphSequence::graph_at(Round r) {
  if (r >= rounds_.size()) return rounds_.back();
  return rounds_[r];
}

GraphSequence materialize(DynamicNetwork& net, std::size_t rounds) {
  HINET_REQUIRE(rounds >= 1, "need at least one round");
  std::vector<Graph> out;
  out.reserve(rounds);
  for (Round r = 0; r < rounds; ++r) out.push_back(net.graph_at(r));
  return GraphSequence(std::move(out));
}

void GraphSequence::push_back(Graph g) {
  HINET_REQUIRE(g.node_count() == n_,
                "appended round must share the node set");
  rounds_.push_back(std::move(g));
}

}  // namespace hinet
