#include "graph/dynamic.hpp"

#include <sstream>

#include "util/binary_io.hpp"

namespace hinet {

GraphSequence::GraphSequence(std::vector<Graph> rounds)
    : rounds_(std::move(rounds)) {
  HINET_REQUIRE(!rounds_.empty(), "GraphSequence needs at least one round");
  n_ = rounds_.front().node_count();
  for (const Graph& g : rounds_) {
    HINET_REQUIRE(g.node_count() == n_,
                  "all rounds must share the same node set");
  }
}

const Graph& GraphSequence::graph_at(Round r) {
  if (r >= rounds_.size()) return rounds_.back();
  return rounds_[r];
}

void GraphSequence::push_back(Graph g) {
  HINET_REQUIRE(g.node_count() == n_,
                "appended round must share the node set");
  rounds_.push_back(std::move(g));
}

StreamingNetwork::StreamingNetwork(std::size_t nodes, std::size_t horizon,
                                   std::size_t window)
    : n_(nodes), horizon_(horizon) {
  HINET_REQUIRE(nodes >= 1, "streaming network needs nodes");
  HINET_REQUIRE(horizon >= 1, "streaming network needs at least one round");
  HINET_REQUIRE(window >= 1, "ring window must hold at least one round");
  ring_.resize(std::min(window, horizon));
}

const Graph& StreamingNetwork::graph_at(Round r) {
  // Repeat-final-round convention: the trace extends past its nominal
  // horizon by repeating the last graph (identical to GraphSequence).
  if (r >= horizon_) r = horizon_ - 1;
  return ensure(r);
}

const Graph& StreamingNetwork::ensure(Round r) {
  const std::size_t w = ring_.size();
  if (r < frontier_) {
    if (r >= resident_begin_ && r + w >= frontier_) {
      return ring_[r % w];  // still resident
    }
    // Behind the window (or behind a restore's frontier): deterministic
    // replay from round 0.  Counted so tests and tools can assert the
    // expected (forward) access pattern.
    ++rewinds_;
    reset_generator();
    frontier_ = 0;
    resident_begin_ = 0;
  }
  while (frontier_ <= r) {
    ring_[frontier_ % w] = synthesize_next();
    HINET_ENSURE(ring_[frontier_ % w].node_count() == n_,
                 "synthesized round changed the node set");
    ++frontier_;
  }
  return ring_[r % w];
}

void StreamingNetwork::save_trace_state(ByteWriter& w) const {
  w.u64(frontier_);
  ByteWriter gw;
  save_generator_state(gw);
  w.blob(gw.buffer());
}

void StreamingNetwork::restore_trace_state(ByteReader& r) {
  const std::uint64_t stored_frontier = r.u64();
  if (stored_frontier > horizon_) {
    std::ostringstream os;
    os << "streaming trace state corrupt or mismatched: stored frontier "
       << stored_frontier << " is past the provider's horizon " << horizon_;
    throw IoError(os.str());
  }
  ByteReader gr(r.blob(), "streaming generator state");
  load_generator_state(gr);
  gr.expect_done();
  // The ring is not serialized: the resume path walks forward from the
  // restored frontier (one synthesize_next per round), and any backward
  // access replays deterministically from round 0.
  frontier_ = stored_frontier;
  resident_begin_ = stored_frontier;
  for (Graph& g : ring_) g = Graph();
}

void save_graph(ByteWriter& w, const Graph& g) {
  w.u64(g.node_count());
  const auto edges = g.edges();
  w.u64(edges.size());
  for (const Edge& e : edges) {
    w.u32(e.u);
    w.u32(e.v);
  }
}

Graph load_graph(ByteReader& r, std::size_t expected_nodes) {
  const std::uint64_t n = r.u64();
  const std::uint64_t m = r.u64();
  // The caller always knows how many nodes the graph must have, and the
  // stored count is (possibly corrupt) input — checking it before Graph
  // construction keeps a flipped high bit from zero-filling gigabytes.
  if (n != expected_nodes) {
    throw IoError("serialized graph corrupt: node count mismatch");
  }
  if (m > r.remaining() / 8) {
    throw IoError("serialized graph corrupt: edge count exceeds payload");
  }
  Graph g(n);
  for (std::uint64_t i = 0; i < m; ++i) {
    const NodeId u = r.u32();
    const NodeId v = r.u32();
    if (u >= n || v >= n || u == v) {
      throw IoError("serialized graph corrupt: edge endpoint out of range");
    }
    g.add_edge(u, v);
  }
  return g;
}

std::size_t estimated_graph_bytes(std::size_t nodes, std::size_t edges) {
  // Build view: one std::vector per node (3 pointers) plus 2 directed
  // entries of 4 bytes per undirected edge; CSR mirror: (n+1) u32 offsets
  // plus 2 u32 entries per edge; Graph object overhead rounded in.
  return sizeof(Graph) + nodes * (sizeof(std::vector<NodeId>) + 4) +
         edges * 16;
}

GraphSequence materialize(DynamicNetwork& net, std::size_t rounds,
                          std::size_t byte_budget) {
  HINET_REQUIRE(rounds >= 1, "need at least one round");
  std::vector<Graph> out;
  out.reserve(rounds);
  out.push_back(net.graph_at(0));
  const std::size_t per_round =
      estimated_graph_bytes(out.front().node_count(), out.front().edge_count());
  if (per_round != 0 && rounds > byte_budget / per_round) {
    std::ostringstream os;
    os << "materialize(" << rounds << " rounds) would freeze an estimated "
       << per_round * rounds / (1024 * 1024) << " MiB (~" << per_round
       << " bytes/round at n=" << out.front().node_count()
       << "), exceeding the " << byte_budget / (1024 * 1024)
       << " MiB budget — keep the trace streaming (StreamingNetwork keeps "
       << "only a small ring resident), shorten the horizon, or pass a "
       << "larger byte_budget to freeze deliberately";
    throw PreconditionError(os.str());
  }
  for (Round r = 1; r < rounds; ++r) out.push_back(net.graph_at(r));
  return GraphSequence(std::move(out));
}

}  // namespace hinet
