// Crash-fault injection at the trace level.
//
// A crashed node keeps existing (node sets are fixed in the paper's
// models) but loses all of its links from the crash round onward — it can
// neither send nor receive.  Injecting crashes into the *topology* keeps
// every layer above (clustering maintenance, dissemination) oblivious,
// which is exactly how a real deployment experiences a died node: the
// neighbours just stop hearing it, and the hierarchy must repair itself.
#pragma once

#include <span>

#include "graph/dynamic.hpp"

namespace hinet {

struct CrashEvent {
  NodeId node = 0;
  Round round = 0;  ///< first round in which the node is gone
};

/// Returns a copy of the first `rounds` rounds of `base` with every
/// crashed node's edges removed from its crash round onward.
GraphSequence apply_crashes(DynamicNetwork& base, std::size_t rounds,
                            std::span<const CrashEvent> crashes);

/// Nodes still alive at round r under the crash plan.
std::vector<NodeId> alive_nodes(std::size_t node_count, Round r,
                                std::span<const CrashEvent> crashes);

}  // namespace hinet
