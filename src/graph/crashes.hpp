// Crash-fault injection at the trace level.
//
// A crashed node keeps existing (node sets are fixed in the paper's
// models) but loses all of its links from the crash round onward — it can
// neither send nor receive.  Injecting crashes into the *topology* keeps
// every layer above (clustering maintenance, dissemination) oblivious,
// which is exactly how a real deployment experiences a died node: the
// neighbours just stop hearing it, and the hierarchy must repair itself.
//
// A crash may carry a recovery round, modelling the rejoin churn of
// Remark 1: the node is down for [round, recovery) and regains its links
// afterwards (its process state is whatever it was — the node slept, it
// was not reset).  The default is the historical permanent crash.
#pragma once

#include <span>

#include "graph/dynamic.hpp"

namespace hinet {

/// Sentinel recovery round meaning "never recovers" (permanent crash).
inline constexpr Round kNoRecovery = static_cast<Round>(-1);

struct CrashEvent {
  NodeId node = 0;
  Round round = 0;              ///< first round in which the node is gone
  Round recovery = kNoRecovery; ///< first round back up (default: never)

  /// True when the node is down in round r under this event.
  bool down_at(Round r) const { return r >= round && r < recovery; }
};

/// Lazy crash decorator: wraps any DynamicNetwork and removes each
/// crashed node's edges on the fly.  Rounds with no crash active are
/// forwarded by reference (zero-cost); edited rounds are cached one at a
/// time, so decorating a streaming base keeps the whole stack O(W·n)
/// resident.  Checkpoint state (TraceStateSource) forwards to the base
/// when the base is itself checkpointable — the decorator holds no
/// evolving state of its own.
class CrashedNetwork final : public DynamicNetwork, public TraceStateSource {
 public:
  /// Borrowing mode: `base` must outlive the decorator.  Throws when an
  /// event names a node out of range or recovers before it crashes.
  CrashedNetwork(DynamicNetwork& base, std::vector<CrashEvent> crashes);

  /// Owning mode: the decorator keeps the base network alive.
  CrashedNetwork(std::unique_ptr<DynamicNetwork> base,
                 std::vector<CrashEvent> crashes);

  std::size_t node_count() const override { return base_->node_count(); }
  const Graph& graph_at(Round r) override;

  std::span<const CrashEvent> crashes() const { return crashes_; }

  void save_trace_state(ByteWriter& w) const override;
  void restore_trace_state(ByteReader& r) override;

 private:
  void validate() const;

  std::unique_ptr<DynamicNetwork> owned_;
  DynamicNetwork* base_;
  std::vector<CrashEvent> crashes_;

  // Single-round cache: the engine (and materialize) walk rounds in order
  // and hold each reference for the duration of one round.
  bool cache_valid_ = false;
  Round cache_round_ = 0;
  Graph cache_;
};

/// Returns a copy of the first `rounds` rounds of `base` with every
/// crashed node's edges removed while the node is down (the materialized
/// special case of CrashedNetwork; same budget guard as materialize()).
GraphSequence apply_crashes(DynamicNetwork& base, std::size_t rounds,
                            std::span<const CrashEvent> crashes);

/// Nodes up at round r under the crash plan (recovered nodes count as
/// alive again).
std::vector<NodeId> alive_nodes(std::size_t node_count, Round r,
                                std::span<const CrashEvent> crashes);

}  // namespace hinet
