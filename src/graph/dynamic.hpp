// Dynamic network abstraction: a sequence of per-round communication
// graphs over a fixed node set.
//
// This is the edge-centric "evolving graph" view (Ferreira et al.): the
// lifetime Γ is divided into synchronous rounds and round r communicates
// over graph_at(r).  Two families of providers exist:
//   - GraphSequence: the materialized special case — every round resident
//     up front (O(Γ·n) memory, free random access);
//   - StreamingNetwork: rounds synthesised on demand from per-round RNG
//     state, with only a small ring of recent rounds resident (O(W·n)
//     memory).  This is what lets the simulator reach n = 10^5+, where a
//     fully resident trace would not fit.
// materialize() converts the latter into the former as an explicit,
// budget-guarded opt-in.
#pragma once

#include <memory>
#include <vector>

#include "graph/graph.hpp"

namespace hinet {

class ByteWriter;
class ByteReader;

/// Round index within the lifetime Γ = {t0, t1, ...}.
using Round = std::size_t;

/// Read-only view of a dynamic network's topology over time.
class DynamicNetwork {
 public:
  virtual ~DynamicNetwork() = default;

  /// Number of nodes (fixed over the lifetime; the models in the paper do
  /// not add or remove nodes, only edges).
  virtual std::size_t node_count() const = 0;

  /// Communication graph in round r.  Implementations must be
  /// deterministic: repeated calls with the same r return the same graph.
  virtual const Graph& graph_at(Round r) = 0;
};

/// Checkpoint capability for trace providers whose rounds are synthesised
/// from evolving generator state (RNG streams, chain state, positions).
/// Engine::snapshot() discovers the capability via dynamic_cast and stores
/// the blob, so checkpoint/resume of a streamed run re-attaches generator
/// state instead of replaying the whole prefix.  Providers that are pure
/// functions of the round index (GraphSequence, StaticNetwork) do not need
/// it: rebuilding them from the spec's seed is already exact.
class TraceStateSource {
 public:
  virtual ~TraceStateSource() = default;

  /// Serializes everything needed to continue synthesis from the current
  /// frontier with the exact draw sequence of an uninterrupted run.
  virtual void save_trace_state(ByteWriter& w) const = 0;

  /// Re-attaches state saved by save_trace_state to a freshly built
  /// identical provider.  Throws IoError on shape mismatch.
  virtual void restore_trace_state(ByteReader& r) = 0;
};

/// Graph (de)serialization for trace-state blobs: node count + sorted edge
/// list.  load_graph requires the stored node count to equal the caller's
/// expectation (checked before any allocation, so corrupt counts cannot
/// trigger huge zero-fills) and validates edge endpoints against it.
void save_graph(ByteWriter& w, const Graph& g);
Graph load_graph(ByteReader& r, std::size_t expected_nodes);

/// A dynamic network backed by an explicit, precomputed list of rounds.
/// Rounds past the end repeat the final graph, which matches the models'
/// convention that a trace can be extended arbitrarily (and lets
/// algorithms run past a generator's nominal horizon).
class GraphSequence final : public DynamicNetwork {
 public:
  explicit GraphSequence(std::vector<Graph> rounds);

  std::size_t node_count() const override { return n_; }
  const Graph& graph_at(Round r) override;

  std::size_t round_count() const { return rounds_.size(); }
  const std::vector<Graph>& rounds() const { return rounds_; }

  /// Appends one more round (used by incremental generators and tests).
  void push_back(Graph g);

 private:
  std::vector<Graph> rounds_;
  std::size_t n_;
};

/// Base for lazily synthesised dynamic networks: a generator produces
/// round graphs in order and only the last `window` realized rounds stay
/// resident in a ring buffer.  graph_at honours the GraphSequence
/// contract exactly — including the repeat-final-round convention past the
/// nominal horizon — so streaming and materialized providers are
/// observationally interchangeable.
///
/// Access pattern and cost:
///   - forward, monotone access (the engine's round loop) is O(1) ring
///     lookups plus one synthesize_next() per new round;
///   - access behind the ring window triggers a deterministic replay from
///     round 0 (reset_generator() + re-synthesis).  Replays are counted in
///     rewinds() so tests and tools can assert the expected access
///     pattern; certification passes that need free random access should
///     materialize() first.
///
/// Derived classes implement synthesize_next()/reset_generator() (and the
/// generator-state hooks for checkpointing) and keep ALL evolving state in
/// their generator members: the base owns the ring and the frontier.
class StreamingNetwork : public DynamicNetwork, public TraceStateSource {
 public:
  /// Engine and FaultyNetwork hold a round's graph reference only for that
  /// round, but a window of 2 keeps the previous round valid as well,
  /// which sliding-window consumers (and debuggers) rely on.
  static constexpr std::size_t kDefaultWindow = 2;

  std::size_t node_count() const override { return n_; }
  const Graph& graph_at(Round r) override;

  /// Nominal horizon Γ: rounds at or past it repeat the final round's
  /// graph (same convention as GraphSequence::graph_at).
  std::size_t round_count() const { return horizon_; }

  /// Ring capacity W: how many realized rounds stay resident.
  std::size_t window() const { return ring_.size(); }

  /// Next round the generator would synthesise (realized rounds are
  /// exactly [frontier - min(frontier, W), frontier)).
  Round frontier() const { return frontier_; }

  /// Number of replays-from-zero forced by accesses behind the window.
  std::size_t rewinds() const { return rewinds_; }

  // TraceStateSource: frontier + the derived generator's state.  The ring
  // itself is NOT serialized — the first post-restore graph_at(frontier)
  // resynthesises forward, and earlier rounds replay deterministically.
  void save_trace_state(ByteWriter& w) const final;
  void restore_trace_state(ByteReader& r) final;

 protected:
  /// `horizon` is the nominal trace length Γ (>= 1); `window` the ring
  /// capacity (>= 1, clamped to the horizon).
  StreamingNetwork(std::size_t nodes, std::size_t horizon,
                   std::size_t window);

  /// Produces the graph of round frontier() and advances the generator's
  /// internal state by exactly one round.  Called with strictly
  /// monotonically increasing rounds between reset_generator() calls.
  virtual Graph synthesize_next() = 0;

  /// Rewinds the generator to its pre-round-0 state (re-seeding RNG
  /// streams, resetting chain state) so synthesis can replay from the
  /// start.  Must reproduce the original draw sequence exactly.
  virtual void reset_generator() = 0;

  /// Serializes the generator's evolving state (RNG words, chain state,
  /// positions) so a restored provider continues the exact sequence.
  virtual void save_generator_state(ByteWriter& w) const = 0;
  virtual void load_generator_state(ByteReader& r) = 0;

 private:
  const Graph& ensure(Round r);

  std::size_t n_;
  std::size_t horizon_;
  Round frontier_ = 0;
  /// First round that may be served from the ring: rounds in
  /// [max(resident_begin_, frontier_ - W), frontier_) are resident.
  /// Normally 0 (the window condition dominates); a restore sets it to the
  /// restored frontier, because the ring is not serialized.
  Round resident_begin_ = 0;
  std::size_t rewinds_ = 0;
  std::vector<Graph> ring_;  ///< slot for round r is ring_[r % window()]
};

/// Default budget for materialize(): generous enough for every in-repo
/// experiment at n <= a few thousand, small enough that an accidental
/// freeze of an n=10^5 long-horizon trace fails with a diagnostic instead
/// of OOM-ing the host.
inline constexpr std::size_t kDefaultMaterializeBudget =
    std::size_t{4} * 1024 * 1024 * 1024;

/// Estimated resident bytes of one realized round graph (adjacency
/// vectors + lazy CSR mirror) — the unit of materialize()'s budget check.
std::size_t estimated_graph_bytes(std::size_t nodes, std::size_t edges);

/// Copies the first `rounds` rounds of `net` into an explicit trace.  Used
/// to freeze the *realized* topology of a lazy or decorated network (e.g. a
/// FaultyNetwork) so it can be replayed — by the assumption monitor, by a
/// hierarchy maintainer — without re-deriving it per query.
///
/// Freezing is the explicit opt-in back into O(Γ·n) residency, so it is
/// budget-guarded: if `rounds` times the estimated footprint of the first
/// realized round exceeds `byte_budget`, a PreconditionError explains the
/// estimate and points at the streaming alternative.  Pass a larger budget
/// to override deliberately.
GraphSequence materialize(DynamicNetwork& net, std::size_t rounds,
                          std::size_t byte_budget = kDefaultMaterializeBudget);

/// A static network presented through the dynamic interface (every round
/// is the same graph) — the degenerate case used by sanity tests.
class StaticNetwork final : public DynamicNetwork {
 public:
  explicit StaticNetwork(Graph g) : g_(std::move(g)) {}

  std::size_t node_count() const override { return g_.node_count(); }
  const Graph& graph_at(Round) override { return g_; }

 private:
  Graph g_;
};

}  // namespace hinet
