// Dynamic network abstraction: a sequence of per-round communication
// graphs over a fixed node set.
//
// This is the edge-centric "evolving graph" view (Ferreira et al.): the
// lifetime Γ is divided into synchronous rounds and round r communicates
// over graph_at(r).  Generators either precompute the whole sequence
// (GraphSequence) or synthesise rounds lazily.
#pragma once

#include <memory>
#include <vector>

#include "graph/graph.hpp"

namespace hinet {

/// Round index within the lifetime Γ = {t0, t1, ...}.
using Round = std::size_t;

/// Read-only view of a dynamic network's topology over time.
class DynamicNetwork {
 public:
  virtual ~DynamicNetwork() = default;

  /// Number of nodes (fixed over the lifetime; the models in the paper do
  /// not add or remove nodes, only edges).
  virtual std::size_t node_count() const = 0;

  /// Communication graph in round r.  Implementations must be
  /// deterministic: repeated calls with the same r return the same graph.
  virtual const Graph& graph_at(Round r) = 0;
};

/// A dynamic network backed by an explicit, precomputed list of rounds.
/// Rounds past the end repeat the final graph, which matches the models'
/// convention that a trace can be extended arbitrarily (and lets
/// algorithms run past a generator's nominal horizon).
class GraphSequence final : public DynamicNetwork {
 public:
  explicit GraphSequence(std::vector<Graph> rounds);

  std::size_t node_count() const override { return n_; }
  const Graph& graph_at(Round r) override;

  std::size_t round_count() const { return rounds_.size(); }
  const std::vector<Graph>& rounds() const { return rounds_; }

  /// Appends one more round (used by incremental generators and tests).
  void push_back(Graph g);

 private:
  std::vector<Graph> rounds_;
  std::size_t n_;
};

/// Copies the first `rounds` rounds of `net` into an explicit trace.  Used
/// to freeze the *realized* topology of a lazy or decorated network (e.g. a
/// FaultyNetwork) so it can be replayed — by the assumption monitor, by a
/// hierarchy maintainer — without re-deriving it per query.
GraphSequence materialize(DynamicNetwork& net, std::size_t rounds);

/// A static network presented through the dynamic interface (every round
/// is the same graph) — the degenerate case used by sanity tests.
class StaticNetwork final : public DynamicNetwork {
 public:
  explicit StaticNetwork(Graph g) : g_(std::move(g)) {}

  std::size_t node_count() const override { return g_.node_count(); }
  const Graph& graph_at(Round) override { return g_; }

 private:
  Graph g_;
};

}  // namespace hinet
