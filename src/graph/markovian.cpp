#include "graph/markovian.hpp"

#include "util/binary_io.hpp"

namespace hinet {

EdgeMarkovianNetwork::EdgeMarkovianNetwork(const MarkovianConfig& cfg,
                                           std::size_t window)
    : StreamingNetwork(cfg.nodes, cfg.rounds, window), cfg_(cfg) {
  HINET_REQUIRE(cfg.birth >= 0.0 && cfg.birth <= 1.0, "birth outside [0,1]");
  HINET_REQUIRE(cfg.death >= 0.0 && cfg.death <= 1.0, "death outside [0,1]");
  HINET_REQUIRE(cfg.initial >= 0.0 && cfg.initial <= 1.0,
                "initial density outside [0,1]");
  reset_generator();
}

void EdgeMarkovianNetwork::reset_generator() {
  rng_.reseed(cfg_.seed);
  prev_ = Graph();
}

Graph EdgeMarkovianNetwork::synthesize_next() {
  const std::size_t n = cfg_.nodes;
  Graph next(n);
  if (frontier() == 0) {
    for (NodeId i = 0; i < n; ++i) {
      for (NodeId j = i + 1; j < n; ++j) {
        if (rng_.bernoulli(cfg_.initial)) next.add_edge(i, j);
      }
    }
  } else {
    for (NodeId i = 0; i < n; ++i) {
      for (NodeId j = i + 1; j < n; ++j) {
        const bool present = prev_.has_edge(i, j);
        const bool keep = present ? !rng_.bernoulli(cfg_.death)
                                  : rng_.bernoulli(cfg_.birth);
        if (keep) next.add_edge(i, j);
      }
    }
  }
  prev_ = next;
  return next;
}

void EdgeMarkovianNetwork::save_generator_state(ByteWriter& w) const {
  for (std::uint64_t word : rng_.state()) w.u64(word);
  save_graph(w, prev_);
}

void EdgeMarkovianNetwork::load_generator_state(ByteReader& r) {
  std::array<std::uint64_t, 4> s{};
  for (std::uint64_t& word : s) word = r.u64();
  rng_.set_state(s);
  prev_ = load_graph(r, node_count());
}

GraphSequence make_edge_markovian_trace(const MarkovianConfig& cfg) {
  HINET_REQUIRE(cfg.nodes >= 1, "EMDG needs nodes");
  HINET_REQUIRE(cfg.rounds >= 1, "trace needs at least one round");
  EdgeMarkovianNetwork net(cfg);
  return materialize(net, cfg.rounds);
}

double edge_markovian_stationary_density(double birth, double death) {
  HINET_REQUIRE(birth + death > 0.0, "degenerate chain");
  return birth / (birth + death);
}

}  // namespace hinet
