#include "graph/markovian.hpp"

namespace hinet {

GraphSequence make_edge_markovian_trace(const MarkovianConfig& cfg) {
  HINET_REQUIRE(cfg.nodes >= 1, "EMDG needs nodes");
  HINET_REQUIRE(cfg.rounds >= 1, "trace needs at least one round");
  HINET_REQUIRE(cfg.birth >= 0.0 && cfg.birth <= 1.0, "birth outside [0,1]");
  HINET_REQUIRE(cfg.death >= 0.0 && cfg.death <= 1.0, "death outside [0,1]");
  HINET_REQUIRE(cfg.initial >= 0.0 && cfg.initial <= 1.0,
                "initial density outside [0,1]");
  Rng rng(cfg.seed);

  std::vector<Graph> rounds;
  rounds.reserve(cfg.rounds);
  Graph current(cfg.nodes);
  for (NodeId i = 0; i < cfg.nodes; ++i) {
    for (NodeId j = i + 1; j < cfg.nodes; ++j) {
      if (rng.bernoulli(cfg.initial)) current.add_edge(i, j);
    }
  }
  rounds.push_back(current);
  for (Round r = 1; r < cfg.rounds; ++r) {
    Graph next(cfg.nodes);
    for (NodeId i = 0; i < cfg.nodes; ++i) {
      for (NodeId j = i + 1; j < cfg.nodes; ++j) {
        const bool present = current.has_edge(i, j);
        const bool keep = present ? !rng.bernoulli(cfg.death)
                                  : rng.bernoulli(cfg.birth);
        if (keep) next.add_edge(i, j);
      }
    }
    current = std::move(next);
    rounds.push_back(current);
  }
  return GraphSequence(std::move(rounds));
}

double edge_markovian_stationary_density(double birth, double death) {
  HINET_REQUIRE(birth + death > 0.0, "degenerate chain");
  return birth / (birth + death);
}

}  // namespace hinet
