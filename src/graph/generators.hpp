// Static graph generators: deterministic topologies plus seeded random
// families.  These are the building blocks the dynamic generators compose
// per round.
#pragma once

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace hinet {
namespace gen {

/// Path 0-1-2-...-(n-1).
Graph path(std::size_t n);

/// Cycle on n >= 3 nodes.
Graph ring(std::size_t n);

/// Star with node 0 as the hub.
Graph star(std::size_t n);

/// Complete graph K_n.
Graph complete(std::size_t n);

/// 2-D grid of rows x cols nodes (node id = r*cols + c).
Graph grid(std::size_t rows, std::size_t cols);

/// Erdős–Rényi G(n, p): every pair independently with probability p.
Graph erdos_renyi(std::size_t n, double p, Rng& rng);

/// Uniform random labelled tree on n nodes (random Prüfer sequence), the
/// canonical minimal connected spanning subgraph for adversarial traces.
Graph random_tree(std::size_t n, Rng& rng);

/// Random connected graph: random tree plus `extra_edges` additional
/// uniformly random non-tree edges (clamped to the complete graph).
Graph random_connected(std::size_t n, std::size_t extra_edges, Rng& rng);

/// Random geometric graph on the unit square: nodes at `points`, edge when
/// Euclidean distance <= radius.
struct Point2D {
  double x = 0.0;
  double y = 0.0;
};

Graph geometric(const std::vector<Point2D>& points, double radius);

/// Uniformly random points in the unit square.
std::vector<Point2D> random_points(std::size_t n, Rng& rng);

}  // namespace gen
}  // namespace hinet
