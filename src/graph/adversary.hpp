// Adversarial T-interval connected dynamic-network generator.
//
// Kuhn, Lynch & Oshman's model guarantees only that every window of T
// consecutive rounds shares a stable connected spanning subgraph; all other
// edges may appear and disappear arbitrarily.  This generator realises
// exactly that guarantee:
//   - time is cut into windows of T rounds;
//   - each window pins a fresh random spanning tree (the stable subgraph);
//   - every round additionally receives `churn_edges` uniformly random
//     edges that exist for that round only.
// With T=1 the stable tree changes every round, i.e. the 1-interval
// connected worst case the baselines are analysed under.
#pragma once

#include "graph/dynamic.hpp"
#include "util/rng.hpp"

namespace hinet {

struct AdversaryConfig {
  std::size_t nodes = 0;
  std::size_t interval = 1;      ///< T: rounds per stable window.
  std::size_t rounds = 0;        ///< nominal trace length (the horizon).
  std::size_t churn_edges = 0;   ///< per-round ephemeral random edges.
  std::uint64_t seed = 1;
};

/// Streaming T-interval-connected provider: keeps only the two backbones
/// spanning the current aligned window (plus the ring window of realized
/// rounds) resident, generating the next backbone lazily at each window
/// boundary.  Byte-identical to the materialized make_t_interval_trace /
/// make_t_interval_path_trace output — the backbone and churn RNG streams
/// are independent forks, so lazy interleaving preserves the draw order.
class TIntervalNetwork final : public StreamingNetwork {
 public:
  TIntervalNetwork(const AdversaryConfig& cfg, bool path_backbone,
                   std::size_t window = StreamingNetwork::kDefaultWindow);

 private:
  Graph synthesize_next() override;
  void reset_generator() override;
  void save_generator_state(ByteWriter& w) const override;
  void load_generator_state(ByteReader& r) override;

  AdversaryConfig cfg_;
  bool path_backbone_;
  Rng backbone_rng_;
  Rng churn_rng_;
  std::size_t cur_window_ = 0;
  Graph backbone_cur_;   ///< backbone of aligned window cur_window_
  Graph backbone_next_;  ///< backbone of aligned window cur_window_ + 1
};

/// Generates a full trace satisfying T-interval connectivity by
/// construction (the materialized special case; prefer TIntervalNetwork
/// at scale).  The returned sequence has exactly cfg.rounds rounds.
GraphSequence make_t_interval_trace(const AdversaryConfig& cfg);

/// Worst-case variant for lower-bound experiments: the stable subgraph of
/// every window is a freshly relabelled *path* (diameter n-1), which makes
/// pipelined dissemination as slow as the model allows.
GraphSequence make_t_interval_path_trace(const AdversaryConfig& cfg);

}  // namespace hinet
