#include "graph/mobility.hpp"

#include <cmath>
#include <numbers>
#include <utility>

#include "util/binary_io.hpp"

namespace hinet {

namespace {

struct WaypointState {
  gen::Point2D target;
  double speed = 0.0;
  std::size_t pause_left = 0;
};

double dist(const gen::Point2D& a, const gen::Point2D& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

void reflect_into_unit_square(double& coord, double& step) {
  if (coord < 0.0) {
    coord = -coord;
    step = -step;
  } else if (coord > 1.0) {
    coord = 2.0 - coord;
    step = -step;
  }
}

/// Manhattan state: travelling from intersection `from` to adjacent
/// intersection `to` on a streets x streets grid.
struct ManhattanState {
  std::size_t from_x = 0, from_y = 0;
  std::size_t to_x = 0, to_y = 0;
  double progress = 0.0;  ///< fraction of the street segment covered
  double speed = 0.0;     ///< segment fraction per round
};

gen::Point2D manhattan_position(const ManhattanState& s, std::size_t streets) {
  const double step = 1.0 / static_cast<double>(streets - 1);
  const double fx = static_cast<double>(s.from_x) * step;
  const double fy = static_cast<double>(s.from_y) * step;
  const double tx = static_cast<double>(s.to_x) * step;
  const double ty = static_cast<double>(s.to_y) * step;
  return {fx + (tx - fx) * s.progress, fy + (ty - fy) * s.progress};
}

void manhattan_pick_next(ManhattanState& s, std::size_t streets, Rng& rng) {
  s.from_x = s.to_x;
  s.from_y = s.to_y;
  // Adjacent intersections on the grid.
  std::vector<std::pair<std::size_t, std::size_t>> options;
  if (s.from_x > 0) options.push_back({s.from_x - 1, s.from_y});
  if (s.from_x + 1 < streets) options.push_back({s.from_x + 1, s.from_y});
  if (s.from_y > 0) options.push_back({s.from_x, s.from_y - 1});
  if (s.from_y + 1 < streets) options.push_back({s.from_x, s.from_y + 1});
  const auto pick = options[rng.below(options.size())];
  s.to_x = pick.first;
  s.to_y = pick.second;
  s.progress = 0.0;
}

void save_rng(ByteWriter& w, const Rng& rng) {
  for (std::uint64_t word : rng.state()) w.u64(word);
}

void load_rng(ByteReader& r, Rng& rng) {
  std::array<std::uint64_t, 4> s{};
  for (std::uint64_t& word : s) word = r.u64();
  rng.set_state(s);
}

}  // namespace

namespace detail {

/// Advances the mobility simulation one round at a time.  Both the
/// materialized MobilityTrace and the streaming MobilityNetwork run this
/// stepper, so their position (and hence graph) sequences are identical
/// draw for draw.
class MobilityStepper {
 public:
  explicit MobilityStepper(const MobilityConfig& cfg) : cfg_(cfg) {
    HINET_REQUIRE(cfg.nodes >= 1, "mobility needs nodes");
    HINET_REQUIRE(cfg.rounds >= 1, "trace needs at least one round");
    HINET_REQUIRE(cfg.min_speed <= cfg.max_speed, "speed range inverted");
    if (cfg.model == MobilityModel::kManhattan) {
      HINET_REQUIRE(cfg.streets >= 2, "Manhattan grid needs >= 2 streets");
    }
    reset();
  }

  void reset() {
    rng_.reseed(cfg_.seed);
    round_ = 0;
    pos_.clear();
    waypoint_.clear();
    manhattan_.clear();
  }

  /// Positions of the next round (round 0 first); advances the state.
  const std::vector<gen::Point2D>& step() {
    if (round_ == 0) {
      init_round_zero();
    } else {
      advance_one_round();
    }
    ++round_;
    return pos_;
  }

  const std::vector<gen::Point2D>& positions() const { return pos_; }

  void save_state(ByteWriter& w) const {
    save_rng(w, rng_);
    w.u64(round_);
    w.u64(pos_.size());
    for (const gen::Point2D& p : pos_) {
      w.f64(p.x);
      w.f64(p.y);
    }
    w.u64(waypoint_.size());
    for (const WaypointState& s : waypoint_) {
      w.f64(s.target.x);
      w.f64(s.target.y);
      w.f64(s.speed);
      w.u64(s.pause_left);
    }
    w.u64(manhattan_.size());
    for (const ManhattanState& s : manhattan_) {
      w.u64(s.from_x);
      w.u64(s.from_y);
      w.u64(s.to_x);
      w.u64(s.to_y);
      w.f64(s.progress);
      w.f64(s.speed);
    }
  }

  void load_state(ByteReader& r) {
    load_rng(r, rng_);
    round_ = r.u64();
    pos_.resize(check_count(r.u64(), "positions"));
    for (gen::Point2D& p : pos_) {
      p.x = check_f64(r.f64(), 1.0, "position");
      p.y = check_f64(r.f64(), 1.0, "position");
    }
    waypoint_.resize(check_count(r.u64(), "waypoint states"));
    for (WaypointState& s : waypoint_) {
      s.target.x = check_f64(r.f64(), 1.0, "waypoint target");
      s.target.y = check_f64(r.f64(), 1.0, "waypoint target");
      s.speed = check_f64(r.f64(), cfg_.max_speed, "waypoint speed");
      s.pause_left = r.u64();
    }
    // Manhattan speeds are segment fractions per round, so the legit
    // ceiling is max_speed / segment; progress stays below 1 between
    // rounds.  Bounding both here keeps the advance loop's iteration
    // count finite even for adversarial payloads.
    const double segments = static_cast<double>(cfg_.streets - 1);
    manhattan_.resize(check_count(r.u64(), "Manhattan states"));
    for (ManhattanState& s : manhattan_) {
      s.from_x = check_street(r.u64(), "Manhattan waypoint");
      s.from_y = check_street(r.u64(), "Manhattan waypoint");
      s.to_x = check_street(r.u64(), "Manhattan waypoint");
      s.to_y = check_street(r.u64(), "Manhattan waypoint");
      s.progress = check_f64(r.f64(), 1.0, "Manhattan progress");
      s.speed =
          check_f64(r.f64(), cfg_.max_speed * segments, "Manhattan speed");
    }
  }

 private:
  std::size_t check_count(std::uint64_t count, const char* what) const {
    if (count != 0 && count != cfg_.nodes) {
      throw IoError(std::string("mobility state corrupt: ") + what +
                    " count mismatches the node count");
    }
    return count;
  }

  /// Rejects NaN and values outside [0, hi] (the negated comparison is what
  /// catches NaN) so corrupt floats cannot drive unbounded movement loops.
  static double check_f64(double v, double hi, const char* what) {
    if (!(v >= 0.0 && v <= hi)) {
      throw IoError(std::string("mobility state corrupt: ") + what +
                    " out of range");
    }
    return v;
  }

  std::uint64_t check_street(std::uint64_t v, const char* what) const {
    if (v >= cfg_.streets) {
      throw IoError(std::string("mobility state corrupt: ") + what +
                    " off the grid");
    }
    return v;
  }

  void init_round_zero() {
    if (cfg_.model == MobilityModel::kManhattan) {
      manhattan_.assign(cfg_.nodes, ManhattanState{});
      pos_.resize(cfg_.nodes);
      const double segment = 1.0 / static_cast<double>(cfg_.streets - 1);
      for (std::size_t i = 0; i < cfg_.nodes; ++i) {
        manhattan_[i].to_x = rng_.below(cfg_.streets);
        manhattan_[i].to_y = rng_.below(cfg_.streets);
        // speed is expressed in unit-square distance; convert to segment
        // fraction per round.
        manhattan_[i].speed =
            rng_.uniform_real(cfg_.min_speed, cfg_.max_speed) / segment;
        manhattan_pick_next(manhattan_[i], cfg_.streets, rng_);
        pos_[i] = manhattan_position(manhattan_[i], cfg_.streets);
      }
      return;
    }
    pos_ = gen::random_points(cfg_.nodes, rng_);
    if (cfg_.model == MobilityModel::kRandomWaypoint) {
      waypoint_.assign(cfg_.nodes, WaypointState{});
      for (auto& s : waypoint_) {
        s.target = {rng_.uniform01(), rng_.uniform01()};
        s.speed = rng_.uniform_real(cfg_.min_speed, cfg_.max_speed);
      }
    }
  }

  void advance_one_round() {
    switch (cfg_.model) {
      case MobilityModel::kManhattan: {
        for (std::size_t i = 0; i < cfg_.nodes; ++i) {
          auto& s = manhattan_[i];
          s.progress += s.speed;
          while (s.progress >= 1.0) {
            const double excess = s.progress - 1.0;
            manhattan_pick_next(s, cfg_.streets, rng_);
            s.progress = excess;
          }
          pos_[i] = manhattan_position(s, cfg_.streets);
        }
        return;
      }
      case MobilityModel::kRandomWaypoint: {
        for (std::size_t i = 0; i < cfg_.nodes; ++i) {
          auto& p = pos_[i];
          auto& s = waypoint_[i];
          if (s.pause_left > 0) {
            --s.pause_left;
            continue;
          }
          const double d = dist(p, s.target);
          if (d <= s.speed) {
            p = s.target;
            s.pause_left = cfg_.pause_rounds;
            s.target = {rng_.uniform01(), rng_.uniform01()};
            s.speed = rng_.uniform_real(cfg_.min_speed, cfg_.max_speed);
          } else {
            p.x += (s.target.x - p.x) / d * s.speed;
            p.y += (s.target.y - p.y) / d * s.speed;
          }
        }
        return;
      }
      case MobilityModel::kRandomWalk: {
        for (std::size_t i = 0; i < cfg_.nodes; ++i) {
          const double step = rng_.uniform_real(cfg_.min_speed, cfg_.max_speed);
          const double angle = rng_.uniform_real(0.0, 2.0 * std::numbers::pi);
          double dx = step * std::cos(angle);
          double dy = step * std::sin(angle);
          pos_[i].x += dx;
          pos_[i].y += dy;
          reflect_into_unit_square(pos_[i].x, dx);
          reflect_into_unit_square(pos_[i].y, dy);
        }
        return;
      }
    }
  }

  MobilityConfig cfg_;
  Rng rng_;
  Round round_ = 0;  ///< next round the stepper will produce
  std::vector<gen::Point2D> pos_;
  std::vector<WaypointState> waypoint_;
  std::vector<ManhattanState> manhattan_;
};

}  // namespace detail

MobilityNetwork::MobilityNetwork(const MobilityConfig& cfg, std::size_t window)
    : StreamingNetwork(cfg.nodes, cfg.rounds, window),
      cfg_(cfg),
      stepper_(std::make_unique<detail::MobilityStepper>(cfg)) {}

MobilityNetwork::~MobilityNetwork() = default;

const std::vector<gen::Point2D>& MobilityNetwork::current_positions() const {
  return stepper_->positions();
}

Graph MobilityNetwork::synthesize_next() {
  return gen::geometric(stepper_->step(), cfg_.radius);
}

void MobilityNetwork::reset_generator() { stepper_->reset(); }

void MobilityNetwork::save_generator_state(ByteWriter& w) const {
  stepper_->save_state(w);
}

void MobilityNetwork::load_generator_state(ByteReader& r) {
  stepper_->load_state(r);
}

MobilityTrace::MobilityTrace(const MobilityConfig& cfg)
    : positions_([&] {
        detail::MobilityStepper stepper(cfg);
        std::vector<std::vector<gen::Point2D>> all;
        all.reserve(cfg.rounds);
        for (Round r = 0; r < cfg.rounds; ++r) all.push_back(stepper.step());
        return all;
      }()),
      network_([&] {
        std::vector<Graph> rounds;
        rounds.reserve(positions_.size());
        for (const auto& p : positions_) {
          rounds.push_back(gen::geometric(p, cfg.radius));
        }
        return GraphSequence(std::move(rounds));
      }()) {}

const std::vector<gen::Point2D>& MobilityTrace::positions_at(Round r) const {
  if (r >= positions_.size()) return positions_.back();
  return positions_[r];
}

}  // namespace hinet
