#include "graph/mobility.hpp"

#include <cmath>
#include <numbers>
#include <utility>

namespace hinet {

namespace {

struct WaypointState {
  gen::Point2D target;
  double speed = 0.0;
  std::size_t pause_left = 0;
};

double dist(const gen::Point2D& a, const gen::Point2D& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

void reflect_into_unit_square(double& coord, double& step) {
  if (coord < 0.0) {
    coord = -coord;
    step = -step;
  } else if (coord > 1.0) {
    coord = 2.0 - coord;
    step = -step;
  }
}

/// Manhattan state: travelling from intersection `from` to adjacent
/// intersection `to` on a streets x streets grid.
struct ManhattanState {
  std::size_t from_x = 0, from_y = 0;
  std::size_t to_x = 0, to_y = 0;
  double progress = 0.0;  ///< fraction of the street segment covered
  double speed = 0.0;     ///< segment fraction per round
};

gen::Point2D manhattan_position(const ManhattanState& s, std::size_t streets) {
  const double step = 1.0 / static_cast<double>(streets - 1);
  const double fx = static_cast<double>(s.from_x) * step;
  const double fy = static_cast<double>(s.from_y) * step;
  const double tx = static_cast<double>(s.to_x) * step;
  const double ty = static_cast<double>(s.to_y) * step;
  return {fx + (tx - fx) * s.progress, fy + (ty - fy) * s.progress};
}

void manhattan_pick_next(ManhattanState& s, std::size_t streets, Rng& rng) {
  s.from_x = s.to_x;
  s.from_y = s.to_y;
  // Adjacent intersections on the grid.
  std::vector<std::pair<std::size_t, std::size_t>> options;
  if (s.from_x > 0) options.push_back({s.from_x - 1, s.from_y});
  if (s.from_x + 1 < streets) options.push_back({s.from_x + 1, s.from_y});
  if (s.from_y > 0) options.push_back({s.from_x, s.from_y - 1});
  if (s.from_y + 1 < streets) options.push_back({s.from_x, s.from_y + 1});
  const auto pick = options[rng.below(options.size())];
  s.to_x = pick.first;
  s.to_y = pick.second;
  s.progress = 0.0;
}

std::vector<std::vector<gen::Point2D>> simulate_positions(
    const MobilityConfig& cfg, Rng& rng) {
  std::vector<std::vector<gen::Point2D>> all;
  all.reserve(cfg.rounds);

  if (cfg.model == MobilityModel::kManhattan) {
    HINET_REQUIRE(cfg.streets >= 2, "Manhattan grid needs >= 2 streets");
    const double segment = 1.0 / static_cast<double>(cfg.streets - 1);
    std::vector<ManhattanState> st(cfg.nodes);
    std::vector<gen::Point2D> pos(cfg.nodes);
    for (std::size_t i = 0; i < cfg.nodes; ++i) {
      st[i].to_x = rng.below(cfg.streets);
      st[i].to_y = rng.below(cfg.streets);
      // speed is expressed in unit-square distance; convert to segment
      // fraction per round.
      st[i].speed =
          rng.uniform_real(cfg.min_speed, cfg.max_speed) / segment;
      manhattan_pick_next(st[i], cfg.streets, rng);
      pos[i] = manhattan_position(st[i], cfg.streets);
    }
    all.push_back(pos);
    for (Round r = 1; r < cfg.rounds; ++r) {
      for (std::size_t i = 0; i < cfg.nodes; ++i) {
        st[i].progress += st[i].speed;
        while (st[i].progress >= 1.0) {
          const double excess = st[i].progress - 1.0;
          manhattan_pick_next(st[i], cfg.streets, rng);
          st[i].progress = excess;
        }
        pos[i] = manhattan_position(st[i], cfg.streets);
      }
      all.push_back(pos);
    }
    return all;
  }

  std::vector<gen::Point2D> pos = gen::random_points(cfg.nodes, rng);
  all.push_back(pos);

  if (cfg.model == MobilityModel::kRandomWaypoint) {
    std::vector<WaypointState> st(cfg.nodes);
    for (auto& s : st) {
      s.target = {rng.uniform01(), rng.uniform01()};
      s.speed = rng.uniform_real(cfg.min_speed, cfg.max_speed);
    }
    for (Round r = 1; r < cfg.rounds; ++r) {
      for (std::size_t i = 0; i < cfg.nodes; ++i) {
        auto& p = pos[i];
        auto& s = st[i];
        if (s.pause_left > 0) {
          --s.pause_left;
          continue;
        }
        const double d = dist(p, s.target);
        if (d <= s.speed) {
          p = s.target;
          s.pause_left = cfg.pause_rounds;
          s.target = {rng.uniform01(), rng.uniform01()};
          s.speed = rng.uniform_real(cfg.min_speed, cfg.max_speed);
        } else {
          p.x += (s.target.x - p.x) / d * s.speed;
          p.y += (s.target.y - p.y) / d * s.speed;
        }
      }
      all.push_back(pos);
    }
  } else {  // RandomWalk
    for (Round r = 1; r < cfg.rounds; ++r) {
      for (std::size_t i = 0; i < cfg.nodes; ++i) {
        const double step = rng.uniform_real(cfg.min_speed, cfg.max_speed);
        const double angle = rng.uniform_real(0.0, 2.0 * std::numbers::pi);
        double dx = step * std::cos(angle);
        double dy = step * std::sin(angle);
        pos[i].x += dx;
        pos[i].y += dy;
        reflect_into_unit_square(pos[i].x, dx);
        reflect_into_unit_square(pos[i].y, dy);
      }
      all.push_back(pos);
    }
  }
  return all;
}

GraphSequence induce_graphs(const std::vector<std::vector<gen::Point2D>>& pos,
                            double radius) {
  std::vector<Graph> rounds;
  rounds.reserve(pos.size());
  for (const auto& p : pos) rounds.push_back(gen::geometric(p, radius));
  return GraphSequence(std::move(rounds));
}

}  // namespace

MobilityTrace::MobilityTrace(const MobilityConfig& cfg)
    : positions_([&] {
        HINET_REQUIRE(cfg.nodes >= 1, "mobility needs nodes");
        HINET_REQUIRE(cfg.rounds >= 1, "trace needs at least one round");
        HINET_REQUIRE(cfg.min_speed <= cfg.max_speed, "speed range inverted");
        Rng rng(cfg.seed);
        return simulate_positions(cfg, rng);
      }()),
      network_(induce_graphs(positions_, cfg.radius)) {}

const std::vector<gen::Point2D>& MobilityTrace::positions_at(Round r) const {
  if (r >= positions_.size()) return positions_.back();
  return positions_[r];
}

}  // namespace hinet
