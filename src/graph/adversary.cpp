#include "graph/adversary.hpp"

#include "graph/generators.hpp"

namespace hinet {

namespace {

void add_churn(Graph& g, std::size_t churn_edges, Rng& rng) {
  const std::size_t n = g.node_count();
  if (n < 2) return;
  for (std::size_t e = 0; e < churn_edges; ++e) {
    const auto a = static_cast<NodeId>(rng.below(n));
    const auto b = static_cast<NodeId>(rng.below(n));
    if (a != b) g.add_edge(a, b);  // duplicate draws are harmless
  }
}

Graph make_backbone(std::size_t nodes, bool path_backbone, Rng& rng) {
  if (path_backbone) {
    // Random relabelled path: permute node ids along a line.  A path is
    // the worst stable subgraph the model allows (diameter n-1), which
    // makes pipelined dissemination as slow as possible.
    std::vector<NodeId> order(nodes);
    for (NodeId i = 0; i < nodes; ++i) order[i] = i;
    rng.shuffle(order);
    Graph p(nodes);
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
      p.add_edge(order[i], order[i + 1]);
    }
    return p;
  }
  return gen::random_tree(nodes, rng);
}

GraphSequence generate(const AdversaryConfig& cfg, bool path_backbone) {
  HINET_REQUIRE(cfg.nodes >= 1, "adversary needs nodes");
  HINET_REQUIRE(cfg.interval >= 1, "T must be >= 1");
  HINET_REQUIRE(cfg.rounds >= 1, "trace needs at least one round");
  Rng rng(cfg.seed);
  Rng backbone_rng = rng.fork();
  Rng churn_rng = rng.fork();

  // One backbone per aligned window of T rounds, plus one beyond the end.
  // T-interval connectivity quantifies over *sliding* windows, so a window
  // straddling two aligned windows must still share a stable connected
  // spanning subgraph.  We achieve that by giving every round of window w
  // the edges of both backbone_w and backbone_{w+1}: any sliding window
  // [i, i+T) touches at most aligned windows w and w+1, and all of its
  // rounds then contain backbone_{w+1}.
  const std::size_t windows = (cfg.rounds + cfg.interval - 1) / cfg.interval;
  std::vector<Graph> backbones;
  backbones.reserve(windows + 1);
  for (std::size_t w = 0; w <= windows; ++w) {
    backbones.push_back(make_backbone(cfg.nodes, path_backbone, backbone_rng));
  }

  std::vector<Graph> rounds;
  rounds.reserve(cfg.rounds);
  for (Round r = 0; r < cfg.rounds; ++r) {
    const std::size_t w = r / cfg.interval;
    Graph g = Graph::union_of(backbones[w], backbones[w + 1]);
    add_churn(g, cfg.churn_edges, churn_rng);
    rounds.push_back(std::move(g));
  }
  return GraphSequence(std::move(rounds));
}

}  // namespace

GraphSequence make_t_interval_trace(const AdversaryConfig& cfg) {
  return generate(cfg, /*path_backbone=*/false);
}

GraphSequence make_t_interval_path_trace(const AdversaryConfig& cfg) {
  return generate(cfg, /*path_backbone=*/true);
}

}  // namespace hinet
