#include "graph/adversary.hpp"

#include "graph/generators.hpp"
#include "util/binary_io.hpp"

namespace hinet {

namespace {

void add_churn(Graph& g, std::size_t churn_edges, Rng& rng) {
  const std::size_t n = g.node_count();
  if (n < 2) return;
  for (std::size_t e = 0; e < churn_edges; ++e) {
    const auto a = static_cast<NodeId>(rng.below(n));
    const auto b = static_cast<NodeId>(rng.below(n));
    if (a != b) g.add_edge(a, b);  // duplicate draws are harmless
  }
}

Graph make_backbone(std::size_t nodes, bool path_backbone, Rng& rng) {
  if (path_backbone) {
    // Random relabelled path: permute node ids along a line.  A path is
    // the worst stable subgraph the model allows (diameter n-1), which
    // makes pipelined dissemination as slow as possible.
    std::vector<NodeId> order(nodes);
    for (NodeId i = 0; i < nodes; ++i) order[i] = i;
    rng.shuffle(order);
    Graph p(nodes);
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
      p.add_edge(order[i], order[i + 1]);
    }
    return p;
  }
  return gen::random_tree(nodes, rng);
}

void save_rng(ByteWriter& w, const Rng& rng) {
  for (std::uint64_t word : rng.state()) w.u64(word);
}

void load_rng(ByteReader& r, Rng& rng) {
  std::array<std::uint64_t, 4> s{};
  for (std::uint64_t& word : s) word = r.u64();
  rng.set_state(s);
}

}  // namespace

TIntervalNetwork::TIntervalNetwork(const AdversaryConfig& cfg,
                                   bool path_backbone, std::size_t window)
    : StreamingNetwork(cfg.nodes, cfg.rounds, window),
      cfg_(cfg),
      path_backbone_(path_backbone) {
  HINET_REQUIRE(cfg.interval >= 1, "T must be >= 1");
  reset_generator();
}

void TIntervalNetwork::reset_generator() {
  Rng rng(cfg_.seed);
  backbone_rng_ = rng.fork();
  churn_rng_ = rng.fork();
  cur_window_ = 0;
  // One backbone per aligned window of T rounds, plus one beyond the end.
  // T-interval connectivity quantifies over *sliding* windows, so a window
  // straddling two aligned windows must still share a stable connected
  // spanning subgraph.  We achieve that by giving every round of window w
  // the edges of both backbone_w and backbone_{w+1}: any sliding window
  // [i, i+T) touches at most aligned windows w and w+1, and all of its
  // rounds then contain backbone_{w+1}.  Lazily generated: only the two
  // live backbones are ever resident.
  backbone_cur_ = make_backbone(cfg_.nodes, path_backbone_, backbone_rng_);
  backbone_next_ = make_backbone(cfg_.nodes, path_backbone_, backbone_rng_);
}

Graph TIntervalNetwork::synthesize_next() {
  const std::size_t w = frontier() / cfg_.interval;
  // Rounds are synthesised monotonically, so the window index advances by
  // at most one per call and the backbone RNG draws in exactly the eager
  // generator's order (w = 0, 1, 2, ... each drawn once).
  if (w > cur_window_) {
    backbone_cur_ = std::move(backbone_next_);
    backbone_next_ = make_backbone(cfg_.nodes, path_backbone_, backbone_rng_);
    ++cur_window_;
  }
  Graph g = Graph::union_of(backbone_cur_, backbone_next_);
  add_churn(g, cfg_.churn_edges, churn_rng_);
  return g;
}

void TIntervalNetwork::save_generator_state(ByteWriter& w) const {
  save_rng(w, backbone_rng_);
  save_rng(w, churn_rng_);
  w.u64(cur_window_);
  save_graph(w, backbone_cur_);
  save_graph(w, backbone_next_);
}

void TIntervalNetwork::load_generator_state(ByteReader& r) {
  load_rng(r, backbone_rng_);
  load_rng(r, churn_rng_);
  cur_window_ = r.u64();
  backbone_cur_ = load_graph(r, node_count());
  backbone_next_ = load_graph(r, node_count());
}

namespace {

GraphSequence generate(const AdversaryConfig& cfg, bool path_backbone) {
  HINET_REQUIRE(cfg.nodes >= 1, "adversary needs nodes");
  HINET_REQUIRE(cfg.rounds >= 1, "trace needs at least one round");
  TIntervalNetwork net(cfg, path_backbone);
  return materialize(net, cfg.rounds);
}

}  // namespace

GraphSequence make_t_interval_trace(const AdversaryConfig& cfg) {
  return generate(cfg, /*path_backbone=*/false);
}

GraphSequence make_t_interval_path_trace(const AdversaryConfig& cfg) {
  return generate(cfg, /*path_backbone=*/true);
}

}  // namespace hinet
