#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>

namespace hinet {
namespace gen {

Graph path(std::size_t n) {
  Graph g(n);
  for (NodeId i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

Graph ring(std::size_t n) {
  HINET_REQUIRE(n >= 3, "ring needs at least 3 nodes");
  Graph g = path(n);
  g.add_edge(static_cast<NodeId>(n - 1), 0);
  return g;
}

Graph star(std::size_t n) {
  HINET_REQUIRE(n >= 1, "star needs at least 1 node");
  Graph g(n);
  for (NodeId i = 1; i < n; ++i) g.add_edge(0, i);
  return g;
}

Graph complete(std::size_t n) {
  Graph g(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) g.add_edge(i, j);
  }
  return g;
}

Graph grid(std::size_t rows, std::size_t cols) {
  HINET_REQUIRE(rows >= 1 && cols >= 1, "grid needs positive dimensions");
  Graph g(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

Graph erdos_renyi(std::size_t n, double p, Rng& rng) {
  HINET_REQUIRE(p >= 0.0 && p <= 1.0, "edge probability outside [0,1]");
  Graph g(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      if (rng.bernoulli(p)) g.add_edge(i, j);
    }
  }
  return g;
}

Graph random_tree(std::size_t n, Rng& rng) {
  Graph g(n);
  if (n <= 1) return g;
  if (n == 2) {
    g.add_edge(0, 1);
    return g;
  }
  // Prüfer decoding: a length-(n-2) sequence over [0,n) maps bijectively
  // onto labelled trees, so this samples uniformly.  Standard linear-time
  // min-leaf decoding with a moving pointer.
  std::vector<NodeId> prufer(n - 2);
  for (auto& x : prufer) x = static_cast<NodeId>(rng.below(n));
  std::vector<std::size_t> deg(n, 1);
  for (NodeId x : prufer) ++deg[x];
  NodeId ptr = 0;
  while (deg[ptr] != 1) ++ptr;
  NodeId leaf = ptr;
  for (NodeId x : prufer) {
    g.add_edge(leaf, x);
    if (--deg[x] == 1 && x < ptr) {
      leaf = x;
    } else {
      ++ptr;
      while (deg[ptr] != 1) ++ptr;
      leaf = ptr;
    }
  }
  g.add_edge(leaf, static_cast<NodeId>(n - 1));
  return g;
}

Graph random_connected(std::size_t n, std::size_t extra_edges, Rng& rng) {
  Graph g = random_tree(n, rng);
  if (n < 2) return g;
  const std::size_t max_edges = n * (n - 1) / 2;
  const std::size_t target =
      std::min(max_edges, g.edge_count() + extra_edges);
  std::size_t guard = 0;
  while (g.edge_count() < target && guard < 100 * target + 100) {
    const auto a = static_cast<NodeId>(rng.below(n));
    const auto b = static_cast<NodeId>(rng.below(n));
    if (a != b) g.add_edge(a, b);
    ++guard;
  }
  return g;
}

Graph geometric(const std::vector<Point2D>& points, double radius) {
  HINET_REQUIRE(radius >= 0.0, "negative radius");
  Graph g(points.size());
  const double r2 = radius * radius;
  for (NodeId i = 0; i < points.size(); ++i) {
    for (NodeId j = i + 1; j < points.size(); ++j) {
      const double dx = points[i].x - points[j].x;
      const double dy = points[i].y - points[j].y;
      if (dx * dx + dy * dy <= r2) g.add_edge(i, j);
    }
  }
  return g;
}

std::vector<Point2D> random_points(std::size_t n, Rng& rng) {
  std::vector<Point2D> pts(n);
  for (auto& p : pts) {
    p.x = rng.uniform01();
    p.y = rng.uniform01();
  }
  return pts;
}

}  // namespace gen
}  // namespace hinet
