// Mobility-driven dynamic networks: nodes move in the unit square and the
// communication graph of each round is the random geometric graph induced
// by a transmission radius.  This is the "node mobility" source of
// dynamics the paper's introduction motivates (MANETs / WSNs).
//
// Two classic models:
//   - RandomWaypoint: pick a destination uniformly, travel towards it at a
//     per-node speed, pause, repeat.
//   - RandomWalk: each round take a step of fixed length in a uniformly
//     random direction, reflecting off the boundary.
#pragma once

#include <memory>
#include <vector>

#include "graph/dynamic.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace hinet {

enum class MobilityModel {
  kRandomWaypoint,
  kRandomWalk,
  /// Manhattan-grid mobility (after Clementi et al., "Flooding over
  /// Manhattan"): nodes move only along the streets of a regular grid,
  /// travelling between adjacent intersections and picking a random
  /// adjacent intersection at each arrival.
  kManhattan,
};

struct MobilityConfig {
  std::size_t nodes = 0;
  MobilityModel model = MobilityModel::kRandomWaypoint;
  double radius = 0.25;      ///< communication radius in the unit square.
  double min_speed = 0.005;  ///< per-round travel distance lower bound.
  double max_speed = 0.02;   ///< per-round travel distance upper bound.
  std::size_t pause_rounds = 0;  ///< waypoint pause length.
  std::size_t streets = 5;   ///< Manhattan: streets per axis (>= 2).
  std::size_t rounds = 0;
  std::uint64_t seed = 1;
};

namespace detail {
class MobilityStepper;
}  // namespace detail

/// Streaming mobility provider: advances node positions one round at a
/// time and induces each round's geometric graph on demand, so only the
/// ring window (and one position vector) is ever resident.  Byte-identical
/// to MobilityTrace::network() for the same config.
class MobilityNetwork final : public StreamingNetwork {
 public:
  explicit MobilityNetwork(
      const MobilityConfig& cfg,
      std::size_t window = StreamingNetwork::kDefaultWindow);
  ~MobilityNetwork() override;

  /// Node positions of the most recently synthesized round (the mobility
  /// state the next round evolves from).
  const std::vector<gen::Point2D>& current_positions() const;

 private:
  Graph synthesize_next() override;
  void reset_generator() override;
  void save_generator_state(ByteWriter& w) const override;
  void load_generator_state(ByteReader& r) override;

  MobilityConfig cfg_;
  std::unique_ptr<detail::MobilityStepper> stepper_;
};

/// A mobility trace: positions per round plus the induced graphs (the
/// materialized special case — all rounds resident; prefer MobilityNetwork
/// at scale, which shares the same position stepper).
class MobilityTrace {
 public:
  explicit MobilityTrace(const MobilityConfig& cfg);

  const GraphSequence& network() const { return network_; }
  GraphSequence& network() { return network_; }

  /// Node positions in round r (r clamped to the final round).
  const std::vector<gen::Point2D>& positions_at(Round r) const;

  std::size_t round_count() const { return positions_.size(); }

 private:
  std::vector<std::vector<gen::Point2D>> positions_;
  GraphSequence network_;
};

}  // namespace hinet
