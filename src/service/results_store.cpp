#include "service/results_store.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "sim/snapshot.hpp"
#include "util/require.hpp"

namespace hinet {

namespace {

// WAL record kinds.  A v2 record is {u8 kind, u64 job hash, u64 fencing
// token} (token 0 = unfenced publish).
constexpr std::uint8_t kWalIntent = 1;
constexpr std::uint8_t kWalCommit = 2;
constexpr std::uint8_t kWalRollback = 3;

std::vector<std::uint8_t> wal_record(std::uint8_t kind, std::uint64_t hash,
                                     std::uint64_t token) {
  ByteWriter w;
  w.u8(kind);
  w.u64(hash);
  w.u64(token);
  return w.take();
}

std::string hash_hex(std::uint64_t hash) {
  std::ostringstream os;
  os << std::hex;
  for (int shift = 60; shift >= 0; shift -= 4) {
    os << ((hash >> shift) & 0xFu);
  }
  return os.str();
}

bool file_exists(const std::string& path) {
  struct ::stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

ResultsStore::ResultsStore(std::string dir, StoreOptions options)
    : dir_(std::move(dir)), options_(std::move(options)) {
  HINET_REQUIRE(!dir_.empty(), "results store needs a directory path");
  if (options_.read_only) {
    // Observe only: no directory creation, no locks, no WAL, no recovery.
    entries_ = read_index_from_disk();
    return;
  }
  if (::mkdir(dir_.c_str(), 0755) != 0 && errno != EEXIST) {
    throw IoError("cannot create results-store directory " + dir_ + ": " +
                  std::strerror(errno));
  }
  recover();
}

std::map<std::uint64_t, ResultsStore::Entry>
ResultsStore::read_index_from_disk() const {
  // All-or-nothing: the index is rename-atomic, so corruption is real
  // corruption, not a crash artifact — refuse loudly.
  std::map<std::uint64_t, Entry> entries;
  const std::string index_path = dir_ + "/index.hix";
  if (!file_exists(index_path)) return entries;
  const std::vector<std::uint8_t> payload = read_checksummed_file(
      index_path, kIndexMagic, kIndexVersion, "results-store index");
  ByteReader r(payload, "results-store index payload");
  const std::uint64_t count = r.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t hash = r.u64();
    const auto spec_bytes = r.blob();
    entries.insert_or_assign(hash,
                             Entry{{spec_bytes.begin(), spec_bytes.end()}});
  }
  r.expect_done();
  return entries;
}

void ResultsStore::recover() {
  // The whole sequence — index load, WAL replay, intent resolution,
  // compaction — is one critical section: concurrent opens serialize, and
  // a publisher mid-stage cannot interleave with the resolution of its
  // own intent (its lease blocks us; see below).
  const ScopedFlock section(lock_path());
  entries_ = read_index_from_disk();

  FramedLog wal(wal_path(), kWalMagic, kWalVersion, kWalRecordMagic,
                "results-store WAL", FramedLog::Access::kWait);
  counters_.salvaged_wal_bytes = wal.dropped_bytes();

  // An intent with no commit/rollback after it is an interrupted publish.
  // (Hashes repeat across re-publish-after-rollback cycles, so resolve by
  // the *latest* record per hash.)
  struct LastRecord {
    std::uint8_t kind = 0;
    std::uint64_t token = 0;
  };
  std::map<std::uint64_t, LastRecord> last;
  for (const std::vector<std::uint8_t>& rec : wal.records()) {
    ByteReader r(rec, "results-store WAL record");
    const std::uint8_t kind = r.u8();
    const std::uint64_t hash = r.u64();
    const std::uint64_t token = r.u64();
    r.expect_done();
    if (kind != kWalIntent && kind != kWalCommit && kind != kWalRollback) {
      std::ostringstream os;
      os << "results-store WAL record has unknown kind "
         << static_cast<unsigned>(kind) << " — the WAL is corrupt";
      throw IoError(os.str());
    }
    last[hash] = LastRecord{kind, token};
  }

  std::vector<std::vector<std::uint8_t>> keep;
  for (const auto& [hash, rec] : last) {
    if (rec.kind != kWalIntent) continue;

    // Resolving an intent while its publisher is still alive would race
    // its remaining stages (we might roll back a segment it is about to
    // index).  Winning the job's lease settles it: either nobody holds
    // the lease (the publisher is dead, or done and late releasing) and
    // winning fences out any zombie via the token bump, or the holder is
    // alive — leave the intent in the WAL for it (or a later recovery).
    std::optional<LeaseLock> guard;
    if (options_.try_lease) {
      guard = options_.try_lease(hash);
      if (!guard.has_value()) {
        keep.push_back(wal_record(kWalIntent, hash, rec.token));
        continue;
      }
    }

    // The segment is rename-atomic: if it exists and validates, the
    // publish was fully durable — roll forward.  Anything else (absent,
    // truncated, corrupt) rolls back to a clean miss.
    bool segment_ok = false;
    const auto it = entries_.find(hash);
    try {
      const std::vector<std::uint8_t> expect =
          it != entries_.end() ? it->second.spec_bytes
                               : std::vector<std::uint8_t>{};
      const StoredResult result = load_segment(hash, expect);
      segment_ok = true;
      if (it == entries_.end()) {
        entries_.insert_or_assign(hash,
                                  Entry{result.spec.canonical_bytes()});
        write_index(entries_);
      }
    } catch (const IoError&) {
      segment_ok = false;
    }

    if (segment_ok) {
      wal.append(wal_record(kWalCommit, hash, rec.token));
      ++counters_.recovered_commits;
    } else {
      if (it != entries_.end()) {
        entries_.erase(hash);
        write_index(entries_);
      }
      std::remove(segment_path(hash).c_str());
      wal.append(wal_record(kWalRollback, hash, rec.token));
      ++counters_.rolled_back_intents;
    }
    if (guard.has_value()) guard->release();
  }

  // Compact the WAL down to the intents we deliberately left unresolved
  // (live publishers), so it cannot grow without bound across restarts.
  // (Crash-safe: compaction is itself write-then-rename, and an old WAL
  // full of resolved intents replays to the same state.)
  wal.compact(keep);

  // Dead publishers' in-flight temp files (unique-named, pid-tagged) are
  // litter now; live publishers' temps are left strictly alone.
  counters_.orphan_temps_removed = remove_orphan_temp_files(dir_);
}

void ResultsStore::write_index(
    const std::map<std::uint64_t, Entry>& entries) const {
  ByteWriter payload;
  payload.u64(entries.size());
  for (const auto& [hash, entry] : entries) {
    payload.u64(hash);
    payload.blob(entry.spec_bytes);
  }
  write_checksummed_file(dir_ + "/index.hix", kIndexMagic, kIndexVersion,
                         payload.buffer());
}

void ResultsStore::refresh() {
  check_not_poisoned();
  entries_ = read_index_from_disk();
}

void ResultsStore::require_writable(const char* action) const {
  if (options_.read_only) {
    throw PreconditionError(std::string("cannot ") + action +
                            ": the results store at " + dir_ +
                            " was opened read-only");
  }
}

void ResultsStore::check_not_poisoned() const {
  if (poisoned_) {
    throw IoError(
        "results store at " + dir_ +
        " is poisoned by an interrupted publish — reopen it to recover");
  }
}

std::string ResultsStore::segment_path(std::uint64_t hash) const {
  return dir_ + "/seg-" + hash_hex(hash) + ".hseg";
}

bool ResultsStore::contains(const JobSpec& spec) const {
  const auto it = entries_.find(spec.content_hash());
  return it != entries_.end() &&
         it->second.spec_bytes == spec.canonical_bytes();
}

bool ResultsStore::contains_hash(std::uint64_t hash) const {
  return entries_.find(hash) != entries_.end();
}

std::vector<JobSpec> ResultsStore::entries() const {
  std::vector<JobSpec> out;
  out.reserve(entries_.size());
  for (const auto& [hash, entry] : entries_) {
    ByteReader r(entry.spec_bytes, "results-store index entry");
    out.push_back(decode_job_spec(r));
  }
  return out;
}

StoredResult ResultsStore::load_segment(
    std::uint64_t hash, const std::vector<std::uint8_t>& expect_spec) const {
  const std::string path = segment_path(hash);
  const std::vector<std::uint8_t> payload = read_checksummed_file(
      path, kSegmentMagic, kSegmentVersion, "results-store segment");
  ByteReader r(payload, "results-store segment payload (" + path + ")");

  const auto spec_bytes = r.blob();
  StoredResult result;
  {
    ByteReader sr(spec_bytes, "results-store segment spec");
    result.spec = decode_job_spec(sr);
    sr.expect_done();
  }
  if (result.spec.content_hash() != hash) {
    throw IoError("results-store segment " + path +
                  " embeds a spec whose content hash differs from its "
                  "filename — the segment is corrupt or misplaced");
  }
  if (!expect_spec.empty() &&
      !std::equal(spec_bytes.begin(), spec_bytes.end(), expect_spec.begin(),
                  expect_spec.end())) {
    throw IoError("results-store segment " + path +
                  " embeds a different job spec than the index records for "
                  "this hash — refusing to serve a mismatched result");
  }

  // Column sections: seeds, wall times, per-replicate metrics.
  const std::vector<std::uint64_t> seeds = r.vec_u64();
  const std::uint64_t reps = r.u64();
  if (reps != result.spec.repetitions || seeds.size() != reps) {
    std::ostringstream os;
    os << "results-store segment " << path << " declares " << reps
       << " replicate(s) and " << seeds.size() << " seed(s) but its spec "
       << "asks for " << result.spec.repetitions
       << " — the segment is torn or mismatched";
    throw IoError(os.str());
  }
  result.replicates.reserve(reps);
  for (std::uint64_t i = 0; i < reps; ++i) {
    const std::uint64_t expect_seed =
        replicate_seed(result.spec.base_seed, i);
    if (seeds[i] != expect_seed) {
      std::ostringstream os;
      os << "results-store segment " << path << " stores seed " << seeds[i]
         << " for replicate " << i << " (expected " << expect_seed << ")";
      throw IoError(os.str());
    }
    ReplicateResult rep;
    rep.wall_ms = r.f64();
    const auto metrics_bytes = r.blob();
    ByteReader mr(metrics_bytes, "results-store segment metrics");
    rep.metrics = load_metrics(mr);
    mr.expect_done();
    result.replicates.push_back(std::move(rep));
  }
  r.expect_done();
  return result;
}

std::optional<StoredResult> ResultsStore::load(const JobSpec& spec) {
  check_not_poisoned();
  const std::uint64_t hash = spec.content_hash();
  const auto it = entries_.find(hash);
  if (it == entries_.end() ||
      it->second.spec_bytes != spec.canonical_bytes()) {
    ++counters_.misses;
    return std::nullopt;
  }
  StoredResult result = load_segment(hash, it->second.spec_bytes);
  ++counters_.hits;
  return result;
}

std::optional<StoredResult> ResultsStore::load_hash(std::uint64_t hash) {
  check_not_poisoned();
  const auto it = entries_.find(hash);
  if (it == entries_.end()) {
    ++counters_.misses;
    return std::nullopt;
  }
  StoredResult result = load_segment(hash, it->second.spec_bytes);
  ++counters_.hits;
  return result;
}

namespace {

/// The commit-time fencing check: the lease file must still carry the
/// writer's token.  Runs before *every* durable stage — a zombie drainer
/// is stopped at the first stage it reaches after losing its lease.
void check_fencing(const Fencing* fencing, const std::string& dir) {
  if (fencing == nullptr || fencing->leases == nullptr) return;
  if (!fencing->leases->validate(fencing->resource, fencing->token)) {
    std::ostringstream os;
    os << "stale lease: the lock for " << fencing->resource << " in " << dir
       << " no longer carries fencing token " << fencing->token
       << " — a successor took the job over; this writer must stop "
          "(the successor's publish supersedes this one)";
    throw StaleLeaseError(os.str());
  }
}

}  // namespace

void ResultsStore::publish(const JobSpec& spec,
                           const std::vector<ReplicateResult>& replicates) {
  publish(spec, replicates, nullptr);
}

void ResultsStore::publish(const JobSpec& spec,
                           const std::vector<ReplicateResult>& replicates,
                           const Fencing* fencing) {
  check_not_poisoned();
  require_writable("publish");
  HINET_REQUIRE(replicates.size() == spec.repetitions,
                "publish needs exactly spec.repetitions replicate results "
                "in index order — partial batches are journaled for resume, "
                "never published");
  const std::uint64_t hash = spec.content_hash();
  const std::vector<std::uint8_t> spec_bytes = spec.canonical_bytes();
  // Fencing first: a zombie whose successor already published this very
  // job must hear "stale lease" (transient, expected, handled), not trip
  // the already-published precondition below.
  check_fencing(fencing, dir_);
  // Check against *fresh* disk state: another drainer may have published
  // since this handle last read the index.
  entries_ = read_index_from_disk();
  const auto it = entries_.find(hash);
  if (it != entries_.end()) {
    if (it->second.spec_bytes == spec_bytes) {
      throw PreconditionError(
          "job is already published — check contains() first; a stored job "
          "is a cache hit, never re-executed or re-published");
    }
    throw IoError("content-hash collision: a different job spec is already "
                  "stored under hash " + hash_hex(hash) +
                  " — refusing to alias two jobs onto one result");
  }

  poisoned_ = true;  // cleared only when every stage lands

  // Every commit hook fires *outside* the store's critical section so a
  // fault-injection hook (or the in-process torture harness re-entering
  // another drainer) can never deadlock against the flock.

  // Stage 1: durable intent.  From here recovery owns this hash until a
  // commit or rollback resolves it.  The WAL is opened transiently under
  // the store lock: lock, append, close — no process monopolizes it.
  check_fencing(fencing, dir_);
  {
    const ScopedFlock section(lock_path());
    FramedLog wal(wal_path(), kWalMagic, kWalVersion, kWalRecordMagic,
                  "results-store WAL", FramedLog::Access::kWait);
    wal.append(wal_record(kWalIntent, hash,
                          fencing != nullptr ? fencing->token : 0));
  }
  if (commit_hook_) commit_hook_(CommitStage::kIntentLogged);

  // Stage 2: segment (atomic write + directory fsync via
  // write_checksummed_file; the temp name is per-process-unique, so no
  // lock is needed — the final rename targets a content-addressed name).
  check_fencing(fencing, dir_);
  ByteWriter payload;
  payload.blob(spec_bytes);
  std::vector<std::uint64_t> seeds;
  seeds.reserve(replicates.size());
  for (std::size_t i = 0; i < replicates.size(); ++i) {
    seeds.push_back(replicate_seed(spec.base_seed, i));
  }
  payload.vec_u64(seeds);
  payload.u64(replicates.size());
  for (const ReplicateResult& rep : replicates) {
    payload.f64(rep.wall_ms);
    ByteWriter metrics;
    save_metrics(metrics, rep.metrics);
    payload.blob(metrics.buffer());
  }
  write_checksummed_file(segment_path(hash), kSegmentMagic, kSegmentVersion,
                         payload.buffer());
  if (commit_hook_) commit_hook_(CommitStage::kSegmentWritten);

  // Stage 3: index.  Merged, not blind-rewritten: re-read the on-disk
  // index under the lock, add this entry, rename the merged file into
  // place — a concurrent publisher of a different job cannot be lost.
  check_fencing(fencing, dir_);
  {
    const ScopedFlock section(lock_path());
    std::map<std::uint64_t, Entry> disk = read_index_from_disk();
    const auto existing = disk.find(hash);
    if (existing != disk.end() &&
        existing->second.spec_bytes != spec_bytes) {
      throw IoError("content-hash collision: a different job spec landed "
                    "under hash " + hash_hex(hash) +
                    " while this publish was in flight");
    }
    disk.insert_or_assign(hash, Entry{spec_bytes});
    write_index(disk);
    entries_ = std::move(disk);
  }
  if (commit_hook_) commit_hook_(CommitStage::kIndexPublished);

  // Stage 4: commit marker — recovery no longer needs to look at this
  // publish.
  check_fencing(fencing, dir_);
  {
    const ScopedFlock section(lock_path());
    FramedLog wal(wal_path(), kWalMagic, kWalVersion, kWalRecordMagic,
                  "results-store WAL", FramedLog::Access::kWait);
    wal.append(wal_record(kWalCommit, hash,
                          fencing != nullptr ? fencing->token : 0));
  }
  if (commit_hook_) commit_hook_(CommitStage::kCommitLogged);

  poisoned_ = false;
}

}  // namespace hinet
