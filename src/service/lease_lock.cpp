#include "service/lease_lock.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string_view>

#include "util/require.hpp"

namespace hinet {

namespace {

std::string errno_detail(const std::string& what, const std::string& path) {
  std::ostringstream os;
  os << what << " " << path << ": " << std::strerror(errno);
  return os.str();
}

std::uint64_t wall_clock_ms() {
  // Leases are compared across processes, so this must be the wall clock,
  // not a per-process steady clock.  Tests inject a fake clock instead.
  // detlint-allow(banned-time): lease expiry is inherently wall-clock state
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(now).count());
}

std::vector<std::uint8_t> encode_lease(const LeaseInfo& info) {
  ByteWriter w;
  const std::span<const std::uint8_t> owner_bytes(
      reinterpret_cast<const std::uint8_t*>(info.owner.data()),
      info.owner.size());
  w.blob(owner_bytes);
  w.u64(info.token);
  w.u64(info.expiry_ms);
  return w.take();
}

LeaseInfo decode_lease(std::span<const std::uint8_t> payload) {
  ByteReader r(payload, "lease record");
  const auto owner_bytes = r.blob();
  LeaseInfo info;
  info.owner.assign(owner_bytes.begin(), owner_bytes.end());
  info.token = r.u64();
  info.expiry_ms = r.u64();
  r.expect_done();
  return info;
}

enum class LeaseRead { kOk, kMissing, kUnreadable };

/// Reads the lease file, distinguishing "no lease" (kMissing) from "a
/// file exists but does not parse" (kUnreadable — the window between a
/// winner's O_EXCL create and its record write, or real corruption).
LeaseRead read_lease_file(const std::string& path, LeaseInfo& out) {
  struct ::stat st {};
  if (::stat(path.c_str(), &st) != 0) {
    if (errno == ENOENT) return LeaseRead::kMissing;
    throw IoError(errno_detail("cannot stat lease file", path));
  }
  try {
    const std::vector<std::uint8_t> payload = read_checksummed_file(
        path, LeaseManager::kLeaseMagic, LeaseManager::kLeaseVersion,
        "lease");
    out = decode_lease(payload);
    return LeaseRead::kOk;
  } catch (const IoError&) {
    return LeaseRead::kUnreadable;
  }
}

std::uint64_t file_mtime_ms(const std::string& path) {
  struct ::stat st {};
  if (::stat(path.c_str(), &st) != 0) return 0;
  return static_cast<std::uint64_t>(st.st_mtim.tv_sec) * 1000u +
         static_cast<std::uint64_t>(st.st_mtim.tv_nsec) / 1000000u;
}

}  // namespace

// ── LeaseLock ───────────────────────────────────────────────────────────

struct LeaseLock::State {
  std::string path;       ///< the .lease file
  std::string name;
  std::string owner;
  std::uint64_t token = 0;
  std::uint64_t lease_ms = 0;
  LeaseClock now_ms;
  std::mutex mu;          ///< renew() is called from worker threads
  bool held = false;
};

LeaseLock::LeaseLock(std::unique_ptr<State> state)
    : state_(std::move(state)) {}

LeaseLock::LeaseLock(LeaseLock&&) noexcept = default;

LeaseLock& LeaseLock::operator=(LeaseLock&& other) noexcept {
  if (this != &other && state_ != nullptr && state_->held) {
    try {
      release();  // don't leak a held lease when assigned over
    } catch (...) {
    }
  }
  state_ = std::move(other.state_);
  return *this;
}

LeaseLock::~LeaseLock() {
  if (state_ == nullptr || !state_->held) return;
  try {
    release();
  } catch (...) {
    // Destructor cleanup is best-effort; an unreleased lease simply
    // expires and is taken over.
  }
}

const std::string& LeaseLock::name() const { return state_->name; }
std::uint64_t LeaseLock::token() const { return state_->token; }

bool LeaseLock::held() const {
  const std::lock_guard<std::mutex> lock(state_->mu);
  return state_->held;
}

bool LeaseLock::renew() {
  const std::lock_guard<std::mutex> lock(state_->mu);
  if (!state_->held) return false;
  LeaseInfo info;
  if (read_lease_file(state_->path, info) != LeaseRead::kOk ||
      info.token != state_->token || info.owner != state_->owner) {
    // Taken over (or released behind our back): the token in the file is
    // not ours anymore.  Ownership loss is permanent by design.
    state_->held = false;
    return false;
  }
  info.expiry_ms = state_->now_ms() + state_->lease_ms;
  write_checksummed_file(state_->path, LeaseManager::kLeaseMagic,
                         LeaseManager::kLeaseVersion, encode_lease(info));
  return true;
}

void LeaseLock::release() {
  const std::lock_guard<std::mutex> lock(state_->mu);
  if (!state_->held) return;
  state_->held = false;
  LeaseInfo info;
  if (read_lease_file(state_->path, info) != LeaseRead::kOk ||
      info.token != state_->token) {
    return;  // taken over already — the successor owns the file now
  }
  if (::unlink(state_->path.c_str()) != 0 && errno != ENOENT) {
    throw IoError(errno_detail("cannot release lease", state_->path));
  }
  fsync_parent_directory(state_->path);
}

// ── LeaseManager ────────────────────────────────────────────────────────

LeaseManager::LeaseManager(std::string dir, Options options)
    : dir_(std::move(dir)), options_(std::move(options)) {
  HINET_REQUIRE(!dir_.empty(), "lease manager needs a directory path");
  HINET_REQUIRE(options_.lease_ms > 0,
                "a zero-length lease would expire before its first renew");
  if (options_.owner.empty()) {
    options_.owner = "pid-" + std::to_string(::getpid());
  }
  if (!options_.now_ms) options_.now_ms = wall_clock_ms;
}

std::string LeaseManager::lease_path(const std::string& name) const {
  return dir_ + "/" + name + ".lease";
}

std::string LeaseManager::fence_path(const std::string& name) const {
  return dir_ + "/" + name + ".fence";
}

std::uint64_t LeaseManager::bump_fence(const std::string& name) {
  // Only the O_EXCL winner runs this, so read-increment-write is not
  // racy.  The new value is durable *before* it is used as a token —
  // the invariant "the fence file is >= every token ever issued" is what
  // makes tokens strictly monotone across crashes and takeovers.
  const std::string path = fence_path(name);
  std::uint64_t current = 0;
  struct ::stat st {};
  if (::stat(path.c_str(), &st) == 0) {
    const std::vector<std::uint8_t> payload = read_checksummed_file(
        path, kFenceMagic, kFenceVersion, "fencing counter");
    ByteReader r(payload, "fencing counter payload");
    current = r.u64();
    r.expect_done();
  }
  const std::uint64_t next = current + 1;
  ByteWriter w;
  w.u64(next);
  write_checksummed_file(path, kFenceMagic, kFenceVersion, w.buffer());
  return next;
}

std::optional<LeaseLock> LeaseManager::try_acquire(const std::string& name) {
  const std::string path = lease_path(name);
  static std::atomic<std::uint64_t> tombstone_seq{0};

  for (int attempt = 0; attempt < 4; ++attempt) {
    const int fd =
        ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY | O_CLOEXEC, 0644);
    if (fd >= 0) {
      // Won exclusivity.  Between here and the record write the file is
      // empty; contenders see "unreadable + fresh mtime" and treat it as
      // held.  Bump the fence first so the token is durable before use.
      std::uint64_t token = 0;
      try {
        token = bump_fence(name);
        LeaseInfo info;
        info.owner = options_.owner;
        info.token = token;
        info.expiry_ms = options_.now_ms() + options_.lease_ms;
        const std::vector<std::uint8_t> payload = encode_lease(info);
        ByteWriter file;
        file.u32(kLeaseMagic);
        file.u16(kLeaseVersion);
        file.u64(payload.size());
        file.u32(crc32(payload));
        file.bytes(payload);
        std::size_t done = 0;
        const std::uint8_t* data = file.buffer().data();
        while (done < file.size()) {
          const ssize_t wrote = ::write(fd, data + done, file.size() - done);
          if (wrote < 0) {
            if (errno == EINTR) continue;
            throw IoError(errno_detail("cannot write lease record", path));
          }
          done += static_cast<std::size_t>(wrote);
        }
        if (::fdatasync(fd) != 0) {
          throw IoError(errno_detail("fdatasync failed on lease", path));
        }
      } catch (...) {
        ::close(fd);
        ::unlink(path.c_str());
        throw;
      }
      ::close(fd);
      // O_EXCL creation lives in the directory inode: sync it so the
      // lock's existence survives power failure.
      fsync_parent_directory(path);

      auto state = std::make_unique<LeaseLock::State>();
      state->path = path;
      state->name = name;
      state->owner = options_.owner;
      state->token = token;
      state->lease_ms = options_.lease_ms;
      state->now_ms = options_.now_ms;
      state->held = true;
      return LeaseLock(std::move(state));
    }
    if (errno != EEXIST) {
      throw IoError(errno_detail("cannot create lease file", path));
    }

    // Someone holds (or held) the lease.  Decide liveness.
    const std::uint64_t now = options_.now_ms();
    LeaseInfo info;
    const LeaseRead read = read_lease_file(path, info);
    if (read == LeaseRead::kMissing) continue;  // released under us; retry
    if (read == LeaseRead::kOk) {
      if (now < info.expiry_ms + options_.takeover_grace_ms) {
        return std::nullopt;  // live lease — busy
      }
    } else {
      // Unreadable: either a winner mid-creation (fresh) or a crash
      // between O_EXCL and the record write (stale).  Gate on file age.
      const std::uint64_t mtime = file_mtime_ms(path);
      if (now < mtime + options_.lease_ms + options_.takeover_grace_ms) {
        return std::nullopt;
      }
    }

    // Expired: take over.  rename() is atomic, so exactly one contender
    // moves the dead owner's lock aside; the losers see ENOENT and retry
    // the create (where at most one of them wins O_EXCL).
    std::ostringstream tomb;
    tomb << path << ".stale." << ::getpid() << "."
         << tombstone_seq.fetch_add(1, std::memory_order_relaxed);
    const std::string tomb_path = tomb.str();
    // detlint-allow(durability-ordering): moving a dead lease aside needs no content fsync — the tombstone is unlinked on the next line
    if (std::rename(path.c_str(), tomb_path.c_str()) != 0) {
      if (errno == ENOENT) continue;  // lost the takeover race; retry
      throw IoError(errno_detail("cannot take over stale lease", path));
    }
    if (::unlink(tomb_path.c_str()) != 0 && errno != ENOENT) {
      throw IoError(errno_detail("cannot remove lease tombstone", tomb_path));
    }
    fsync_parent_directory(path);
    ++takeovers_;
    // Loop back to the O_EXCL create with the path now clear.
  }
  return std::nullopt;  // heavy contention; caller treats as busy
}

std::optional<LeaseInfo> LeaseManager::peek(const std::string& name) const {
  LeaseInfo info;
  if (read_lease_file(lease_path(name), info) != LeaseRead::kOk) {
    return std::nullopt;
  }
  return info;
}

bool LeaseManager::validate(const std::string& name,
                            std::uint64_t token) const {
  LeaseInfo info;
  if (read_lease_file(lease_path(name), info) != LeaseRead::kOk) {
    return false;
  }
  // Expiry is deliberately NOT checked here: an expired-but-untaken
  // lease still carries the only issued token, and refusing the holder
  // would discard finished work nobody else is doing.  The moment a
  // successor takes over, the file carries a larger token and this
  // returns false for the old holder.
  return info.token == token;
}

std::vector<std::pair<std::string, LeaseInfo>> LeaseManager::list() const {
  std::vector<std::pair<std::string, LeaseInfo>> out;
  DIR* d = ::opendir(dir_.c_str());
  if (d == nullptr) {
    if (errno == ENOENT) return out;
    throw IoError(errno_detail("cannot open lease directory", dir_));
  }
  for (struct dirent* e = ::readdir(d); e != nullptr; e = ::readdir(d)) {
    const std::string file = e->d_name;
    constexpr std::string_view kSuffix = ".lease";
    if (file.size() <= kSuffix.size() ||
        file.compare(file.size() - kSuffix.size(), kSuffix.size(),
                     kSuffix) != 0) {
      continue;
    }
    const std::string name = file.substr(0, file.size() - kSuffix.size());
    const std::optional<LeaseInfo> info = peek(name);
    if (info.has_value()) out.emplace_back(name, *info);
  }
  ::closedir(d);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

// ── ScopedFlock ─────────────────────────────────────────────────────────

ScopedFlock::ScopedFlock(const std::string& path) {
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw IoError(errno_detail("cannot open lock file", path));
  }
  while (::flock(fd_, LOCK_EX) != 0) {
    if (errno == EINTR) continue;
    const IoError err(errno_detail("cannot lock", path));
    ::close(fd_);
    fd_ = -1;
    throw err;
  }
}

ScopedFlock::~ScopedFlock() {
  if (fd_ >= 0) {
    ::flock(fd_, LOCK_UN);
    ::close(fd_);
  }
}

}  // namespace hinet
