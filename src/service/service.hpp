// ExperimentService: the simulate-once-serve-many layer.
//
// Ties together the three durable pieces — JobQueue (admission),
// ResultsStore (content-addressed results) and the per-job
// ExperimentJournal (in-flight replicate progress) — around the existing
// supervised experiment runner:
//
//   submit(spec)     → cache hit (already stored: nothing to execute),
//                      enqueued, or already pending.  Queue at capacity is
//                      an explicit QueueFullError, never unbounded growth.
//   run_pending()    → drains the queue.  Each job executes its *missing*
//                      replicates through run_replicates_supervised under
//                      the configured ExecutionPolicy (deadlines, retry
//                      taxonomy, partial-batch salvage), journaling each
//                      completed replicate durably.  A fully completed job
//                      is published to the store through the staged commit
//                      protocol and its journal deleted; a partially
//                      completed one keeps its journal and stays pending —
//                      kill -9 at any moment costs at most the replicate
//                      in flight, and no journaled replicate or stored job
//                      is ever executed twice.
//   query helpers    → completion curves, crossover lookups and a
//                      deterministic query digest served purely from the
//                      store, without re-simulating.
//
// Everything is observable: the service report and the store counters
// (hits/misses/recoveries) make the cache behaviour auditable — the CI
// acceptance check literally greps them.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/supervisor.hpp"
#include "service/job_queue.hpp"
#include "service/results_store.hpp"

namespace hinet {

struct ServiceOptions {
  /// Admission bound for the queue.
  std::size_t max_pending = 256;

  /// How each job's replicates execute (serial/threaded/batched/...).
  ExecutionPolicy policy;

  /// Per-replicate wall budget and retry budget, passed to the supervisor.
  std::size_t deadline_ms = 0;
  std::size_t max_retries = 1;

  /// Cooperative cancellation (SIGINT/SIGTERM); checked between jobs and
  /// between replicates.  Not owned.
  const std::atomic<bool>* cancel = nullptr;

  /// Invoked after a job's results were fully published and acknowledged
  /// (the CI crash lever hard-exits here to simulate SIGKILL).
  std::function<void(const JobSpec&)> on_job_published;
};

/// What run_pending did, per drained queue entry and in total.
struct ServiceReport {
  std::size_t executed_jobs = 0;   ///< simulated and published this run
  std::size_t cache_hits = 0;      ///< already stored — served, not re-run
  std::size_t failed_jobs = 0;     ///< left the queue permanently failed
  std::size_t deferred_jobs = 0;   ///< transient failure — still pending
  std::size_t resumed_replicates = 0;  ///< journal-recovered, not re-run
  bool cancelled = false;          ///< stopped on the cancel flag
  std::vector<std::string> failure_messages;

  std::string to_string() const;
};

class ExperimentService {
 public:
  enum class SubmitOutcome { kCacheHit, kEnqueued, kAlreadyPending };

  /// Opens (creating) the service state under `dir`: <dir>/queue.hjq,
  /// <dir>/index.hix + segments + WAL, <dir>/job-<hash>.journal while a
  /// job is in flight.  Recovery (store intents, queue backlog, journals)
  /// happens here.
  ExperimentService(std::string dir, ServiceOptions options);

  ResultsStore& store() { return *store_; }
  const ResultsStore& store() const { return *store_; }
  JobQueue& queue() { return *queue_; }

  /// Content-addressed admission: a stored job is a pure cache hit (no
  /// queue traffic), a pending one is deduped, a new one is durably
  /// enqueued.  Throws QueueFullError at capacity.
  SubmitOutcome submit(const JobSpec& spec);

  /// Drains the pending queue (snapshot taken at entry).  Never throws
  /// for per-job failures — they land in the report; throws only for
  /// store/queue-level corruption (IoError).
  ServiceReport run_pending();

  /// Path of the in-flight journal for a job (exists only between first
  /// replicate and publish).
  std::string journal_path(const JobSpec& spec) const;

 private:
  std::string dir_;
  ServiceOptions options_;
  std::unique_ptr<ResultsStore> store_;
  std::unique_ptr<JobQueue> queue_;
};

// ── Query path: served from the store, never simulating ────────────────

/// Mean completion curve over a job's replicates: entry r is the mean
/// number of nodes holding all k tokens after round r, padded with each
/// replicate's final value when replicates ran different round counts.
struct CompletionCurve {
  std::size_t nodes = 0;
  std::size_t replicates = 0;
  std::vector<double> mean_complete_nodes;
};

CompletionCurve completion_curve(const StoredResult& result);

/// Aggregate statistics recomputed from the stored replicates — identical
/// (stats_digest and all) to what the original sweep printed, because
/// aggregation is a deterministic index-ordered fold.
AggregateResult aggregate_stored(const StoredResult& result);

/// Where two stored jobs' completion curves cross — the paper's "who wins
/// where" lookup (e.g. Alg1/Alg2 vs KLO) as a pure store query.
struct CrossoverReport {
  double mean_rounds_a = 0.0;  ///< mean rounds_to_completion (delivered)
  double mean_rounds_b = 0.0;
  int winner = 0;  ///< -1: a completes first, +1: b, 0: tie
  /// First round index from which a's mean completion-fraction curve
  /// dominates b's for every later round (SIZE_MAX when it never does).
  std::size_t a_dominates_from = 0;
  std::size_t b_dominates_from = 0;

  std::string to_string() const;
};

CrossoverReport find_crossover(const StoredResult& a, const StoredResult& b);

/// Deterministic digest over everything a query serves (aggregate
/// statistics + completion curve): byte-identical across reopenings,
/// recoveries and re-queries of the same stored job.  The CI
/// kill-and-recover smoke diffs this against an uninterrupted run.
std::uint64_t query_digest(const StoredResult& result);

}  // namespace hinet
