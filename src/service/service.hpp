// ExperimentService: the simulate-once-serve-many layer.
//
// Ties together the three durable pieces — JobQueue (admission),
// ResultsStore (content-addressed results) and the per-job
// ExperimentJournal (in-flight replicate progress) — around the existing
// supervised experiment runner:
//
//   submit(spec)     → cache hit (already stored: nothing to execute),
//                      enqueued, or already pending.  Queue at capacity is
//                      an explicit QueueFullError, never unbounded growth.
//   run_pending()    → drains the queue.  Each job executes its *missing*
//                      replicates through run_replicates_supervised under
//                      the configured ExecutionPolicy (deadlines, retry
//                      taxonomy, partial-batch salvage), journaling each
//                      completed replicate durably.  A fully completed job
//                      is published to the store through the staged commit
//                      protocol and its journal deleted; a partially
//                      completed one keeps its journal and stays pending —
//                      kill -9 at any moment costs at most the replicate
//                      in flight, and no journaled replicate or stored job
//                      is ever executed twice.
//   query helpers    → completion curves, crossover lookups and a
//                      deterministic query digest served purely from the
//                      store, without re-simulating.
//
// Everything is observable: the service report and the store counters
// (hits/misses/recoveries) make the cache behaviour auditable — the CI
// acceptance check literally greps them.
//
// ## Concurrent drains
//
// N service instances (N `hinetd run` processes) may share one directory.
// run_pending() claims one job at a time: open the queue transiently
// (wait-mode FramedLog — short lock-mutate-close sections), pick the
// first unclaimed pending job, win its lease (lease_lock.hpp), record a
// durable claim, close the queue, and only then execute — the queue and
// store are never held across a simulation.  The supervisor's progress
// callback renews the lease after every journaled replicate (the
// heartbeat); publish() carries the lease's fencing token so a drainer
// that lost its lease mid-run is refused at the first commit stage
// instead of clobbering its successor.  Every claim, publish and
// stale-lease detection is appended to <dir>/ledger.hle — the append-only
// execution ledger `hinetd status` reports and the CI multi-drain smoke
// asserts over ("no job published twice").
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <map>

#include "analysis/supervisor.hpp"
#include "service/job_queue.hpp"
#include "service/lease_lock.hpp"
#include "service/results_store.hpp"

namespace hinet {

struct ServiceOptions {
  /// Admission bound for the queue.
  std::size_t max_pending = 256;

  /// How each job's replicates execute (serial/threaded/batched/...).
  ExecutionPolicy policy;

  /// Per-replicate wall budget and retry budget, passed to the supervisor.
  std::size_t deadline_ms = 0;
  std::size_t max_retries = 1;

  /// Cooperative cancellation (SIGINT/SIGTERM); checked between jobs and
  /// between replicates.  Not owned.
  const std::atomic<bool>* cancel = nullptr;

  /// Invoked after a job's results were fully published and acknowledged
  /// (the CI crash lever hard-exits here to simulate SIGKILL).
  std::function<void(const JobSpec&)> on_job_published;

  /// Lease validity per acquire/renew.  Must comfortably exceed the wall
  /// time of one replicate: the heartbeat renews after every journaled
  /// replicate, so a lease shorter than a replicate expires mid-work and
  /// invites a takeover of a live job (safe — fencing refuses the loser —
  /// but wasteful).
  std::uint64_t lease_ms = 30000;

  /// Extra slack past expiry before a contender may take a lease over
  /// (absorbs clock skew between drainer hosts).
  std::uint64_t takeover_grace_ms = 1000;

  /// This drainer's identity in lease files, claims and the ledger.
  /// Empty: "pid-<pid>".
  std::string drain_id;

  /// Millisecond clock for lease expiry (tests inject a fake; empty uses
  /// the wall clock).
  LeaseClock now_ms;

  /// Test seam: invoked after a job's replicates completed, immediately
  /// before the store publish begins (the torture harness parks a zombie
  /// drainer here while a successor steals the job).
  std::function<void(const JobSpec&)> on_job_will_publish;
};

/// What run_pending did, per drained queue entry and in total.
struct ServiceReport {
  std::size_t executed_jobs = 0;   ///< simulated and published this run
  std::size_t cache_hits = 0;      ///< already stored — served, not re-run
  std::size_t failed_jobs = 0;     ///< left the queue permanently failed
  std::size_t deferred_jobs = 0;   ///< transient failure — still pending
  std::size_t resumed_replicates = 0;  ///< journal-recovered, not re-run
  /// Lease lost mid-job (heartbeat renew failed, or a commit stage was
  /// fenced): the successor owns the job; nothing was corrupted and
  /// nothing of the successor's was overwritten.
  std::size_t stale_leases = 0;
  /// Pending jobs left alone because a sibling drainer holds their lease
  /// or live claim — they are *someone else's* work, not a failure.
  std::size_t skipped_claimed = 0;
  bool cancelled = false;          ///< stopped on the cancel flag
  std::vector<std::string> failure_messages;

  std::string to_string() const;
};

class ExperimentService {
 public:
  enum class SubmitOutcome { kCacheHit, kEnqueued, kAlreadyPending };

  // Execution-ledger file format (<dir>/ledger.hle): an append-only
  // FramedLog of {u8 kind, u64 hash, u64 token, owner blob} records —
  // the audit trail of who executed what (never compacted).
  static constexpr std::uint32_t kLedgerMagic = 0x4c'45'53'48u;  // "HSEL"
  static constexpr std::uint16_t kLedgerVersion = 1;
  static constexpr std::uint32_t kLedgerRecordMagic = 0x52'45'53'48u;  // HSER
  static constexpr std::uint8_t kLedgerClaim = 1;
  static constexpr std::uint8_t kLedgerPublish = 2;
  static constexpr std::uint8_t kLedgerStale = 3;

  /// Opens (creating) the service state under `dir`: <dir>/queue.hjq,
  /// <dir>/index.hix + segments + WAL + store.lock, <dir>/ledger.hle,
  /// <dir>/job-<hash>.{journal,lease,fence} while a job is in flight.
  /// Recovery (store intents — gated on winning each job's lease — queue
  /// backlog, journals) happens here.
  ExperimentService(std::string dir, ServiceOptions options);

  ResultsStore& store() { return *store_; }
  const ResultsStore& store() const { return *store_; }
  LeaseManager& leases() { return *leases_; }

  /// Current queue backlog, observed through a transient read-only open
  /// (safe while other drainers hold the queue).
  std::size_t pending() const;
  std::vector<JobSpec> pending_jobs() const;

  /// Content-addressed admission: a stored job is a pure cache hit (no
  /// queue traffic), a pending one is deduped, a new one is durably
  /// enqueued.  Throws QueueFullError at capacity.
  SubmitOutcome submit(const JobSpec& spec);

  /// Drains the queue one claimed job at a time until no job can be
  /// claimed (empty, or every remainder is a sibling drainer's).  Never
  /// throws for per-job failures or lost leases — they land in the
  /// report; throws only for store/queue-level corruption (IoError).
  ServiceReport run_pending();

  /// Path of the in-flight journal for a job (exists only between first
  /// replicate and publish).
  std::string journal_path(const JobSpec& spec) const;

  std::string queue_path() const { return dir_ + "/queue.hjq"; }
  std::string ledger_path() const { return dir_ + "/ledger.hle"; }

  /// The lease/ledger resource name for a job hash: "job-<16 hex>".
  static std::string job_resource(std::uint64_t hash);

 private:
  struct ClaimedJob {
    JobSpec job;
    LeaseLock lease;
  };

  std::optional<ClaimedJob> claim_next(ServiceReport& report);
  void execute_claimed(ClaimedJob claimed, ServiceReport& report);
  void append_ledger(std::uint8_t kind, std::uint64_t hash,
                     std::uint64_t token);
  void reopen_store();
  StoreOptions store_options();

  std::string dir_;
  ServiceOptions options_;
  std::unique_ptr<LeaseManager> leases_;  ///< must outlive store_ (hook)
  std::unique_ptr<ResultsStore> store_;
};

/// Per-job execution counts replayed from <dir>/ledger.hle — the "no job
/// executed twice" evidence: under fencing, `publishes` is at most 1 per
/// hash no matter how many drainers were killed and restarted.
struct ExecutionLedger {
  struct PerJob {
    std::size_t claims = 0;     ///< lease wins (takeovers included)
    std::size_t publishes = 0;  ///< durable publishes acknowledged
    std::size_t stales = 0;     ///< drainers that detected a lost lease
  };
  std::map<std::uint64_t, PerJob> jobs;
  std::size_t total_claims = 0;
  std::size_t total_publishes = 0;
  std::size_t total_stales = 0;
};

/// Replays the execution ledger read-only (missing file: empty ledger).
ExecutionLedger read_execution_ledger(const std::string& dir);

// ── Query path: served from the store, never simulating ────────────────

/// Mean completion curve over a job's replicates: entry r is the mean
/// number of nodes holding all k tokens after round r, padded with each
/// replicate's final value when replicates ran different round counts.
struct CompletionCurve {
  std::size_t nodes = 0;
  std::size_t replicates = 0;
  std::vector<double> mean_complete_nodes;
};

CompletionCurve completion_curve(const StoredResult& result);

/// Aggregate statistics recomputed from the stored replicates — identical
/// (stats_digest and all) to what the original sweep printed, because
/// aggregation is a deterministic index-ordered fold.
AggregateResult aggregate_stored(const StoredResult& result);

/// Where two stored jobs' completion curves cross — the paper's "who wins
/// where" lookup (e.g. Alg1/Alg2 vs KLO) as a pure store query.
struct CrossoverReport {
  double mean_rounds_a = 0.0;  ///< mean rounds_to_completion (delivered)
  double mean_rounds_b = 0.0;
  int winner = 0;  ///< -1: a completes first, +1: b, 0: tie
  /// First round index from which a's mean completion-fraction curve
  /// dominates b's for every later round (SIZE_MAX when it never does).
  std::size_t a_dominates_from = 0;
  std::size_t b_dominates_from = 0;

  std::string to_string() const;
};

CrossoverReport find_crossover(const StoredResult& a, const StoredResult& b);

/// Deterministic digest over everything a query serves (aggregate
/// statistics + completion curve): byte-identical across reopenings,
/// recoveries and re-queries of the same stored job.  The CI
/// kill-and-recover smoke diffs this against an uninterrupted run.
std::uint64_t query_digest(const StoredResult& result);

}  // namespace hinet
