// FramedLog: append-only, CRC-framed, fsynced record file with
// salvage-the-prefix recovery — the shared durability substrate under the
// results store's write-ahead intent log and the service's job queue.
//
// It generalises the ExperimentJournal's proven on-disk discipline
// (analysis/journal.hpp) to arbitrary record payloads:
//
//   file header : u32 file magic · u16 version · u16 reserved(0)
//   record      : u32 record magic · u64 payload length · u32 crc32(payload)
//                 · payload bytes
//
// Appends are write()-then-fdatasync, so a record either exists completely
// or not at all.  Opening replays every record; a torn or corrupt *tail*
// (the expected shape of a crash mid-append) is truncated away and
// reported via dropped_bytes().  Corruption that cannot be the tail of a
// sane log — wrong file magic, wrong version — throws IoError instead:
// that file is not this log, and "salvaging" it would destroy someone
// else's data.  Creating a fresh log fsyncs the parent directory, so even
// the file's existence survives power failure.
//
// A writable log is single-writer, enforced with flock(LOCK_EX) *before*
// the open-time replay (a second writer replaying a stale end-of-file and
// then appending would overwrite the first writer's frames).  kExclusive
// refuses a contended log with a typed ConcurrentWriterError; kWait
// blocks until the holder closes — the mode multi-process drains use for
// their short append-and-close critical sections.  kReadOnly takes no
// lock, never writes (no header stamping, no tail truncation), and
// treats a missing file as an empty log, so status/query tooling can
// observe a live system without perturbing it.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/binary_io.hpp"

namespace hinet {

/// A second writer tried to open a FramedLog that another process (or
/// another handle in this process) holds open for writing.  Derives
/// IoError but maps to the *transient* exit code: the holder will close,
/// and retrying is the right move — interleaved frames never are.
class ConcurrentWriterError : public IoError {
 public:
  using IoError::IoError;
};

class FramedLog {
 public:
  enum class Access {
    kExclusive,  ///< writable; a contended lock is a ConcurrentWriterError
    kWait,       ///< writable; block until the current writer closes
    kReadOnly,   ///< no lock, no writes; missing file reads as empty
  };

  /// Opens (creating if absent, unless read-only) and replays the log at
  /// `path`.  `what` names the artifact in every diagnostic
  /// ("results-store WAL").
  FramedLog(std::string path, std::uint32_t file_magic, std::uint16_t version,
            std::uint32_t record_magic, std::string what,
            Access access = Access::kExclusive);
  ~FramedLog();

  FramedLog(const FramedLog&) = delete;
  FramedLog& operator=(const FramedLog&) = delete;

  const std::string& path() const { return path_; }
  Access access() const { return access_; }

  /// Every intact record replayed at open, in append order, plus records
  /// appended through this handle since.
  const std::vector<std::vector<std::uint8_t>>& records() const {
    return records_;
  }

  /// Bytes of torn/corrupt tail dropped at open (0 for a clean file).
  std::size_t dropped_bytes() const { return dropped_bytes_; }

  /// Durably appends one record: written and fdatasync'd before returning.
  void append(std::span<const std::uint8_t> payload);

  /// Atomically rewrites the log to hold exactly `keep` (write a temporary
  /// sibling, fsync, rename, fsync the directory) and continues appending
  /// to the rewritten file.  Used to bound log growth once every record's
  /// outcome is settled.
  void compact(const std::vector<std::vector<std::uint8_t>>& keep);

 private:
  void replay_and_truncate(std::vector<std::uint8_t> raw);
  void write_all(const std::uint8_t* data, std::size_t len);
  void sync_now();
  void require_writable(const char* action) const;

  std::string path_;
  std::uint32_t file_magic_ = 0;
  std::uint16_t version_ = 0;
  std::uint32_t record_magic_ = 0;
  std::string what_;
  Access access_ = Access::kExclusive;
  int fd_ = -1;
  std::vector<std::vector<std::uint8_t>> records_;
  std::size_t dropped_bytes_ = 0;
};

}  // namespace hinet
