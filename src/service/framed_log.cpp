#include "service/framed_log.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "util/require.hpp"

namespace hinet {

namespace {

constexpr std::size_t kFileHeaderBytes = 4 + 2 + 2;

std::string errno_detail(const std::string& what, const std::string& path) {
  std::ostringstream os;
  os << what << " " << path << ": " << std::strerror(errno);
  return os.str();
}

}  // namespace

FramedLog::FramedLog(std::string path, std::uint32_t file_magic,
                     std::uint16_t version, std::uint32_t record_magic,
                     std::string what, Access access)
    : path_(std::move(path)),
      file_magic_(file_magic),
      version_(version),
      record_magic_(record_magic),
      what_(std::move(what)),
      access_(access) {
  if (access_ == Access::kReadOnly) {
    fd_ = ::open(path_.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd_ < 0) {
      if (errno == ENOENT) return;  // a log never written reads as empty
      throw IoError(errno_detail("cannot open " + what_, path_));
    }
  } else {
    // The writer lock must be held *before* the replay below: a second
    // writer that replayed a stale end-of-file and then appended would
    // overwrite frames the first writer fsynced after our read.  The
    // retry loop covers the holder compacting (rename replaces the
    // inode) between our open and our lock.
    for (;;) {
      fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
      if (fd_ < 0) {
        throw IoError(errno_detail("cannot open " + what_, path_));
      }
      const int op =
          LOCK_EX | (access_ == Access::kExclusive ? LOCK_NB : 0);
      bool locked = false;
      while (!locked) {
        if (::flock(fd_, op) == 0) {
          locked = true;
        } else if (errno == EINTR) {
          continue;
        } else if (errno == EWOULDBLOCK) {
          ::close(fd_);
          fd_ = -1;
          throw ConcurrentWriterError(
              what_ + " at " + path_ +
              " is held by another writer — a FramedLog is single-writer "
              "(interleaved frames would corrupt it); retry after the "
              "holder closes, or open kReadOnly to observe");
        } else {
          const IoError err(errno_detail("cannot lock " + what_, path_));
          ::close(fd_);
          fd_ = -1;
          throw err;
        }
      }
      struct ::stat opened {};
      struct ::stat current {};
      if (::fstat(fd_, &opened) == 0 &&
          ::stat(path_.c_str(), &current) == 0 &&
          opened.st_ino == current.st_ino &&
          opened.st_dev == current.st_dev) {
        break;  // we hold the lock on the inode `path_` names
      }
      ::close(fd_);  // the holder compacted under us; lock the new file
      fd_ = -1;
    }
  }

  std::vector<std::uint8_t> raw;
  std::uint8_t chunk[4096];
  ssize_t got = 0;
  while ((got = ::read(fd_, chunk, sizeof chunk)) > 0) {
    raw.insert(raw.end(), chunk, chunk + got);
  }
  if (got < 0) {
    const IoError err(errno_detail("read error on " + what_, path_));
    ::close(fd_);
    fd_ = -1;
    throw err;
  }

  try {
    replay_and_truncate(std::move(raw));
  } catch (...) {
    ::close(fd_);
    fd_ = -1;
    throw;
  }
}

FramedLog::~FramedLog() {
  if (fd_ >= 0) ::close(fd_);
}

void FramedLog::replay_and_truncate(std::vector<std::uint8_t> raw) {
  if (raw.empty()) {
    if (access_ == Access::kReadOnly) return;  // observe, never stamp
    // Fresh log: stamp the header, then make both the bytes and the file's
    // directory entry durable.
    ByteWriter w;
    w.u32(file_magic_);
    w.u16(version_);
    w.u16(0);  // reserved
    write_all(w.buffer().data(), w.size());
    sync_now();
    fsync_parent_directory(path_);
    return;
  }

  // A wrong header is never the tail of a crashed append — refuse instead
  // of "salvaging" someone else's file away.
  if (raw.size() < kFileHeaderBytes) {
    std::ostringstream os;
    os << what_ << " file " << path_ << " truncated: " << raw.size()
       << " byte(s) is shorter than the " << kFileHeaderBytes
       << "-byte header";
    throw IoError(os.str());
  }
  ByteReader header(raw, what_ + " header (" + path_ + ")");
  const std::uint32_t got_magic = header.u32();
  if (got_magic != file_magic_) {
    std::ostringstream os;
    os << what_ << " file " << path_ << " has wrong magic 0x" << std::hex
       << got_magic << " (expected 0x" << file_magic_ << ") — not a "
       << what_;
    throw IoError(os.str());
  }
  const std::uint16_t got_version = header.u16();
  if (got_version != version_) {
    std::ostringstream os;
    os << what_ << " file " << path_ << " has format version " << got_version
       << " but this build reads version " << version_;
    throw IoError(os.str());
  }
  header.u16();  // reserved

  // Replay records; anything that fails to parse is the torn tail of a
  // crashed append (every record before it was fsynced and CRC-checked).
  std::size_t valid_end = kFileHeaderBytes;
  ByteReader r(raw, what_ + " (" + path_ + ")");
  r.bytes(kFileHeaderBytes);
  while (!r.done()) {
    try {
      if (r.u32() != record_magic_) break;
      const std::uint64_t len = r.u64();
      const std::uint32_t stored_crc = r.u32();
      if (len > r.remaining()) break;
      const auto payload = r.bytes(static_cast<std::size_t>(len));
      if (crc32(payload) != stored_crc) break;
      records_.emplace_back(payload.begin(), payload.end());
    } catch (const IoError&) {
      break;
    }
    valid_end = raw.size() - r.remaining();
  }
  dropped_bytes_ = raw.size() - valid_end;

  // A reader reports the torn tail but must not repair it — that is the
  // writer's job, under the writer lock.
  if (access_ == Access::kReadOnly) return;

  if (dropped_bytes_ > 0) {
    if (::ftruncate(fd_, static_cast<off_t>(valid_end)) != 0) {
      throw IoError(
          errno_detail("cannot truncate corrupt tail of " + what_, path_));
    }
    if (::lseek(fd_, 0, SEEK_END) < 0) {
      throw IoError(errno_detail("lseek failed on " + what_, path_));
    }
  }
}

void FramedLog::write_all(const std::uint8_t* data, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t wrote = ::write(fd_, data + done, len - done);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      throw IoError(errno_detail("write failed on " + what_, path_));
    }
    done += static_cast<std::size_t>(wrote);
  }
}

void FramedLog::sync_now() {
  if (::fdatasync(fd_) != 0) {
    throw IoError(errno_detail("fdatasync failed on " + what_, path_));
  }
}

void FramedLog::require_writable(const char* action) const {
  if (access_ == Access::kReadOnly) {
    throw PreconditionError("cannot " + std::string(action) + " " + what_ +
                            " at " + path_ +
                            ": the log was opened read-only");
  }
}

void FramedLog::append(std::span<const std::uint8_t> payload) {
  require_writable("append to");
  ByteWriter record;
  record.u32(record_magic_);
  record.u64(payload.size());
  record.u32(crc32(payload));
  record.bytes(payload);
  write_all(record.buffer().data(), record.size());
  sync_now();
  records_.emplace_back(payload.begin(), payload.end());
}

void FramedLog::compact(const std::vector<std::vector<std::uint8_t>>& keep) {
  require_writable("compact");
  // Per-process-unique temp name: two processes must never share an
  // in-flight compaction sibling (the writer lock already serializes
  // compaction of *this* log, but the name discipline is uniform).
  const std::string tmp = unique_temp_path(path_);
  const int tmp_fd =
      ::open(tmp.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (tmp_fd < 0) {
    throw IoError(errno_detail("cannot open compaction sibling for " + what_,
                               tmp));
  }

  ByteWriter w;
  w.u32(file_magic_);
  w.u16(version_);
  w.u16(0);  // reserved
  for (const std::vector<std::uint8_t>& payload : keep) {
    w.u32(record_magic_);
    w.u64(payload.size());
    w.u32(crc32(payload));
    w.bytes(payload);
  }

  std::size_t done = 0;
  const std::uint8_t* data = w.buffer().data();
  bool ok = true;
  while (ok && done < w.size()) {
    const ssize_t wrote = ::write(tmp_fd, data + done, w.size() - done);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      ok = false;
      break;
    }
    done += static_cast<std::size_t>(wrote);
  }
  ok = ok && ::fsync(tmp_fd) == 0;
  // Take the writer lock on the *new* inode before it becomes `path_`:
  // the rename must never expose a window where a waiting opener can
  // lock the fresh file while we still consider ourselves the writer.
  ok = ok && ::flock(tmp_fd, LOCK_EX | LOCK_NB) == 0;
  if (!ok) {
    ::close(tmp_fd);
    std::remove(tmp.c_str());
    throw IoError(errno_detail("short write compacting " + what_, tmp));
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    ::close(tmp_fd);
    std::remove(tmp.c_str());
    throw IoError(errno_detail("cannot publish compacted " + what_, path_));
  }
  fsync_parent_directory(path_);

  // Continue appending through the already-positioned, already-locked fd
  // (closing the old fd releases the old inode's lock with it).
  ::close(fd_);
  fd_ = tmp_fd;
  records_ = keep;
}

}  // namespace hinet
