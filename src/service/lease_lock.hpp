// Lease-based job locks for multi-process drains sharing one store.
//
// N `hinetd` processes pointed at one directory coordinate through small
// on-disk artifacts, never through shared memory:
//
//   <dir>/<name>.lease  the lock file.  Created with O_CREAT|O_EXCL — the
//                       POSIX primitive that makes exactly one creator
//                       win — and carrying {owner id, fencing token,
//                       expiry} as a CRC-guarded record.  The parent
//                       directory is fsynced after creation and after
//                       release, so lock existence survives power loss
//                       (detlint's durability rule enforces both).
//   <dir>/<name>.fence  the fencing counter: a checksummed u64 that only
//                       ever increases.  Every successful acquisition
//                       persists counter+1 *before* using it, so a token
//                       observed anywhere is never reissued.
//
// ## Lifecycle
//
//   acquire ── renew ── renew ── ... ── release
//      │ (O_EXCL create, bump fence, write record)
//      └─ on EEXIST: read the record.  Unexpired → busy (caller skips the
//         job).  Expired past the takeover grace → *takeover*: rename the
//         dead owner's lock aside (rename is atomic, exactly one
//         contender wins), unlink the tombstone, fsync the directory, and
//         retry the O_EXCL create.
//
// renew() rewrites the record with a fresh expiry via write-then-rename
// and fails (returns false) if the file no longer carries our token —
// that is how a paused-and-resumed drainer discovers it was taken over.
//
// ## Why fencing tokens
//
// Expiry alone cannot make leases safe: a drainer can be SIGSTOPped (or
// stuck in swap) past its expiry, lose the lease to a successor, and wake
// up believing it still holds it.  The monotone fencing token closes the
// hole at the *resource*: every ResultsStore commit stage re-validates
// that the lease file still carries the writer's token, so the zombie's
// late writes are refused (StaleLeaseError) while the successor — holding
// a strictly larger token — proceeds.  Safety lives at the commit check;
// the lease is only an optimization that keeps drainers out of each
// other's way.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/binary_io.hpp"

namespace hinet {

/// A lease-guarded write lost its lease: the lock file no longer carries
/// the writer's fencing token (a successor took over, or the lease was
/// released).  Transient by nature — the successor owns the job now and
/// the work is *not* lost (results are content-addressed) — mapped to the
/// shared transient exit code by the tools.
class StaleLeaseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Millisecond clock used for expiry decisions.  Injectable so the
/// torture tests advance time deterministically; the default reads the
/// wall clock (leases are compared *across processes*, so a steady clock
/// would not do).
using LeaseClock = std::function<std::uint64_t()>;

/// What a lease file currently says (peeked without acquiring).
struct LeaseInfo {
  std::string owner;
  std::uint64_t token = 0;
  std::uint64_t expiry_ms = 0;  ///< absolute, on the manager's clock
};

class LeaseManager;

/// A held lease.  Movable, non-copyable; releasing (or destruction)
/// unlinks the lock file.  renew() is safe to call from worker threads
/// (the supervisor's progress callback) concurrently with the owner
/// thread — an internal mutex serializes the file rewrite.
class LeaseLock {
 public:
  LeaseLock(LeaseLock&&) noexcept;
  LeaseLock& operator=(LeaseLock&&) noexcept;
  LeaseLock(const LeaseLock&) = delete;
  LeaseLock& operator=(const LeaseLock&) = delete;
  ~LeaseLock();

  const std::string& name() const;
  std::uint64_t token() const;

  /// Extends the lease by the manager's lease_ms from *now*.  Returns
  /// false — permanently — once the lock file no longer carries this
  /// lease's token: the holder must stop writing and abandon the job.
  bool renew();

  /// True until renew() or release() observes a takeover.
  bool held() const;

  /// Unlinks the lock file (if still ours) and fsyncs the directory so
  /// the release survives power loss.  Idempotent.
  void release();

 private:
  friend class LeaseManager;
  struct State;
  explicit LeaseLock(std::unique_ptr<State> state);
  std::unique_ptr<State> state_;
};

/// Creates, renews, inspects and takes over leases inside one directory.
/// One manager per drainer process; managers are cheap and hold no file
/// descriptors between calls.
class LeaseManager {
 public:
  static constexpr std::uint32_t kLeaseMagic = 0x53'4c'53'48u;  // "HSLS"
  static constexpr std::uint16_t kLeaseVersion = 1;
  static constexpr std::uint32_t kFenceMagic = 0x43'46'53'48u;  // "HSFC"
  static constexpr std::uint16_t kFenceVersion = 1;

  struct Options {
    std::uint64_t lease_ms = 30000;        ///< validity per acquire/renew
    std::uint64_t takeover_grace_ms = 1000;  ///< slack past expiry
    std::string owner;   ///< drainer id; default "pid-<pid>"
    LeaseClock now_ms;   ///< default: wall clock (epoch milliseconds)
  };

  LeaseManager(std::string dir, Options options);

  const std::string& directory() const { return dir_; }
  const std::string& owner() const { return options_.owner; }
  std::uint64_t lease_ms() const { return options_.lease_ms; }
  std::uint64_t now_ms() const { return options_.now_ms(); }

  /// Tries to acquire the lease `name`.  Returns the held lease, or
  /// nullopt when another owner holds an unexpired lease (or the create
  /// raced and lost).  An expired lease is taken over: the successor's
  /// fencing token is strictly larger than every token the dead (or
  /// zombie) owner ever held.
  std::optional<LeaseLock> try_acquire(const std::string& name);

  /// What the lock file for `name` currently says, or nullopt when no
  /// lease exists (or the file is unreadable mid-creation).
  std::optional<LeaseInfo> peek(const std::string& name) const;

  /// The fencing check: does the lock file for `name` still carry
  /// `token`?  This is what every ResultsStore commit stage asks before
  /// touching durable state.
  bool validate(const std::string& name, std::uint64_t token) const;

  /// Every lease file in the directory, lexicographic by name.
  std::vector<std::pair<std::string, LeaseInfo>> list() const;

  /// Expired-lease takeovers this manager performed (observability:
  /// `hinetd status` reports it as stale-detected).
  std::size_t takeovers() const { return takeovers_; }

  std::string lease_path(const std::string& name) const;
  std::string fence_path(const std::string& name) const;

 private:
  std::uint64_t bump_fence(const std::string& name);

  std::string dir_;
  Options options_;
  std::size_t takeovers_ = 0;
};

/// A process-wide advisory critical section over `path` (flock LOCK_EX on
/// a dedicated lock file, blocking).  Serializes the store's compound
/// read-modify-write steps — WAL append, index merge, recovery,
/// compaction — across processes.  Released on destruction (and
/// automatically by the kernel if the holder dies, which is why this is
/// flock and not a lease: no stale-state cleanup exists to get wrong).
class ScopedFlock {
 public:
  explicit ScopedFlock(const std::string& path);
  ~ScopedFlock();
  ScopedFlock(const ScopedFlock&) = delete;
  ScopedFlock& operator=(const ScopedFlock&) = delete;

 private:
  int fd_ = -1;
};

}  // namespace hinet
