#include "service/job_spec.hpp"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace hinet {

namespace {

/// Bump when the canonical field set changes; decode refuses other
/// versions so a hash can never silently mean two different field sets.
constexpr std::uint16_t kSpecEncodingVersion = 1;

std::uint8_t assignment_code(AssignmentMode m) {
  switch (m) {
    case AssignmentMode::kDistinctRandom: return 0;
    case AssignmentMode::kSingleSource: return 1;
    case AssignmentMode::kRoundRobin: return 2;
  }
  throw IoError("job spec holds an AssignmentMode this build cannot encode");
}

AssignmentMode assignment_from_code(std::uint8_t code,
                                    const std::string& what) {
  switch (code) {
    case 0: return AssignmentMode::kDistinctRandom;
    case 1: return AssignmentMode::kSingleSource;
    case 2: return AssignmentMode::kRoundRobin;
    default: break;
  }
  std::ostringstream os;
  os << what << " corrupt: unknown assignment-mode code "
     << static_cast<unsigned>(code);
  throw IoError(os.str());
}

std::uint8_t scenario_code(Scenario s) {
  switch (s) {
    case Scenario::kKloInterval: return 0;
    case Scenario::kHiNetInterval: return 1;
    case Scenario::kHiNetIntervalStable: return 2;
    case Scenario::kKloOne: return 3;
    case Scenario::kHiNetOne: return 4;
  }
  throw IoError("job spec holds a Scenario this build cannot encode");
}

Scenario scenario_from_code(std::uint8_t code, const std::string& what) {
  switch (code) {
    case 0: return Scenario::kKloInterval;
    case 1: return Scenario::kHiNetInterval;
    case 2: return Scenario::kHiNetIntervalStable;
    case 3: return Scenario::kKloOne;
    case 4: return Scenario::kHiNetOne;
    default: break;
  }
  std::ostringstream os;
  os << what << " corrupt: unknown scenario code "
     << static_cast<unsigned>(code);
  throw IoError(os.str());
}

}  // namespace

std::uint64_t fnv1a64(std::span<const std::uint8_t> data, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (const std::uint8_t byte : data) {
    h ^= byte;
    h *= 0x100000001b3ULL;
  }
  return h;
}

void encode_job_spec(ByteWriter& w, const JobSpec& spec) {
  w.u16(kSpecEncodingVersion);
  w.u8(scenario_code(spec.scenario));
  w.u64(spec.config.nodes);
  w.u64(spec.config.heads);
  w.u64(spec.config.k);
  w.u64(spec.config.alpha);
  w.u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(spec.config.hop_l)));
  w.f64(spec.config.reaffiliation_prob);
  w.u64(spec.config.churn_edges);
  w.u8(assignment_code(spec.config.assignment));
  w.u8(spec.config.run_full_schedule ? 1 : 0);
  w.u64(spec.base_seed);
  w.u64(spec.repetitions);
}

JobSpec decode_job_spec(ByteReader& r) {
  const std::uint16_t version = r.u16();
  if (version != kSpecEncodingVersion) {
    std::ostringstream os;
    os << r.what() << " has job-spec encoding version " << version
       << " but this build reads version " << kSpecEncodingVersion;
    throw IoError(os.str());
  }
  JobSpec spec;
  spec.scenario = scenario_from_code(r.u8(), r.what());
  spec.config.nodes = r.u64();
  spec.config.heads = r.u64();
  spec.config.k = r.u64();
  spec.config.alpha = r.u64();
  spec.config.hop_l = static_cast<int>(static_cast<std::int64_t>(r.u64()));
  spec.config.reaffiliation_prob = r.f64();
  spec.config.churn_edges = r.u64();
  spec.config.assignment = assignment_from_code(r.u8(), r.what());
  spec.config.run_full_schedule = r.u8() != 0;
  spec.base_seed = r.u64();
  spec.repetitions = r.u64();
  return spec;
}

std::vector<std::uint8_t> JobSpec::canonical_bytes() const {
  ByteWriter w;
  encode_job_spec(w, *this);
  return w.take();
}

std::uint64_t JobSpec::content_hash() const {
  const std::vector<std::uint8_t> bytes = canonical_bytes();
  return fnv1a64(bytes);
}

std::string JobSpec::hash_hex() const {
  std::ostringstream os;
  os << std::hex << std::setw(16) << std::setfill('0') << content_hash();
  return os.str();
}

std::string JobSpec::describe() const {
  std::ostringstream os;
  os << "scenario=" << scenario_cli_name(scenario)
     << " nodes=" << config.nodes << " heads=" << config.heads
     << " k=" << config.k << " alpha=" << config.alpha
     << " hop-l=" << config.hop_l
     << " reaffil=" << config.reaffiliation_prob
     << " churn-edges=" << config.churn_edges
     << " assignment=" << static_cast<unsigned>(assignment_code(config.assignment))
     << " full-schedule=" << (config.run_full_schedule ? 1 : 0)
     << " seed=" << base_seed << " reps=" << repetitions;
  return os.str();
}

std::uint64_t parse_hash_hex(const std::string& hex) {
  if (hex.size() != 16) {
    throw std::invalid_argument("content hash must be exactly 16 hex digits, "
                                "got '" + hex + "'");
  }
  std::uint64_t value = 0;
  for (const char c : hex) {
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a') + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<std::uint64_t>(c - 'A') + 10;
    } else {
      throw std::invalid_argument("content hash contains non-hex character '" +
                                  std::string(1, c) + "' in '" + hex + "'");
    }
    value = (value << 4) | digit;
  }
  return value;
}

}  // namespace hinet
