#include "service/job_queue.hpp"

#include <algorithm>
#include <sstream>

#include "util/require.hpp"

namespace hinet {

namespace {

constexpr std::uint8_t kRecSubmit = 1;
constexpr std::uint8_t kRecDone = 2;
constexpr std::uint8_t kRecFailed = 3;

}  // namespace

JobQueue::JobQueue(std::string path, std::size_t max_pending)
    : log_(std::move(path), kMagic, kVersion, kRecordMagic, "job queue"),
      max_pending_(max_pending) {
  HINET_REQUIRE(max_pending_ > 0,
                "a zero-capacity queue would reject every submission");
  replay();
  // Compact history down to the live backlog: replaying (pending submits)
  // reproduces exactly this state.
  std::vector<std::vector<std::uint8_t>> keep;
  keep.reserve(order_.size());
  for (const std::uint64_t hash : order_) {
    ByteWriter w;
    w.u8(kRecSubmit);
    w.blob(pending_.at(hash));
    keep.push_back(w.take());
  }
  log_.compact(keep);
}

const std::string& JobQueue::path() const { return log_.path(); }

void JobQueue::replay() {
  for (const std::vector<std::uint8_t>& rec : log_.records()) {
    ByteReader r(rec, "job-queue record");
    const std::uint8_t kind = r.u8();
    if (kind == kRecSubmit) {
      const auto spec_bytes = r.blob();
      r.expect_done();
      ByteReader sr(spec_bytes, "job-queue record spec");
      const JobSpec spec = decode_job_spec(sr);
      sr.expect_done();
      const std::uint64_t hash = spec.content_hash();
      if (pending_.find(hash) == pending_.end()) {
        pending_.emplace(hash, std::vector<std::uint8_t>(spec_bytes.begin(),
                                                         spec_bytes.end()));
        order_.push_back(hash);
      }
    } else if (kind == kRecDone || kind == kRecFailed) {
      const std::uint64_t hash = r.u64();
      if (kind == kRecFailed) r.blob();  // reason, informational
      r.expect_done();
      const auto it = pending_.find(hash);
      if (it != pending_.end()) {
        pending_.erase(it);
        order_.erase(std::find(order_.begin(), order_.end(), hash));
      }
    } else {
      std::ostringstream os;
      os << "job-queue record has unknown kind " << static_cast<unsigned>(kind)
         << " — the queue file is corrupt";
      throw IoError(os.str());
    }
  }
}

bool JobQueue::is_pending(std::uint64_t hash) const {
  return pending_.find(hash) != pending_.end();
}

std::vector<JobSpec> JobQueue::pending_jobs() const {
  std::vector<JobSpec> out;
  out.reserve(order_.size());
  for (const std::uint64_t hash : order_) {
    ByteReader r(pending_.at(hash), "job-queue pending spec");
    out.push_back(decode_job_spec(r));
  }
  return out;
}

JobQueue::Submit JobQueue::submit(const JobSpec& spec) {
  const std::uint64_t hash = spec.content_hash();
  const std::vector<std::uint8_t> spec_bytes = spec.canonical_bytes();
  const auto it = pending_.find(hash);
  if (it != pending_.end()) {
    if (it->second != spec_bytes) {
      throw IoError("content-hash collision: a different job spec is "
                    "already pending under this hash — refusing to alias "
                    "two jobs");
    }
    return Submit::kAlreadyPending;
  }
  if (order_.size() >= max_pending_) {
    std::ostringstream os;
    os << "job queue is full (" << order_.size() << "/" << max_pending_
       << " pending) — admission rejected; drain with `hinetd run` and "
       << "resubmit";
    throw QueueFullError(os.str());
  }

  ByteWriter w;
  w.u8(kRecSubmit);
  w.blob(spec_bytes);
  log_.append(w.buffer());
  pending_.emplace(hash, spec_bytes);
  order_.push_back(hash);
  return Submit::kEnqueued;
}

void JobQueue::remove_pending(std::uint64_t hash, const char* verb) {
  const auto it = pending_.find(hash);
  if (it == pending_.end()) {
    std::ostringstream os;
    os << "cannot mark job " << std::hex << hash << " " << verb
       << ": it is not pending";
    throw PreconditionError(os.str());
  }
  pending_.erase(it);
  order_.erase(std::find(order_.begin(), order_.end(), hash));
}

void JobQueue::mark_done(std::uint64_t hash) {
  HINET_REQUIRE(is_pending(hash),
                "only a pending job can be marked done — check is_pending()");
  ByteWriter w;
  w.u8(kRecDone);
  w.u64(hash);
  log_.append(w.buffer());
  remove_pending(hash, "done");
}

void JobQueue::mark_failed(std::uint64_t hash, const std::string& reason) {
  HINET_REQUIRE(is_pending(hash),
                "only a pending job can be marked failed");
  ByteWriter w;
  w.u8(kRecFailed);
  w.u64(hash);
  const std::span<const std::uint8_t> reason_bytes(
      reinterpret_cast<const std::uint8_t*>(reason.data()), reason.size());
  w.blob(reason_bytes);
  log_.append(w.buffer());
  remove_pending(hash, "failed");
}

}  // namespace hinet
