#include "service/job_queue.hpp"

#include <algorithm>
#include <sstream>

#include "util/require.hpp"

namespace hinet {

namespace {

constexpr std::uint8_t kRecSubmit = 1;
constexpr std::uint8_t kRecDone = 2;
constexpr std::uint8_t kRecFailed = 3;
constexpr std::uint8_t kRecClaim = 4;
constexpr std::uint8_t kRecRelease = 5;

}  // namespace

JobQueue::JobQueue(std::string path, std::size_t max_pending,
                   FramedLog::Access access)
    : log_(std::move(path), kMagic, kVersion, kRecordMagic, "job queue",
           access),
      max_pending_(max_pending) {
  HINET_REQUIRE(max_pending_ > 0,
                "a zero-capacity queue would reject every submission");
  replay();
  maybe_compact();
}

void JobQueue::maybe_compact() {
  // Compact history down to the live backlog — replaying (pending
  // submits + their claims) reproduces exactly this state — but only
  // when history has meaningfully outgrown the backlog: concurrent
  // drains reopen the queue for every short mutation, and compacting on
  // each of those opens would turn O(1) appends into O(backlog) rewrites.
  if (log_.access() == FramedLog::Access::kReadOnly) return;
  if (log_.records().size() <= 2 * order_.size() + 8) return;
  std::vector<std::vector<std::uint8_t>> keep;
  keep.reserve(order_.size() + claims_.size());
  for (const std::uint64_t hash : order_) {
    ByteWriter w;
    w.u8(kRecSubmit);
    w.blob(pending_.at(hash));
    keep.push_back(w.take());
    const auto claim = claims_.find(hash);
    if (claim != claims_.end()) {
      ByteWriter c;
      c.u8(kRecClaim);
      c.u64(hash);
      const std::span<const std::uint8_t> owner_bytes(
          reinterpret_cast<const std::uint8_t*>(claim->second.owner.data()),
          claim->second.owner.size());
      c.blob(owner_bytes);
      c.u64(claim->second.token);
      c.u64(claim->second.expiry_ms);
      keep.push_back(c.take());
    }
  }
  log_.compact(keep);
}

const std::string& JobQueue::path() const { return log_.path(); }

void JobQueue::replay() {
  for (const std::vector<std::uint8_t>& rec : log_.records()) {
    ByteReader r(rec, "job-queue record");
    const std::uint8_t kind = r.u8();
    if (kind == kRecSubmit) {
      const auto spec_bytes = r.blob();
      r.expect_done();
      ByteReader sr(spec_bytes, "job-queue record spec");
      const JobSpec spec = decode_job_spec(sr);
      sr.expect_done();
      const std::uint64_t hash = spec.content_hash();
      if (pending_.find(hash) == pending_.end()) {
        pending_.emplace(hash, std::vector<std::uint8_t>(spec_bytes.begin(),
                                                         spec_bytes.end()));
        order_.push_back(hash);
      }
    } else if (kind == kRecDone || kind == kRecFailed) {
      const std::uint64_t hash = r.u64();
      if (kind == kRecFailed) r.blob();  // reason, informational
      r.expect_done();
      const auto it = pending_.find(hash);
      if (it != pending_.end()) {
        pending_.erase(it);
        order_.erase(std::find(order_.begin(), order_.end(), hash));
      }
      claims_.erase(hash);  // a finished job has no live claim
    } else if (kind == kRecClaim) {
      const std::uint64_t hash = r.u64();
      const auto owner_bytes = r.blob();
      Claim claim;
      claim.owner.assign(owner_bytes.begin(), owner_bytes.end());
      claim.token = r.u64();
      claim.expiry_ms = r.u64();
      r.expect_done();
      claims_.insert_or_assign(hash, std::move(claim));
    } else if (kind == kRecRelease) {
      const std::uint64_t hash = r.u64();
      const std::uint64_t token = r.u64();
      r.expect_done();
      const auto it = claims_.find(hash);
      if (it != claims_.end() && it->second.token == token) {
        claims_.erase(it);
      }
    } else {
      std::ostringstream os;
      os << "job-queue record has unknown kind " << static_cast<unsigned>(kind)
         << " — the queue file is corrupt";
      throw IoError(os.str());
    }
  }
}

bool JobQueue::is_pending(std::uint64_t hash) const {
  return pending_.find(hash) != pending_.end();
}

std::vector<JobSpec> JobQueue::pending_jobs() const {
  std::vector<JobSpec> out;
  out.reserve(order_.size());
  for (const std::uint64_t hash : order_) {
    ByteReader r(pending_.at(hash), "job-queue pending spec");
    out.push_back(decode_job_spec(r));
  }
  return out;
}

JobQueue::Submit JobQueue::submit(const JobSpec& spec) {
  const std::uint64_t hash = spec.content_hash();
  const std::vector<std::uint8_t> spec_bytes = spec.canonical_bytes();
  const auto it = pending_.find(hash);
  if (it != pending_.end()) {
    if (it->second != spec_bytes) {
      throw IoError("content-hash collision: a different job spec is "
                    "already pending under this hash — refusing to alias "
                    "two jobs");
    }
    return Submit::kAlreadyPending;
  }
  if (order_.size() >= max_pending_) {
    std::ostringstream os;
    os << "job queue is full (" << order_.size() << "/" << max_pending_
       << " pending) — admission rejected; drain with `hinetd run` and "
       << "resubmit";
    throw QueueFullError(os.str());
  }

  ByteWriter w;
  w.u8(kRecSubmit);
  w.blob(spec_bytes);
  log_.append(w.buffer());
  pending_.emplace(hash, spec_bytes);
  order_.push_back(hash);
  return Submit::kEnqueued;
}

void JobQueue::remove_pending(std::uint64_t hash, const char* verb) {
  const auto it = pending_.find(hash);
  if (it == pending_.end()) {
    std::ostringstream os;
    os << "cannot mark job " << std::hex << hash << " " << verb
       << ": it is not pending";
    throw PreconditionError(os.str());
  }
  pending_.erase(it);
  order_.erase(std::find(order_.begin(), order_.end(), hash));
}

void JobQueue::mark_done(std::uint64_t hash) {
  HINET_REQUIRE(is_pending(hash),
                "only a pending job can be marked done — check is_pending()");
  ByteWriter w;
  w.u8(kRecDone);
  w.u64(hash);
  log_.append(w.buffer());
  remove_pending(hash, "done");
  claims_.erase(hash);
}

void JobQueue::mark_failed(std::uint64_t hash, const std::string& reason) {
  HINET_REQUIRE(is_pending(hash),
                "only a pending job can be marked failed");
  ByteWriter w;
  w.u8(kRecFailed);
  w.u64(hash);
  const std::span<const std::uint8_t> reason_bytes(
      reinterpret_cast<const std::uint8_t*>(reason.data()), reason.size());
  w.blob(reason_bytes);
  log_.append(w.buffer());
  remove_pending(hash, "failed");
  claims_.erase(hash);
}

void JobQueue::record_claim(std::uint64_t hash, const std::string& owner,
                            std::uint64_t token, std::uint64_t expiry_ms) {
  HINET_REQUIRE(is_pending(hash),
                "only a pending job can be claimed for execution");
  ByteWriter w;
  w.u8(kRecClaim);
  w.u64(hash);
  const std::span<const std::uint8_t> owner_bytes(
      reinterpret_cast<const std::uint8_t*>(owner.data()), owner.size());
  w.blob(owner_bytes);
  w.u64(token);
  w.u64(expiry_ms);
  log_.append(w.buffer());
  claims_.insert_or_assign(hash, Claim{owner, token, expiry_ms});
}

void JobQueue::release_claim(std::uint64_t hash, std::uint64_t token) {
  const auto it = claims_.find(hash);
  if (it == claims_.end() || it->second.token != token) return;
  ByteWriter w;
  w.u8(kRecRelease);
  w.u64(hash);
  w.u64(token);
  log_.append(w.buffer());
  claims_.erase(it);
}

std::optional<JobQueue::Claim> JobQueue::claim_of(
    std::uint64_t hash, std::uint64_t now_ms) const {
  const auto it = claims_.find(hash);
  if (it == claims_.end()) return std::nullopt;
  if (!is_pending(hash)) return std::nullopt;
  if (now_ms >= it->second.expiry_ms) return std::nullopt;  // expired
  return it->second;
}

std::size_t JobQueue::claimed(std::uint64_t now_ms) const {
  std::size_t n = 0;
  for (const std::uint64_t hash : order_) {
    if (claim_of(hash, now_ms).has_value()) ++n;
  }
  return n;
}

}  // namespace hinet
