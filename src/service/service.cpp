#include "service/service.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <sstream>

#include "analysis/scenarios.hpp"
#include "util/require.hpp"

namespace hinet {

std::string ServiceReport::to_string() const {
  std::ostringstream os;
  os << "executed: " << executed_jobs << "  cache-hits: " << cache_hits
     << "  deferred: " << deferred_jobs << "  failed: " << failed_jobs
     << "  resumed-replicates: " << resumed_replicates
     << "  cancelled: " << (cancelled ? 1 : 0);
  return os.str();
}

ExperimentService::ExperimentService(std::string dir, ServiceOptions options)
    : dir_(std::move(dir)), options_(std::move(options)) {
  // The store constructor creates the directory and runs recovery; the
  // queue then opens inside it.
  store_ = std::make_unique<ResultsStore>(dir_);
  queue_ = std::make_unique<JobQueue>(dir_ + "/queue.hjq",
                                      options_.max_pending);
}

std::string ExperimentService::journal_path(const JobSpec& spec) const {
  return dir_ + "/job-" + spec.hash_hex() + ".journal";
}

ExperimentService::SubmitOutcome ExperimentService::submit(
    const JobSpec& spec) {
  HINET_REQUIRE(spec.repetitions > 0, "a job needs at least one replicate");
  HINET_REQUIRE(
      spec.base_seed <= std::numeric_limits<std::uint64_t>::max() -
                            (spec.repetitions - 1),
      "base_seed + repetitions would wrap past 2^64 and alias seeds");
  if (store_->contains(spec)) return SubmitOutcome::kCacheHit;
  return queue_->submit(spec) == JobQueue::Submit::kEnqueued
             ? SubmitOutcome::kEnqueued
             : SubmitOutcome::kAlreadyPending;
}

ServiceReport ExperimentService::run_pending() {
  ServiceReport report;
  const std::vector<JobSpec> jobs = queue_->pending_jobs();
  for (const JobSpec& job : jobs) {
    if (options_.cancel != nullptr &&
        options_.cancel->load(std::memory_order_relaxed)) {
      report.cancelled = true;
      break;
    }
    const std::uint64_t hash = job.content_hash();

    // Deduped execution: a job already stored (e.g. published by an
    // earlier drain, or recovered by the store's roll-forward) is
    // acknowledged without simulating anything.
    if (store_->contains(job)) {
      queue_->mark_done(hash);
      ++report.cache_hits;
      continue;
    }

    // Execute the missing replicates under the supervisor, journaling
    // completions durably.  A journal left by a killed run prefills
    // finished replicates, so nothing executes twice.
    ExperimentJournal journal(journal_path(job));
    report.resumed_replicates += journal.size();

    SupervisorPolicy policy;
    policy.deadline_ms = options_.deadline_ms;
    policy.max_retries = options_.max_retries;
    policy.journal = &journal;
    policy.cancel = options_.cancel;

    const SpecFactory factory = scenario_factory(job.scenario, job.config);
    const ExperimentOptions exp{static_cast<std::size_t>(job.repetitions),
                                job.base_seed, options_.policy};
    const SupervisedBatch batch =
        run_replicates_supervised(factory, exp, policy);

    if (batch.cancelled) {
      // Journal keeps what completed; the job stays pending for resume.
      report.cancelled = true;
      break;
    }

    if (batch.completed() == job.repetitions) {
      std::vector<ReplicateResult> replicates;
      replicates.reserve(batch.slots.size());
      for (const std::optional<ReplicateResult>& slot : batch.slots) {
        replicates.push_back(*slot);
      }
      store_->publish(job, replicates);
      // The journal is now redundant (the store owns the result); its
      // removal is pure cleanup — a resurrected journal is harmless
      // because the store hit short-circuits before it is ever opened.
      std::remove(journal_path(job).c_str());
      queue_->mark_done(hash);
      ++report.executed_jobs;
      if (options_.on_job_published) options_.on_job_published(job);
      continue;
    }

    // Partial completion.  Transient failures leave the job pending (the
    // journal holds the finished replicates; a re-run finishes the rest);
    // a deterministic failure would fail identically forever, so it is
    // acknowledged as permanently failed.
    bool permanent = false;
    std::ostringstream why;
    why << "job " << job.hash_hex() << " (" << job.describe() << "): ";
    for (const RunError& f : batch.failures) {
      if (!is_transient(f.cls)) permanent = true;
      why << "[replicate " << f.replicate << " seed " << f.seed << " "
          << to_string(f.cls) << ": " << f.message << "] ";
    }
    report.failure_messages.push_back(why.str());
    if (permanent) {
      queue_->mark_failed(hash, why.str());
      std::remove(journal_path(job).c_str());
      ++report.failed_jobs;
    } else {
      ++report.deferred_jobs;
    }
  }
  return report;
}

// ── Query path ──────────────────────────────────────────────────────────

// detlint: hot-path-begin — the query/serve path runs once per stored
// replicate set per client request; curve buffers are sized up front with
// assign()/construction and the per-round loops must not grow them.
CompletionCurve completion_curve(const StoredResult& result) {
  CompletionCurve curve;
  curve.nodes = result.spec.config.nodes;
  curve.replicates = result.replicates.size();
  std::size_t rounds = 0;
  for (const ReplicateResult& rep : result.replicates) {
    rounds = std::max(rounds, rep.metrics.complete_nodes_per_round.size());
  }
  curve.mean_complete_nodes.assign(rounds, 0.0);
  if (curve.replicates == 0) return curve;
  for (const ReplicateResult& rep : result.replicates) {
    const std::vector<std::size_t>& series =
        rep.metrics.complete_nodes_per_round;
    for (std::size_t r = 0; r < rounds; ++r) {
      // Replicates that stopped early hold their final value afterwards.
      const std::size_t v = series.empty()
                                ? 0
                                : series[std::min(r, series.size() - 1)];
      curve.mean_complete_nodes[r] += static_cast<double>(v);
    }
  }
  for (double& v : curve.mean_complete_nodes) {
    v /= static_cast<double>(curve.replicates);
  }
  return curve;
}
// detlint: hot-path-end

AggregateResult aggregate_stored(const StoredResult& result) {
  return aggregate_replicates(result.replicates, 0.0, 1);
}

std::string CrossoverReport::to_string() const {
  std::ostringstream os;
  os << "mean-rounds a=" << mean_rounds_a << " b=" << mean_rounds_b
     << " winner="
     << (winner < 0 ? "a" : (winner > 0 ? "b" : "tie"));
  const auto print_from = [&os](const char* who, std::size_t from) {
    os << " " << who << "-dominates-from=";
    if (from == std::numeric_limits<std::size_t>::max()) {
      os << "never";
    } else {
      os << from;
    }
  };
  print_from("a", a_dominates_from);
  print_from("b", b_dominates_from);
  return os.str();
}

namespace {

// detlint: hot-path-begin — crossover comparison scans every round of both
// curves; the scratch fraction vector is sized at construction.
/// First round index from which x's completion fraction is >= y's at
/// every later round (curves padded with their final values); SIZE_MAX
/// when x never takes the lead for good.
std::size_t dominates_from(const std::vector<double>& x_frac,
                           const std::vector<double>& y_frac) {
  const std::size_t rounds = std::max(x_frac.size(), y_frac.size());
  if (rounds == 0) return std::numeric_limits<std::size_t>::max();
  const auto at = [](const std::vector<double>& v, std::size_t r) {
    if (v.empty()) return 0.0;
    return v[std::min(r, v.size() - 1)];
  };
  std::size_t from = std::numeric_limits<std::size_t>::max();
  for (std::size_t r = 0; r < rounds; ++r) {
    if (at(x_frac, r) >= at(y_frac, r)) {
      if (from == std::numeric_limits<std::size_t>::max()) from = r;
    } else {
      from = std::numeric_limits<std::size_t>::max();
    }
  }
  return from;
}

std::vector<double> fraction_curve(const StoredResult& result) {
  const CompletionCurve curve = completion_curve(result);
  std::vector<double> frac(curve.mean_complete_nodes.size(), 0.0);
  const double n = static_cast<double>(std::max<std::size_t>(1, curve.nodes));
  for (std::size_t r = 0; r < frac.size(); ++r) {
    frac[r] = curve.mean_complete_nodes[r] / n;
  }
  return frac;
}
// detlint: hot-path-end

}  // namespace

CrossoverReport find_crossover(const StoredResult& a, const StoredResult& b) {
  CrossoverReport report;
  const AggregateResult agg_a = aggregate_stored(a);
  const AggregateResult agg_b = aggregate_stored(b);
  report.mean_rounds_a = agg_a.rounds_to_completion.mean;
  report.mean_rounds_b = agg_b.rounds_to_completion.mean;
  if (report.mean_rounds_a < report.mean_rounds_b) {
    report.winner = -1;
  } else if (report.mean_rounds_b < report.mean_rounds_a) {
    report.winner = 1;
  }
  const std::vector<double> frac_a = fraction_curve(a);
  const std::vector<double> frac_b = fraction_curve(b);
  report.a_dominates_from = dominates_from(frac_a, frac_b);
  report.b_dominates_from = dominates_from(frac_b, frac_a);
  return report;
}

// detlint: hot-path-begin — digesting streams every round's mean through
// the ByteWriter; growth happens inside the writer's amortized buffer, not
// in this loop.
std::uint64_t query_digest(const StoredResult& result) {
  ByteWriter w;
  w.u64(aggregate_stored(result).stats_digest());
  const CompletionCurve curve = completion_curve(result);
  w.u64(curve.nodes);
  w.u64(curve.replicates);
  w.u64(curve.mean_complete_nodes.size());
  for (const double v : curve.mean_complete_nodes) w.f64(v);
  return fnv1a64(w.buffer());
}
// detlint: hot-path-end

}  // namespace hinet
