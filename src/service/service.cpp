#include "service/service.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <limits>
#include <sstream>

#include "analysis/scenarios.hpp"
#include "util/require.hpp"

namespace hinet {

std::string ServiceReport::to_string() const {
  std::ostringstream os;
  os << "executed: " << executed_jobs << "  cache-hits: " << cache_hits
     << "  deferred: " << deferred_jobs << "  failed: " << failed_jobs
     << "  resumed-replicates: " << resumed_replicates
     << "  cancelled: " << (cancelled ? 1 : 0)
     << "  stale-leases: " << stale_leases
     << "  skipped-claimed: " << skipped_claimed;
  return os.str();
}

std::string ExperimentService::job_resource(std::uint64_t hash) {
  std::ostringstream os;
  os << "job-" << std::hex;
  for (int shift = 60; shift >= 0; shift -= 4) {
    os << ((hash >> shift) & 0xFu);
  }
  return os.str();
}

StoreOptions ExperimentService::store_options() {
  StoreOptions so;
  // Recovery resolves an intent only after winning the job's lease: a
  // live publisher keeps its intent (it will finish the job itself), a
  // dead or zombie one is fenced out by the token bump the win performs.
  so.try_lease = [this](std::uint64_t hash) {
    return leases_->try_acquire(job_resource(hash));
  };
  return so;
}

void ExperimentService::reopen_store() {
  store_.reset();  // release before recovery re-runs
  store_ = std::make_unique<ResultsStore>(dir_, store_options());
}

ExperimentService::ExperimentService(std::string dir, ServiceOptions options)
    : dir_(std::move(dir)), options_(std::move(options)) {
  // The lease manager must exist before the store: store recovery asks it
  // for job leases.  Create the directory first so lease files have a
  // home even before the store constructor runs.
  if (::mkdir(dir_.c_str(), 0755) != 0 && errno != EEXIST) {
    throw IoError("cannot create service directory " + dir_ + ": " +
                  std::strerror(errno));
  }
  LeaseManager::Options lo;
  lo.lease_ms = options_.lease_ms;
  lo.takeover_grace_ms = options_.takeover_grace_ms;
  lo.owner = options_.drain_id;  // empty → "pid-<pid>"
  lo.now_ms = options_.now_ms;   // empty → wall clock
  leases_ = std::make_unique<LeaseManager>(dir_, lo);
  store_ = std::make_unique<ResultsStore>(dir_, store_options());
  // Touch the queue once (wait mode): creates the file, salvages a torn
  // tail, compacts drained history.  Closed immediately — the queue is
  // opened transiently per mutation so N drains can share it.
  const JobQueue queue(queue_path(), options_.max_pending,
                       FramedLog::Access::kWait);
}

std::string ExperimentService::journal_path(const JobSpec& spec) const {
  return dir_ + "/job-" + spec.hash_hex() + ".journal";
}

std::size_t ExperimentService::pending() const {
  const JobQueue queue(queue_path(), options_.max_pending,
                       FramedLog::Access::kReadOnly);
  return queue.pending();
}

std::vector<JobSpec> ExperimentService::pending_jobs() const {
  const JobQueue queue(queue_path(), options_.max_pending,
                       FramedLog::Access::kReadOnly);
  return queue.pending_jobs();
}

void ExperimentService::append_ledger(std::uint8_t kind, std::uint64_t hash,
                                      std::uint64_t token) {
  FramedLog ledger(ledger_path(), kLedgerMagic, kLedgerVersion,
                   kLedgerRecordMagic, "execution ledger",
                   FramedLog::Access::kWait);
  ByteWriter w;
  w.u8(kind);
  w.u64(hash);
  w.u64(token);
  const std::string& owner = leases_->owner();
  const std::span<const std::uint8_t> owner_bytes(
      reinterpret_cast<const std::uint8_t*>(owner.data()), owner.size());
  w.blob(owner_bytes);
  ledger.append(w.buffer());
}

ExecutionLedger read_execution_ledger(const std::string& dir) {
  ExecutionLedger out;
  const FramedLog ledger(dir + "/ledger.hle",
                         ExperimentService::kLedgerMagic,
                         ExperimentService::kLedgerVersion,
                         ExperimentService::kLedgerRecordMagic,
                         "execution ledger", FramedLog::Access::kReadOnly);
  for (const std::vector<std::uint8_t>& rec : ledger.records()) {
    ByteReader r(rec, "execution-ledger record");
    const std::uint8_t kind = r.u8();
    const std::uint64_t hash = r.u64();
    r.u64();   // token — informational
    r.blob();  // owner — informational
    r.expect_done();
    ExecutionLedger::PerJob& job = out.jobs[hash];
    if (kind == ExperimentService::kLedgerClaim) {
      ++job.claims;
      ++out.total_claims;
    } else if (kind == ExperimentService::kLedgerPublish) {
      ++job.publishes;
      ++out.total_publishes;
    } else if (kind == ExperimentService::kLedgerStale) {
      ++job.stales;
      ++out.total_stales;
    } else {
      std::ostringstream os;
      os << "execution-ledger record has unknown kind "
         << static_cast<unsigned>(kind) << " — the ledger is corrupt";
      throw IoError(os.str());
    }
  }
  return out;
}

ExperimentService::SubmitOutcome ExperimentService::submit(
    const JobSpec& spec) {
  HINET_REQUIRE(spec.repetitions > 0, "a job needs at least one replicate");
  HINET_REQUIRE(
      spec.base_seed <= std::numeric_limits<std::uint64_t>::max() -
                            (spec.repetitions - 1),
      "base_seed + repetitions would wrap past 2^64 and alias seeds");
  store_->refresh();  // another drainer may have published it meanwhile
  if (store_->contains(spec)) return SubmitOutcome::kCacheHit;
  JobQueue queue(queue_path(), options_.max_pending,
                 FramedLog::Access::kWait);
  return queue.submit(spec) == JobQueue::Submit::kEnqueued
             ? SubmitOutcome::kEnqueued
             : SubmitOutcome::kAlreadyPending;
}

std::optional<ExperimentService::ClaimedJob> ExperimentService::claim_next(
    ServiceReport& report) {
  // One transient queue session: acknowledge cache hits, then claim the
  // first job no sibling drainer holds.  The queue closes before any
  // simulation starts.
  JobQueue queue(queue_path(), options_.max_pending,
                 FramedLog::Access::kWait);
  store_->refresh();
  const std::uint64_t now = leases_->now_ms();
  std::size_t foreign = 0;
  for (const JobSpec& job : queue.pending_jobs()) {
    const std::uint64_t hash = job.content_hash();

    // Deduped execution: a job already stored (published by a sibling
    // drain, or recovered by the store's roll-forward) is acknowledged
    // without simulating anything.
    if (store_->contains(job)) {
      queue.mark_done(hash);
      ++report.cache_hits;
      continue;
    }

    // A sibling's live durable claim is a cheap pre-filter; the lease
    // below is the authority (claims are advisory observability).
    const std::optional<JobQueue::Claim> claim = queue.claim_of(hash, now);
    if (claim.has_value() && claim->owner != leases_->owner()) {
      ++foreign;
      continue;
    }

    std::optional<LeaseLock> lease = leases_->try_acquire(job_resource(hash));
    if (!lease.has_value()) {
      ++foreign;  // lost the race — someone else is executing it
      continue;
    }
    queue.record_claim(hash, leases_->owner(), lease->token(),
                       now + leases_->lease_ms());
    return ClaimedJob{job, std::move(*lease)};
  }
  // Nothing claimable: report what was left to sibling drainers (this
  // final pass's count, not a sum over passes).
  report.skipped_claimed = foreign;
  return std::nullopt;
}

void ExperimentService::execute_claimed(ClaimedJob claimed,
                                        ServiceReport& report) {
  const JobSpec job = claimed.job;
  const std::uint64_t hash = job.content_hash();
  LeaseLock& lease = claimed.lease;
  append_ledger(kLedgerClaim, hash, lease.token());

  // Helper: end the durable claim (transient queue session).  The lease
  // itself is released separately — queue claims are observability, the
  // lease file is the lock.
  const auto drop_claim = [&]() {
    JobQueue queue(queue_path(), options_.max_pending,
                   FramedLog::Access::kWait);
    queue.release_claim(hash, lease.token());
  };

  // Execute the missing replicates under the supervisor, journaling
  // completions durably.  A journal left by a killed run prefills
  // finished replicates, so nothing executes twice.  The journal is
  // shared with any successor that takes the job over — results are
  // pure functions of (spec, seed), so replicates journaled by a fenced
  // zombie are byte-identical to what the successor would compute.
  ExperimentJournal journal(journal_path(job));
  report.resumed_replicates += journal.size();

  std::atomic<bool> stop{false};
  std::atomic<bool> lease_lost{false};

  SupervisorPolicy policy;
  policy.deadline_ms = options_.deadline_ms;
  policy.max_retries = options_.max_retries;
  policy.journal = &journal;
  policy.cancel = &stop;
  policy.on_progress = [&](std::size_t, std::uint64_t) {
    // The heartbeat: every journaled replicate renews the lease.  A
    // failed renew means a successor took the job — stop promptly, the
    // fencing token would refuse our publish anyway.
    if (!lease.renew()) {
      lease_lost.store(true, std::memory_order_relaxed);
      stop.store(true, std::memory_order_relaxed);
    }
    if (options_.cancel != nullptr &&
        options_.cancel->load(std::memory_order_relaxed)) {
      stop.store(true, std::memory_order_relaxed);
    }
  };

  const SpecFactory factory = scenario_factory(job.scenario, job.config);
  const ExperimentOptions exp{static_cast<std::size_t>(job.repetitions),
                              job.base_seed, options_.policy};
  const SupervisedBatch batch =
      run_replicates_supervised(factory, exp, policy);

  if (lease_lost.load(std::memory_order_relaxed)) {
    // Taken over mid-execution.  The job is the successor's now; our
    // journal stays for it to resume from.  The lease object is already
    // ownerless, and the stale claim record expires on its own.
    append_ledger(kLedgerStale, hash, lease.token());
    ++report.stale_leases;
    return;
  }

  if (batch.cancelled) {
    // Journal keeps what completed; the job stays pending for resume.
    report.cancelled = true;
    drop_claim();
    lease.release();
    return;
  }

  if (batch.completed() == job.repetitions) {
    std::vector<ReplicateResult> replicates;
    replicates.reserve(batch.slots.size());
    for (const std::optional<ReplicateResult>& slot : batch.slots) {
      replicates.push_back(*slot);
    }
    if (options_.on_job_will_publish) options_.on_job_will_publish(job);
    const Fencing fencing{leases_.get(), job_resource(hash), lease.token()};
    try {
      store_->publish(job, replicates, &fencing);
    } catch (const StaleLeaseError&) {
      // Fenced out at a commit stage: the successor owns the job and
      // will (or did) publish the identical result.  The handle is
      // poisoned — reopen to recover before the next job.
      reopen_store();
      append_ledger(kLedgerStale, hash, lease.token());
      ++report.stale_leases;
      return;
    }
    append_ledger(kLedgerPublish, hash, lease.token());
    // The journal is now redundant (the store owns the result); its
    // removal is pure cleanup — a resurrected journal is harmless
    // because the store hit short-circuits before it is ever opened.
    std::remove(journal_path(job).c_str());
    {
      JobQueue queue(queue_path(), options_.max_pending,
                     FramedLog::Access::kWait);
      if (queue.is_pending(hash)) queue.mark_done(hash);
    }
    lease.release();
    ++report.executed_jobs;
    if (options_.on_job_published) options_.on_job_published(job);
    return;
  }

  // Partial completion.  Transient failures leave the job pending (the
  // journal holds the finished replicates; a re-run finishes the rest);
  // a deterministic failure would fail identically forever, so it is
  // acknowledged as permanently failed.
  bool permanent = false;
  std::ostringstream why;
  why << "job " << job.hash_hex() << " (" << job.describe() << "): ";
  for (const RunError& f : batch.failures) {
    if (!is_transient(f.cls)) permanent = true;
    why << "[replicate " << f.replicate << " seed " << f.seed << " "
        << to_string(f.cls) << ": " << f.message << "] ";
  }
  report.failure_messages.push_back(why.str());
  if (permanent) {
    {
      JobQueue queue(queue_path(), options_.max_pending,
                     FramedLog::Access::kWait);
      if (queue.is_pending(hash)) queue.mark_failed(hash, why.str());
    }
    std::remove(journal_path(job).c_str());
    ++report.failed_jobs;
  } else {
    drop_claim();
    ++report.deferred_jobs;
  }
  lease.release();
}

ServiceReport ExperimentService::run_pending() {
  ServiceReport report;
  for (;;) {
    if (options_.cancel != nullptr &&
        options_.cancel->load(std::memory_order_relaxed)) {
      report.cancelled = true;
      break;
    }
    std::optional<ClaimedJob> claimed = claim_next(report);
    if (!claimed.has_value()) break;
    execute_claimed(std::move(*claimed), report);
    if (report.cancelled) break;
  }
  return report;
}

// ── Query path ──────────────────────────────────────────────────────────

// detlint: hot-path-begin — the query/serve path runs once per stored
// replicate set per client request; curve buffers are sized up front with
// assign()/construction and the per-round loops must not grow them.
CompletionCurve completion_curve(const StoredResult& result) {
  CompletionCurve curve;
  curve.nodes = result.spec.config.nodes;
  curve.replicates = result.replicates.size();
  std::size_t rounds = 0;
  for (const ReplicateResult& rep : result.replicates) {
    rounds = std::max(rounds, rep.metrics.complete_nodes_per_round.size());
  }
  curve.mean_complete_nodes.assign(rounds, 0.0);
  if (curve.replicates == 0) return curve;
  for (const ReplicateResult& rep : result.replicates) {
    const std::vector<std::size_t>& series =
        rep.metrics.complete_nodes_per_round;
    for (std::size_t r = 0; r < rounds; ++r) {
      // Replicates that stopped early hold their final value afterwards.
      const std::size_t v = series.empty()
                                ? 0
                                : series[std::min(r, series.size() - 1)];
      curve.mean_complete_nodes[r] += static_cast<double>(v);
    }
  }
  for (double& v : curve.mean_complete_nodes) {
    v /= static_cast<double>(curve.replicates);
  }
  return curve;
}
// detlint: hot-path-end

AggregateResult aggregate_stored(const StoredResult& result) {
  return aggregate_replicates(result.replicates, 0.0, 1);
}

std::string CrossoverReport::to_string() const {
  std::ostringstream os;
  os << "mean-rounds a=" << mean_rounds_a << " b=" << mean_rounds_b
     << " winner="
     << (winner < 0 ? "a" : (winner > 0 ? "b" : "tie"));
  const auto print_from = [&os](const char* who, std::size_t from) {
    os << " " << who << "-dominates-from=";
    if (from == std::numeric_limits<std::size_t>::max()) {
      os << "never";
    } else {
      os << from;
    }
  };
  print_from("a", a_dominates_from);
  print_from("b", b_dominates_from);
  return os.str();
}

namespace {

// detlint: hot-path-begin — crossover comparison scans every round of both
// curves; the scratch fraction vector is sized at construction.
/// First round index from which x's completion fraction is >= y's at
/// every later round (curves padded with their final values); SIZE_MAX
/// when x never takes the lead for good.
std::size_t dominates_from(const std::vector<double>& x_frac,
                           const std::vector<double>& y_frac) {
  const std::size_t rounds = std::max(x_frac.size(), y_frac.size());
  if (rounds == 0) return std::numeric_limits<std::size_t>::max();
  const auto at = [](const std::vector<double>& v, std::size_t r) {
    if (v.empty()) return 0.0;
    return v[std::min(r, v.size() - 1)];
  };
  std::size_t from = std::numeric_limits<std::size_t>::max();
  for (std::size_t r = 0; r < rounds; ++r) {
    if (at(x_frac, r) >= at(y_frac, r)) {
      if (from == std::numeric_limits<std::size_t>::max()) from = r;
    } else {
      from = std::numeric_limits<std::size_t>::max();
    }
  }
  return from;
}

std::vector<double> fraction_curve(const StoredResult& result) {
  const CompletionCurve curve = completion_curve(result);
  std::vector<double> frac(curve.mean_complete_nodes.size(), 0.0);
  const double n = static_cast<double>(std::max<std::size_t>(1, curve.nodes));
  for (std::size_t r = 0; r < frac.size(); ++r) {
    frac[r] = curve.mean_complete_nodes[r] / n;
  }
  return frac;
}
// detlint: hot-path-end

}  // namespace

CrossoverReport find_crossover(const StoredResult& a, const StoredResult& b) {
  CrossoverReport report;
  const AggregateResult agg_a = aggregate_stored(a);
  const AggregateResult agg_b = aggregate_stored(b);
  report.mean_rounds_a = agg_a.rounds_to_completion.mean;
  report.mean_rounds_b = agg_b.rounds_to_completion.mean;
  if (report.mean_rounds_a < report.mean_rounds_b) {
    report.winner = -1;
  } else if (report.mean_rounds_b < report.mean_rounds_a) {
    report.winner = 1;
  }
  const std::vector<double> frac_a = fraction_curve(a);
  const std::vector<double> frac_b = fraction_curve(b);
  report.a_dominates_from = dominates_from(frac_a, frac_b);
  report.b_dominates_from = dominates_from(frac_b, frac_a);
  return report;
}

// detlint: hot-path-begin — digesting streams every round's mean through
// the ByteWriter; growth happens inside the writer's amortized buffer, not
// in this loop.
std::uint64_t query_digest(const StoredResult& result) {
  ByteWriter w;
  w.u64(aggregate_stored(result).stats_digest());
  const CompletionCurve curve = completion_curve(result);
  w.u64(curve.nodes);
  w.u64(curve.replicates);
  w.u64(curve.mean_complete_nodes.size());
  for (const double v : curve.mean_complete_nodes) w.f64(v);
  return fnv1a64(w.buffer());
}
// detlint: hot-path-end

}  // namespace hinet
