// ResultsStore: a durable, content-addressed store of experiment results.
//
// Runs are pure functions of (spec, seed), so a job's results are
// infinitely cacheable: simulate once, serve many.  The store holds one
// *segment* per published job — every replicate's full SimMetrics (the
// per-round series the completion-curve and crossover queries need) plus
// its wall time — indexed by the job's canonical content hash.
//
// ## On-disk layout (all little-endian, all CRC-guarded)
//
//   <dir>/index.hix       index: the set of published jobs.  A checksummed
//                         container (util/binary_io) rewritten atomically
//                         (write + fsync + rename + directory fsync) on
//                         every publish — it is either the old index or
//                         the new one, never a blend.
//   <dir>/wal.hwl         write-ahead intent log (FramedLog): records
//                         {intent | commit | rollback, job hash, fencing
//                         token}.  An intent is durably logged before any
//                         segment or index write; a commit is logged only
//                         after the index rewrite landed.  Torn tails are
//                         salvaged.
//   <dir>/store.lock      flock-based critical section serializing every
//                         compound read-modify-write (WAL append, index
//                         merge, recovery, compaction) across processes.
//                         Held only for those short sections — never
//                         across a simulation — and released by the
//                         kernel if the holder dies.
//   <dir>/seg-<hash>.hseg one segment per job, named by content hash.
//                         A checksummed container whose payload embeds the
//                         canonical job spec (collision/aliasing check on
//                         read) and versioned column sections: replicate
//                         seeds, wall times, per-replicate SimMetrics.
//
// ## Crash safety
//
// publish() walks the four durable stages
//
//   1. intent logged   (WAL append, fdatasync)
//   2. segment written (atomic checksummed file, directory fsync)
//   3. index published (atomic checksummed file, directory fsync)
//   4. commit logged   (WAL append, fdatasync)
//
// and recovery at open resolves any intent without a commit: if the
// segment exists and passes every check the publish is *rolled forward*
// (index entry completed, commit logged — the result was fully durable, so
// it is served, not discarded); otherwise it is *rolled back* (partial
// segment deleted, index entry removed, rollback logged — a clean miss).
// Either way a reader sees the full result or no result, never a torn
// one.  Kill -9 between any two stages is exercised stage by stage in
// tests/service/test_results_store.cpp and the CI kill-and-recover smoke.
//
// A checked-but-failed publish poisons the handle (the in-memory view may
// be ahead of disk); reopen the store to recover.  The same all-or-nothing
// policy as SimSnapshot applies to the index and segments: any corruption
// there is a typed IoError, never a partial answer.  Only the WAL — whose
// corruption can legitimately be a crash tail — is salvaged.
//
// ## Multi-process safety
//
// N drainers share one store.  Three mechanisms compose:
//
//   * store.lock (ScopedFlock) makes each compound step atomic across
//     processes; the WAL itself is opened transiently (wait-mode
//     FramedLog: lock, append, close) inside those sections, so no
//     process monopolizes the single-writer log between publishes.
//   * The index is *merged*, never blind-rewritten: stage 3 re-reads
//     index.hix from disk under the lock, adds this publish's entry, and
//     renames the merged file into place — concurrent publishers of
//     different jobs cannot lose each other's entries.
//   * Fencing: when publish() is given a Fencing binding, every stage
//     first re-validates that the job's lease file still carries the
//     writer's token.  A zombie drainer (paused past expiry, taken over)
//     gets a StaleLeaseError instead of clobbering its successor —
//     see lease_lock.hpp for why expiry alone cannot provide this.
//
// Recovery resolves an unresolved intent only after winning that job's
// lease (StoreOptions::try_lease); an intent whose holder is alive is
// left for the holder (or a later recovery) to finish.  Readers open the
// store with StoreOptions::read_only: no locks, no WAL, no recovery —
// compaction and publishes never block or perturb them.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/experiment.hpp"
#include "service/framed_log.hpp"
#include "service/job_spec.hpp"
#include "service/lease_lock.hpp"

namespace hinet {

/// One fully published job read back from the store.
struct StoredResult {
  JobSpec spec;
  /// Replicate results in index order (replicate i ran at seed
  /// spec.base_seed + i).
  std::vector<ReplicateResult> replicates;
};

/// How a store handle participates in multi-process coordination.
struct StoreOptions {
  /// Observe only: no locks, no WAL open, no recovery, publish refused.
  /// A missing directory reads as an empty store.
  bool read_only = false;

  /// Recovery's lease hook: try to win the lease guarding `hash` (the
  /// service wires this to its LeaseManager).  Recovery resolves an
  /// unresolved WAL intent only while holding the job's lease — winning
  /// it fences out the (possibly still-running) original publisher, and
  /// failing to win it means the publisher is alive and will finish the
  /// job itself.  Unset: resolve unconditionally (single-process use).
  std::function<std::optional<LeaseLock>(std::uint64_t hash)> try_lease;
};

/// Binds a publish to a held lease for commit-time fencing: before every
/// durable stage the store re-checks that the lease file named `resource`
/// still carries `token`, and throws StaleLeaseError otherwise.
struct Fencing {
  const LeaseManager* leases = nullptr;
  std::string resource;
  std::uint64_t token = 0;
};

class ResultsStore {
 public:
  static constexpr std::uint32_t kIndexMagic = 0x58'49'53'48u;    // "HSIX"
  static constexpr std::uint16_t kIndexVersion = 1;
  static constexpr std::uint32_t kWalMagic = 0x4c'57'53'48u;      // "HSWL"
  /// v2: records carry the publisher's fencing token.
  static constexpr std::uint16_t kWalVersion = 2;
  static constexpr std::uint32_t kWalRecordMagic = 0x52'57'53'48u;  // "HSWR"
  static constexpr std::uint32_t kSegmentMagic = 0x47'45'53'48u;  // "HSEG"
  static constexpr std::uint16_t kSegmentVersion = 1;

  /// The four durable stages of publish(), in order.  The commit hook
  /// fires after each stage completes — the fault-injection tests abort at
  /// every boundary and assert recovery yields full-or-miss.
  enum class CommitStage {
    kIntentLogged,
    kSegmentWritten,
    kIndexPublished,
    kCommitLogged,
  };
  using CommitHook = std::function<void(CommitStage)>;

  /// Observability for the "simulate once, serve many" contract.
  struct Counters {
    std::size_t hits = 0;    ///< load() served a stored result
    std::size_t misses = 0;  ///< load() found nothing
    /// Intents resolved at open by completing the publish (the segment was
    /// fully durable when the process died).
    std::size_t recovered_commits = 0;
    /// Intents resolved at open by rolling back (no durable segment —
    /// a clean miss, the job will simply re-execute).
    std::size_t rolled_back_intents = 0;
    /// Torn WAL tail bytes dropped at open.
    std::size_t salvaged_wal_bytes = 0;
    /// Dead publishers' in-flight temp files removed at open.
    std::size_t orphan_temps_removed = 0;
  };

  /// Opens the store at `dir` (creating the directory if absent) and runs
  /// recovery.  Throws IoError when the index or a referenced segment is
  /// corrupt (all-or-nothing policy), or when the WAL header is foreign.
  /// With options.read_only the directory is not created, nothing is
  /// locked or recovered, and a missing store reads as empty.
  explicit ResultsStore(std::string dir, StoreOptions options = {});

  ResultsStore(const ResultsStore&) = delete;
  ResultsStore& operator=(const ResultsStore&) = delete;

  const std::string& directory() const { return dir_; }

  std::size_t size() const { return entries_.size(); }
  bool contains(const JobSpec& spec) const;
  bool contains_hash(std::uint64_t hash) const;

  /// Published specs in ascending content-hash order (deterministic).
  std::vector<JobSpec> entries() const;

  /// The stored result for `spec`, or nullopt (counted as hit/miss).
  /// Throws IoError when the entry exists but its segment fails any check
  /// — a torn result is never returned.
  std::optional<StoredResult> load(const JobSpec& spec);

  /// Lookup by bare content hash (`hinetd query --hash=`).
  std::optional<StoredResult> load_hash(std::uint64_t hash);

  /// Durably publishes a completed job through the staged commit protocol.
  /// `replicates` must hold exactly spec.repetitions results in index
  /// order.  Re-publishing a stored job is a PreconditionError (callers
  /// check contains() — that is the cache-hit path); publishing a spec
  /// whose hash collides with a *different* stored spec is an IoError.
  /// If any stage throws, the handle is poisoned: reopen to recover.
  void publish(const JobSpec& spec,
               const std::vector<ReplicateResult>& replicates);

  /// As above, with commit-time fencing: every stage first re-validates
  /// `fencing` against the lease file and throws StaleLeaseError when the
  /// token was superseded (the successor owns the job now; this writer
  /// must stop).  Pass nullptr for unfenced publishing.
  void publish(const JobSpec& spec,
               const std::vector<ReplicateResult>& replicates,
               const Fencing* fencing);

  /// Re-reads the index from disk, picking up entries other processes
  /// published since this handle opened (the index file is rename-atomic,
  /// so no lock is needed).  Cheap; call before contains() when other
  /// drainers share the store.
  void refresh();

  /// Installs the stage-boundary hook (fault injection in tests and the
  /// CI crash lever); pass nullptr to clear.
  void set_commit_hook(CommitHook hook) { commit_hook_ = std::move(hook); }

  const Counters& counters() const { return counters_; }

  /// Path of the segment file for `hash` (exposed for tests and tooling).
  std::string segment_path(std::uint64_t hash) const;

 private:
  struct Entry {
    std::vector<std::uint8_t> spec_bytes;
  };

  void recover();
  void check_not_poisoned() const;
  void require_writable(const char* action) const;
  std::string lock_path() const { return dir_ + "/store.lock"; }
  std::string wal_path() const { return dir_ + "/wal.hwl"; }
  std::map<std::uint64_t, Entry> read_index_from_disk() const;
  void write_index(const std::map<std::uint64_t, Entry>& entries) const;
  StoredResult load_segment(std::uint64_t hash,
                            const std::vector<std::uint8_t>& expect_spec) const;

  std::string dir_;
  StoreOptions options_;
  std::map<std::uint64_t, Entry> entries_;
  Counters counters_;
  CommitHook commit_hook_;
  bool poisoned_ = false;
};

}  // namespace hinet
