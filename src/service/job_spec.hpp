// JobSpec: the content-addressed unit of work the experiment service
// executes, caches and serves.
//
// A simulation run is a pure function of (scenario parameters, seed), so a
// job — `repetitions` replicates of one scenario at seeds base_seed +
// 0..reps-1 — is a pure function of this struct.  The service therefore
// dedupes and caches by a *canonical content hash*: every JobSpec encodes
// to one fixed byte sequence (versioned field order, little-endian,
// doubles as IEEE-754 bit patterns), and the 64-bit FNV-1a hash of those
// bytes is the job's identity everywhere — the queue, the write-ahead
// intents, the segment filenames, the `hinetd query --hash=` lookups.
//
// Hash collisions are detected, not assumed away: the store keeps the full
// canonical bytes next to each hash and refuses a publish whose hash
// matches an entry with different bytes (IoError) — a collision can
// surface as a refusal, never as serving the wrong job's results.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/scenarios.hpp"
#include "util/binary_io.hpp"

namespace hinet {

/// 64-bit FNV-1a over a byte span — the same construction
/// AggregateResult::stats_digest uses, exposed for content addressing.
std::uint64_t fnv1a64(std::span<const std::uint8_t> data,
                      std::uint64_t seed = 0xcbf29ce484222325ULL);

struct JobSpec {
  Scenario scenario = Scenario::kHiNetInterval;
  ScenarioConfig config;
  std::uint64_t base_seed = 1;
  std::uint64_t repetitions = 20;

  /// The canonical encoding: one byte sequence per distinct job, stable
  /// across platforms and releases of the same encoding version.
  std::vector<std::uint8_t> canonical_bytes() const;

  /// FNV-1a 64 of canonical_bytes(): the job's content address.
  std::uint64_t content_hash() const;

  /// content_hash as fixed-width lowercase hex — the spelling used in
  /// filenames and the --hash= CLI flags.
  std::string hash_hex() const;

  /// Human-readable one-liner ("scenario=hinet-one nodes=24 ... reps=4").
  std::string describe() const;

  /// Two specs are the same job iff their canonical bytes match.
  friend bool operator==(const JobSpec& a, const JobSpec& b) {
    return a.canonical_bytes() == b.canonical_bytes();
  }
};

/// Appends the canonical encoding to `w` (the framing callers embed in
/// records and segments).
void encode_job_spec(ByteWriter& w, const JobSpec& spec);

/// Decodes an encoding produced by encode_job_spec.  Throws IoError on a
/// truncated or version-skewed encoding, or enum values this build does
/// not know.
JobSpec decode_job_spec(ByteReader& r);

/// Parses a 16-digit hex content hash ("04c11db7deadbeef"); throws
/// std::invalid_argument naming the defect otherwise.
std::uint64_t parse_hash_hex(const std::string& hex);

}  // namespace hinet
