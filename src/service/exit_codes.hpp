// The one exit-code and signal convention shared by the long-running
// tools (sweep_runner, hinetd), so scripts and CI can branch on status
// without knowing which binary produced it:
//
//   0  ok              — the requested work completed
//   1  failed          — permanent failure (deterministic replicate error,
//                        nothing aggregated); retrying will not help
//   2  usage           — bad flags/arguments; fix the invocation
//   3  transient       — retryable: interrupted by SIGINT/SIGTERM,
//                        admission reject (queue full), query miss,
//                        transient replicate failures still pending,
//                        lease lost to a successor (stale lease), another
//                        writer holds the log, jobs left claimed by a
//                        sibling drainer
//   4  corrupt-state   — a durable artifact (journal, store index,
//                        segment, queue) failed its integrity checks;
//                        human attention required before retrying
//
// SIGINT and SIGTERM both request graceful shutdown (finish + journal the
// in-flight unit, exit 3); a second delivery falls back to the default
// disposition.  Both tools print this table under --help.
#pragma once

#include <exception>
#include <stdexcept>

#include "service/job_queue.hpp"
#include "service/lease_lock.hpp"
#include "util/binary_io.hpp"

namespace hinet {

enum ExitCode : int {
  kExitOk = 0,
  kExitFailed = 1,
  kExitUsage = 2,
  kExitTransient = 3,
  kExitCorruptState = 4,
};

/// The table above, formatted for --help output.
inline const char* exit_code_help() {
  return "exit codes: 0 ok | 1 permanent failure | 2 usage | "
         "3 transient/retryable (interrupted, queue full, miss, stale "
         "lease, concurrent writer) | 4 corrupt durable state";
}

/// Maps a caught exception to the convention: usage errors → 2, admission
/// rejects / lost leases / writer contention → 3, integrity failures → 4,
/// anything else → 1.
inline int exit_code_for_exception(const std::exception& e) {
  if (dynamic_cast<const QueueFullError*>(&e) != nullptr) {
    return kExitTransient;
  }
  if (dynamic_cast<const StaleLeaseError*>(&e) != nullptr) {
    return kExitTransient;
  }
  // Before the IoError check: a contended writer lock derives IoError but
  // is retryable, not corruption.
  if (dynamic_cast<const ConcurrentWriterError*>(&e) != nullptr) {
    return kExitTransient;
  }
  if (dynamic_cast<const IoError*>(&e) != nullptr) return kExitCorruptState;
  if (dynamic_cast<const std::invalid_argument*>(&e) != nullptr) {
    return kExitUsage;
  }
  return kExitFailed;
}

}  // namespace hinet
