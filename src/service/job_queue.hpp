// JobQueue: the durable admission queue in front of the experiment
// service.
//
// Submissions are appended to a FramedLog (CRC-framed, fsynced,
// salvage-the-prefix), so a job accepted before a crash is still pending
// after restart.  The queue is *bounded*: when `max_pending` jobs are
// already waiting, submit() throws QueueFullError — an explicit admission
// reject the caller can surface (shared exit code 3, transient/retryable)
// instead of buffering without limit until the OOM killer decides for us.
//
// Record kinds, replayed in append order to rebuild the pending set:
//   submit  {spec}        — job enters the pending set (no-op if pending)
//   done    {hash}        — job left the queue successfully
//   failed  {hash, why}   — job left the queue permanently failed (a later
//                           submit of the same spec re-enqueues it)
//   claim   {hash, owner, token, expiry} — a drainer holds the job's lease
//                           and is executing it (v2); purely advisory —
//                           the lease file is the authority — but durable,
//                           so `status` and sibling drainers can see who
//                           is working on what across restarts.
//   release {hash, token} — the claim with that token ended (published,
//                           failed, or abandoned).
//
// The log is compacted down to the still-pending submissions (plus live
// claims on them) when history outgrows the backlog, so a long-lived
// queue file stays proportional to the backlog, not to history.  The
// underlying FramedLog is single-writer; multi-process drains open the
// queue transiently in wait mode (lock, mutate, close) so claims by N
// processes serialize instead of interleaving.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "service/framed_log.hpp"
#include "service/job_spec.hpp"

namespace hinet {

/// Admission reject: the queue is at capacity.  Transient by nature —
/// resubmit once the service drains — and mapped to the shared transient
/// exit code by the tools.
class QueueFullError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class JobQueue {
 public:
  static constexpr std::uint32_t kMagic = 0x51'4a'53'48u;        // "HSJQ"
  /// v2: claim/release records carry lease ownership durably.
  static constexpr std::uint16_t kVersion = 2;
  static constexpr std::uint32_t kRecordMagic = 0x52'4a'53'48u;  // "HSJR"

  enum class Submit {
    kEnqueued,        ///< accepted and durably recorded
    kAlreadyPending,  ///< identical job already waiting — nothing to do
  };

  /// A durable claim: which drainer is executing a pending job, under
  /// which fencing token, valid until when.
  struct Claim {
    std::string owner;
    std::uint64_t token = 0;
    std::uint64_t expiry_ms = 0;
  };

  /// Opens (creating if absent) the queue at `path`.  Torn tails are
  /// salvaged; a foreign or version-skewed header is refused (IoError).
  /// `access` follows FramedLog: kExclusive refuses a second writer
  /// (ConcurrentWriterError), kWait blocks for it — the mode concurrent
  /// drains use for short open-mutate-close sections — and kReadOnly
  /// observes without locking or compacting.
  JobQueue(std::string path, std::size_t max_pending,
           FramedLog::Access access = FramedLog::Access::kExclusive);

  const std::string& path() const;

  std::size_t pending() const { return order_.size(); }
  std::size_t max_pending() const { return max_pending_; }
  bool is_pending(std::uint64_t hash) const;

  /// Pending jobs in submission (FIFO) order.
  std::vector<JobSpec> pending_jobs() const;

  /// Durably enqueues `spec`.  Throws QueueFullError when the backlog is
  /// at max_pending (explicit admission control); IoError on hash
  /// collision with a different pending spec.
  Submit submit(const JobSpec& spec);

  /// Durably removes a pending job that completed (results published).
  void mark_done(std::uint64_t hash);

  /// Durably removes a pending job that failed permanently; `reason` is
  /// recorded for the status report until the next compaction.
  void mark_failed(std::uint64_t hash, const std::string& reason);

  /// Durably records that `owner` is executing the pending job `hash`
  /// under fencing `token`, lease valid until `expiry_ms`.  Overwrites a
  /// previous claim on the same job (takeover).
  void record_claim(std::uint64_t hash, const std::string& owner,
                    std::uint64_t token, std::uint64_t expiry_ms);

  /// Durably ends the claim on `hash` — a no-op unless the live claim
  /// carries exactly `token` (a successor's newer claim is not ours to
  /// release).
  void release_claim(std::uint64_t hash, std::uint64_t token);

  /// The live (unexpired at `now_ms`) claim on a pending job, if any.
  std::optional<Claim> claim_of(std::uint64_t hash,
                                std::uint64_t now_ms) const;

  /// Pending jobs with a live claim at `now_ms`.
  std::size_t claimed(std::uint64_t now_ms) const;

  /// Torn-tail bytes dropped at open.
  std::size_t dropped_bytes() const { return log_.dropped_bytes(); }

 private:
  void replay();
  void maybe_compact();
  void remove_pending(std::uint64_t hash, const char* verb);

  FramedLog log_;
  std::size_t max_pending_ = 0;
  std::vector<std::uint64_t> order_;  ///< pending hashes, FIFO
  std::map<std::uint64_t, std::vector<std::uint8_t>> pending_;  ///< hash→spec
  std::map<std::uint64_t, Claim> claims_;  ///< hash→live claim
};

}  // namespace hinet
