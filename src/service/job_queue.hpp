// JobQueue: the durable admission queue in front of the experiment
// service.
//
// Submissions are appended to a FramedLog (CRC-framed, fsynced,
// salvage-the-prefix), so a job accepted before a crash is still pending
// after restart.  The queue is *bounded*: when `max_pending` jobs are
// already waiting, submit() throws QueueFullError — an explicit admission
// reject the caller can surface (shared exit code 3, transient/retryable)
// instead of buffering without limit until the OOM killer decides for us.
//
// Record kinds, replayed in append order to rebuild the pending set:
//   submit {spec}        — job enters the pending set (no-op if pending)
//   done   {hash}        — job left the queue successfully
//   failed {hash, why}   — job left the queue permanently failed (a later
//                          submit of the same spec re-enqueues it)
//
// The log is compacted at open down to the still-pending submissions, so
// a long-lived queue file stays proportional to the backlog, not to
// history.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "service/framed_log.hpp"
#include "service/job_spec.hpp"

namespace hinet {

/// Admission reject: the queue is at capacity.  Transient by nature —
/// resubmit once the service drains — and mapped to the shared transient
/// exit code by the tools.
class QueueFullError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class JobQueue {
 public:
  static constexpr std::uint32_t kMagic = 0x51'4a'53'48u;        // "HSJQ"
  static constexpr std::uint16_t kVersion = 1;
  static constexpr std::uint32_t kRecordMagic = 0x52'4a'53'48u;  // "HSJR"

  enum class Submit {
    kEnqueued,        ///< accepted and durably recorded
    kAlreadyPending,  ///< identical job already waiting — nothing to do
  };

  /// Opens (creating if absent) the queue at `path`.  Torn tails are
  /// salvaged; a foreign or version-skewed header is refused (IoError).
  JobQueue(std::string path, std::size_t max_pending);

  const std::string& path() const;

  std::size_t pending() const { return order_.size(); }
  std::size_t max_pending() const { return max_pending_; }
  bool is_pending(std::uint64_t hash) const;

  /// Pending jobs in submission (FIFO) order.
  std::vector<JobSpec> pending_jobs() const;

  /// Durably enqueues `spec`.  Throws QueueFullError when the backlog is
  /// at max_pending (explicit admission control); IoError on hash
  /// collision with a different pending spec.
  Submit submit(const JobSpec& spec);

  /// Durably removes a pending job that completed (results published).
  void mark_done(std::uint64_t hash);

  /// Durably removes a pending job that failed permanently; `reason` is
  /// recorded for the status report until the next compaction.
  void mark_failed(std::uint64_t hash, const std::string& reason);

  /// Torn-tail bytes dropped at open.
  std::size_t dropped_bytes() const { return log_.dropped_bytes(); }

 private:
  void replay();
  void remove_pending(std::uint64_t hash, const char* verb);

  FramedLog log_;
  std::size_t max_pending_ = 0;
  std::vector<std::uint64_t> order_;  ///< pending hashes, FIFO
  std::map<std::uint64_t, std::vector<std::uint8_t>> pending_;  ///< hash→spec
};

}  // namespace hinet
