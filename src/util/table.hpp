// ASCII table rendering for bench output.
//
// The benchmark binaries print rows in the same shape as the paper's
// Tables 2 and 3; TextTable handles column alignment so those outputs are
// directly comparable side-by-side with the paper.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <type_traits>
#include <vector>

namespace hinet {

class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic cells with operator<<.
  template <typename... Ts>
  void add(const Ts&... cells) {
    add_row({format_cell(cells)...});
  }

  /// Renders with a header separator and column padding.
  std::string render() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  template <typename T>
  static std::string format_cell(const T& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(v);
    } else {
      return cell_to_string(v);
    }
  }
  static std::string cell_to_string(double v);
  static std::string cell_to_string(long long v);
  template <typename T>
    requires std::is_integral_v<T>
  static std::string cell_to_string(T v) {
    return cell_to_string(static_cast<long long>(v));
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const TextTable& t);

}  // namespace hinet
