// Tiny command-line parser used by the examples and bench binaries.
//
// Accepts "--name=value" and "--flag" tokens only; anything else is an
// error so typos surface immediately.  Typed getters record the options
// they saw so --help can list every option a binary understands.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace hinet {

class CliArgs {
 public:
  /// Parses argv; throws std::invalid_argument on a malformed token.
  CliArgs(int argc, const char* const* argv);

  /// True if "--help" or "-h" was given.
  bool help_requested() const { return help_; }

  /// Typed getters.  Each call registers (name, default, description) for
  /// the usage text.  Throws std::invalid_argument when the supplied value
  /// does not parse.
  std::int64_t get_int(const std::string& name, std::int64_t def,
                       const std::string& description);
  double get_double(const std::string& name, double def,
                    const std::string& description);
  bool get_bool(const std::string& name, bool def,
                const std::string& description);
  std::string get_string(const std::string& name, const std::string& def,
                         const std::string& description);

  /// Registers the conventional "--jobs" option (worker threads for
  /// repetition batches) and returns its value with 0/default resolved to
  /// the hardware concurrency.  Always >= 1.
  std::size_t get_jobs();

  /// Usage text built from every getter called so far.
  std::string usage(const std::string& program_summary) const;

  /// Options that were supplied but never consumed by a getter; examples
  /// call this after all getters to reject unknown flags.
  std::vector<std::string> unknown_options() const;

 private:
  struct Registered {
    std::string name;
    std::string default_value;
    std::string description;
  };

  std::optional<std::string> raw(const std::string& name);

  std::map<std::string, std::string> values_;
  std::map<std::string, bool> consumed_;
  std::vector<Registered> registered_;
  bool help_ = false;
};

}  // namespace hinet
