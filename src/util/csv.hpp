// Minimal CSV writer for experiment outputs.
//
// Sweep benches emit one CSV per figure so results can be re-plotted
// outside the repo; values are RFC-4180 quoted when needed.
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace hinet {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row immediately.
  /// Throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// In-memory variant (used by tests and by benches that print to stdout).
  explicit CsvWriter(const std::vector<std::string>& header);

  /// Appends a row; must match the header width.
  void write_row(const std::vector<std::string>& cells);

  /// Convenience for mixed types.
  template <typename... Ts>
  void row(const Ts&... cells) {
    write_row({to_cell(cells)...});
  }

  /// Contents accumulated so far (only meaningful for in-memory writers,
  /// but kept up to date in both modes for testability).
  const std::string& content() const { return buffer_; }

  std::size_t rows_written() const { return rows_; }

 private:
  template <typename T>
  static std::string to_cell(const T& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(v);
    } else {
      std::ostringstream os;
      os << v;
      return os.str();
    }
  }
  static std::string escape(const std::string& cell);
  void emit(const std::vector<std::string>& cells);

  std::ofstream file_;
  bool to_file_ = false;
  std::string buffer_;
  std::size_t width_ = 0;
  std::size_t rows_ = 0;
};

}  // namespace hinet
