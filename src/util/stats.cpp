#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/require.hpp"

namespace hinet {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::mean() const { return n_ == 0 ? 0.0 : mean_; }

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::min() const { return n_ == 0 ? 0.0 : min_; }

double Accumulator::max() const { return n_ == 0 ? 0.0 : max_; }

double percentile_sorted(const std::vector<double>& sorted, double q) {
  HINET_REQUIRE(!sorted.empty(), "percentile of empty sample");
  HINET_REQUIRE(q >= 0.0 && q <= 1.0, "percentile q outside [0,1]");
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::vector<double> samples) {
  Summary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  Accumulator acc;
  for (double x : samples) acc.add(x);
  s.n = samples.size();
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = samples.front();
  s.max = samples.back();
  s.p50 = percentile_sorted(samples, 0.5);
  s.p95 = percentile_sorted(samples, 0.95);
  return s;
}

std::string Summary::to_string() const {
  std::ostringstream os;
  os << "n=" << n << " mean=" << mean << " sd=" << stddev << " min=" << min
     << " p50=" << p50 << " p95=" << p95 << " max=" << max;
  return os.str();
}

}  // namespace hinet
