// TokenSet: a fixed-universe dynamic bitset specialised for the k-token
// dissemination problem.
//
// The paper's algorithms manipulate three per-node sets (TA, TS, TR) over a
// universe of k comparable token ids.  All hot-path operations the
// pseudocode needs — membership, union, set difference, and min/max of a
// difference — are O(k/64) word operations here.  The cardinality is
// cached and maintained by every mutator, so count()/empty()/full() are
// O(1) — the engine's incremental completion tracking polls full() once
// per node per round.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/require.hpp"

namespace hinet {

/// Identifier of a token.  Tokens are drawn from the universe [0, k).
using TokenId = std::uint32_t;

class TokenSet {
 public:
  /// Creates an empty set over a universe of `universe` token ids.
  explicit TokenSet(std::size_t universe = 0);

  /// Creates a set containing exactly the given tokens.
  TokenSet(std::size_t universe, std::initializer_list<TokenId> tokens);

  /// The universe size k this set was created with.
  std::size_t universe() const { return universe_; }

  /// Number of tokens currently in the set.  O(1): the cardinality is
  /// cached and kept in sync by every mutating operation.
  std::size_t count() const { return count_; }

  bool empty() const { return count_ == 0; }

  /// True when the set contains every token of the universe.
  bool full() const { return count_ == universe_; }

  bool contains(TokenId t) const;

  /// Inserts a token; returns true if it was newly added.
  bool insert(TokenId t);

  /// Removes a token; returns true if it was present.
  bool erase(TokenId t);

  /// Removes all tokens (the pseudocode's "TS <- Ø").
  void clear();

  /// In-place union: *this <- *this ∪ other.  Returns the number of tokens
  /// newly added, which the metrics layer uses to detect progress.
  std::size_t unite(const TokenSet& other);

  /// In-place difference: *this <- *this \ other.
  void subtract(const TokenSet& other);

  /// In-place intersection.
  void intersect(const TokenSet& other);

  /// True when every token of *this is in `other`.
  bool subset_of(const TokenSet& other) const;

  /// Smallest token in *this \ other, or nullopt when the difference is
  /// empty.  Implements Algorithm 1's head rule "t <- min(TA \ TS)".
  std::optional<TokenId> min_diff(const TokenSet& other) const;

  /// Largest token in *this \ other.  Implements the member rule
  /// "t <- max(TA \ (TS ∪ TR))" (the union is passed pre-computed or via
  /// the two-argument overload below).
  std::optional<TokenId> max_diff(const TokenSet& other) const;

  /// Largest token in *this \ (a ∪ b) without materialising the union.
  std::optional<TokenId> max_diff(const TokenSet& a, const TokenSet& b) const;

  /// Smallest token present, or nullopt if empty.
  std::optional<TokenId> min_element() const;

  /// Largest token present, or nullopt if empty.
  std::optional<TokenId> max_element() const;

  /// All tokens in increasing order (for reporting / tests; not hot path).
  std::vector<TokenId> to_vector() const;

  /// Compact textual form, e.g. "{0,3,7}" (for logs and test failures).
  std::string to_string() const;

  friend bool operator==(const TokenSet& a, const TokenSet& b);
  friend bool operator!=(const TokenSet& a, const TokenSet& b) {
    return !(a == b);
  }

  /// Union as a value (used when the pseudocode unions TS ∪ TR).
  static TokenSet set_union(const TokenSet& a, const TokenSet& b);

  /// Raw 64-bit words of the membership bitmap (low bit of word 0 is
  /// token 0).  Network coding reinterprets a TokenSet as a GF(2)
  /// coefficient vector through this view.
  std::span<const std::uint64_t> words() const { return words_; }

  /// Builds a set directly from a word vector; bits beyond the universe
  /// are masked off.  `words.size()` must match the universe's word count.
  static TokenSet from_words(std::size_t universe,
                             std::vector<std::uint64_t> words);

 private:
  static constexpr std::size_t kBits = 64;

  std::size_t word_count() const { return words_.size(); }
  void check_token(TokenId t) const;

  std::size_t universe_ = 0;
  std::size_t count_ = 0;  ///< cached popcount of words_
  std::vector<std::uint64_t> words_;
};

}  // namespace hinet
