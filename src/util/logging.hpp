// Leveled logging with a process-global threshold.
//
// The simulator is deterministic, so logs double as replay transcripts:
// everything is written to a single ostream (stderr by default) with a
// module tag, and tests can redirect the sink to capture output.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace hinet {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Converts "trace|debug|info|warn|error|off" to a level; throws on typo.
LogLevel parse_log_level(const std::string& name);

const char* log_level_name(LogLevel level);

class Logging {
 public:
  static LogLevel threshold();
  static void set_threshold(LogLevel level);

  /// Redirects the sink (tests only); returns the previous sink.
  static std::ostream* set_sink(std::ostream* sink);

  static void write(LogLevel level, const std::string& tag,
                    const std::string& message);
};

/// Builds one log line with stream syntax and emits it on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, std::string tag) : level_(level), tag_(std::move(tag)) {}
  ~LogLine() { Logging::write(level_, tag_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string tag_;
  std::ostringstream os_;
};

}  // namespace hinet

#define HINET_LOG(level, tag)                                   \
  if (static_cast<int>(level) < static_cast<int>(::hinet::Logging::threshold())) \
    ;                                                            \
  else                                                           \
    ::hinet::LogLine(level, tag)

#define HINET_DEBUG(tag) HINET_LOG(::hinet::LogLevel::kDebug, tag)
#define HINET_INFO(tag) HINET_LOG(::hinet::LogLevel::kInfo, tag)
#define HINET_WARN(tag) HINET_LOG(::hinet::LogLevel::kWarn, tag)
#define HINET_ERROR(tag) HINET_LOG(::hinet::LogLevel::kError, tag)
