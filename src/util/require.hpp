// Contract-checking macros used across the library.
//
// The C++ Core Guidelines (I.6/I.8) recommend expressing preconditions and
// postconditions explicitly.  We cannot use the C++26 contracts syntax yet,
// so the library uses these macros, which throw rather than abort so that
// property-based tests can exercise failure paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace hinet {

/// Thrown when a precondition (HINET_REQUIRE) is violated.
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when an internal invariant (HINET_ENSURE) is violated.
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}

[[noreturn]] inline void throw_invariant(const char* expr, const char* file,
                                         int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}
}  // namespace detail

}  // namespace hinet

/// Precondition check: callers violated the API contract.
#define HINET_REQUIRE(expr, msg)                                          \
  do {                                                                    \
    if (!(expr))                                                          \
      ::hinet::detail::throw_precondition(#expr, __FILE__, __LINE__, msg); \
  } while (false)

/// Invariant / postcondition check: the library itself is inconsistent.
#define HINET_ENSURE(expr, msg)                                        \
  do {                                                                 \
    if (!(expr))                                                       \
      ::hinet::detail::throw_invariant(#expr, __FILE__, __LINE__, msg); \
  } while (false)
