#include "util/logging.hpp"

#include <stdexcept>

namespace hinet {

namespace {
LogLevel g_threshold = LogLevel::kWarn;
std::ostream* g_sink = &std::cerr;
}  // namespace

LogLevel parse_log_level(const std::string& name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  throw std::invalid_argument("unknown log level: " + name);
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

LogLevel Logging::threshold() { return g_threshold; }

void Logging::set_threshold(LogLevel level) { g_threshold = level; }

std::ostream* Logging::set_sink(std::ostream* sink) {
  std::ostream* prev = g_sink;
  g_sink = sink == nullptr ? &std::cerr : sink;
  return prev;
}

void Logging::write(LogLevel level, const std::string& tag,
                    const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_threshold)) return;
  (*g_sink) << '[' << log_level_name(level) << "] [" << tag << "] " << message
            << '\n';
}

}  // namespace hinet
