#include "util/rng.hpp"

#ifdef _MSC_VER
#include <intrin.h>
#endif

namespace hinet {

std::uint64_t Rng::below(std::uint64_t bound) {
  HINET_REQUIRE(bound > 0, "below() with zero bound");
  // Lemire's nearly-divisionless method.  __int128 is a GCC/Clang extension,
  // so the typedef needs __extension__ to stay -Wpedantic-clean.
  __extension__ typedef unsigned __int128 u128;
  std::uint64_t x = (*this)();
  u128 m = static_cast<u128>(x) * static_cast<u128>(bound);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<u128>(x) * static_cast<u128>(bound);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  HINET_REQUIRE(lo <= hi, "uniform_int() with inverted range");
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform01() {
  // 53 high-quality bits -> [0, 1) with full double precision.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  HINET_REQUIRE(lo <= hi, "uniform_real() with inverted range");
  return lo + (hi - lo) * uniform01();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::vector<std::size_t> Rng::sample(std::size_t population,
                                     std::size_t count) {
  HINET_REQUIRE(count <= population, "sample() larger than population");
  // Partial Fisher-Yates over an index vector.  For the network sizes used
  // here (<= a few thousand nodes) the O(population) setup is negligible.
  std::vector<std::size_t> idx(population);
  for (std::size_t i = 0; i < population; ++i) idx[i] = i;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = i + below(population - i);
    using std::swap;
    swap(idx[i], idx[j]);
  }
  idx.resize(count);
  return idx;
}

Rng Rng::fork() {
  Rng child(0);
  SplitMix64 sm((*this)());
  // Re-derive all four state words through SplitMix so the child stream is
  // decorrelated from the parent's future output.
  child.s_[0] = sm.next();
  child.s_[1] = sm.next();
  child.s_[2] = sm.next();
  child.s_[3] = sm.next();
  return child;
}

}  // namespace hinet
