#include "util/binary_io.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace hinet {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::uint8_t byte : data) {
    c = table[(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v & 0xFFu));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFu));
  }
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFu));
  }
}

void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::bytes(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::blob(std::span<const std::uint8_t> data) {
  u64(data.size());
  bytes(data);
}

void ByteWriter::vec_u64(const std::vector<std::uint64_t>& v) {
  u64(v.size());
  for (std::uint64_t x : v) u64(x);
}

void ByteWriter::vec_size(const std::vector<std::size_t>& v) {
  u64(v.size());
  for (std::size_t x : v) u64(x);
}

void ByteWriter::vec_u8(const std::vector<std::uint8_t>& v) {
  u64(v.size());
  bytes(v);
}

ByteReader::ByteReader(std::span<const std::uint8_t> data, std::string what)
    : data_(data), what_(std::move(what)) {}

void ByteReader::need(std::size_t n) const {
  if (n > remaining()) {
    std::ostringstream os;
    os << what_ << " truncated: need " << n << " more byte(s) at offset "
       << pos_ << " but only " << remaining() << " remain";
    throw IoError(os.str());
  }
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v = static_cast<std::uint16_t>(v |
                                   static_cast<std::uint16_t>(data_[pos_ + static_cast<std::size_t>(i)])
                                       << (8 * i));
  }
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

std::span<const std::uint8_t> ByteReader::bytes(std::size_t n) {
  need(n);
  const auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

std::span<const std::uint8_t> ByteReader::blob() {
  const std::uint64_t len = u64();
  // The length itself came from (possibly corrupt) input: bound it against
  // what is actually present before any allocation or subspan.
  if (len > remaining()) {
    std::ostringstream os;
    os << what_ << " corrupt: blob declares " << len << " byte(s) at offset "
       << pos_ << " but only " << remaining() << " remain";
    throw IoError(os.str());
  }
  return bytes(static_cast<std::size_t>(len));
}

std::vector<std::uint64_t> ByteReader::vec_u64() {
  const std::uint64_t len = u64();
  if (len > remaining() / 8) {
    std::ostringstream os;
    os << what_ << " corrupt: vector declares " << len
       << " element(s) at offset " << pos_ << " but only " << remaining()
       << " byte(s) remain";
    throw IoError(os.str());
  }
  std::vector<std::uint64_t> out(static_cast<std::size_t>(len));
  for (auto& x : out) x = u64();
  return out;
}

std::vector<std::size_t> ByteReader::vec_size() {
  const std::vector<std::uint64_t> raw = vec_u64();
  std::vector<std::size_t> out(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    out[i] = static_cast<std::size_t>(raw[i]);
  }
  return out;
}

std::vector<std::uint8_t> ByteReader::vec_u8() {
  const auto data = blob();
  return {data.begin(), data.end()};
}

void ByteReader::expect_done() const {
  if (!done()) {
    std::ostringstream os;
    os << what_ << " corrupt: " << remaining()
       << " unexpected trailing byte(s) after offset " << pos_
       << " (state decoded by a reader of the wrong type?)";
    throw IoError(os.str());
  }
}

namespace {

constexpr std::size_t kHeaderBytes = 4 + 2 + 8 + 4;  // magic·version·len·crc

}  // namespace

void fsync_parent_directory(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    throw IoError("cannot open directory " + dir + " to sync it: " +
                  std::strerror(errno));
  }
  const bool synced = ::fsync(fd) == 0;
  const int saved_errno = errno;
  ::close(fd);
  if (!synced) {
    throw IoError("fsync failed on directory " + dir + ": " +
                  std::strerror(saved_errno));
  }
}

std::string unique_temp_path(const std::string& path) {
  // pid + counter is unique among *live* processes; a recycled pid can at
  // worst collide with a temp whose owner is dead, and overwriting a dead
  // process's orphan is harmless.  Deliberately no clock and no RNG: temp
  // naming must not perturb deterministic replay (detlint bans both).
  static std::atomic<std::uint64_t> counter{0};
  std::ostringstream os;
  os << path << ".tmp." << ::getpid() << "."
     << counter.fetch_add(1, std::memory_order_relaxed);
  return os.str();
}

std::size_t remove_orphan_temp_files(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    throw IoError("cannot open directory " + dir +
                  " to sweep orphan temp files: " + std::strerror(errno));
  }
  std::size_t removed = 0;
  for (struct dirent* e = ::readdir(d); e != nullptr; e = ::readdir(d)) {
    const std::string name = e->d_name;
    const std::size_t tag = name.rfind(".tmp.");
    if (tag == std::string::npos) continue;
    // Parse "<pid>.<n>" after the tag; anything else is not ours.
    const std::string rest = name.substr(tag + 5);
    const std::size_t dot = rest.find('.');
    if (dot == std::string::npos || dot == 0 || dot + 1 >= rest.size()) {
      continue;
    }
    const std::string pid_part = rest.substr(0, dot);
    const std::string seq_part = rest.substr(dot + 1);
    auto all_digits = [](const std::string& s) {
      for (const char c : s) {
        if (c < '0' || c > '9') return false;
      }
      return !s.empty();
    };
    if (!all_digits(pid_part) || !all_digits(seq_part)) continue;
    const long pid = std::strtol(pid_part.c_str(), nullptr, 10);
    // kill(pid, 0) probes existence without signalling.  EPERM means the
    // pid exists but belongs to someone else — treat as live either way.
    if (pid > 0 && (::kill(static_cast<pid_t>(pid), 0) == 0 ||
                    errno != ESRCH)) {
      continue;
    }
    if (::unlinkat(::dirfd(d), e->d_name, 0) == 0) ++removed;
  }
  ::closedir(d);
  if (removed > 0) fsync_parent_directory(dir + "/.");
  return removed;
}

void write_checksummed_file(const std::string& path, std::uint32_t magic,
                            std::uint16_t version,
                            std::span<const std::uint8_t> payload) {
  ByteWriter header;
  header.u32(magic);
  header.u16(version);
  header.u64(payload.size());
  header.u32(crc32(payload));

  // Write-then-rename: `path` only ever names a complete, checksummed
  // file.  The temp name is per-process-unique so concurrent publishers
  // into one directory cannot truncate each other's in-flight temps.
  const std::string tmp = unique_temp_path(path);
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) throw IoError("cannot open " + tmp + " for writing");
  const bool ok =
      std::fwrite(header.buffer().data(), 1, header.size(), f) ==
          header.size() &&
      (payload.empty() ||
       std::fwrite(payload.data(), 1, payload.size(), f) == payload.size()) &&
      std::fflush(f) == 0 &&
      // fsync before the rename: renaming a file whose *contents* are still
      // in flight would let the crash-ordered disk publish an empty file.
      ::fsync(::fileno(f)) == 0;
  const bool closed = std::fclose(f) == 0;
  if (!ok || !closed) {
    std::remove(tmp.c_str());
    throw IoError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw IoError("cannot rename " + tmp + " to " + path);
  }
  // The rename lives in the parent directory's inode; sync it so a power
  // failure after this return cannot un-publish the file.
  fsync_parent_directory(path);
}

std::vector<std::uint8_t> read_checksummed_file(const std::string& path,
                                                std::uint32_t magic,
                                                std::uint16_t expect_version,
                                                const std::string& what) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw IoError("cannot open " + what + " file " + path);
  std::vector<std::uint8_t> raw;
  std::uint8_t chunk[4096];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof chunk, f)) > 0) {
    raw.insert(raw.end(), chunk, chunk + got);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) throw IoError("read error on " + what + " file " + path);

  ByteReader header(raw, what + " header (" + path + ")");
  if (raw.size() < kHeaderBytes) {
    std::ostringstream os;
    os << what << " file " << path << " truncated: " << raw.size()
       << " byte(s) is shorter than the " << kHeaderBytes << "-byte header";
    throw IoError(os.str());
  }
  const std::uint32_t got_magic = header.u32();
  if (got_magic != magic) {
    std::ostringstream os;
    os << what << " file " << path << " has wrong magic 0x" << std::hex
       << got_magic << " (expected 0x" << magic
       << ") — not a " << what << " file, or the header is corrupt";
    throw IoError(os.str());
  }
  const std::uint16_t got_version = header.u16();
  if (got_version != expect_version) {
    std::ostringstream os;
    os << what << " file " << path << " has format version " << got_version
       << " but this build reads version " << expect_version
       << " — regenerate the file with the matching build";
    throw IoError(os.str());
  }
  const std::uint64_t len = header.u64();
  const std::uint32_t stored_crc = header.u32();
  if (len != raw.size() - kHeaderBytes) {
    std::ostringstream os;
    os << what << " file " << path << " truncated or padded: header declares "
       << len << " payload byte(s) but the file carries "
       << raw.size() - kHeaderBytes;
    throw IoError(os.str());
  }
  std::vector<std::uint8_t> payload(raw.begin() + kHeaderBytes, raw.end());
  const std::uint32_t computed = crc32(payload);
  if (computed != stored_crc) {
    std::ostringstream os;
    os << what << " file " << path << " failed its integrity check: stored "
       << "CRC 0x" << std::hex << stored_crc << ", computed 0x" << computed
       << " — the payload is corrupt";
    throw IoError(os.str());
  }
  return payload;
}

}  // namespace hinet
