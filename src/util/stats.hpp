// Streaming and batch statistics used by the experiment harness.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hinet {

/// Welford-style streaming accumulator: numerically stable mean/variance
/// plus min/max, without storing samples.
class Accumulator {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// One-line summary of a sample batch, for table rows.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;

  /// Bitwise field equality (modulo ±0); lets the experiment harness
  /// assert that serial and parallel batches aggregated identically.
  friend bool operator==(const Summary&, const Summary&) = default;

  std::string to_string() const;
};

/// Computes a Summary from a batch (copies + sorts internally).
Summary summarize(std::vector<double> samples);

/// Linear-interpolated percentile of a *sorted* sample vector, q in [0,1].
double percentile_sorted(const std::vector<double>& sorted, double q);

}  // namespace hinet
