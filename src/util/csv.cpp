#include "util/csv.hpp"

#include <stdexcept>

#include "util/require.hpp"

namespace hinet {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : file_(path), to_file_(true), width_(header.size()) {
  if (!file_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
  HINET_REQUIRE(width_ > 0, "CSV needs at least one column");
  emit(header);
}

CsvWriter::CsvWriter(const std::vector<std::string>& header)
    : width_(header.size()) {
  HINET_REQUIRE(width_ > 0, "CSV needs at least one column");
  emit(header);
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::emit(const std::vector<std::string>& cells) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) line += ',';
    line += escape(cells[i]);
  }
  line += '\n';
  buffer_ += line;
  if (to_file_) file_ << line;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  HINET_REQUIRE(cells.size() == width_, "CSV row width mismatch");
  emit(cells);
  ++rows_;
}

}  // namespace hinet
