// Checksummed binary serialization primitives.
//
// The crash-safety layer (engine snapshots, the experiment journal) stores
// binary state on disk, where torn writes, truncation and bit rot are facts
// of life.  Everything here is therefore defensive by construction:
//
//   ByteWriter — append-only little-endian encoder into a growable buffer;
//   ByteReader — bounds-checked decoder over a byte span: every read
//                validates remaining length first and throws IoError on
//                truncation, so corrupt input can never walk past the end
//                of a buffer (the fuzz suite flips and truncates bytes at
//                every offset and expects a diagnostic, never UB);
//   crc32      — CRC-32 (IEEE 802.3) over a byte span;
//   write_checksummed_file / read_checksummed_file — a tiny container
//                format (magic, version, payload length, CRC, payload)
//                shared by every binary artifact so corruption checks and
//                error messages are implemented exactly once.
//
// Fixed-width little-endian encoding keeps files byte-identical across
// platforms; std::size_t values travel as u64.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace hinet {

/// Thrown on any I/O or (de)serialization failure: truncated input, CRC
/// mismatch, unknown magic, unsupported version, failed syscalls.  The
/// message always names what was expected and what was found.
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `data`, starting from
/// `seed` (pass a previous result to checksum incrementally).
std::uint32_t crc32(std::span<const std::uint8_t> data,
                    std::uint32_t seed = 0);

/// Little-endian append-only encoder.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Doubles travel as their IEEE-754 bit pattern, so values round-trip
  /// bit-for-bit (the aggregate-identity guarantee needs exactness).
  void f64(double v);
  void bytes(std::span<const std::uint8_t> data);

  /// Length-prefixed byte blob (u64 length + raw bytes); the framing lets
  /// readers skip or bound a section they cannot interpret.
  void blob(std::span<const std::uint8_t> data);

  /// u64 length followed by each element as u64.
  void vec_u64(const std::vector<std::uint64_t>& v);
  void vec_size(const std::vector<std::size_t>& v);
  /// u64 length followed by raw bytes (for flag vectors).
  void vec_u8(const std::vector<std::uint8_t>& v);

  std::size_t size() const { return buf_.size(); }
  std::span<const std::uint8_t> buffer() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian decoder over a borrowed byte span.
class ByteReader {
 public:
  /// `what` names the artifact being decoded; it prefixes every error
  /// message ("snapshot payload truncated: ...").
  explicit ByteReader(std::span<const std::uint8_t> data,
                      std::string what = "payload");

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::span<const std::uint8_t> bytes(std::size_t n);

  /// Reads a blob written by ByteWriter::blob.
  std::span<const std::uint8_t> blob();

  std::vector<std::uint64_t> vec_u64();
  std::vector<std::size_t> vec_size();
  std::vector<std::uint8_t> vec_u8();

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }
  const std::string& what() const { return what_; }

  /// Throws IoError unless every byte has been consumed — catches blobs
  /// decoded by a reader of the wrong type (too-short state is caught by
  /// the bounds checks; this catches too-long).
  void expect_done() const;

 private:
  void need(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::string what_;
};

/// Durably records a directory-level change (a rename into the directory,
/// a freshly created file) by fsyncing `path`'s parent directory.  POSIX
/// write-then-rename makes the *file contents* atomic, but the rename
/// itself lives in the directory, and a power failure can forget it unless
/// the directory inode is synced too.  Every atomic-publish step in the
/// tree (snapshots, journals, the results store) funnels through this.
/// Throws IoError when the directory cannot be opened or synced.
void fsync_parent_directory(const std::string& path);

/// A temporary-sibling name for `path` that is unique *across processes*:
/// `<path>.tmp.<pid>.<n>` with a per-process monotonically increasing
/// counter.  Two drainers publishing into one directory can therefore
/// never clobber each other's in-flight temp files — a fixed ".tmp"
/// suffix would let process B truncate the bytes process A is about to
/// rename into place.  (The pid is also what lets recovery tell a dead
/// publisher's orphan temp from a live publisher's in-flight one.)
std::string unique_temp_path(const std::string& path);

/// Deletes leftover `<name>.tmp.<pid>.<n>` siblings in `dir` whose owning
/// process is gone (pid no longer exists).  Temps belonging to live
/// processes are in-flight writes and are left alone.  Returns the number
/// of orphans removed.  Errors reading the directory are an IoError;
/// unlink races (someone else cleaned first) are ignored.
std::size_t remove_orphan_temp_files(const std::string& dir);

/// Writes `payload` to `path` inside the shared container format:
///
///   u32 magic · u16 version · u64 payload length · u32 crc32(payload) ·
///   payload bytes
///
/// The file is written to a temporary sibling (fflush + fsync), renamed
/// into place, and the parent directory is fsynced, so a crash — or a
/// power failure — mid-write can never leave a half-written artifact under
/// `path`, and the rename itself survives the power loss.
void write_checksummed_file(const std::string& path, std::uint32_t magic,
                            std::uint16_t version,
                            std::span<const std::uint8_t> payload);

/// Reads a container written by write_checksummed_file, validating magic,
/// version, declared length against the file size, and the payload CRC.
/// Throws IoError naming the artifact (`what`) and the precise mismatch.
std::vector<std::uint8_t> read_checksummed_file(const std::string& path,
                                                std::uint32_t magic,
                                                std::uint16_t expect_version,
                                                const std::string& what);

}  // namespace hinet
