#include "util/token_set.hpp"

#include <bit>
#include <sstream>

namespace hinet {

TokenSet::TokenSet(std::size_t universe)
    : universe_(universe), words_((universe + kBits - 1) / kBits, 0) {}

TokenSet::TokenSet(std::size_t universe,
                   std::initializer_list<TokenId> tokens)
    : TokenSet(universe) {
  for (TokenId t : tokens) insert(t);
}

void TokenSet::check_token(TokenId t) const {
  HINET_REQUIRE(t < universe_, "token id outside universe");
}

// detlint: hot-path-begin — membership tests and the word-wise set ops below
// run inside every algorithm's transmit/receive; they must stay allocation
// free (fixed word arrays, popcount loops).
bool TokenSet::contains(TokenId t) const {
  check_token(t);
  return (words_[t / kBits] >> (t % kBits)) & 1ULL;
}

bool TokenSet::insert(TokenId t) {
  check_token(t);
  std::uint64_t& w = words_[t / kBits];
  const std::uint64_t mask = 1ULL << (t % kBits);
  const bool added = (w & mask) == 0;
  w |= mask;
  count_ += added ? 1 : 0;
  return added;
}

bool TokenSet::erase(TokenId t) {
  check_token(t);
  std::uint64_t& w = words_[t / kBits];
  const std::uint64_t mask = 1ULL << (t % kBits);
  const bool present = (w & mask) != 0;
  w &= ~mask;
  count_ -= present ? 1 : 0;
  return present;
}

void TokenSet::clear() {
  for (std::uint64_t& w : words_) w = 0;
  count_ = 0;
}

std::size_t TokenSet::unite(const TokenSet& other) {
  HINET_REQUIRE(universe_ == other.universe_, "universe mismatch in unite");
  std::size_t added = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    const std::uint64_t fresh = other.words_[i] & ~words_[i];
    added += static_cast<std::size_t>(std::popcount(fresh));
    words_[i] |= other.words_[i];
  }
  count_ += added;
  return added;
}

void TokenSet::subtract(const TokenSet& other) {
  HINET_REQUIRE(universe_ == other.universe_, "universe mismatch in subtract");
  std::size_t n = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= ~other.words_[i];
    n += static_cast<std::size_t>(std::popcount(words_[i]));
  }
  count_ = n;
}

void TokenSet::intersect(const TokenSet& other) {
  HINET_REQUIRE(universe_ == other.universe_,
                "universe mismatch in intersect");
  std::size_t n = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= other.words_[i];
    n += static_cast<std::size_t>(std::popcount(words_[i]));
  }
  count_ = n;
}

bool TokenSet::subset_of(const TokenSet& other) const {
  HINET_REQUIRE(universe_ == other.universe_, "universe mismatch in subset_of");
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & ~other.words_[i]) return false;
  }
  return true;
}

std::optional<TokenId> TokenSet::min_diff(const TokenSet& other) const {
  HINET_REQUIRE(universe_ == other.universe_, "universe mismatch in min_diff");
  for (std::size_t i = 0; i < words_.size(); ++i) {
    const std::uint64_t d = words_[i] & ~other.words_[i];
    if (d != 0) {
      return static_cast<TokenId>(i * kBits +
                                  static_cast<std::size_t>(std::countr_zero(d)));
    }
  }
  return std::nullopt;
}

std::optional<TokenId> TokenSet::max_diff(const TokenSet& other) const {
  HINET_REQUIRE(universe_ == other.universe_, "universe mismatch in max_diff");
  for (std::size_t i = words_.size(); i-- > 0;) {
    const std::uint64_t d = words_[i] & ~other.words_[i];
    if (d != 0) {
      return static_cast<TokenId>(
          i * kBits + (kBits - 1 -
                       static_cast<std::size_t>(std::countl_zero(d))));
    }
  }
  return std::nullopt;
}

std::optional<TokenId> TokenSet::max_diff(const TokenSet& a,
                                          const TokenSet& b) const {
  HINET_REQUIRE(universe_ == a.universe_ && universe_ == b.universe_,
                "universe mismatch in max_diff");
  for (std::size_t i = words_.size(); i-- > 0;) {
    const std::uint64_t d = words_[i] & ~(a.words_[i] | b.words_[i]);
    if (d != 0) {
      return static_cast<TokenId>(
          i * kBits + (kBits - 1 -
                       static_cast<std::size_t>(std::countl_zero(d))));
    }
  }
  return std::nullopt;
}

std::optional<TokenId> TokenSet::min_element() const {
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] != 0) {
      return static_cast<TokenId>(
          i * kBits + static_cast<std::size_t>(std::countr_zero(words_[i])));
    }
  }
  return std::nullopt;
}

std::optional<TokenId> TokenSet::max_element() const {
  for (std::size_t i = words_.size(); i-- > 0;) {
    if (words_[i] != 0) {
      return static_cast<TokenId>(
          i * kBits +
          (kBits - 1 - static_cast<std::size_t>(std::countl_zero(words_[i]))));
    }
  }
  return std::nullopt;
}
// detlint: hot-path-end

std::vector<TokenId> TokenSet::to_vector() const {
  std::vector<TokenId> out;
  out.reserve(count());
  for (std::size_t i = 0; i < words_.size(); ++i) {
    std::uint64_t w = words_[i];
    while (w != 0) {
      const auto bit = static_cast<std::size_t>(std::countr_zero(w));
      out.push_back(static_cast<TokenId>(i * kBits + bit));
      w &= w - 1;
    }
  }
  return out;
}

std::string TokenSet::to_string() const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (TokenId t : to_vector()) {
    if (!first) os << ',';
    os << t;
    first = false;
  }
  os << '}';
  return os.str();
}

bool operator==(const TokenSet& a, const TokenSet& b) {
  return a.universe_ == b.universe_ && a.words_ == b.words_;
}

TokenSet TokenSet::set_union(const TokenSet& a, const TokenSet& b) {
  HINET_REQUIRE(a.universe_ == b.universe_, "universe mismatch in set_union");
  TokenSet out = a;
  out.unite(b);
  return out;
}

TokenSet TokenSet::from_words(std::size_t universe,
                              std::vector<std::uint64_t> words) {
  TokenSet out(universe);
  HINET_REQUIRE(words.size() == out.words_.size(),
                "word count does not match the universe");
  out.words_ = std::move(words);
  // Mask bits beyond the universe so count()/full() stay truthful.
  const std::size_t tail = universe % kBits;
  if (tail != 0 && !out.words_.empty()) {
    out.words_.back() &= (1ULL << tail) - 1;
  }
  std::size_t n = 0;
  for (std::uint64_t w : out.words_) {
    n += static_cast<std::size_t>(std::popcount(w));
  }
  out.count_ = n;
  return out;
}

}  // namespace hinet
