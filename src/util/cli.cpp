#include "util/cli.hpp"

#include <sstream>
#include <stdexcept>
#include <thread>

namespace hinet {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string tok = argv[i];
    if (tok == "--help" || tok == "-h") {
      help_ = true;
      continue;
    }
    if (tok.rfind("--", 0) != 0 || tok.size() <= 2) {
      throw std::invalid_argument("unrecognised argument: " + tok);
    }
    const auto eq = tok.find('=');
    if (eq == std::string::npos) {
      values_[tok.substr(2)] = "true";  // bare flag
    } else {
      values_[tok.substr(2, eq - 2)] = tok.substr(eq + 1);
    }
  }
}

std::optional<std::string> CliArgs::raw(const std::string& name) {
  auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  consumed_[name] = true;
  return it->second;
}

std::int64_t CliArgs::get_int(const std::string& name, std::int64_t def,
                              const std::string& description) {
  registered_.push_back({name, std::to_string(def), description});
  auto v = raw(name);
  if (!v) return def;
  try {
    std::size_t pos = 0;
    const std::int64_t out = std::stoll(*v, &pos);
    if (pos != v->size()) throw std::invalid_argument("trailing chars");
    return out;
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + name + " expects an integer, got '" +
                                *v + "'");
  }
}

double CliArgs::get_double(const std::string& name, double def,
                           const std::string& description) {
  registered_.push_back({name, std::to_string(def), description});
  auto v = raw(name);
  if (!v) return def;
  try {
    std::size_t pos = 0;
    const double out = std::stod(*v, &pos);
    if (pos != v->size()) throw std::invalid_argument("trailing chars");
    return out;
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + name + " expects a number, got '" + *v +
                                "'");
  }
}

bool CliArgs::get_bool(const std::string& name, bool def,
                       const std::string& description) {
  registered_.push_back({name, def ? "true" : "false", description});
  auto v = raw(name);
  if (!v) return def;
  if (*v == "true" || *v == "1" || *v == "yes") return true;
  if (*v == "false" || *v == "0" || *v == "no") return false;
  throw std::invalid_argument("--" + name + " expects true/false, got '" + *v +
                              "'");
}

std::string CliArgs::get_string(const std::string& name, const std::string& def,
                                const std::string& description) {
  registered_.push_back({name, def, description});
  auto v = raw(name);
  return v ? *v : def;
}

std::size_t CliArgs::get_jobs() {
  const std::int64_t raw_jobs = get_int(
      "jobs", 0,
      "worker threads for repetition batches (0 = hardware concurrency)");
  if (raw_jobs > 0) return static_cast<std::size_t>(raw_jobs);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::string CliArgs::usage(const std::string& program_summary) const {
  std::ostringstream os;
  os << program_summary << "\n\nOptions:\n";
  for (const auto& r : registered_) {
    os << "  --" << r.name << "=<value>  " << r.description
       << " (default: " << r.default_value << ")\n";
  }
  os << "  --help  Show this message\n";
  return os.str();
}

std::vector<std::string> CliArgs::unknown_options() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : values_) {
    if (!consumed_.contains(name)) out.push_back(name);
  }
  return out;
}

}  // namespace hinet
