// Deterministic, seed-stable pseudo-random number generation.
//
// Every stochastic component of the simulator draws from Xoshiro256**,
// seeded through SplitMix64.  We do not use std::mt19937 because its
// distributions are not guaranteed to be reproducible across standard
// library implementations; all distribution logic here is hand-rolled so a
// (seed, parameters) pair pins down an experiment bit-for-bit on any
// platform.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/require.hpp"

namespace hinet {

/// SplitMix64: used only to expand a single 64-bit seed into generator
/// state.  Reference: Sebastiano Vigna, public-domain implementation.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: the workhorse generator.  Satisfies
/// std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words via SplitMix64 so that any 64-bit seed
  /// (including 0) yields a well-mixed state.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& word : s_) word = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  Uses Lemire's multiply-shift rejection
  /// method to avoid modulo bias.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    if (v.size() < 2) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      const std::size_t j = below(i + 1);
      using std::swap;
      swap(v[i], v[j]);
    }
  }

  /// Chooses `count` distinct values from [0, population) without
  /// replacement, in random order.  Requires count <= population.
  std::vector<std::size_t> sample(std::size_t population, std::size_t count);

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    HINET_REQUIRE(!v.empty(), "pick() from empty vector");
    return v[static_cast<std::size_t>(below(v.size()))];
  }

  /// Derives an independent child generator; used to give each subsystem
  /// (topology, clustering, churn, ...) its own stream so adding draws to
  /// one subsystem does not perturb another.
  Rng fork();

  /// The four raw Xoshiro256** state words, for checkpointing: a generator
  /// restored via set_state continues the exact draw sequence of the
  /// original, which is what makes engine snapshot/resume byte-identical.
  std::array<std::uint64_t, 4> state() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }

  void set_state(const std::array<std::uint64_t, 4>& s) {
    for (std::size_t i = 0; i < 4; ++i) s_[i] = s[i];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace hinet
