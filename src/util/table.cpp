#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "util/require.hpp"

namespace hinet {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  HINET_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  HINET_REQUIRE(cells.size() == headers_.size(),
                "row width does not match header count");
  rows_.push_back(std::move(cells));
}

std::string TextTable::cell_to_string(double v) {
  std::ostringstream os;
  if (std::fabs(v - std::round(v)) < 1e-9 && std::fabs(v) < 1e15) {
    os << std::llround(v);
  } else {
    os.precision(3);
    os << std::fixed << v;
  }
  return os.str();
}

std::string TextTable::cell_to_string(long long v) {
  return std::to_string(v);
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(width[c] - row[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  auto emit_rule = [&] {
    os << '+';
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << std::string(width[c] + 2, '-') << '+';
    }
    os << '\n';
  };

  emit_rule();
  emit_row(headers_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.render();
}

}  // namespace hinet
