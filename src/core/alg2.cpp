#include "core/alg2.hpp"

#include "sim/snapshot.hpp"

namespace hinet {

Alg2Process::Alg2Process(NodeId self, TokenSet initial,
                         const Alg2Params& params)
    : self_(self),
      params_(params),
      ta_(std::move(initial)),
      echoed_(ta_.universe()) {
  HINET_REQUIRE(params_.k == ta_.universe(), "universe mismatch");
  HINET_REQUIRE(params_.rounds >= 1, "M must be >= 1");
}

bool Alg2Process::finished(const RoundContext& ctx) const {
  if (ctx.round >= params_.rounds) return true;
  return params_.quiescence_rounds > 0 &&
         quiet_rounds_ >= params_.quiescence_rounds;
}

std::optional<Packet> Alg2Process::transmit(const RoundContext& ctx) {
  switch (ctx.role()) {
    case NodeRole::kHead:
    case NodeRole::kGateway: {
      if (ta_.empty()) return std::nullopt;  // an empty TA carries nothing
      Packet pkt;
      pkt.src = self_;
      pkt.dest = kBroadcastDest;
      pkt.tokens = ta_;
      return pkt;
    }
    case NodeRole::kMember: {
      const ClusterId head = ctx.cluster();
      const bool head_changed = head != last_seen_head_;
      last_seen_head_ = head;
      if (head == kNoCluster) return std::nullopt;
      // Upload on first affiliation and on every re-affiliation; the
      // loss-tolerant variant also re-uploads periodically while some own
      // token has not been echoed back by any head/gateway.
      const bool reupload_due =
          params_.member_reupload_interval > 0 && ctx.round > 0 &&
          ctx.round % params_.member_reupload_interval == 0 &&
          !ta_.subset_of(echoed_);
      const bool must_send = !sent_initial_ || head_changed || reupload_due;
      if (!must_send) return std::nullopt;
      sent_initial_ = true;
      if (ta_.empty()) return std::nullopt;
      ++member_uploads_;
      Packet pkt;
      pkt.src = self_;
      pkt.dest = head;
      pkt.tokens = ta_;
      return pkt;
    }
  }
  return std::nullopt;
}

void Alg2Process::receive(const RoundContext& ctx, InboxView inbox) {
  // Fig. 5: every role unions everything heard ("receive S1,...,St from
  // neighbors; TA <- TA ∪ S1 ∪ ... ∪ St").
  std::size_t learned = 0;
  for (PacketView pkt : inbox) {
    learned += ta_.unite(pkt->tokens);
    // ACK bookkeeping for the loss-tolerant variant: a head/gateway
    // broadcast proves the backbone holds those tokens.
    if (params_.member_reupload_interval > 0 &&
        ctx.hierarchy->role(pkt->src) != NodeRole::kMember) {
      echoed_.unite(pkt->tokens);
    }
  }
  if (learned == 0) {
    ++quiet_rounds_;
  } else {
    quiet_rounds_ = 0;
  }
}

void Alg2Process::save_state(ByteWriter& w) const {
  save_token_set(w, ta_);
  save_token_set(w, echoed_);
  w.u64(last_seen_head_);
  w.u8(sent_initial_ ? 1 : 0);
  w.u64(member_uploads_);
  w.u64(quiet_rounds_);
}

void Alg2Process::restore_state(ByteReader& r) {
  ta_ = load_token_set(r, ta_.universe());
  echoed_ = load_token_set(r, echoed_.universe());
  last_seen_head_ = static_cast<ClusterId>(r.u64());
  sent_initial_ = r.u8() != 0;
  member_uploads_ = r.u64();
  quiet_rounds_ = r.u64();
}

std::vector<ProcessPtr> make_alg2_processes(
    const std::vector<TokenSet>& initial, const Alg2Params& params) {
  std::vector<ProcessPtr> out;
  out.reserve(initial.size());
  for (NodeId v = 0; v < initial.size(); ++v) {
    out.push_back(std::make_unique<Alg2Process>(v, initial[v], params));
  }
  return out;
}

}  // namespace hinet
