#include "core/trace_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace hinet {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  std::ostringstream os;
  os << "trace parse error at line " << line << ": " << what;
  throw std::invalid_argument(os.str());
}

char role_char(NodeRole role) {
  switch (role) {
    case NodeRole::kHead: return 'h';
    case NodeRole::kGateway: return 'g';
    case NodeRole::kMember: return 'm';
  }
  return '?';
}

}  // namespace

void serialize_ctvg(Ctvg& trace, std::ostream& os) {
  const std::size_t n = trace.node_count();
  const std::size_t rounds = trace.round_count();
  os << "hinet-trace v1\n";
  os << "nodes " << n << " rounds " << rounds << '\n';
  for (Round r = 0; r < rounds; ++r) {
    os << "round " << r << '\n';
    os << "edges";
    for (const Edge& e : trace.graph_at(r).edges()) {
      os << ' ' << e.u << '-' << e.v;
    }
    os << '\n';
    const HierarchyView& h = trace.hierarchy_at(r);
    os << "roles ";
    for (NodeId v = 0; v < n; ++v) os << role_char(h.role(v));
    os << '\n';
    os << "clusters";
    for (NodeId v = 0; v < n; ++v) {
      const ClusterId c = h.cluster_of(v);
      if (c == kNoCluster) {
        os << " -";
      } else {
        os << ' ' << c;
      }
    }
    os << '\n';
  }
}

std::string serialize_ctvg(Ctvg& trace) {
  std::ostringstream os;
  serialize_ctvg(trace, os);
  return os.str();
}

Ctvg parse_ctvg(std::istream& is) {
  std::size_t lineno = 0;
  std::string line;
  auto next_line = [&]() -> std::string& {
    if (!std::getline(is, line)) fail(lineno + 1, "unexpected end of input");
    ++lineno;
    return line;
  };

  if (next_line() != "hinet-trace v1") fail(lineno, "bad magic header");

  std::size_t n = 0, rounds = 0;
  {
    std::istringstream hdr(next_line());
    std::string w1, w2;
    if (!(hdr >> w1 >> n >> w2 >> rounds) || w1 != "nodes" || w2 != "rounds") {
      fail(lineno, "expected 'nodes <n> rounds <r>'");
    }
    if (n == 0 || rounds == 0) fail(lineno, "empty trace");
    // Sanity bounds: reject absurd headers before allocating for them
    // (found by the mutation fuzzer — a corrupted digit must produce a
    // clean parse error, not an allocation failure).
    constexpr std::size_t kMaxNodes = 1'000'000;
    constexpr std::size_t kMaxCells = 100'000'000;  // n * rounds
    if (n > kMaxNodes || rounds > kMaxCells / n) {
      fail(lineno, "trace dimensions exceed sanity bounds");
    }
  }

  std::vector<Graph> graphs;
  std::vector<HierarchyView> views;
  graphs.reserve(rounds);
  views.reserve(rounds);

  for (Round r = 0; r < rounds; ++r) {
    {
      std::istringstream rl(next_line());
      std::string w;
      Round idx = 0;
      if (!(rl >> w >> idx) || w != "round" || idx != r) {
        fail(lineno, "expected 'round " + std::to_string(r) + "'");
      }
    }
    Graph g(n);
    {
      std::istringstream el(next_line());
      std::string w;
      if (!(el >> w) || w != "edges") fail(lineno, "expected 'edges'");
      std::string tok;
      while (el >> tok) {
        const auto dash = tok.find('-');
        if (dash == std::string::npos) fail(lineno, "bad edge '" + tok + "'");
        unsigned long u = 0, v = 0;
        try {
          u = std::stoul(tok.substr(0, dash));
          v = std::stoul(tok.substr(dash + 1));
        } catch (const std::exception&) {
          fail(lineno, "bad edge '" + tok + "'");
        }
        if (u >= n || v >= n || u == v) {
          fail(lineno, "edge endpoints out of range in '" + tok + "'");
        }
        g.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v));
      }
    }
    std::string roles;
    {
      std::istringstream rl(next_line());
      std::string w;
      if (!(rl >> w >> roles) || w != "roles" || roles.size() != n) {
        fail(lineno, "expected 'roles <n role chars>'");
      }
    }
    HierarchyView h(n);
    {
      std::istringstream cl(next_line());
      std::string w;
      if (!(cl >> w) || w != "clusters") fail(lineno, "expected 'clusters'");
      // Heads must be declared before members can affiliate: two passes.
      std::vector<std::string> cells(n);
      for (NodeId v = 0; v < n; ++v) {
        if (!(cl >> cells[v])) fail(lineno, "too few cluster ids");
      }
      std::string extra;
      if (cl >> extra) fail(lineno, "too many cluster ids");
      for (NodeId v = 0; v < n; ++v) {
        if (roles[v] == 'h') {
          if (cells[v] != std::to_string(v)) {
            fail(lineno, "head must belong to its own cluster");
          }
          h.set_head(v);
        } else if (roles[v] != 'g' && roles[v] != 'm') {
          fail(lineno, std::string("bad role character '") + roles[v] + "'");
        }
      }
      for (NodeId v = 0; v < n; ++v) {
        if (roles[v] == 'h') continue;
        if (cells[v] == "-") {
          if (roles[v] == 'g') h.set_unaffiliated_gateway(v);
          continue;
        }
        unsigned long c = 0;
        try {
          c = std::stoul(cells[v]);
        } catch (const std::exception&) {
          fail(lineno, "bad cluster id '" + cells[v] + "'");
        }
        if (c >= n) fail(lineno, "cluster id out of range");
        if (!h.is_head(static_cast<NodeId>(c))) {
          fail(lineno, "cluster id does not name a head");
        }
        h.set_member(v, static_cast<ClusterId>(c), roles[v] == 'g');
      }
    }
    graphs.push_back(std::move(g));
    views.push_back(std::move(h));
  }

  return Ctvg(GraphSequence(std::move(graphs)),
              HierarchySequence(std::move(views)));
}

Ctvg parse_ctvg(const std::string& text) {
  std::istringstream is(text);
  return parse_ctvg(is);
}

void save_ctvg(Ctvg& trace, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open " + path + " for writing");
  serialize_ctvg(trace, os);
  if (!os) throw std::runtime_error("write failed: " + path);
}

Ctvg load_ctvg(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open " + path);
  return parse_ctvg(is);
}

}  // namespace hinet
