#include "core/alg1.hpp"

#include "sim/snapshot.hpp"

namespace hinet {

Alg1Process::Alg1Process(NodeId self, TokenSet initial,
                         const Alg1Params& params)
    : self_(self),
      params_(params),
      ta_(std::move(initial)),
      ts_(ta_.universe()),
      tr_(ta_.universe()) {
  HINET_REQUIRE(params_.k == ta_.universe(), "universe mismatch");
  HINET_REQUIRE(params_.phase_length >= 1, "T must be >= 1");
  HINET_REQUIRE(params_.phases >= 1, "M must be >= 1");
}

bool Alg1Process::finished(const RoundContext& ctx) const {
  if (ctx.round >= params_.phases * params_.phase_length) return true;
  return params_.quiescence_phases > 0 &&
         quiet_phases_ >= params_.quiescence_phases;
}

void Alg1Process::maybe_start_phase(const RoundContext& ctx) {
  if (ctx.round < next_phase_start_) return;
  // Entering a new phase (including the first).  The pseudocode clears a
  // head/gateway's TS at phase end and a member's TS/TR at phase start
  // when its head changed; doing all resets lazily at the first activity
  // of the new phase is equivalent because the sets are not read between.
  const bool first_phase = next_phase_start_ == 0;
  next_phase_start_ =
      (ctx.round / params_.phase_length + 1) * params_.phase_length;

  // Quiescence accounting: a completed phase that taught us nothing.
  if (!first_phase) {
    if (ta_.count() == ta_at_phase_start_) {
      ++quiet_phases_;
    } else {
      quiet_phases_ = 0;
    }
  }
  ta_at_phase_start_ = ta_.count();

  resend_sweeps_ = 0;
  reaffiliated_ = false;
  switch (ctx.role()) {
    case NodeRole::kHead:
    case NodeRole::kGateway:
      ts_.clear();
      break;
    case NodeRole::kMember: {
      const ClusterId now = ctx.cluster();
      if (first_phase || now != head_in_prev_phase_) {
        ts_.clear();
        tr_.clear();
        reaffiliated_ = !first_phase;
      }
      break;
    }
  }
  head_in_prev_phase_ = ctx.cluster();
}

std::optional<Packet> Alg1Process::transmit(const RoundContext& ctx) {
  maybe_start_phase(ctx);

  switch (ctx.role()) {
    case NodeRole::kHead:
    case NodeRole::kGateway: {
      auto t = ta_.min_diff(ts_);
      if (!t) {
        // TS == TA: the single sweep of Fig. 4 is done.  With a
        // retransmit budget left, restart the sweep — under loss a
        // broadcast token may never have been heard.
        if (resend_sweeps_ >= params_.retransmit_budget || ta_.empty()) {
          return std::nullopt;
        }
        ++resend_sweeps_;
        ts_.clear();
        t = ta_.min_diff(ts_);
      }
      ts_.insert(*t);
      Packet pkt;
      pkt.src = self_;
      pkt.dest = kBroadcastDest;
      pkt.tokens = TokenSet(params_.k, {*t});
      return pkt;
    }
    case NodeRole::kMember: {
      if (params_.stable_head_optimisation &&
          ctx.round >= params_.phase_length &&
          !(params_.reupload_on_reaffiliation && reaffiliated_)) {
        return std::nullopt;  // Remark 1: upload only in the first phase
      }
      const ClusterId head = ctx.cluster();
      if (head == kNoCluster) return std::nullopt;
      auto t = ta_.max_diff(ts_, tr_);
      if (!t) {
        // TA == TS ∪ TR: upload sweep done.  A resend sweep forgets TS —
        // sends may have been lost.  With ACK piggybacking the head's own
        // broadcasts double as acknowledgements (TR holds exactly the
        // tokens the head provably has), so the sweep re-uploads only
        // TA \ TR; the blind variant forgets TR too and re-uploads all
        // of TA.
        if (resend_sweeps_ >= params_.retransmit_budget) return std::nullopt;
        ++resend_sweeps_;
        ts_.clear();
        if (!params_.ack_piggyback) tr_.clear();
        t = ta_.max_diff(ts_, tr_);
        if (!t) return std::nullopt;  // everything acknowledged already
      }
      ts_.insert(*t);
      Packet pkt;
      pkt.src = self_;
      pkt.dest = head;
      pkt.tokens = TokenSet(params_.k, {*t});
      return pkt;
    }
  }
  return std::nullopt;
}

void Alg1Process::receive(const RoundContext& ctx, InboxView inbox) {
  maybe_start_phase(ctx);  // receive may run before transmit on a finished
                           // node's phase boundary; keep state consistent
  switch (ctx.role()) {
    case NodeRole::kHead:
    case NodeRole::kGateway:
      for (PacketView pkt : inbox) ta_.unite(pkt->tokens);
      break;
    case NodeRole::kMember: {
      const ClusterId head = ctx.cluster();
      for (PacketView pkt : inbox) {
        if (pkt->src == head) {
          ta_.unite(pkt->tokens);
          tr_.unite(pkt->tokens);
        }
      }
      break;
    }
  }
}

void Alg1Process::save_state(ByteWriter& w) const {
  save_token_set(w, ta_);
  save_token_set(w, ts_);
  save_token_set(w, tr_);
  w.u64(head_in_prev_phase_);
  w.u64(next_phase_start_);
  w.u64(ta_at_phase_start_);
  w.u64(quiet_phases_);
  w.u64(resend_sweeps_);
  w.u8(reaffiliated_ ? 1 : 0);
}

void Alg1Process::restore_state(ByteReader& r) {
  ta_ = load_token_set(r, ta_.universe());
  ts_ = load_token_set(r, ts_.universe());
  tr_ = load_token_set(r, tr_.universe());
  head_in_prev_phase_ = static_cast<ClusterId>(r.u64());
  next_phase_start_ = r.u64();
  ta_at_phase_start_ = r.u64();
  quiet_phases_ = r.u64();
  resend_sweeps_ = r.u64();
  reaffiliated_ = r.u8() != 0;
}

std::vector<ProcessPtr> make_alg1_processes(
    const std::vector<TokenSet>& initial, const Alg1Params& params) {
  std::vector<ProcessPtr> out;
  out.reserve(initial.size());
  for (NodeId v = 0; v < initial.size(); ++v) {
    out.push_back(std::make_unique<Alg1Process>(v, initial[v], params));
  }
  return out;
}

std::size_t alg1_scheduled_rounds(const Alg1Params& params) {
  return params.phases * params.phase_length;
}

}  // namespace hinet
