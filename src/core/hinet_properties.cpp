#include "core/hinet_properties.hpp"

#include <algorithm>
#include <sstream>

#include "cluster/algorithms.hpp"

namespace hinet {

namespace {

PropertyResult fail(std::string msg) { return {false, std::move(msg)}; }

/// Iterates every complete aligned phase [p*t, (p+1)*t) inside [0, rounds).
template <typename Fn>
PropertyResult for_each_phase(std::size_t rounds, std::size_t t, Fn&& fn) {
  HINET_REQUIRE(t >= 1, "T must be >= 1");
  for (Round start = 0; start + t <= rounds; start += t) {
    PropertyResult r = fn(start);
    if (!r.holds) return r;
  }
  return {};
}

}  // namespace

PropertyResult check_stable_head_set(Ctvg& g, std::size_t rounds,
                                     std::size_t t) {
  return for_each_phase(rounds, t, [&](Round start) -> PropertyResult {
    const auto reference = g.hierarchy_at(start).heads();
    for (std::size_t i = 1; i < t; ++i) {
      if (g.hierarchy_at(start + i).heads() != reference) {
        std::ostringstream os;
        os << "head set changed inside phase starting at round " << start
           << " (at round " << start + i << ")";
        return fail(os.str());
      }
    }
    return {};
  });
}

PropertyResult check_stable_cluster(Ctvg& g, std::size_t rounds, std::size_t t,
                                    ClusterId k) {
  return for_each_phase(rounds, t, [&](Round start) -> PropertyResult {
    const auto reference = g.hierarchy_at(start).members_of(k);
    for (std::size_t i = 1; i < t; ++i) {
      if (g.hierarchy_at(start + i).members_of(k) != reference) {
        std::ostringstream os;
        os << "cluster " << k << " membership changed inside phase starting "
           << "at round " << start << " (at round " << start + i << ")";
        return fail(os.str());
      }
    }
    return {};
  });
}

PropertyResult check_stable_hierarchy(Ctvg& g, std::size_t rounds,
                                      std::size_t t) {
  return for_each_phase(rounds, t, [&](Round start) -> PropertyResult {
    const HierarchyView& reference = g.hierarchy_at(start);
    for (std::size_t i = 1; i < t; ++i) {
      if (!(g.hierarchy_at(start + i) == reference)) {
        std::ostringstream os;
        os << "hierarchy changed inside phase starting at round " << start
           << " (at round " << start + i << ")";
        return fail(os.str());
      }
    }
    return {};
  });
}

std::optional<Graph> stable_head_subgraph(Ctvg& g, Round start,
                                          std::size_t t) {
  return stable_head_subgraph(g.topology(), g.hierarchy(), start, t);
}

std::optional<Graph> stable_head_subgraph(DynamicNetwork& net,
                                          HierarchyProvider& hier, Round start,
                                          std::size_t t) {
  Graph inter = net.graph_at(start);
  for (std::size_t i = 1; i < t; ++i) {
    inter = Graph::intersection(inter, net.graph_at(start + i));
  }
  const auto heads = hier.hierarchy_at(start).heads();
  if (heads.empty()) return inter;  // vacuously connected head set
  const auto comp = inter.components();
  const std::uint32_t c0 = comp[heads.front()];
  for (NodeId h : heads) {
    if (comp[h] != c0) return std::nullopt;
  }
  // Υ = the component containing the heads: drop edges outside it.
  Graph upsilon(inter.node_count());
  for (const Edge& e : inter.edges()) {
    if (comp[e.u] == c0) upsilon.add_edge(e.u, e.v);
  }
  return upsilon;
}

PropertyResult check_head_connectivity(Ctvg& g, std::size_t rounds,
                                       std::size_t t) {
  return for_each_phase(rounds, t, [&](Round start) -> PropertyResult {
    if (!stable_head_subgraph(g, start, t)) {
      std::ostringstream os;
      os << "no stable connected subgraph spans the heads in phase starting "
         << "at round " << start;
      return fail(os.str());
    }
    return {};
  });
}

int measure_l_hop(Ctvg& g, Round r) {
  return measure_l_hop_connectivity(g.hierarchy_at(r), g.graph_at(r));
}

PropertyResult check_t_interval_l_hop(Ctvg& g, std::size_t rounds,
                                      std::size_t t, int l) {
  HINET_REQUIRE(l >= 1, "L must be >= 1");
  return for_each_phase(rounds, t, [&](Round start) -> PropertyResult {
    const auto upsilon = stable_head_subgraph(g, start, t);
    if (!upsilon) {
      std::ostringstream os;
      os << "no stable connected subgraph spans the heads in phase starting "
         << "at round " << start;
      return fail(os.str());
    }
    const int measured =
        measure_l_hop_connectivity(g.hierarchy_at(start), *upsilon);
    if (measured < 0 || measured > l) {
      std::ostringstream os;
      os << "L-hop head connectivity is " << measured << " > " << l
         << " in phase starting at round " << start;
      return fail(os.str());
    }
    return {};
  });
}

PropertyResult check_hinet(Ctvg& g, std::size_t rounds, std::size_t t, int l) {
  PropertyResult r = check_stable_hierarchy(g, rounds, t);
  if (!r.holds) return r;
  return check_t_interval_l_hop(g, rounds, t, l);
}

}  // namespace hinet
