// Algorithm 2: k-token dissemination in (1, L)-HiNet (Fig. 5).
//
// Built for the weakest stability setting: the hierarchy may change every
// round.  The price is full-set packets:
//   member   — sends its entire TA to its cluster head in round 0 and
//              again whenever its cluster head changes; otherwise silent.
//   head/gw  — broadcasts its entire TA every round.
//   everyone — unions every token set heard into TA.
//
// Termination bounds proved in the paper:
//   Theorem 2: M >= n0 - 1 rounds under plain 1-interval connectivity.
//   Theorem 3: M >= ⌈θ/α⌉ + 1 rounds with (α·L)-interval head connectivity.
//   Theorem 4: M >= θ·L + 1 rounds with L-interval stable hierarchy.
#pragma once

#include "sim/process.hpp"

namespace hinet {

struct Alg2Params {
  std::size_t k = 0;       ///< token universe size
  std::size_t rounds = 0;  ///< M (choose per Theorem 2/3/4)

  /// Adaptive quiescence: when > 0, a node goes silent after this many
  /// consecutive rounds without learning a new token (and wakes up if
  /// something new arrives).  0 = run the full M-round schedule.
  std::size_t quiescence_rounds = 0;

  /// Loss tolerance: Fig. 5 has a member upload its TA exactly once per
  /// affiliation, so one lost upload orphans that member's tokens for as
  /// long as the head stays the same.  When > 0, a member whose TA is not
  /// yet covered by what it has heard from the backbone (heads/gateways
  /// double as acknowledgers — anything they broadcast they provably
  /// hold) re-uploads every this-many rounds.  0 = the paper's schedule
  /// (bit-identical default).
  std::size_t member_reupload_interval = 0;
};

class Alg2Process final : public Process {
 public:
  Alg2Process(NodeId self, TokenSet initial, const Alg2Params& params);

  std::optional<Packet> transmit(const RoundContext& ctx) override;
  void receive(const RoundContext& ctx, InboxView inbox) override;
  const TokenSet& knowledge() const override { return ta_; }
  bool finished(const RoundContext& ctx) const override;

  /// Number of uploads this member performed (1 + re-affiliation sends);
  /// drives the measured n_m · n_r cost audit.
  std::size_t member_uploads() const { return member_uploads_; }

  // Checkpoint hooks (see sim/process.hpp for the contract).
  void save_state(ByteWriter& w) const override;
  void restore_state(ByteReader& r) override;
  bool snapshot_capable() const override { return true; }

 private:
  NodeId self_;
  Alg2Params params_;
  TokenSet ta_;
  TokenSet echoed_;  ///< tokens heard from heads/gateways (implicit ACKs)
  ClusterId last_seen_head_ = kNoCluster;
  bool sent_initial_ = false;
  std::size_t member_uploads_ = 0;
  std::size_t quiet_rounds_ = 0;
};

std::vector<ProcessPtr> make_alg2_processes(
    const std::vector<TokenSet>& initial, const Alg2Params& params);

}  // namespace hinet
