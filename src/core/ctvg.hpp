// CTVG — Cluster-based Time-Varying Graph (Definition 1).
//
// G = (V, E, Γ, ρ, ζ, C, I): a TVG plus the node-status function C and the
// cluster-membership function I.  In this discrete-round reproduction:
//   - V, E, Γ, ρ are realised by a GraphSequence (one Graph per round);
//   - ζ (edge latency) is the constant one round, as in the synchronous
//     send/receive model the paper's algorithms assume;
//   - C and I are realised by a HierarchySequence (one HierarchyView per
//     round).
#pragma once

#include <string>

#include "cluster/hierarchy.hpp"
#include "graph/dynamic.hpp"

namespace hinet {

class Ctvg {
 public:
  /// Takes ownership of a topology trace and a hierarchy trace of the same
  /// node set and length.
  Ctvg(GraphSequence topology, HierarchySequence hierarchy);

  std::size_t node_count() const { return topology_.node_count(); }
  std::size_t round_count() const { return topology_.round_count(); }

  const Graph& graph_at(Round r) { return topology_.graph_at(r); }
  const HierarchyView& hierarchy_at(Round r) {
    return hierarchy_.hierarchy_at(r);
  }

  GraphSequence& topology() { return topology_; }
  HierarchySequence& hierarchy() { return hierarchy_; }

  /// Structural validation of every round (1-hop membership etc.).
  /// Returns an empty string when valid, else the first violation,
  /// prefixed with the round index.
  std::string validate();

 private:
  GraphSequence topology_;
  HierarchySequence hierarchy_;
};

}  // namespace hinet
