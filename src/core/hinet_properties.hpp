// Checkers for the stability properties of Section III.C
// (Definitions 2–8).
//
// The paper's algorithms execute in consecutive *phases* of T rounds, and
// the stability definitions quantify over "T-interval time" — every
// interval [0, T-1].  We interpret intervals as the aligned phases
// [p·T, (p+1)·T) the algorithms actually use (a sliding-window reading of
// Definition 2 would force the head set to never change at all, which
// contradicts the paper's discussion of changing head sets).  Each checker
// scans every complete phase inside [0, rounds).
//
// All checkers return a small result struct with the first offending
// round/cluster, so tests and the bounds-audit bench can print precise
// diagnostics.
#pragma once

#include <optional>
#include <string>

#include "core/ctvg.hpp"

namespace hinet {

struct PropertyResult {
  bool holds = true;
  std::string violation;  ///< empty when holds

  explicit operator bool() const { return holds; }
};

/// Definition 2 (T-interval Stable Cluster Head Set, Ts): within every
/// phase of T rounds, V_h is constant.
PropertyResult check_stable_head_set(Ctvg& g, std::size_t rounds,
                                     std::size_t t);

/// Definition 3 (T-interval Stable Cluster, Tc) for one cluster id k:
/// within every phase, M_k is constant.  (A cluster that does not exist —
/// empty membership — in a phase is vacuously stable for that phase.)
PropertyResult check_stable_cluster(Ctvg& g, std::size_t rounds, std::size_t t,
                                    ClusterId k);

/// Definition 4 (T-interval Stable Hierarchy, Th): Definition 2 plus
/// Definition 3 for every cluster — equivalently, the entire HierarchyView
/// is constant within every phase.
PropertyResult check_stable_hierarchy(Ctvg& g, std::size_t rounds,
                                      std::size_t t);

/// Definition 5 (T-interval Cluster Head Connectivity, Td): for every
/// phase there is a stable subgraph Υ ⊆ every round's graph containing all
/// heads and connected.  Equivalently: all phase-heads lie in a single
/// connected component of the edge-wise intersection of the phase's
/// graphs.  Requires the head set to be stable within the phase (Def. 5
/// speaks of *the* head set of the interval); use check_stable_head_set
/// first when in doubt.
PropertyResult check_head_connectivity(Ctvg& g, std::size_t rounds,
                                       std::size_t t);

/// The Υ of Definition 5 for the phase starting at `start`: the connected
/// component of the stable (intersection) subgraph containing the heads.
/// Returns nullopt when the heads do not share a component.
std::optional<Graph> stable_head_subgraph(Ctvg& g, Round start, std::size_t t);

/// Streaming-friendly form over any topology/hierarchy pair — e.g. the
/// lazily synthesised views of make_hinet_stream, or a FaultyNetwork over
/// one.  Consumes rounds [start, start + t) strictly forward; when the
/// pair streams with a ring window >= t the whole phase stays resident and
/// no replay is triggered.
std::optional<Graph> stable_head_subgraph(DynamicNetwork& net,
                                          HierarchyProvider& hier, Round start,
                                          std::size_t t);

/// Definition 6 (L-hop Cluster Head Connectivity) measured in round r:
/// the bottleneck backbone distance between heads (see
/// measure_l_hop_connectivity).  -1 when heads are backbone-disconnected.
int measure_l_hop(Ctvg& g, Round r);

/// Definition 7 (T-interval L-hop Cluster Head Connectivity): Definition 5
/// holds and, inside every phase's stable subgraph Υ, the L-hop head
/// connectivity measured over backbone nodes is <= l.
PropertyResult check_t_interval_l_hop(Ctvg& g, std::size_t rounds,
                                      std::size_t t, int l);

/// Definition 8 ((T, L)-HiNet): Definition 4 plus Definition 7.
PropertyResult check_hinet(Ctvg& g, std::size_t rounds, std::size_t t, int l);

}  // namespace hinet
