// Synthetic (T, L)-HiNet trace generator.
//
// The paper assumes clustered dynamic-network traces exist (its evaluation
// is purely analytic; no testbed traces were published).  This generator
// is the executable substitute: it *constructs* CTVG traces that satisfy
// Definition 8 by design, with tunable dynamics, so the algorithms can be
// run and measured on workloads matching the model exactly.
//
// Construction, per phase of T rounds:
//   - a head set of `heads` nodes (optionally ∞-stable across phases,
//     optionally churned at phase boundaries);
//   - a backbone chain threading all heads with L-1 relay gateways between
//     consecutive heads, giving exactly L-hop head connectivity; the chain
//     is stable for the whole phase, so it is the Υ of Definition 5;
//   - every remaining node is a member of some head with a stable
//     member-head edge (1-hop clusters); members re-affiliate only at
//     phase boundaries, with probability `reaffiliation_prob`;
//   - every round additionally receives `churn_edges` ephemeral random
//     edges, exercising the "everything else may change arbitrarily"
//     freedom of the model.
//
// With phase_length == 1 this produces (1, L)-HiNet traces: the backbone
// and affiliations may change every round.
#pragma once

#include <cstdint>

#include "core/ctvg.hpp"

namespace hinet {

struct HiNetConfig {
  std::size_t nodes = 0;
  std::size_t heads = 0;         ///< cluster-head count (the θ bound)
  std::size_t phase_length = 1;  ///< T
  std::size_t phases = 1;        ///< trace length = phases * phase_length
  int hop_l = 2;                 ///< L (>= 1); needs (heads-1)*(L-1) gateways
  double reaffiliation_prob = 0.1;  ///< per member, per phase boundary
  double head_churn_prob = 0.0;     ///< per head, per phase boundary
  /// Probability that the backbone (chain order + relay identities) is
  /// re-laid-out at a phase boundary.  1.0 reshuffles every phase (maximum
  /// dynamics allowed by the model); small values model a quasi-stable
  /// relay structure, which is what keeps Algorithm 2's member uploads
  /// proportional to n_r when phases are single rounds.  A head-set change
  /// always forces a rewire.
  double backbone_rewire_prob = 1.0;
  std::size_t churn_edges = 4;      ///< ephemeral random edges per round
  bool stable_heads = false;        ///< ∞-interval stable head set (Remark 1)
  std::uint64_t seed = 1;
};

/// Dynamics statistics observed while generating, in the vocabulary of the
/// paper's Table 1.
struct HiNetTraceStats {
  std::size_t theta = 0;            ///< distinct nodes that ever were heads
  double mean_members = 0.0;        ///< n_m: plain members per round (mean)
  double mean_reaffiliations = 0.0; ///< n_r: re-affiliations per member
  std::size_t reaffiliation_events = 0;
  std::size_t head_changes = 0;     ///< phase boundaries where V_h changed
};

struct HiNetTrace {
  Ctvg ctvg;
  HiNetTraceStats stats;
};

/// Generates a trace; throws PreconditionError when the node budget cannot
/// host `heads` heads plus the (heads-1)*(hop_l-1) backbone gateways.
/// This is the materialized special case (every round resident); at scale
/// prefer make_hinet_stream, which shares the same phase driver and emits
/// byte-identical rounds lazily.
HiNetTrace make_hinet_trace(const HiNetConfig& cfg);

/// A lazily synthesised (T, L)-HiNet trace: topology and hierarchy share
/// one phase driver, so a trace at n = 10^5 is never fully resident — only
/// the current phase plan plus a small ring of realized rounds.  The
/// topology additionally implements TraceStateSource, so Engine snapshots
/// carry the generator RNG state and resume without replaying the prefix.
struct HiNetStream {
  std::unique_ptr<DynamicNetwork> topology;
  std::unique_ptr<HierarchyProvider> hierarchy;
  HiNetTraceStats stats;     ///< from a planning-only dry pass (exact)
  std::size_t rounds = 0;    ///< nominal horizon: phases * phase_length
};

/// Builds a streaming (T, L)-HiNet trace.  `window` is the ring of
/// realized rounds kept resident (>= the engine's needs at 2; pass the
/// monitor's window length to let aligned-window certification re-read a
/// whole phase without replays).  Graphs and hierarchy views are
/// byte-identical, round by round, to make_hinet_trace(cfg).
HiNetStream make_hinet_stream(const HiNetConfig& cfg, std::size_t window = 2);

/// Dynamics statistics of the trace cfg would generate, from a
/// planning-only dry pass: exact and O(phases · n) with no per-round graph
/// materialization (the per-round churn stream is independent of the
/// planning streams, so skipping it cannot perturb the plans).
HiNetTraceStats hinet_trace_stats(const HiNetConfig& cfg);

/// Smallest node count that can host the requested backbone.
std::size_t hinet_min_nodes(std::size_t heads, int hop_l);

}  // namespace hinet
