#include "core/hinet_generator.hpp"

#include <algorithm>

#include "util/binary_io.hpp"
#include "util/rng.hpp"

namespace hinet {

std::size_t hinet_min_nodes(std::size_t heads, int hop_l) {
  HINET_REQUIRE(heads >= 1, "need at least one head");
  HINET_REQUIRE(hop_l >= 1, "L must be >= 1");
  const std::size_t relays =
      heads >= 1 ? (heads - 1) * static_cast<std::size_t>(hop_l - 1) : 0;
  return heads + relays;
}

namespace {

void validate_config(const HiNetConfig& cfg) {
  HINET_REQUIRE(cfg.nodes >= 1, "need nodes");
  HINET_REQUIRE(cfg.heads >= 1, "need at least one head");
  HINET_REQUIRE(cfg.phase_length >= 1, "T must be >= 1");
  HINET_REQUIRE(cfg.phases >= 1, "need at least one phase");
  HINET_REQUIRE(cfg.hop_l >= 1, "L must be >= 1");
  HINET_REQUIRE(cfg.nodes >= hinet_min_nodes(cfg.heads, cfg.hop_l),
                "node budget too small for heads + backbone relays");
  HINET_REQUIRE(
      cfg.reaffiliation_prob >= 0.0 && cfg.reaffiliation_prob <= 1.0,
      "reaffiliation_prob outside [0,1]");
  HINET_REQUIRE(cfg.head_churn_prob >= 0.0 && cfg.head_churn_prob <= 1.0,
                "head_churn_prob outside [0,1]");
  HINET_REQUIRE(
      cfg.backbone_rewire_prob >= 0.0 && cfg.backbone_rewire_prob <= 1.0,
      "backbone_rewire_prob outside [0,1]");
}

/// The backbone layout: heads threaded on a chain with L-1 relay gateways
/// between consecutive heads.  Persisted across phases unless a rewire is
/// requested, so (1, L) traces can model a quasi-stable relay structure.
struct BackboneLayout {
  std::vector<NodeId> chain;     ///< heads in chain order
  std::vector<NodeId> gateways;  ///< relay nodes, chain order
};

BackboneLayout plan_backbone(const HiNetConfig& cfg,
                             const std::vector<NodeId>& head_set, Rng& rng) {
  const std::size_t n = cfg.nodes;
  const auto l = static_cast<std::size_t>(cfg.hop_l);
  BackboneLayout layout;
  layout.chain = head_set;
  rng.shuffle(layout.chain);

  std::vector<char> is_head(n, 0);
  for (NodeId h : layout.chain) is_head[h] = 1;

  std::vector<NodeId> pool;
  pool.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    if (!is_head[v]) pool.push_back(v);
  }
  const std::size_t relay_count =
      layout.chain.empty() ? 0 : (layout.chain.size() - 1) * (l - 1);
  HINET_REQUIRE(pool.size() >= relay_count,
                "not enough nodes for the backbone relays");
  rng.shuffle(pool);
  layout.gateways.assign(
      pool.begin(), pool.begin() + static_cast<std::ptrdiff_t>(relay_count));
  return layout;
}

struct PhasePlan {
  std::vector<ClusterId> head_of;  ///< per node affiliation (kNoCluster ok)
  Graph stable;                    ///< backbone + member edges
  HierarchyView view;
};

/// Lays out one phase from a backbone layout: build the chain graph, then
/// affiliate every non-backbone node with a head (keeping its previous
/// head when possible — the re-affiliation coin decides churn).
PhasePlan plan_phase(const HiNetConfig& cfg, const BackboneLayout& layout,
                     const std::vector<ClusterId>& prev_head_of, Rng& rng,
                     std::size_t* reaffiliations) {
  const std::size_t n = cfg.nodes;
  const auto l = static_cast<std::size_t>(cfg.hop_l);
  PhasePlan plan;
  plan.stable = Graph(n);
  plan.view = HierarchyView(n);
  plan.head_of.assign(n, kNoCluster);

  std::vector<char> is_head(n, 0);
  for (NodeId h : layout.chain) {
    plan.view.set_head(h);
    plan.head_of[h] = h;
    is_head[h] = 1;
  }
  std::vector<char> is_gateway(n, 0);
  for (NodeId v : layout.gateways) is_gateway[v] = 1;

  std::size_t relay_cursor = 0;
  for (std::size_t i = 0; i + 1 < layout.chain.size(); ++i) {
    NodeId prev = layout.chain[i];
    const NodeId right = layout.chain[i + 1];
    for (std::size_t hop = 1; hop < l; ++hop) {
      const NodeId relay = layout.gateways[relay_cursor++];
      plan.stable.add_edge(prev, relay);
      // Affiliate the relay with whichever chain head it is adjacent to;
      // middle relays of an L>3 backbone touch no head and stay
      // unaffiliated (the "at most one cluster" case).
      if (hop == 1) {
        plan.view.set_member(relay, layout.chain[i], /*gateway=*/true);
        plan.head_of[relay] = layout.chain[i];
      } else if (hop == l - 1) {
        plan.view.set_member(relay, right, /*gateway=*/true);
        plan.head_of[relay] = right;
      } else {
        plan.view.set_unaffiliated_gateway(relay);
      }
      prev = relay;
    }
    plan.stable.add_edge(prev, right);
  }

  // Members: everyone not a head or relay.
  for (NodeId v = 0; v < n; ++v) {
    if (is_head[v] || is_gateway[v]) continue;
    const ClusterId prev = prev_head_of[v];
    ClusterId target = kNoCluster;
    const bool prev_valid = prev != kNoCluster && is_head[prev];
    if (prev_valid && !rng.bernoulli(cfg.reaffiliation_prob)) {
      target = prev;
    } else {
      target = rng.pick(layout.chain);
      if (prev_valid && target != prev && reaffiliations != nullptr) {
        ++*reaffiliations;
      }
      // Forced moves (previous head vanished) also count: the member must
      // re-affiliate regardless of the coin.
      if (!prev_valid && prev != kNoCluster && reaffiliations != nullptr) {
        ++*reaffiliations;
      }
    }
    plan.view.set_member(v, target);
    plan.head_of[v] = target;
    plan.stable.add_edge(v, target);
  }

  HINET_ENSURE(plan.view.validate(plan.stable).empty(),
               "generated phase hierarchy invalid");
  return plan;
}

void add_churn_edges(Graph& g, std::size_t count, Rng& rng) {
  const std::size_t n = g.node_count();
  if (n < 2) return;
  for (std::size_t e = 0; e < count; ++e) {
    const auto a = static_cast<NodeId>(rng.below(n));
    const auto b = static_cast<NodeId>(rng.below(n));
    if (a != b) g.add_edge(a, b);
  }
}

void save_rng(ByteWriter& w, const Rng& rng) {
  for (std::uint64_t word : rng.state()) w.u64(word);
}

void load_rng(ByteReader& r, Rng& rng) {
  std::array<std::uint64_t, 4> s{};
  for (std::uint64_t& word : s) word = r.u64();
  rng.set_state(s);
}

void save_node_vec(ByteWriter& w, const std::vector<NodeId>& v) {
  w.u64(v.size());
  for (NodeId x : v) w.u32(x);
}

std::vector<NodeId> load_node_vec(ByteReader& r) {
  const std::uint64_t count = r.u64();
  // Validate before allocating (same contract as ByteReader::vec_u64): a
  // corrupt count must be a typed error, not a multi-GiB zero-fill.
  if (count > r.remaining() / 4) {
    throw IoError("HiNet generator state corrupt: node vector exceeds payload");
  }
  std::vector<NodeId> v(count);
  for (NodeId& x : v) x = r.u32();
  return v;
}

void save_view(ByteWriter& w, const HierarchyView& view) {
  const std::size_t n = view.node_count();
  w.u64(n);
  for (NodeId v = 0; v < n; ++v) {
    w.u8(static_cast<std::uint8_t>(view.role(v)));
    w.u32(view.cluster_of(v));
  }
}

HierarchyView load_view(ByteReader& r) {
  const std::uint64_t n = r.u64();
  // Each node stores a u8 role + u32 cluster, so a count past remaining()/5
  // cannot be honest — check before the two vector(n) allocations.
  if (n > r.remaining() / 5) {
    throw IoError("hierarchy view state corrupt: node count exceeds payload");
  }
  std::vector<NodeRole> roles(n);
  std::vector<ClusterId> clusters(n);
  for (std::size_t v = 0; v < n; ++v) {
    const std::uint8_t raw = r.u8();
    if (raw > static_cast<std::uint8_t>(NodeRole::kMember)) {
      throw IoError("hierarchy view state corrupt: unknown role");
    }
    roles[v] = static_cast<NodeRole>(raw);
    clusters[v] = r.u32();
  }
  // Rebuild through the public mutators (heads first: set_member checks
  // that the target is already a head).
  HierarchyView view(n);
  for (NodeId v = 0; v < n; ++v) {
    if (roles[v] == NodeRole::kHead) view.set_head(v);
  }
  for (NodeId v = 0; v < n; ++v) {
    switch (roles[v]) {
      case NodeRole::kHead:
        break;
      case NodeRole::kGateway:
        if (clusters[v] == kNoCluster) {
          view.set_unaffiliated_gateway(v);
        } else {
          view.set_member(v, clusters[v], /*gateway=*/true);
        }
        break;
      case NodeRole::kMember:
        if (clusters[v] != kNoCluster) view.set_member(v, clusters[v]);
        break;
    }
  }
  return view;
}

/// The phase-granular generator state machine: everything the eager trace
/// builder did per phase, factored out so the materialized and streaming
/// paths run the identical draw sequence.  After reset() (or construction)
/// the driver holds phase 0's plan; advance() moves to the next phase.
class PhaseDriver {
 public:
  explicit PhaseDriver(const HiNetConfig& cfg) : cfg_(cfg) {
    validate_config(cfg);
    reset();
  }

  void reset() {
    Rng rng(cfg_.seed);
    layout_rng_ = rng.fork();
    churn_rng_ = rng.fork();
    head_rng_ = rng.fork();

    // Initial head set: random distinct nodes.
    head_set_.clear();
    for (std::size_t idx : head_rng_.sample(cfg_.nodes, cfg_.heads)) {
      head_set_.push_back(static_cast<NodeId>(idx));
    }
    std::sort(head_set_.begin(), head_set_.end());

    prev_head_of_.assign(cfg_.nodes, kNoCluster);
    ever_head_.assign(cfg_.nodes, 0);
    for (NodeId h : head_set_) ever_head_[h] = 1;

    stats_ = HiNetTraceStats{};
    phase_ = 0;
    plan_current(/*first=*/true);
  }

  /// Plans the next phase (head churn, backbone rewire, affiliation).
  void advance() {
    ++phase_;
    HINET_REQUIRE(phase_ < cfg_.phases, "advance() past the last phase");
    plan_current(/*first=*/false);
  }

  std::size_t phase() const { return phase_; }
  const Graph& stable() const { return plan_.stable; }
  const HierarchyView& view() const { return plan_.view; }

  /// One realized round: the phase's stable graph plus ephemeral churn.
  Graph realize_round() {
    Graph g = plan_.stable;
    add_churn_edges(g, cfg_.churn_edges, churn_rng_);
    return g;
  }

  /// Phase-level statistics accumulated so far; theta is finalized from
  /// the ever-head set on read.  Per-round member statistics are the
  /// caller's (they are plan metadata times phase_length, no draws).
  HiNetTraceStats stats() const {
    HiNetTraceStats s = stats_;
    s.theta = static_cast<std::size_t>(
        std::count(ever_head_.begin(), ever_head_.end(), char(1)));
    return s;
  }

  void save_state(ByteWriter& w) const {
    save_rng(w, layout_rng_);
    save_rng(w, churn_rng_);
    save_rng(w, head_rng_);
    w.u64(phase_);
    save_node_vec(w, head_set_);
    save_node_vec(w, prev_head_of_);
    save_node_vec(w, layout_.chain);
    save_node_vec(w, layout_.gateways);
    save_node_vec(w, plan_.head_of);
    save_graph(w, plan_.stable);
    save_view(w, plan_.view);
  }

  void load_state(ByteReader& r) {
    load_rng(r, layout_rng_);
    load_rng(r, churn_rng_);
    load_rng(r, head_rng_);
    phase_ = r.u64();
    if (phase_ >= cfg_.phases) {
      throw IoError("HiNet generator state corrupt: phase out of range");
    }
    head_set_ = load_node_vec(r);
    prev_head_of_ = load_node_vec(r);
    layout_.chain = load_node_vec(r);
    layout_.gateways = load_node_vec(r);
    plan_.head_of = load_node_vec(r);
    plan_.stable = load_graph(r, cfg_.nodes);
    plan_.view = load_view(r);
    if (prev_head_of_.size() != cfg_.nodes ||
        plan_.head_of.size() != cfg_.nodes ||
        plan_.view.node_count() != cfg_.nodes ||
        plan_.stable.node_count() != cfg_.nodes) {
      throw IoError("HiNet generator state corrupt: node count mismatch");
    }
    // Every stored node id is used as an index downstream (head churn's
    // is_head scratch, backbone planning, affiliation targets), so an
    // out-of-range id from a corrupt payload must be a typed error here,
    // not UB later.
    if (head_set_.size() != cfg_.heads) {
      throw IoError("HiNet generator state corrupt: head set size mismatch");
    }
    const auto check_ids = [&](const std::vector<NodeId>& ids,
                               bool allow_no_cluster) {
      for (const NodeId x : ids) {
        if (x >= cfg_.nodes && !(allow_no_cluster && x == kNoCluster)) {
          throw IoError("HiNet generator state corrupt: node id out of range");
        }
      }
    };
    check_ids(head_set_, false);
    check_ids(layout_.chain, false);
    check_ids(layout_.gateways, false);
    check_ids(prev_head_of_, true);
    check_ids(plan_.head_of, true);
    // plan_phase walks (chain - 1) * (L - 1) relays off the gateway list,
    // so the layout's sizes must be exactly what plan_backbone produces.
    if (layout_.chain.size() != cfg_.heads ||
        layout_.gateways.size() !=
            (cfg_.heads - 1) * (static_cast<std::size_t>(cfg_.hop_l) - 1)) {
      throw IoError("HiNet generator state corrupt: backbone layout size");
    }
    for (std::size_t i = 1; i < head_set_.size(); ++i) {
      if (head_set_[i - 1] >= head_set_[i]) {
        throw IoError("HiNet generator state corrupt: head set not sorted");
      }
    }
    // Restored mid-run state carries no statistics: stats are a whole-
    // trace property, precomputed by hinet_trace_stats and unaffected by
    // where a checkpoint cut the run.
    ever_head_.assign(cfg_.nodes, 0);
    stats_ = HiNetTraceStats{};
  }

 private:
  void plan_current(bool first) {
    // Head churn at phase boundaries (never in ∞-stable mode).
    bool heads_changed = false;
    if (!first && !cfg_.stable_heads && cfg_.head_churn_prob > 0.0) {
      for (NodeId& h : head_set_) {
        if (!head_rng_.bernoulli(cfg_.head_churn_prob)) continue;
        // Swap head role with a random non-head node.
        std::vector<char> is_head(cfg_.nodes, 0);
        for (NodeId x : head_set_) is_head[x] = 1;
        NodeId replacement = h;
        for (int attempt = 0; attempt < 64; ++attempt) {
          const auto cand = static_cast<NodeId>(head_rng_.below(cfg_.nodes));
          if (!is_head[cand]) {
            replacement = cand;
            break;
          }
        }
        if (replacement != h) {
          h = replacement;
          ever_head_[replacement] = 1;
          heads_changed = true;
        }
      }
      if (heads_changed) {
        std::sort(head_set_.begin(), head_set_.end());
        ++stats_.head_changes;
      }
    }

    if (first || heads_changed ||
        layout_rng_.bernoulli(cfg_.backbone_rewire_prob)) {
      layout_ = plan_backbone(cfg_, head_set_, layout_rng_);
    }
    plan_ = plan_phase(cfg_, layout_, prev_head_of_, layout_rng_,
                       &stats_.reaffiliation_events);
    prev_head_of_ = plan_.head_of;
  }

  HiNetConfig cfg_;
  Rng layout_rng_;
  Rng churn_rng_;
  Rng head_rng_;
  std::vector<NodeId> head_set_;
  std::vector<ClusterId> prev_head_of_;
  std::vector<char> ever_head_;
  BackboneLayout layout_;
  PhasePlan plan_;
  std::size_t phase_ = 0;
  HiNetTraceStats stats_;
};

HiNetTraceStats finalize_stats(const HiNetConfig& cfg, HiNetTraceStats stats,
                               double member_round_sum) {
  const auto total_rounds = static_cast<double>(cfg.phases * cfg.phase_length);
  stats.mean_members = member_round_sum / total_rounds;
  stats.mean_reaffiliations =
      stats.mean_members > 0.0
          ? static_cast<double>(stats.reaffiliation_events) /
                stats.mean_members
          : 0.0;
  return stats;
}

/// Shared state of a streaming HiNet trace: the phase driver plus a ring
/// of realized {graph, view} rounds.  The topology and hierarchy adapters
/// below hold one core between them, so the engine's per-round
/// graph_at/hierarchy_at pair costs one synthesis, not two.
class HiNetStreamCore {
 public:
  HiNetStreamCore(const HiNetConfig& cfg, std::size_t window)
      : cfg_(cfg), driver_(cfg), horizon_(cfg.phases * cfg.phase_length) {
    HINET_REQUIRE(window >= 1, "ring window must hold at least one round");
    ring_.resize(std::min(window, horizon_));
  }

  std::size_t node_count() const { return cfg_.nodes; }
  std::size_t horizon() const { return horizon_; }
  std::size_t rewinds() const { return rewinds_; }

  const Graph& graph_at(Round r) { return slot_at(r).graph; }
  const HierarchyView& view_at(Round r) { return slot_at(r).view; }

  void save_state(ByteWriter& w) const {
    w.u64(frontier_);
    ByteWriter dw;
    driver_.save_state(dw);
    w.blob(dw.buffer());
  }

  void load_state(ByteReader& r) {
    const std::uint64_t stored_frontier = r.u64();
    if (stored_frontier > horizon_) {
      throw IoError(
          "HiNet stream state corrupt: frontier is past the horizon");
    }
    ByteReader dr(r.blob(), "HiNet generator state");
    driver_.load_state(dr);
    dr.expect_done();
    frontier_ = stored_frontier;
    resident_begin_ = stored_frontier;
    for (Slot& s : ring_) s = Slot{};
  }

 private:
  struct Slot {
    Graph graph;
    HierarchyView view;
  };

  Slot& slot_at(Round r) {
    if (r >= horizon_) r = horizon_ - 1;  // repeat-final-round convention
    const std::size_t w = ring_.size();
    if (r < frontier_) {
      if (r >= resident_begin_ && r + w >= frontier_) return ring_[r % w];
      ++rewinds_;
      driver_.reset();
      frontier_ = 0;
      resident_begin_ = 0;
    }
    while (frontier_ <= r) {
      const std::size_t phase = frontier_ / cfg_.phase_length;
      while (driver_.phase() < phase) driver_.advance();
      Slot& slot = ring_[frontier_ % w];
      slot.graph = driver_.realize_round();
      slot.view = driver_.view();
      ++frontier_;
    }
    return ring_[r % w];
  }

  HiNetConfig cfg_;
  PhaseDriver driver_;
  std::size_t horizon_;
  Round frontier_ = 0;
  Round resident_begin_ = 0;
  std::size_t rewinds_ = 0;
  std::vector<Slot> ring_;
};

class HiNetStreamTopology final : public DynamicNetwork,
                                  public TraceStateSource {
 public:
  explicit HiNetStreamTopology(std::shared_ptr<HiNetStreamCore> core)
      : core_(std::move(core)) {}

  std::size_t node_count() const override { return core_->node_count(); }
  const Graph& graph_at(Round r) override { return core_->graph_at(r); }

  void save_trace_state(ByteWriter& w) const override {
    core_->save_state(w);
  }
  void restore_trace_state(ByteReader& r) override { core_->load_state(r); }

 private:
  std::shared_ptr<HiNetStreamCore> core_;
};

class HiNetStreamHierarchy final : public HierarchyProvider {
 public:
  explicit HiNetStreamHierarchy(std::shared_ptr<HiNetStreamCore> core)
      : core_(std::move(core)) {}

  std::size_t node_count() const override { return core_->node_count(); }
  const HierarchyView& hierarchy_at(Round r) override {
    return core_->view_at(r);
  }

 private:
  std::shared_ptr<HiNetStreamCore> core_;
};

}  // namespace

HiNetTraceStats hinet_trace_stats(const HiNetConfig& cfg) {
  PhaseDriver driver(cfg);
  double member_round_sum = 0.0;
  for (std::size_t phase = 0;; ++phase) {
    member_round_sum += static_cast<double>(driver.view().member_count()) *
                        static_cast<double>(cfg.phase_length);
    if (phase + 1 >= cfg.phases) break;
    driver.advance();
  }
  return finalize_stats(cfg, driver.stats(), member_round_sum);
}

HiNetStream make_hinet_stream(const HiNetConfig& cfg, std::size_t window) {
  HiNetStream out;
  // The dry planning pass replays exactly the layout/head draws the live
  // stream will make (the churn stream is an independent fork), so the
  // stats are those of the realized trace.
  out.stats = hinet_trace_stats(cfg);
  out.rounds = cfg.phases * cfg.phase_length;
  auto core = std::make_shared<HiNetStreamCore>(cfg, window);
  out.topology = std::make_unique<HiNetStreamTopology>(core);
  out.hierarchy = std::make_unique<HiNetStreamHierarchy>(std::move(core));
  return out;
}

HiNetTrace make_hinet_trace(const HiNetConfig& cfg) {
  PhaseDriver driver(cfg);

  std::vector<Graph> graphs;
  std::vector<HierarchyView> views;
  graphs.reserve(cfg.phases * cfg.phase_length);
  views.reserve(cfg.phases * cfg.phase_length);

  double member_round_sum = 0.0;
  for (std::size_t phase = 0;; ++phase) {
    for (std::size_t r = 0; r < cfg.phase_length; ++r) {
      graphs.push_back(driver.realize_round());
      views.push_back(driver.view());
      member_round_sum += static_cast<double>(driver.view().member_count());
    }
    if (phase + 1 >= cfg.phases) break;
    driver.advance();
  }

  const HiNetTraceStats stats =
      finalize_stats(cfg, driver.stats(), member_round_sum);

  // No whole-trace re-validation here: every phase already passed
  // plan.view.validate(plan.stable) at construction, each round's view IS
  // its phase's validated view, and each round's graph is plan.stable plus
  // churn edges — add_churn_edges only ever ADDS edges, and the per-round
  // check at hop limit 1 is pure edge existence (has_edge), which is
  // monotone under edge addition.  Re-running Ctvg::validate() per round
  // was the single largest cost of trace generation and could never fire.
  Ctvg ctvg(GraphSequence(std::move(graphs)),
            HierarchySequence(std::move(views)));
  return HiNetTrace{std::move(ctvg), stats};
}

}  // namespace hinet
