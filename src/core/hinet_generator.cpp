#include "core/hinet_generator.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace hinet {

std::size_t hinet_min_nodes(std::size_t heads, int hop_l) {
  HINET_REQUIRE(heads >= 1, "need at least one head");
  HINET_REQUIRE(hop_l >= 1, "L must be >= 1");
  const std::size_t relays =
      heads >= 1 ? (heads - 1) * static_cast<std::size_t>(hop_l - 1) : 0;
  return heads + relays;
}

namespace {

/// The backbone layout: heads threaded on a chain with L-1 relay gateways
/// between consecutive heads.  Persisted across phases unless a rewire is
/// requested, so (1, L) traces can model a quasi-stable relay structure.
struct BackboneLayout {
  std::vector<NodeId> chain;     ///< heads in chain order
  std::vector<NodeId> gateways;  ///< relay nodes, chain order
};

BackboneLayout plan_backbone(const HiNetConfig& cfg,
                             const std::vector<NodeId>& head_set, Rng& rng) {
  const std::size_t n = cfg.nodes;
  const auto l = static_cast<std::size_t>(cfg.hop_l);
  BackboneLayout layout;
  layout.chain = head_set;
  rng.shuffle(layout.chain);

  std::vector<char> is_head(n, 0);
  for (NodeId h : layout.chain) is_head[h] = 1;

  std::vector<NodeId> pool;
  pool.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    if (!is_head[v]) pool.push_back(v);
  }
  const std::size_t relay_count =
      layout.chain.empty() ? 0 : (layout.chain.size() - 1) * (l - 1);
  HINET_REQUIRE(pool.size() >= relay_count,
                "not enough nodes for the backbone relays");
  rng.shuffle(pool);
  layout.gateways.assign(
      pool.begin(), pool.begin() + static_cast<std::ptrdiff_t>(relay_count));
  return layout;
}

struct PhasePlan {
  std::vector<ClusterId> head_of;  ///< per node affiliation (kNoCluster ok)
  Graph stable;                    ///< backbone + member edges
  HierarchyView view;
};

/// Lays out one phase from a backbone layout: build the chain graph, then
/// affiliate every non-backbone node with a head (keeping its previous
/// head when possible — the re-affiliation coin decides churn).
PhasePlan plan_phase(const HiNetConfig& cfg, const BackboneLayout& layout,
                     const std::vector<ClusterId>& prev_head_of, Rng& rng,
                     std::size_t* reaffiliations) {
  const std::size_t n = cfg.nodes;
  const auto l = static_cast<std::size_t>(cfg.hop_l);
  PhasePlan plan;
  plan.stable = Graph(n);
  plan.view = HierarchyView(n);
  plan.head_of.assign(n, kNoCluster);

  std::vector<char> is_head(n, 0);
  for (NodeId h : layout.chain) {
    plan.view.set_head(h);
    plan.head_of[h] = h;
    is_head[h] = 1;
  }
  std::vector<char> is_gateway(n, 0);
  for (NodeId v : layout.gateways) is_gateway[v] = 1;

  std::size_t relay_cursor = 0;
  for (std::size_t i = 0; i + 1 < layout.chain.size(); ++i) {
    NodeId prev = layout.chain[i];
    const NodeId right = layout.chain[i + 1];
    for (std::size_t hop = 1; hop < l; ++hop) {
      const NodeId relay = layout.gateways[relay_cursor++];
      plan.stable.add_edge(prev, relay);
      // Affiliate the relay with whichever chain head it is adjacent to;
      // middle relays of an L>3 backbone touch no head and stay
      // unaffiliated (the "at most one cluster" case).
      if (hop == 1) {
        plan.view.set_member(relay, layout.chain[i], /*gateway=*/true);
        plan.head_of[relay] = layout.chain[i];
      } else if (hop == l - 1) {
        plan.view.set_member(relay, right, /*gateway=*/true);
        plan.head_of[relay] = right;
      } else {
        plan.view.set_unaffiliated_gateway(relay);
      }
      prev = relay;
    }
    plan.stable.add_edge(prev, right);
  }

  // Members: everyone not a head or relay.
  for (NodeId v = 0; v < n; ++v) {
    if (is_head[v] || is_gateway[v]) continue;
    const ClusterId prev = prev_head_of[v];
    ClusterId target = kNoCluster;
    const bool prev_valid = prev != kNoCluster && is_head[prev];
    if (prev_valid && !rng.bernoulli(cfg.reaffiliation_prob)) {
      target = prev;
    } else {
      target = rng.pick(layout.chain);
      if (prev_valid && target != prev && reaffiliations != nullptr) {
        ++*reaffiliations;
      }
      // Forced moves (previous head vanished) also count: the member must
      // re-affiliate regardless of the coin.
      if (!prev_valid && prev != kNoCluster && reaffiliations != nullptr) {
        ++*reaffiliations;
      }
    }
    plan.view.set_member(v, target);
    plan.head_of[v] = target;
    plan.stable.add_edge(v, target);
  }

  HINET_ENSURE(plan.view.validate(plan.stable).empty(),
               "generated phase hierarchy invalid");
  return plan;
}

void add_churn_edges(Graph& g, std::size_t count, Rng& rng) {
  const std::size_t n = g.node_count();
  if (n < 2) return;
  for (std::size_t e = 0; e < count; ++e) {
    const auto a = static_cast<NodeId>(rng.below(n));
    const auto b = static_cast<NodeId>(rng.below(n));
    if (a != b) g.add_edge(a, b);
  }
}

}  // namespace

HiNetTrace make_hinet_trace(const HiNetConfig& cfg) {
  HINET_REQUIRE(cfg.nodes >= 1, "need nodes");
  HINET_REQUIRE(cfg.heads >= 1, "need at least one head");
  HINET_REQUIRE(cfg.phase_length >= 1, "T must be >= 1");
  HINET_REQUIRE(cfg.phases >= 1, "need at least one phase");
  HINET_REQUIRE(cfg.hop_l >= 1, "L must be >= 1");
  HINET_REQUIRE(cfg.nodes >= hinet_min_nodes(cfg.heads, cfg.hop_l),
                "node budget too small for heads + backbone relays");
  HINET_REQUIRE(
      cfg.reaffiliation_prob >= 0.0 && cfg.reaffiliation_prob <= 1.0,
      "reaffiliation_prob outside [0,1]");
  HINET_REQUIRE(cfg.head_churn_prob >= 0.0 && cfg.head_churn_prob <= 1.0,
                "head_churn_prob outside [0,1]");
  HINET_REQUIRE(
      cfg.backbone_rewire_prob >= 0.0 && cfg.backbone_rewire_prob <= 1.0,
      "backbone_rewire_prob outside [0,1]");

  Rng rng(cfg.seed);
  Rng layout_rng = rng.fork();
  Rng churn_rng = rng.fork();
  Rng head_rng = rng.fork();

  // Initial head set: random distinct nodes.
  std::vector<NodeId> head_set;
  for (std::size_t idx : head_rng.sample(cfg.nodes, cfg.heads)) {
    head_set.push_back(static_cast<NodeId>(idx));
  }
  std::sort(head_set.begin(), head_set.end());

  std::vector<ClusterId> prev_head_of(cfg.nodes, kNoCluster);
  std::vector<char> ever_head(cfg.nodes, 0);
  for (NodeId h : head_set) ever_head[h] = 1;

  std::vector<Graph> graphs;
  std::vector<HierarchyView> views;
  graphs.reserve(cfg.phases * cfg.phase_length);
  views.reserve(cfg.phases * cfg.phase_length);

  HiNetTraceStats stats;
  double member_round_sum = 0.0;
  BackboneLayout layout;

  for (std::size_t phase = 0; phase < cfg.phases; ++phase) {
    // Head churn at phase boundaries (never in ∞-stable mode).
    bool heads_changed = false;
    if (phase > 0 && !cfg.stable_heads && cfg.head_churn_prob > 0.0) {
      for (NodeId& h : head_set) {
        if (!head_rng.bernoulli(cfg.head_churn_prob)) continue;
        // Swap head role with a random non-head node.
        std::vector<char> is_head(cfg.nodes, 0);
        for (NodeId x : head_set) is_head[x] = 1;
        NodeId replacement = h;
        for (int attempt = 0; attempt < 64; ++attempt) {
          const auto cand = static_cast<NodeId>(head_rng.below(cfg.nodes));
          if (!is_head[cand]) {
            replacement = cand;
            break;
          }
        }
        if (replacement != h) {
          h = replacement;
          ever_head[replacement] = 1;
          heads_changed = true;
        }
      }
      if (heads_changed) {
        std::sort(head_set.begin(), head_set.end());
        ++stats.head_changes;
      }
    }

    if (phase == 0 || heads_changed ||
        layout_rng.bernoulli(cfg.backbone_rewire_prob)) {
      layout = plan_backbone(cfg, head_set, layout_rng);
    }
    PhasePlan plan = plan_phase(cfg, layout, prev_head_of, layout_rng,
                                &stats.reaffiliation_events);
    prev_head_of = plan.head_of;

    for (std::size_t r = 0; r < cfg.phase_length; ++r) {
      Graph g = plan.stable;
      add_churn_edges(g, cfg.churn_edges, churn_rng);
      graphs.push_back(std::move(g));
      views.push_back(plan.view);
      member_round_sum += static_cast<double>(plan.view.member_count());
    }
  }

  stats.theta = static_cast<std::size_t>(
      std::count(ever_head.begin(), ever_head.end(), char(1)));
  const auto total_rounds = static_cast<double>(cfg.phases * cfg.phase_length);
  stats.mean_members = member_round_sum / total_rounds;
  stats.mean_reaffiliations =
      stats.mean_members > 0.0
          ? static_cast<double>(stats.reaffiliation_events) /
                stats.mean_members
          : 0.0;

  // No whole-trace re-validation here: every phase already passed
  // plan.view.validate(plan.stable) at construction, each round's view IS
  // its phase's validated view, and each round's graph is plan.stable plus
  // churn edges — add_churn_edges only ever ADDS edges, and the per-round
  // check at hop limit 1 is pure edge existence (has_edge), which is
  // monotone under edge addition.  Re-running Ctvg::validate() per round
  // was the single largest cost of trace generation and could never fire.
  Ctvg ctvg(GraphSequence(std::move(graphs)),
            HierarchySequence(std::move(views)));
  return HiNetTrace{std::move(ctvg), stats};
}

}  // namespace hinet
