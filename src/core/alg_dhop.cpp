#include "core/alg_dhop.hpp"

namespace hinet {

DhopProcess::DhopProcess(NodeId self, TokenSet initial,
                         const DhopParams& params, RoutingProvider& routing)
    : self_(self),
      params_(params),
      routing_(routing),
      ta_(std::move(initial)),
      last_broadcast_(ta_.universe()),
      uploaded_(ta_.universe()) {
  HINET_REQUIRE(params_.k == ta_.universe(), "universe mismatch");
  HINET_REQUIRE(params_.rounds >= 1, "M must be >= 1");
}

bool DhopProcess::finished(const RoundContext& ctx) const {
  return ctx.round >= params_.rounds;
}

std::optional<Packet> DhopProcess::transmit(const RoundContext& ctx) {
  const ClusterRouting& routing = routing_.routing_at(ctx.round);
  const bool internal = ctx.role() == NodeRole::kHead ||
                        !routing.children[self_].empty();

  if (internal) {
    const bool changed = !ta_.subset_of(last_broadcast_);
    const bool periodic =
        params_.rebroadcast_period > 0 && ever_broadcast_ &&
        ctx.round >= last_broadcast_round_ + params_.rebroadcast_period;
    if ((changed || periodic || !ever_broadcast_) && !ta_.empty()) {
      last_broadcast_ = ta_;
      last_broadcast_round_ = ctx.round;
      ever_broadcast_ = true;
      Packet pkt;
      pkt.src = self_;
      pkt.dest = kBroadcastDest;
      pkt.tokens = ta_;
      return pkt;
    }
    return std::nullopt;
  }

  // Leaf: delta upload towards the parent.
  if (!routing.has_parent(self_)) return std::nullopt;
  TokenSet delta = ta_;
  delta.subtract(uploaded_);
  if (delta.empty()) return std::nullopt;
  uploaded_.unite(delta);
  Packet pkt;
  pkt.src = self_;
  pkt.dest = routing.parent[self_];
  pkt.tokens = std::move(delta);
  return pkt;
}

void DhopProcess::receive(const RoundContext&, InboxView inbox) {
  for (PacketView pkt : inbox) ta_.unite(pkt->tokens);
}

std::vector<ProcessPtr> make_dhop_processes(
    const std::vector<TokenSet>& initial, const DhopParams& params,
    RoutingProvider& routing) {
  std::vector<ProcessPtr> out;
  out.reserve(initial.size());
  for (NodeId v = 0; v < initial.size(); ++v) {
    out.push_back(
        std::make_unique<DhopProcess>(v, initial[v], params, routing));
  }
  return out;
}

}  // namespace hinet
