// Algorithm 1: k-token dissemination in (T, L)-HiNet (Fig. 4), plus the
// Remark 1 optimisation for an ∞-interval stable cluster-head set.
//
// Execution is divided into M phases of T rounds.  Per-node state is the
// paper's three token sets:
//   TA — every token collected;
//   TS — tokens sent by this node in the current phase (heads/gateways) or
//        towards the current head (members);
//   TR — tokens received from the current cluster head (members only).
//
// Per-round behaviour, by role in the current round's hierarchy:
//   member   — if TA ≠ TS ∪ TR, send t = max(TA \ (TS∪TR)) to the cluster
//              head and add it to TS; accept only tokens whose sender is
//              the current cluster head (into TA and TR).
//   head/gw  — if TS ≠ TA, broadcast t = min(TA \ TS) and add it to TS;
//              accept every token heard.
// At a phase boundary: heads/gateways clear TS; a member clears TS and TR
// iff its cluster head changed since the previous phase.
//
// Theorem 1: with T >= k + α·L on a (T, L)-HiNet, all nodes hold all k
// tokens after M >= ⌈θ/α⌉ + 1 phases.
//
// Remark 1 (stable_head_optimisation): when the head set never changes,
// members upload only during the first phase — re-affiliated members need
// not re-send because every head already learned their tokens — and
// M = ⌈|V_h|/α⌉ + 1 phases suffice.
#pragma once

#include "core/cost_model.hpp"
#include "sim/process.hpp"

namespace hinet {

struct Alg1Params {
  std::size_t k = 0;             ///< token universe size
  std::size_t phase_length = 0;  ///< T (Theorem 1 needs T >= k + αL)
  std::size_t phases = 0;        ///< M (Theorem 1 needs M >= ⌈θ/α⌉ + 1)
  bool stable_head_optimisation = false;  ///< Remark 1 member behaviour

  /// Adaptive quiescence (the paper's "a cluster head can stop
  /// broadcasting t after a specific number of time intervals", taken
  /// adaptively): when > 0, a node goes silent after this many consecutive
  /// completed phases without learning a new token, and wakes up again if
  /// something new arrives.  0 = run the full M-phase schedule (the
  /// provably correct default); quiescence trades a small delivery risk
  /// for cost, measured by the robustness bench.
  std::size_t quiescence_phases = 0;

  // Loss-tolerance knobs.  The paper assumes perfect local broadcast, so
  // Fig. 4 sends every token exactly once per phase; one lost packet then
  // silences that token for the rest of the phase.  All three default to
  // the paper-faithful behaviour (engine goldens are bit-identical).

  /// Bounded retransmission: once a node has swept its whole backlog
  /// (TA \ TS, resp. TA \ (TS∪TR), is empty) it may restart the sweep up
  /// to this many times within the same phase instead of going silent.
  /// 0 = single sweep, the paper's schedule.
  std::size_t retransmit_budget = 0;

  /// ACK piggybacking for member resends: a head's own broadcasts double
  /// as acknowledgements (TR holds exactly the tokens the head provably
  /// has), so a resend sweep re-uploads only TA \ TR.  When false the
  /// resend sweep is blind — it forgets TR and re-uploads all of TA.
  /// Only affects rounds spent from retransmit_budget.
  bool ack_piggyback = false;

  /// Remark 1 weakening for churn: with stable_head_optimisation on, a
  /// member that re-affiliates to a *different* head after the first phase
  /// uploads again for that phase (the remark's "no re-send" reasoning
  /// needs the head set stable forever; under crash/recovery the new head
  /// may have missed the member's tokens entirely).
  bool reupload_on_reaffiliation = false;
};

class Alg1Process final : public Process {
 public:
  Alg1Process(NodeId self, TokenSet initial, const Alg1Params& params);

  std::optional<Packet> transmit(const RoundContext& ctx) override;
  void receive(const RoundContext& ctx, InboxView inbox) override;
  const TokenSet& knowledge() const override { return ta_; }
  bool finished(const RoundContext& ctx) const override;

  /// Introspection for tests.
  const TokenSet& sent_set() const { return ts_; }
  const TokenSet& received_from_head_set() const { return tr_; }
  std::size_t resend_sweeps() const { return resend_sweeps_; }

  // Checkpoint hooks (see sim/process.hpp for the contract).
  void save_state(ByteWriter& w) const override;
  void restore_state(ByteReader& r) override;
  bool snapshot_capable() const override { return true; }

 private:
  void maybe_start_phase(const RoundContext& ctx);

  NodeId self_;
  Alg1Params params_;
  TokenSet ta_, ts_, tr_;
  ClusterId head_in_prev_phase_ = kNoCluster;
  Round next_phase_start_ = 0;
  std::size_t ta_at_phase_start_ = 0;
  std::size_t quiet_phases_ = 0;
  std::size_t resend_sweeps_ = 0;  ///< retransmit budget spent this phase
  bool reaffiliated_ = false;      ///< head changed at this phase boundary
};

/// Builds one Alg1Process per node.  `initial[v]` is node v's input token
/// set; all sets must share universe params.k.
std::vector<ProcessPtr> make_alg1_processes(
    const std::vector<TokenSet>& initial, const Alg1Params& params);

/// Total scheduled rounds (M * T) — the engine's max_rounds for a full run.
std::size_t alg1_scheduled_rounds(const Alg1Params& params);

}  // namespace hinet
