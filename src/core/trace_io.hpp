// CTVG trace serialization.
//
// A small line-oriented text format so traces can be archived, diffed, and
// replayed across machines (the simulator is deterministic, but a stored
// trace also decouples experiments from generator versions):
//
//   hinet-trace v1
//   nodes <n> rounds <r>
//   round <i>
//   edges <u>-<v> <u>-<v> ...        (one line, may be empty)
//   roles <h|g|m per node, concatenated>
//   clusters <id|-> ...              (- = unaffiliated)
//   ... (next round)
//
// parse_ctvg validates structure as it reads and throws
// std::invalid_argument with a line number on malformed input.
#pragma once

#include <iosfwd>
#include <string>

#include "core/ctvg.hpp"

namespace hinet {

/// Writes the trace in the format above.
void serialize_ctvg(Ctvg& trace, std::ostream& os);
std::string serialize_ctvg(Ctvg& trace);

/// Parses a trace; throws std::invalid_argument on malformed input.
Ctvg parse_ctvg(std::istream& is);
Ctvg parse_ctvg(const std::string& text);

/// Convenience: file round-trip.  Throws std::runtime_error on I/O errors.
void save_ctvg(Ctvg& trace, const std::string& path);
Ctvg load_ctvg(const std::string& path);

}  // namespace hinet
