#include "core/applications.hpp"

#include "baseline/klo.hpp"
#include "core/alg1.hpp"
#include "core/alg2.hpp"
#include "sim/engine.hpp"

namespace hinet {

bool ComputationResult::agreement_and_exact() const {
  if (answers.empty()) return false;
  const std::size_t n = answers.size();
  const auto& first = answers.front();
  for (const NodeAnswer& a : answers) {
    if (a.count != n) return false;
    if (!a.leader.has_value() || a.leader != first.leader) return false;
  }
  return true;
}

ComputationResult count_and_elect(DynamicNetwork& net,
                                  HierarchyProvider* hierarchy,
                                  const ComputationConfig& cfg) {
  const std::size_t n = net.node_count();
  HINET_REQUIRE(n >= 1, "empty network");

  // Each node injects its own id: k = n, token v at node v.
  std::vector<TokenSet> initial(n, TokenSet(n));
  for (NodeId v = 0; v < n; ++v) initial[v].insert(v);

  std::vector<ProcessPtr> processes;
  std::size_t rounds = cfg.rounds;
  switch (cfg.kind) {
    case DisseminationKind::kAlg1: {
      HINET_REQUIRE(cfg.alg1_phase_length > 0 && cfg.alg1_phases > 0,
                    "Algorithm 1 needs an explicit phase schedule");
      HINET_REQUIRE(hierarchy != nullptr, "Algorithm 1 needs a hierarchy");
      Alg1Params p;
      p.k = n;
      p.phase_length = cfg.alg1_phase_length;
      p.phases = cfg.alg1_phases;
      processes = make_alg1_processes(initial, p);
      if (rounds == 0) rounds = alg1_scheduled_rounds(p);
      break;
    }
    case DisseminationKind::kAlg2: {
      HINET_REQUIRE(hierarchy != nullptr, "Algorithm 2 needs a hierarchy");
      if (rounds == 0) rounds = n >= 2 ? n - 1 : 1;
      Alg2Params p;
      p.k = n;
      p.rounds = rounds;
      processes = make_alg2_processes(initial, p);
      break;
    }
    case DisseminationKind::kKloFlood: {
      if (rounds == 0) rounds = n >= 2 ? n - 1 : 1;
      KloFloodParams p;
      p.k = n;
      p.rounds = rounds;
      processes = make_klo_flood_processes(initial, p);
      break;
    }
  }

  Engine engine(net, hierarchy, std::move(processes));
  ComputationResult result;
  result.metrics =
      engine.run({.max_rounds = rounds, .stop_when_complete = false});
  result.answers.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    const TokenSet& ta = engine.process(v).knowledge();
    result.answers[v].count = ta.count();
    result.answers[v].leader = ta.max_element();
  }
  return result;
}

}  // namespace hinet
