// Analytic performance model of Section V (Tables 2 and 3).
//
// Time cost is in rounds; communication cost is the total number of tokens
// sent ("total size of packets").  The four rows of Table 2:
//
//   model                       time                        communication
//   (k+αL)-interval conn. [7]   ⌈n0/(αL)⌉·(k+αL)            ⌈n0/(2α)⌉·n0·k
//   (k+αL, L)-HiNet             (⌈θ/α⌉+1)·(k+αL)            (⌈θ/α⌉+1)(n0−n_m)k + n_m·n_r·k
//   1-interval connected [7]    n0−1                        (n0−1)·n0·k
//   (1, L)-HiNet                n0−1                        (n0−1)(n0−n_m)k + n_m·n_r·k
//
// Note: the paper's Table 3 prints 51680 for the (1,L)-HiNet row, but the
// row's own formula with the stated parameters gives 50720; we reproduce
// the formula (see EXPERIMENTS.md).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hinet {

/// The notation of Table 1.
struct CostParams {
  std::size_t n0 = 0;     ///< total nodes
  std::size_t theta = 0;  ///< upper bound on cluster-head count
  std::size_t n_m = 0;    ///< average cluster members per round
  std::size_t n_r = 0;    ///< average re-affiliations per member
  std::size_t k = 0;      ///< tokens to disseminate
  std::size_t alpha = 1;  ///< the coefficient α (any positive integer)
  std::size_t l = 1;      ///< L-hop cluster-head connectivity
};

/// Ceiling division helper used throughout the formulas.
std::size_t ceil_div(std::size_t a, std::size_t b);

// --- Row 1: KLO algorithm under (k+αL)-interval connectivity -------------
std::size_t time_klo_interval(const CostParams& p);
std::size_t comm_klo_interval(const CostParams& p);

// --- Row 2: Algorithm 1 on (k+αL, L)-HiNet --------------------------------
std::size_t time_hinet_interval(const CostParams& p);
std::size_t comm_hinet_interval(const CostParams& p);

// --- Row 3: KLO token forwarding under 1-interval connectivity -----------
std::size_t time_klo_one(const CostParams& p);
std::size_t comm_klo_one(const CostParams& p);

// --- Row 4: Algorithm 2 on (1, L)-HiNet -----------------------------------
std::size_t time_hinet_one(const CostParams& p);
std::size_t comm_hinet_one(const CostParams& p);

// --- Derived algorithm schedule parameters --------------------------------

/// Theorem 1's phase-length requirement T >= k + α·L.
std::size_t alg1_min_phase_length(const CostParams& p);

/// Theorem 1's phase count M >= ⌈θ/α⌉ + 1.
std::size_t alg1_phase_count(const CostParams& p);

/// Remark 1 (∞-stable head set): M = ⌈|V_h|/α⌉ + 1 phases.
std::size_t alg1_stable_phase_count(std::size_t live_heads, std::size_t alpha);

/// Theorem 2: Algorithm 2 terminates within n0 - 1 rounds.
std::size_t alg2_round_count(const CostParams& p);

/// KLO pipeline schedule under T-interval connectivity: ⌈n0/(αL)⌉ phases of
/// k + αL rounds (the instantiation the paper compares against).
std::size_t klo_phase_count(const CostParams& p);

/// One evaluated table row.
struct CostRow {
  std::string model;
  std::size_t time = 0;
  std::size_t comm = 0;
};

/// All four rows of Table 2 evaluated at `p` (paper ordering).
std::vector<CostRow> evaluate_table2(const CostParams& p);

/// The Table 3 parameter set: n0=100, θ=30, n_m=40, k=8, α=5, L=2, with
/// n_r=3 for the (T,L) rows and n_r=10 for the (1,L) rows.
CostParams table3_params_hinet_interval();  ///< n_r = 3
CostParams table3_params_hinet_one();       ///< n_r = 10

/// The four Table 3 rows with the per-row n_r convention above.
std::vector<CostRow> evaluate_table3();

}  // namespace hinet
