#include "core/cost_model.hpp"

#include "util/require.hpp"

namespace hinet {

std::size_t ceil_div(std::size_t a, std::size_t b) {
  HINET_REQUIRE(b > 0, "division by zero");
  return (a + b - 1) / b;
}

std::size_t time_klo_interval(const CostParams& p) {
  return ceil_div(p.n0, p.alpha * p.l) * (p.k + p.alpha * p.l);
}

std::size_t comm_klo_interval(const CostParams& p) {
  return ceil_div(p.n0, 2 * p.alpha) * p.n0 * p.k;
}

std::size_t time_hinet_interval(const CostParams& p) {
  return (ceil_div(p.theta, p.alpha) + 1) * (p.k + p.alpha * p.l);
}

std::size_t comm_hinet_interval(const CostParams& p) {
  HINET_REQUIRE(p.n_m <= p.n0, "n_m exceeds n0");
  return (ceil_div(p.theta, p.alpha) + 1) * (p.n0 - p.n_m) * p.k +
         p.n_m * p.n_r * p.k;
}

std::size_t time_klo_one(const CostParams& p) {
  HINET_REQUIRE(p.n0 >= 1, "empty network");
  return p.n0 - 1;
}

std::size_t comm_klo_one(const CostParams& p) {
  HINET_REQUIRE(p.n0 >= 1, "empty network");
  return (p.n0 - 1) * p.n0 * p.k;
}

std::size_t time_hinet_one(const CostParams& p) {
  HINET_REQUIRE(p.n0 >= 1, "empty network");
  return p.n0 - 1;
}

std::size_t comm_hinet_one(const CostParams& p) {
  HINET_REQUIRE(p.n0 >= 1 && p.n_m <= p.n0, "bad parameters");
  return (p.n0 - 1) * (p.n0 - p.n_m) * p.k + p.n_m * p.n_r * p.k;
}

std::size_t alg1_min_phase_length(const CostParams& p) {
  return p.k + p.alpha * p.l;
}

std::size_t alg1_phase_count(const CostParams& p) {
  return ceil_div(p.theta, p.alpha) + 1;
}

std::size_t alg1_stable_phase_count(std::size_t live_heads,
                                    std::size_t alpha) {
  return ceil_div(live_heads, alpha) + 1;
}

std::size_t alg2_round_count(const CostParams& p) {
  HINET_REQUIRE(p.n0 >= 1, "empty network");
  return p.n0 - 1;
}

std::size_t klo_phase_count(const CostParams& p) {
  return ceil_div(p.n0, p.alpha * p.l);
}

std::vector<CostRow> evaluate_table2(const CostParams& p) {
  return {
      {"(k+aL)-interval connected [7]", time_klo_interval(p),
       comm_klo_interval(p)},
      {"(k+aL, L)-HiNet", time_hinet_interval(p), comm_hinet_interval(p)},
      {"1-interval connected [7]", time_klo_one(p), comm_klo_one(p)},
      {"(1, L)-HiNet", time_hinet_one(p), comm_hinet_one(p)},
  };
}

CostParams table3_params_hinet_interval() {
  CostParams p;
  p.n0 = 100;
  p.theta = 30;
  p.n_m = 40;
  p.n_r = 3;
  p.k = 8;
  p.alpha = 5;
  p.l = 2;
  return p;
}

CostParams table3_params_hinet_one() {
  CostParams p = table3_params_hinet_interval();
  p.n_r = 10;
  return p;
}

std::vector<CostRow> evaluate_table3() {
  const CostParams interval = table3_params_hinet_interval();
  const CostParams one = table3_params_hinet_one();
  return {
      {"(k+aL)-interval connected [7]", time_klo_interval(interval),
       comm_klo_interval(interval)},
      {"(k+aL, L)-HiNet", time_hinet_interval(interval),
       comm_hinet_interval(interval)},
      {"1-interval connected [7]", time_klo_one(one), comm_klo_one(one)},
      {"(1, L)-HiNet", time_hinet_one(one), comm_hinet_one(one)},
  };
}

}  // namespace hinet
