#include "core/ctvg.hpp"

#include <sstream>

namespace hinet {

Ctvg::Ctvg(GraphSequence topology, HierarchySequence hierarchy)
    : topology_(std::move(topology)), hierarchy_(std::move(hierarchy)) {
  HINET_REQUIRE(topology_.node_count() == hierarchy_.node_count(),
                "topology/hierarchy node count mismatch");
  HINET_REQUIRE(topology_.round_count() == hierarchy_.round_count(),
                "topology/hierarchy round count mismatch");
}

std::string Ctvg::validate() {
  for (Round r = 0; r < round_count(); ++r) {
    const std::string err = hierarchy_at(r).validate(graph_at(r));
    if (!err.empty()) {
      std::ostringstream os;
      os << "round " << r << ": " << err;
      return os.str();
    }
  }
  return {};
}

}  // namespace hinet
