// Distributed computation on top of k-token dissemination.
//
// The paper's introduction frames dissemination as the building block for
// "distributed computation problems ... studied with rigorous
// correctness"; Kuhn, Lynch & Oshman's original motivation was counting
// and consensus.  This module provides the two classic reductions:
//
//   - Counting: every node injects its own id as a token (k = n); after
//     dissemination each node outputs |TA| as the network size.
//   - Leader election: after the same dissemination, each node outputs
//     max(TA) — all nodes agree on the highest id (the leader).
//
// Both inherit the dissemination algorithm's correctness: on a trace where
// the chosen algorithm's theorem applies, every node's answer is exact and
// all nodes agree.
#pragma once

#include <optional>
#include <vector>

#include "cluster/hierarchy.hpp"
#include "graph/dynamic.hpp"
#include "sim/metrics.hpp"

namespace hinet {

enum class DisseminationKind {
  kAlg1,      ///< Algorithm 1 (needs a (T,L)-HiNet hierarchy + schedule)
  kAlg2,      ///< Algorithm 2 (needs a hierarchy; M = n-1 default)
  kKloFlood,  ///< flat KLO token forwarding (M = n-1)
};

struct ComputationConfig {
  DisseminationKind kind = DisseminationKind::kKloFlood;
  /// Rounds to run; 0 = the theorem default for the kind (n-1 for Alg2 and
  /// KLO; Alg1 requires explicit phase parameters below).
  std::size_t rounds = 0;
  /// Algorithm 1 schedule (used only for kAlg1).
  std::size_t alg1_phase_length = 0;
  std::size_t alg1_phases = 0;
};

struct NodeAnswer {
  std::size_t count = 0;                 ///< |TA|: believed network size
  std::optional<NodeId> leader;          ///< max(TA): believed leader
};

struct ComputationResult {
  std::vector<NodeAnswer> answers;  ///< per node
  SimMetrics metrics;

  /// True when every node's count equals n and every node names the same
  /// leader (the correctness predicate of both reductions).
  bool agreement_and_exact() const;
};

/// Runs the id-dissemination computation.  `hierarchy` may be null for
/// kKloFlood; it is required for kAlg1/kAlg2.
ComputationResult count_and_elect(DynamicNetwork& net,
                                  HierarchyProvider* hierarchy,
                                  const ComputationConfig& cfg);

}  // namespace hinet
