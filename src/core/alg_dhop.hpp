// Multi-hop cluster dissemination — an executable answer to the paper's
// Section VI future-work question ("how to handle multi-hop clusters").
//
// With d-hop clusters a member cannot hand its tokens to the head in one
// hop; this algorithm runs over the intra-cluster BFS trees of
// cluster/routing.hpp:
//
//   - tree-internal nodes (heads and any node with tree children)
//     broadcast their full TA whenever it grew since their last broadcast
//     — one transmission serves the parent and all children at once;
//   - tree leaves send only the *delta* TA \ uploaded to their parent,
//     keeping the cheap-member property that motivates the hierarchy;
//   - everyone unions everything heard (the Fig. 5 rule).
//
// On a stable hierarchy the change-triggered broadcasts quiesce by
// themselves once dissemination completes.  An optional rebroadcast
// period re-announces TA every p rounds for robustness under churn or
// loss (0 = change-triggered only).
#pragma once

#include "cluster/routing.hpp"
#include "sim/process.hpp"

namespace hinet {

struct DhopParams {
  std::size_t k = 0;
  std::size_t rounds = 0;  ///< schedule length
  /// Re-announce TA every this many rounds even without change (0 = off).
  std::size_t rebroadcast_period = 0;
};

class DhopProcess final : public Process {
 public:
  DhopProcess(NodeId self, TokenSet initial, const DhopParams& params,
              RoutingProvider& routing);

  std::optional<Packet> transmit(const RoundContext& ctx) override;
  void receive(const RoundContext& ctx, InboxView inbox) override;
  const TokenSet& knowledge() const override { return ta_; }
  bool finished(const RoundContext& ctx) const override;

 private:
  NodeId self_;
  DhopParams params_;
  RoutingProvider& routing_;
  TokenSet ta_;
  TokenSet last_broadcast_;  ///< TA as of our last full broadcast
  TokenSet uploaded_;        ///< tokens already sent to a parent
  Round last_broadcast_round_ = 0;
  bool ever_broadcast_ = false;
};

std::vector<ProcessPtr> make_dhop_processes(
    const std::vector<TokenSet>& initial, const DhopParams& params,
    RoutingProvider& routing);

}  // namespace hinet
