#include "baseline/flooding.hpp"

#include "sim/metrics.hpp"

namespace hinet {

FloodingProcess::FloodingProcess(NodeId self, TokenSet initial,
                                 const FloodingParams& params)
    : self_(self),
      params_(params),
      ta_(std::move(initial)),
      learned_at_(params.k, kNever) {
  HINET_REQUIRE(params_.k == ta_.universe(), "universe mismatch");
  HINET_REQUIRE(params_.rounds >= 1, "M must be >= 1");
  for (TokenId t : ta_.to_vector()) learned_at_[t] = 0;
}

bool FloodingProcess::finished(const RoundContext& ctx) const {
  return ctx.round >= params_.rounds;
}

std::optional<Packet> FloodingProcess::transmit(const RoundContext& ctx) {
  TokenSet active(params_.k);
  for (TokenId t = 0; t < params_.k; ++t) {
    if (learned_at_[t] == kNever) continue;
    if (params_.activity == FloodingParams::kForever ||
        ctx.round < learned_at_[t] + params_.activity) {
      active.insert(t);
    }
  }
  if (active.empty()) return std::nullopt;
  Packet pkt;
  pkt.src = self_;
  pkt.dest = kBroadcastDest;
  pkt.tokens = std::move(active);
  return pkt;
}

void FloodingProcess::receive(const RoundContext& ctx, InboxView inbox) {
  for (PacketView pkt : inbox) {
    for (TokenId t : pkt->tokens.to_vector()) {
      if (ta_.insert(t)) {
        // Newly learned in round r: active for rounds r+1 .. r+activity.
        learned_at_[t] = ctx.round + 1;
      }
    }
  }
}

std::vector<ProcessPtr> make_flooding_processes(
    const std::vector<TokenSet>& initial, const FloodingParams& params) {
  std::vector<ProcessPtr> out;
  out.reserve(initial.size());
  for (NodeId v = 0; v < initial.size(); ++v) {
    out.push_back(std::make_unique<FloodingProcess>(v, initial[v], params));
  }
  return out;
}

}  // namespace hinet
