#include "baseline/gossip.hpp"

namespace hinet {

GossipProcess::GossipProcess(NodeId self, TokenSet initial,
                             const GossipParams& params)
    : self_(self),
      params_(params),
      ta_(std::move(initial)),
      // Derive a decorrelated per-node stream from (seed, node id).
      rng_(params.seed ^ (0x9e3779b97f4a7c15ULL * (self + 1))) {
  HINET_REQUIRE(params_.k == ta_.universe(), "universe mismatch");
  HINET_REQUIRE(params_.rounds >= 1, "M must be >= 1");
}

bool GossipProcess::finished(const RoundContext& ctx) const {
  return ctx.round >= params_.rounds;
}

std::optional<Packet> GossipProcess::transmit(const RoundContext& ctx) {
  if (ta_.empty()) return std::nullopt;
  const auto neigh = ctx.neighbors();
  if (neigh.empty()) return std::nullopt;
  const NodeId target = neigh[rng_.below(neigh.size())];
  Packet pkt;
  pkt.src = self_;
  pkt.dest = target;
  if (params_.push_full_set) {
    pkt.tokens = ta_;
  } else {
    const auto all = ta_.to_vector();
    const TokenId pick = all[rng_.below(all.size())];
    pkt.tokens = TokenSet(params_.k, {pick});
  }
  return pkt;
}

void GossipProcess::receive(const RoundContext& ctx, InboxView inbox) {
  // Push gossip is addressed: only the chosen target consumes the payload.
  for (PacketView pkt : inbox) {
    if (pkt->dest == ctx.self || pkt->dest == kBroadcastDest) {
      ta_.unite(pkt->tokens);
    }
  }
}

std::vector<ProcessPtr> make_gossip_processes(
    const std::vector<TokenSet>& initial, const GossipParams& params) {
  std::vector<ProcessPtr> out;
  out.reserve(initial.size());
  for (NodeId v = 0; v < initial.size(); ++v) {
    out.push_back(std::make_unique<GossipProcess>(v, initial[v], params));
  }
  return out;
}

}  // namespace hinet
