#include "baseline/network_coding.hpp"

#include <bit>

namespace hinet {

Gf2Basis::Gf2Basis(std::size_t k) : k_(k), words_(words_for(k)) {}

std::size_t Gf2Basis::reduce(std::vector<std::uint64_t>& vec) const {
  HINET_REQUIRE(vec.size() == words_, "vector width mismatch");
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const std::size_t p = pivot_[i];
    if ((vec[p / 64] >> (p % 64)) & 1ULL) {
      for (std::size_t w = 0; w < words_; ++w) vec[w] ^= rows_[i][w];
    }
  }
  // Leading (lowest-index) set bit, or k_ when zero.
  for (std::size_t w = 0; w < words_; ++w) {
    if (vec[w] != 0) {
      return w * 64 + static_cast<std::size_t>(std::countr_zero(vec[w]));
    }
  }
  return k_;
}

bool Gf2Basis::insert(std::vector<std::uint64_t> vec) {
  const std::size_t lead = reduce(vec);
  if (lead >= k_) return false;  // dependent (or zero)
  // Back-substitute: clear this pivot bit from existing rows so the basis
  // stays in reduced form and reduce() needs a single pass.
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if ((rows_[i][lead / 64] >> (lead % 64)) & 1ULL) {
      for (std::size_t w = 0; w < words_; ++w) rows_[i][w] ^= vec[w];
    }
  }
  rows_.push_back(std::move(vec));
  pivot_.push_back(lead);
  return true;
}

bool Gf2Basis::contains(const std::vector<std::uint64_t>& vec) const {
  std::vector<std::uint64_t> copy = vec;
  return reduce(copy) >= k_;
}

bool Gf2Basis::decodable(TokenId t) const {
  HINET_REQUIRE(t < k_, "token outside universe");
  return contains(unit(t));
}

std::vector<std::uint64_t> Gf2Basis::unit(TokenId t) const {
  std::vector<std::uint64_t> vec(words_, 0);
  vec[t / 64] = 1ULL << (t % 64);
  return vec;
}

std::vector<std::uint64_t> Gf2Basis::random_combination(Rng& rng) const {
  std::vector<std::uint64_t> vec(words_, 0);
  if (rows_.empty()) return vec;
  bool nonzero = false;
  while (!nonzero) {
    for (std::size_t w = 0; w < words_; ++w) vec[w] = 0;
    for (const auto& row : rows_) {
      if (rng.bernoulli(0.5)) {
        nonzero = true;  // at least one row included => nonzero (basis rows
                         // are independent, so any nonempty XOR is nonzero)
        for (std::size_t w = 0; w < words_; ++w) vec[w] ^= row[w];
      }
    }
  }
  return vec;
}

NetworkCodingProcess::NetworkCodingProcess(NodeId self, TokenSet initial,
                                           const NetworkCodingParams& params)
    : self_(self),
      params_(params),
      basis_(params.k),
      decoded_(params.k),
      rng_(params.seed ^ (0x9e3779b97f4a7c15ULL * (self + 1))) {
  HINET_REQUIRE(params_.k == initial.universe(), "universe mismatch");
  HINET_REQUIRE(params_.rounds >= 1, "M must be >= 1");
  for (TokenId t : initial.to_vector()) {
    basis_.insert(basis_.unit(t));
  }
  refresh_decoded();
}

bool NetworkCodingProcess::finished(const RoundContext& ctx) const {
  return ctx.round >= params_.rounds;
}

void NetworkCodingProcess::refresh_decoded() {
  if (basis_.full_rank()) {
    for (TokenId t = 0; t < params_.k; ++t) decoded_.insert(t);
    return;
  }
  for (TokenId t = 0; t < params_.k; ++t) {
    if (!decoded_.contains(t) && basis_.decodable(t)) decoded_.insert(t);
  }
}

std::optional<Packet> NetworkCodingProcess::transmit(const RoundContext&) {
  if (basis_.rank() == 0) return std::nullopt;
  Packet pkt;
  pkt.src = self_;
  pkt.dest = kBroadcastDest;
  pkt.tokens =
      TokenSet::from_words(params_.k, basis_.random_combination(rng_));
  pkt.wire_tokens = 1;  // one coded payload + k-bit header
  return pkt;
}

void NetworkCodingProcess::receive(const RoundContext&, InboxView inbox) {
  bool grew = false;
  for (PacketView pkt : inbox) {
    const auto words = pkt->tokens.words();
    grew |= basis_.insert({words.begin(), words.end()});
  }
  if (grew) refresh_decoded();
}

std::vector<ProcessPtr> make_network_coding_processes(
    const std::vector<TokenSet>& initial, const NetworkCodingParams& params) {
  std::vector<ProcessPtr> out;
  out.reserve(initial.size());
  for (NodeId v = 0; v < initial.size(); ++v) {
    out.push_back(
        std::make_unique<NetworkCodingProcess>(v, initial[v], params));
  }
  return out;
}

}  // namespace hinet
