// Flooding baselines from the related-work section.
//
// FloodingProcess implements the family of flooding protocols the paper's
// Section II surveys:
//   - activity == kForever: classic flooding (O'Dell & Wattenhofer) — a
//     node keeps re-broadcasting everything it knows each round; delivery
//     is guaranteed on any 1-interval connected network.
//   - finite activity a: Baumann et al.'s a-active (parsimonious)
//     flooding — a node forwards a token only for the `a` rounds after
//     first learning it, trading delivery latitude for communication.
#pragma once

#include <limits>

#include "sim/process.hpp"

namespace hinet {

struct FloodingParams {
  std::size_t k = 0;
  std::size_t rounds = 0;  ///< M: scheduled length
  /// How many rounds a token stays active (re-broadcast) after a node
  /// first learns it.  kForever = classic flooding.
  std::size_t activity = kForever;

  static constexpr std::size_t kForever =
      std::numeric_limits<std::size_t>::max();
};

class FloodingProcess final : public Process {
 public:
  FloodingProcess(NodeId self, TokenSet initial, const FloodingParams& params);

  std::optional<Packet> transmit(const RoundContext& ctx) override;
  void receive(const RoundContext& ctx, InboxView inbox) override;
  const TokenSet& knowledge() const override { return ta_; }
  bool finished(const RoundContext& ctx) const override;

 private:
  NodeId self_;
  FloodingParams params_;
  TokenSet ta_;
  /// Round at which each known token was learned (kNever = unknown).
  std::vector<std::size_t> learned_at_;
};

std::vector<ProcessPtr> make_flooding_processes(
    const std::vector<TokenSet>& initial, const FloodingParams& params);

}  // namespace hinet
