// Random linear network coding over GF(2) — Haeupler & Karger's approach
// to faster k-token dissemination in dynamic networks (PODC 2011), the
// strongest related-work baseline the paper cites.
//
// Each token t is the unit vector e_t of GF(2)^k.  A node's knowledge is a
// subspace, maintained as a row-reduced basis; each round an informed node
// broadcasts one uniformly random vector of its subspace (a random GF(2)
// combination of its basis rows).  A token is *decodable* when its unit
// vector lies in the subspace; dissemination completes when every node's
// subspace has full rank k.
//
// Cost accounting: a coded packet carries one token-sized payload plus a
// k-bit coefficient header; we count it as one token (the header is
// k/(64·token size) of a token and the paper's model counts tokens), so
// RLNC's measured communication is directly comparable with the
// token-forwarding baselines.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/process.hpp"
#include "util/rng.hpp"

namespace hinet {

/// Incremental GF(2) row basis with rank queries and membership tests.
class Gf2Basis {
 public:
  /// Basis over GF(2)^k.
  explicit Gf2Basis(std::size_t k);

  std::size_t dimension() const { return k_; }
  std::size_t rank() const { return rows_.size(); }
  bool full_rank() const { return rank() == k_; }

  /// Inserts a vector; returns true when it increased the rank.
  bool insert(std::vector<std::uint64_t> vec);

  /// True when `vec` lies in the span.
  bool contains(const std::vector<std::uint64_t>& vec) const;

  /// True when unit vector e_t lies in the span (token t decodable).
  bool decodable(TokenId t) const;

  /// A uniformly random non-zero vector of the span (zero vector when the
  /// basis is empty).
  std::vector<std::uint64_t> random_combination(Rng& rng) const;

  /// Unit vector e_t.
  std::vector<std::uint64_t> unit(TokenId t) const;

  static std::size_t words_for(std::size_t k) { return (k + 63) / 64; }

 private:
  /// Reduces vec by the current pivots; returns the leading bit index or
  /// k_ when reduced to zero.
  std::size_t reduce(std::vector<std::uint64_t>& vec) const;

  std::size_t k_;
  std::size_t words_;
  std::vector<std::vector<std::uint64_t>> rows_;  ///< pivot rows
  std::vector<std::size_t> pivot_;                ///< pivot bit per row
};

struct NetworkCodingParams {
  std::size_t k = 0;
  std::size_t rounds = 0;
  std::uint64_t seed = 1;  ///< base seed; per-node stream derived
};

class NetworkCodingProcess final : public Process {
 public:
  NetworkCodingProcess(NodeId self, TokenSet initial,
                       const NetworkCodingParams& params);

  std::optional<Packet> transmit(const RoundContext& ctx) override;
  void receive(const RoundContext& ctx, InboxView inbox) override;
  /// Decodable tokens (full TA once the basis reaches full rank).
  const TokenSet& knowledge() const override { return decoded_; }
  bool finished(const RoundContext& ctx) const override;

  std::size_t rank() const { return basis_.rank(); }

 private:
  void refresh_decoded();

  NodeId self_;
  NetworkCodingParams params_;
  Gf2Basis basis_;
  TokenSet decoded_;
  Rng rng_;
};

std::vector<ProcessPtr> make_network_coding_processes(
    const std::vector<TokenSet>& initial, const NetworkCodingParams& params);

}  // namespace hinet
