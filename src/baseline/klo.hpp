// Baselines from Kuhn, Lynch & Oshman (STOC 2010) — the comparison target
// of the paper's Section V.
//
// KloFloodProcess — token forwarding under 1-interval connectivity: every
// node broadcasts its entire collected set TA every round, for M rounds.
// With M = n0 - 1 this is the paper's "1-interval connected [7]" row:
// time n0 - 1, worst-case communication (n0-1) · n0 · k.
//
// KloPipelineProcess — the phase-based algorithm for T-interval connected
// networks, instantiated as the paper compares against it: M phases of T
// rounds; each round a node broadcasts the smallest token it has not yet
// broadcast in the current phase; the per-phase sent-set clears at phase
// boundaries.  Pipelining along the window's stable connected subgraph
// spreads every token to at least T - k new nodes per phase.  This is
// exactly the head/gateway side of Algorithm 1 run by *all* nodes on a
// flat network — which is how the paper derives its comparison row
// ("each node needs to broadcast in each phase").
#pragma once

#include "sim/process.hpp"

namespace hinet {

struct KloFloodParams {
  std::size_t k = 0;
  std::size_t rounds = 0;  ///< M; n0 - 1 for guaranteed delivery
};

class KloFloodProcess final : public Process {
 public:
  KloFloodProcess(NodeId self, TokenSet initial, const KloFloodParams& params);

  std::optional<Packet> transmit(const RoundContext& ctx) override;
  void receive(const RoundContext& ctx, InboxView inbox) override;
  const TokenSet& knowledge() const override { return ta_; }
  bool finished(const RoundContext& ctx) const override;

  // Checkpoint hooks (see sim/process.hpp for the contract).
  void save_state(ByteWriter& w) const override;
  void restore_state(ByteReader& r) override;
  bool snapshot_capable() const override { return true; }

 private:
  NodeId self_;
  KloFloodParams params_;
  TokenSet ta_;
};

struct KloPipelineParams {
  std::size_t k = 0;
  std::size_t phase_length = 0;  ///< T; correctness needs T-interval conn.
  std::size_t phases = 0;        ///< M
};

class KloPipelineProcess final : public Process {
 public:
  KloPipelineProcess(NodeId self, TokenSet initial,
                     const KloPipelineParams& params);

  std::optional<Packet> transmit(const RoundContext& ctx) override;
  void receive(const RoundContext& ctx, InboxView inbox) override;
  const TokenSet& knowledge() const override { return ta_; }
  bool finished(const RoundContext& ctx) const override;

  // Checkpoint hooks (see sim/process.hpp for the contract).
  void save_state(ByteWriter& w) const override;
  void restore_state(ByteReader& r) override;
  bool snapshot_capable() const override { return true; }

 private:
  NodeId self_;
  KloPipelineParams params_;
  TokenSet ta_, ts_;
  Round next_phase_start_ = 0;
};

std::vector<ProcessPtr> make_klo_flood_processes(
    const std::vector<TokenSet>& initial, const KloFloodParams& params);

std::vector<ProcessPtr> make_klo_pipeline_processes(
    const std::vector<TokenSet>& initial, const KloPipelineParams& params);

}  // namespace hinet
