// Randomized push gossip (Pittel-style rumour spreading), the classic
// probabilistic dissemination approach surveyed in Section II.
//
// Each round, every node picks one current neighbour uniformly at random
// and pushes one uniformly random token from its collected set.  Delivery
// is probabilistic — the benches report completion *rates* rather than
// guarantees, which is precisely the contrast with the deterministic
// algorithms the paper designs.
#pragma once

#include "sim/process.hpp"
#include "util/rng.hpp"

namespace hinet {

struct GossipParams {
  std::size_t k = 0;
  std::size_t rounds = 0;       ///< scheduled length
  std::uint64_t seed = 1;       ///< base seed; per-node stream derived
  bool push_full_set = false;   ///< push entire TA instead of one token
};

class GossipProcess final : public Process {
 public:
  GossipProcess(NodeId self, TokenSet initial, const GossipParams& params);

  std::optional<Packet> transmit(const RoundContext& ctx) override;
  void receive(const RoundContext& ctx, InboxView inbox) override;
  const TokenSet& knowledge() const override { return ta_; }
  bool finished(const RoundContext& ctx) const override;

 private:
  NodeId self_;
  GossipParams params_;
  TokenSet ta_;
  Rng rng_;
};

std::vector<ProcessPtr> make_gossip_processes(
    const std::vector<TokenSet>& initial, const GossipParams& params);

}  // namespace hinet
