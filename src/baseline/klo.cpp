#include "baseline/klo.hpp"

#include "sim/snapshot.hpp"

namespace hinet {

KloFloodProcess::KloFloodProcess(NodeId self, TokenSet initial,
                                 const KloFloodParams& params)
    : self_(self), params_(params), ta_(std::move(initial)) {
  HINET_REQUIRE(params_.k == ta_.universe(), "universe mismatch");
  HINET_REQUIRE(params_.rounds >= 1, "M must be >= 1");
}

bool KloFloodProcess::finished(const RoundContext& ctx) const {
  return ctx.round >= params_.rounds;
}

std::optional<Packet> KloFloodProcess::transmit(const RoundContext&) {
  if (ta_.empty()) return std::nullopt;
  Packet pkt;
  pkt.src = self_;
  pkt.dest = kBroadcastDest;
  pkt.tokens = ta_;
  return pkt;
}

void KloFloodProcess::receive(const RoundContext&, InboxView inbox) {
  for (PacketView pkt : inbox) ta_.unite(pkt->tokens);
}

KloPipelineProcess::KloPipelineProcess(NodeId self, TokenSet initial,
                                       const KloPipelineParams& params)
    : self_(self),
      params_(params),
      ta_(std::move(initial)),
      ts_(ta_.universe()) {
  HINET_REQUIRE(params_.k == ta_.universe(), "universe mismatch");
  HINET_REQUIRE(params_.phase_length >= 1, "T must be >= 1");
  HINET_REQUIRE(params_.phases >= 1, "M must be >= 1");
}

bool KloPipelineProcess::finished(const RoundContext& ctx) const {
  return ctx.round >= params_.phases * params_.phase_length;
}

std::optional<Packet> KloPipelineProcess::transmit(const RoundContext& ctx) {
  if (ctx.round >= next_phase_start_) {
    ts_.clear();
    next_phase_start_ =
        (ctx.round / params_.phase_length + 1) * params_.phase_length;
  }
  const auto t = ta_.min_diff(ts_);
  if (!t) return std::nullopt;
  ts_.insert(*t);
  Packet pkt;
  pkt.src = self_;
  pkt.dest = kBroadcastDest;
  pkt.tokens = TokenSet(params_.k, {*t});
  return pkt;
}

void KloPipelineProcess::receive(const RoundContext&, InboxView inbox) {
  for (PacketView pkt : inbox) ta_.unite(pkt->tokens);
}

std::vector<ProcessPtr> make_klo_flood_processes(
    const std::vector<TokenSet>& initial, const KloFloodParams& params) {
  std::vector<ProcessPtr> out;
  out.reserve(initial.size());
  for (NodeId v = 0; v < initial.size(); ++v) {
    out.push_back(std::make_unique<KloFloodProcess>(v, initial[v], params));
  }
  return out;
}

void KloFloodProcess::save_state(ByteWriter& w) const {
  save_token_set(w, ta_);
}

void KloFloodProcess::restore_state(ByteReader& r) {
  ta_ = load_token_set(r, ta_.universe());
}

void KloPipelineProcess::save_state(ByteWriter& w) const {
  save_token_set(w, ta_);
  save_token_set(w, ts_);
  w.u64(next_phase_start_);
}

void KloPipelineProcess::restore_state(ByteReader& r) {
  ta_ = load_token_set(r, ta_.universe());
  ts_ = load_token_set(r, ts_.universe());
  next_phase_start_ = r.u64();
}

std::vector<ProcessPtr> make_klo_pipeline_processes(
    const std::vector<TokenSet>& initial, const KloPipelineParams& params) {
  std::vector<ProcessPtr> out;
  out.reserve(initial.size());
  for (NodeId v = 0; v < initial.size(); ++v) {
    out.push_back(std::make_unique<KloPipelineProcess>(v, initial[v], params));
  }
  return out;
}

}  // namespace hinet
