#include "cluster/dhop.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <numeric>
#include <set>

#include "cluster/algorithms.hpp"

namespace hinet {

namespace {

/// Affiliates `v` with `head` regardless of hop distance (set_member
/// requires 1-hop; d-hop clusters bypass that by writing roles directly
/// through the same API head-first).
void affiliate(HierarchyView& h, NodeId v, NodeId head) {
  // HierarchyView::set_member checks only that the target is a head, not
  // adjacency — adjacency is validated separately with validate(g, d).
  h.set_member(v, head);
}

}  // namespace

HierarchyView greedy_dhop_clustering(const Graph& g, std::size_t d) {
  HINET_REQUIRE(d >= 1, "d must be >= 1");
  const std::size_t n = g.node_count();
  HierarchyView h(n);
  std::vector<char> decided(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (decided[v]) continue;
    h.set_head(v);
    decided[v] = 1;
    // Capture every undecided node within d hops.
    const auto dist = g.distances_from(v);
    for (NodeId u = 0; u < n; ++u) {
      if (!decided[u] && dist[u] > 0 &&
          static_cast<std::size_t>(dist[u]) <= d) {
        affiliate(h, u, v);
        decided[u] = 1;
      }
    }
  }
  select_sparse_gateways(h, g);
  return h;
}

HierarchyView maxmin_dhop_clustering(const Graph& g, std::size_t d) {
  HINET_REQUIRE(d >= 1, "d must be >= 1");
  const std::size_t n = g.node_count();
  HierarchyView h(n);
  if (n == 0) return h;

  // Floodmax: d synchronous rounds of max-id propagation.
  std::vector<std::vector<NodeId>> vmax(d + 1, std::vector<NodeId>(n));
  for (NodeId v = 0; v < n; ++v) vmax[0][v] = v;
  for (std::size_t r = 1; r <= d; ++r) {
    for (NodeId v = 0; v < n; ++v) {
      NodeId best = vmax[r - 1][v];
      for (NodeId u : g.neighbors(v)) best = std::max(best, vmax[r - 1][u]);
      vmax[r][v] = best;
    }
  }
  // Floodmin: d rounds of min-id propagation seeded with the floodmax
  // result.
  std::vector<std::vector<NodeId>> vmin(d + 1, std::vector<NodeId>(n));
  vmin[0] = vmax[d];
  for (std::size_t r = 1; r <= d; ++r) {
    for (NodeId v = 0; v < n; ++v) {
      NodeId best = vmin[r - 1][v];
      for (NodeId u : g.neighbors(v)) best = std::min(best, vmin[r - 1][u]);
      vmin[r][v] = best;
    }
  }

  // Winner election per the Max-Min rules.
  std::vector<NodeId> winner(n);
  for (NodeId v = 0; v < n; ++v) {
    // Rule 1: v saw its own id during floodmin -> v is a head.
    bool own_id_returned = false;
    for (std::size_t r = 1; r <= d; ++r) {
      if (vmin[r][v] == v) {
        own_id_returned = true;
        break;
      }
    }
    if (own_id_returned) {
      winner[v] = v;
      continue;
    }
    // Rule 2: node pairs — ids seen in both flood phases; pick the
    // smallest.
    std::set<NodeId> seen_max;
    for (std::size_t r = 0; r <= d; ++r) seen_max.insert(vmax[r][v]);
    NodeId pair_winner = kNoCluster;
    for (std::size_t r = 1; r <= d; ++r) {
      if (seen_max.contains(vmin[r][v])) {
        pair_winner = std::min(pair_winner, vmin[r][v]);
      }
    }
    if (pair_winner != kNoCluster) {
      winner[v] = pair_winner;
      continue;
    }
    // Rule 3: fall back to the floodmax maximum.
    winner[v] = vmax[d][v];
  }

  // Materialise: self-winners head clusters; everyone else affiliates with
  // their winner if it is a head within d hops, otherwise with the nearest
  // head (robustness guard for heuristic corner cases), else promotes.
  std::vector<char> is_head(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (winner[v] == v) {
      h.set_head(v);
      is_head[v] = 1;
    }
  }
  std::vector<std::vector<int>> dist_cache(n);
  auto dist_from = [&](NodeId head) -> const std::vector<int>& {
    if (dist_cache[head].empty()) dist_cache[head] = g.distances_from(head);
    return dist_cache[head];
  };
  for (NodeId v = 0; v < n; ++v) {
    if (is_head[v]) continue;
    NodeId target = kNoCluster;
    const NodeId w = winner[v];
    if (w < n && is_head[w]) {
      const int dist = dist_from(w)[v];
      if (dist > 0 && static_cast<std::size_t>(dist) <= d) target = w;
    }
    if (target == kNoCluster) {
      int best = std::numeric_limits<int>::max();
      for (NodeId head = 0; head < n; ++head) {
        if (!is_head[head]) continue;
        const int dist = dist_from(head)[v];
        if (dist > 0 && static_cast<std::size_t>(dist) <= d && dist < best) {
          best = dist;
          target = head;
        }
      }
    }
    if (target == kNoCluster) {
      h.set_head(v);
      is_head[v] = 1;
    } else {
      affiliate(h, v, target);
    }
  }
  select_sparse_gateways(h, g);
  return h;
}

DhopStats measure_dhop(const HierarchyView& h, const Graph& g) {
  DhopStats s;
  const auto heads = h.heads();
  s.heads = heads.size();
  s.gateways = h.gateway_count();
  std::size_t affiliated = 0;
  for (NodeId head : heads) {
    const auto dist = g.distances_from(head);
    const auto members = h.members_of(head);
    affiliated += members.size();
    for (NodeId v : members) {
      if (v == head) continue;
      if (dist[v] > 0) {
        s.max_radius =
            std::max(s.max_radius, static_cast<std::size_t>(dist[v]));
      }
    }
  }
  s.mean_cluster_size =
      heads.empty() ? 0.0
                    : static_cast<double>(affiliated) /
                          static_cast<double>(heads.size());
  return s;
}

}  // namespace hinet
