// Graphviz (DOT) export of graphs and clustered hierarchies, for
// documentation and trace inspection.  Heads render as doublecircles,
// gateways as diamonds, members as circles; clusters share a color class.
#pragma once

#include <string>

#include "cluster/hierarchy.hpp"
#include "graph/graph.hpp"

namespace hinet {

/// Plain graph as an undirected DOT graph.
std::string to_dot(const Graph& g, const std::string& name = "G");

/// Graph + hierarchy: role-shaped nodes, cluster-indexed color classes,
/// backbone edges (head/gateway incident) drawn bold.
std::string to_dot(const Graph& g, const HierarchyView& h,
                   const std::string& name = "G");

}  // namespace hinet
