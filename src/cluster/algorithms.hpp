// Clustering algorithms.
//
// The paper treats clustering as a given ("the clustering procedure can be
// carried out by clustering algorithms, which is out of the scope of this
// paper") — for an executable reproduction we must build it.  Three
// classic 1-hop schemes are provided; all produce a HierarchyView whose
// members are graph neighbours of their heads, matching the paper's
// system-model assumptions, and all then run the same gateway-marking
// pass.
#pragma once

#include "cluster/hierarchy.hpp"
#include "graph/graph.hpp"

namespace hinet {

/// Lowest-ID clustering (Gerla & Tsai's DCA): scanning ids upward, an
/// undecided node becomes a head iff it has no decided head neighbour with
/// a smaller id; other undecided neighbours join the new head.  The result
/// is an independent dominating set of heads.
HierarchyView lowest_id_clustering(const Graph& g);

/// Highest-degree (connectivity-based) clustering: nodes are scanned in
/// (degree desc, id asc) order; an undecided node becomes a head and
/// captures its undecided neighbours.
HierarchyView highest_degree_clustering(const Graph& g);

/// Greedy weakly-connected dominating set clustering (Han & Jia style):
/// heads are chosen greedily by uncovered-neighbour count until the set
/// dominates the graph; every non-head then affiliates with its
/// lowest-id neighbouring head.
HierarchyView wcds_clustering(const Graph& g);

/// Marks every affiliated non-head node that has a neighbour in a
/// *different* cluster (or an unaffiliated neighbour) as a gateway — these
/// are the nodes that relay tokens between clusters.  Idempotent.  This is
/// the exhaustive ("every border node") policy; on dense graphs it turns
/// most members into gateways, so the clustering algorithms use
/// select_sparse_gateways below instead.
void mark_gateways(HierarchyView& h, const Graph& g);

/// Gateway selection per the paper's system model: "cluster heads may be
/// connected via ordinary nodes along a path selected by the routing
/// protocol"; only the nodes on the selected path are gateways.  For every
/// pair of clusters joined by at least one edge, selects the cheapest
/// bridge — a direct head-head edge (no gateway), one member adjacent to
/// both heads (1 gateway), or a member-member edge (2 gateways) — which
/// realises the paper's observation that L <= 3 in a 1-hop clustered
/// network.  Expects a freshly built view (no gateways marked yet).
void select_sparse_gateways(HierarchyView& h, const Graph& g);

/// Maximum over head pairs (u, v) adjacent in the "cluster adjacency"
/// sense of the shortest backbone path between them, i.e. the paper's
/// Definition 6 L measured on heads+gateways.  Returns 0 when fewer than
/// two heads exist and -1 when some pair of heads is backbone-disconnected.
int measure_l_hop_connectivity(const HierarchyView& h, const Graph& g);

}  // namespace hinet
