// Aggregate hierarchy metrics: the paper's analysis parameters
// (θ, n_m, n_r) measured from an actual hierarchy trace, so the analytic
// cost model can be instantiated with observed values instead of assumed
// ones.
#pragma once

#include "cluster/hierarchy.hpp"
#include "cluster/maintenance.hpp"

namespace hinet {

struct HierarchyMetrics {
  std::size_t rounds = 0;
  std::size_t node_count = 0;
  std::size_t max_heads = 0;        ///< observed θ
  double mean_heads = 0.0;
  double mean_members = 0.0;        ///< observed n_m (plain members per round)
  double mean_gateways = 0.0;
  std::size_t head_set_changes = 0; ///< rounds where V_h differs from prior
};

/// Scans `rounds` rounds of a hierarchy provider.
HierarchyMetrics measure_hierarchy(HierarchyProvider& provider,
                                   std::size_t rounds);

}  // namespace hinet
