#include "cluster/routing.hpp"

#include <queue>

namespace hinet {

namespace {

/// BFS from `head` over nodes allowed by `mask` (or all nodes when mask is
/// empty), writing parents/depths for nodes in the head's cluster that are
/// still unassigned.
void bfs_assign(const Graph& g, const HierarchyView& h, NodeId head,
                const std::vector<char>& mask, ClusterRouting& out) {
  const std::size_t n = g.node_count();
  std::vector<int> dist(n, -1);
  std::vector<NodeId> par(n, ClusterRouting::kNoParent);
  std::queue<NodeId> q;
  dist[head] = 0;
  q.push(head);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (NodeId v : g.neighbors(u)) {
      if (dist[v] >= 0) continue;
      if (!mask.empty() && !mask[v]) continue;
      dist[v] = dist[u] + 1;
      par[v] = u;
      q.push(v);
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    if (v == head) continue;
    if (h.cluster_of(v) != head) continue;
    if (out.parent[v] != ClusterRouting::kNoParent) continue;  // already set
    if (dist[v] > 0) {
      out.parent[v] = par[v];
      out.depth[v] = dist[v];
    }
  }
}

}  // namespace

ClusterRouting build_cluster_routing(const HierarchyView& h, const Graph& g) {
  HINET_REQUIRE(h.node_count() == g.node_count(),
                "hierarchy/graph node count mismatch");
  const std::size_t n = g.node_count();
  ClusterRouting out;
  out.parent.assign(n, ClusterRouting::kNoParent);
  out.depth.assign(n, -1);
  out.children.assign(n, {});

  for (NodeId head : h.heads()) {
    out.depth[head] = 0;
    // Pass 1: stay inside the cluster (head + its own members/gateways).
    std::vector<char> mask(n, 0);
    for (NodeId v : h.members_of(head)) mask[v] = 1;
    bfs_assign(g, h, head, mask, out);
    // Pass 2: any remaining member routes over arbitrary relays.
    bfs_assign(g, h, head, {}, out);
  }

  for (NodeId v = 0; v < n; ++v) {
    if (out.parent[v] != ClusterRouting::kNoParent) {
      out.children[out.parent[v]].push_back(v);
    }
  }
  return out;
}

RoutingSequence::RoutingSequence(std::vector<ClusterRouting> rounds)
    : rounds_(std::move(rounds)) {
  HINET_REQUIRE(!rounds_.empty(), "RoutingSequence needs at least one round");
  n_ = rounds_.front().node_count();
  for (const auto& r : rounds_) {
    HINET_REQUIRE(r.node_count() == n_,
                  "all routing rounds must share the node set");
  }
}

const ClusterRouting& RoutingSequence::routing_at(Round r) {
  if (r >= rounds_.size()) return rounds_.back();
  return rounds_[r];
}

RoutingSequence build_routing_over(DynamicNetwork& net,
                                   HierarchyProvider& hierarchy,
                                   std::size_t rounds) {
  HINET_REQUIRE(rounds >= 1, "need at least one round");
  std::vector<ClusterRouting> out;
  out.reserve(rounds);
  for (Round r = 0; r < rounds; ++r) {
    out.push_back(
        build_cluster_routing(hierarchy.hierarchy_at(r), net.graph_at(r)));
  }
  return RoutingSequence(std::move(out));
}

}  // namespace hinet
