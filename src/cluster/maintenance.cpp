#include "cluster/maintenance.hpp"

#include <algorithm>

namespace hinet {

double MaintenanceStats::mean_reaffiliations() const {
  std::size_t members = 0;
  std::size_t total = 0;
  for (std::size_t c : per_node_reaffiliations) {
    if (c > 0) ++members;
    total += c;
  }
  // Average over nodes that re-affiliated at least once would bias high;
  // the paper's n_r averages over cluster members, so divide by all nodes
  // that were ever plain members — approximated by the node count when no
  // finer bookkeeping is available.
  const std::size_t denom =
      per_node_reaffiliations.empty() ? 1 : per_node_reaffiliations.size();
  (void)members;
  return static_cast<double>(total) / static_cast<double>(denom);
}

ClusterMaintainer::ClusterMaintainer(const Graph& g0, InitialClustering initial)
    : view_(initial ? initial(g0) : lowest_id_clustering(g0)) {
  stats_.per_node_reaffiliations.assign(view_.node_count(), 0);
  HINET_ENSURE(view_.validate(g0).empty(), "initial clustering invalid");
}

const HierarchyView& ClusterMaintainer::step(const Graph& g) {
  HINET_REQUIRE(g.node_count() == view_.node_count(),
                "node count changed between rounds");
  const std::size_t n = g.node_count();
  const HierarchyView prev = view_;
  HierarchyView next(n);

  // Pass 1: resolve heads.  A head abdicates only when adjacent to a
  // smaller-id head that itself remains a head; processing ids upward
  // makes that decision well-defined in one pass.
  std::vector<char> stays_head(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (!prev.is_head(v)) continue;
    bool abdicate = false;
    for (NodeId u : g.neighbors(v)) {
      if (u < v && prev.is_head(u) && stays_head[u]) {
        abdicate = true;
        break;
      }
    }
    if (!abdicate) stays_head[v] = 1;
  }
  for (NodeId v = 0; v < n; ++v) {
    if (stays_head[v]) next.set_head(v);
  }

  // Pass 2: affiliate everyone else, preferring the previous head when the
  // link survived (least cluster change).
  auto lowest_adjacent_head = [&](NodeId v) -> ClusterId {
    for (NodeId u : g.neighbors(v)) {  // neighbours are sorted by id
      if (stays_head[u]) return u;
    }
    return kNoCluster;
  };
  for (NodeId v = 0; v < n; ++v) {
    if (stays_head[v]) continue;
    const ClusterId old_head = prev.is_head(v) ? kNoCluster : prev.cluster_of(v);
    ClusterId target = kNoCluster;
    if (old_head != kNoCluster && old_head < n && stays_head[old_head] &&
        g.has_edge(v, old_head)) {
      target = old_head;
    } else {
      target = lowest_adjacent_head(v);
    }
    if (target == kNoCluster) {
      next.set_head(v);  // orphan: promote
      stays_head[v] = 1;
    } else {
      next.set_member(v, target);
    }
  }

  // Pass 3: orphans promoted in pass 2 may now capture other orphans that
  // were processed before them; re-run affiliation for still-orphaned
  // nodes (those that self-promoted but have a smaller-id new head
  // neighbour keep their promotion — stability over optimality).
  select_sparse_gateways(next, g);

  // Statistics.
  ++stats_.rounds;
  for (NodeId v = 0; v < n; ++v) {
    const bool was_head = prev.is_head(v);
    const bool is_head_now = next.is_head(v);
    if (!was_head && is_head_now) ++stats_.head_promotions;
    if (was_head && !is_head_now) ++stats_.head_abdications;
    if (!was_head && !is_head_now &&
        prev.cluster_of(v) != next.cluster_of(v)) {
      ++stats_.reaffiliations;
      ++stats_.per_node_reaffiliations[v];
    }
  }

  HINET_ENSURE(next.validate(g).empty(), "maintained hierarchy invalid");
  view_ = std::move(next);
  return view_;
}

MaintainedHierarchy maintain_over(DynamicNetwork& net, std::size_t rounds,
                                  ClusterMaintainer::InitialClustering initial) {
  HINET_REQUIRE(rounds >= 1, "need at least one round");
  ClusterMaintainer maint(net.graph_at(0), std::move(initial));
  std::vector<HierarchyView> views;
  views.reserve(rounds);
  views.push_back(maint.view());
  for (Round r = 1; r < rounds; ++r) {
    views.push_back(maint.step(net.graph_at(r)));
  }
  return MaintainedHierarchy{HierarchySequence(std::move(views)),
                             maint.stats()};
}

}  // namespace hinet
