// Cluster-based hierarchy: the per-round role assignment of the CTVG model.
//
// Definition 1 of the paper adds two functions to a time-varying graph:
//   C : V×Γ -> {h, g, m}   node status (head / gateway / member)
//   I : V×Γ -> N           id of the cluster the node belongs to
// A HierarchyView is the restriction of (C, I) to a single round.  As in
// the paper, the cluster id is the node id of the cluster head, clusters
// are 1-hop (members are neighbours of their head), and gateways are
// ordinary cluster members that additionally forward between clusters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/dynamic.hpp"
#include "graph/graph.hpp"

namespace hinet {

enum class NodeRole : std::uint8_t { kHead, kGateway, kMember };

const char* node_role_name(NodeRole role);

/// Cluster identifier == node id of the head (paper convention).
using ClusterId = NodeId;

/// Sentinel for nodes not currently affiliated with any cluster.  The
/// paper allows "at most one cluster at any given time".
inline constexpr ClusterId kNoCluster = static_cast<ClusterId>(-1);

class HierarchyView {
 public:
  HierarchyView() = default;

  /// Creates a view with every node an unaffiliated member.
  explicit HierarchyView(std::size_t n);

  std::size_t node_count() const { return role_.size(); }

  NodeRole role(NodeId v) const;
  ClusterId cluster_of(NodeId v) const;

  /// Declares v the head of its own cluster.
  void set_head(NodeId v);

  /// Affiliates v with the cluster headed by `head`, as plain member or
  /// gateway.  `head` must already be a head.
  void set_member(NodeId v, ClusterId head, bool gateway = false);

  /// Promotes an existing member to gateway status (C(v) = g) without
  /// changing its affiliation.
  void mark_gateway(NodeId v);

  /// Declares v a relay gateway with no cluster affiliation.  The paper's
  /// system model says nodes belong to *at most* one cluster; backbone
  /// relays more than one hop from every head (only possible when L > 3)
  /// are exactly such nodes.
  void set_unaffiliated_gateway(NodeId v);

  bool is_head(NodeId v) const { return role(v) == NodeRole::kHead; }
  bool is_gateway(NodeId v) const { return role(v) == NodeRole::kGateway; }

  /// The paper's V_h^i: sorted list of head node ids this round.
  std::vector<NodeId> heads() const;

  /// The paper's M_k^i: sorted members of cluster k, *including* the head
  /// itself and gateways affiliated with k.
  std::vector<NodeId> members_of(ClusterId k) const;

  /// Heads plus gateways: the backbone that relays between clusters.
  std::vector<NodeId> backbone() const;

  std::size_t head_count() const;
  std::size_t gateway_count() const;
  /// Plain members (role m), i.e. the paper's n_m contribution this round.
  std::size_t member_count() const;

  /// Structural validation against a communication graph:
  ///   - every head belongs to its own cluster;
  ///   - every affiliated non-head's cluster id names a head;
  ///   - every affiliated non-head is within `max_hops` of its head
  ///     (max_hops = 1 is the paper's 1-hop system-model assumption;
  ///     larger values support the future-work d-hop clusters).
  /// Returns an empty string when valid, else a description of the first
  /// violation.
  std::string validate(const Graph& g, std::size_t max_hops = 1) const;

  friend bool operator==(const HierarchyView&, const HierarchyView&) = default;

 private:
  void check_node(NodeId v) const;

  std::vector<NodeRole> role_;
  std::vector<ClusterId> cluster_;
};

/// Per-round hierarchy source, mirroring DynamicNetwork for topology.
class HierarchyProvider {
 public:
  virtual ~HierarchyProvider() = default;
  virtual std::size_t node_count() const = 0;
  virtual const HierarchyView& hierarchy_at(Round r) = 0;
};

/// Hierarchy backed by a precomputed list; rounds past the end repeat the
/// final view (same convention as GraphSequence).
class HierarchySequence final : public HierarchyProvider {
 public:
  explicit HierarchySequence(std::vector<HierarchyView> rounds);

  std::size_t node_count() const override { return n_; }
  const HierarchyView& hierarchy_at(Round r) override;

  std::size_t round_count() const { return rounds_.size(); }
  const std::vector<HierarchyView>& rounds() const { return rounds_; }
  void push_back(HierarchyView h);

 private:
  std::vector<HierarchyView> rounds_;
  std::size_t n_;
};

}  // namespace hinet
