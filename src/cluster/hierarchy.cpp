#include "cluster/hierarchy.hpp"

#include <algorithm>
#include <sstream>

namespace hinet {

const char* node_role_name(NodeRole role) {
  switch (role) {
    case NodeRole::kHead: return "head";
    case NodeRole::kGateway: return "gateway";
    case NodeRole::kMember: return "member";
  }
  return "?";
}

HierarchyView::HierarchyView(std::size_t n)
    : role_(n, NodeRole::kMember), cluster_(n, kNoCluster) {}

void HierarchyView::check_node(NodeId v) const {
  HINET_REQUIRE(v < role_.size(), "node id out of range");
}

NodeRole HierarchyView::role(NodeId v) const {
  check_node(v);
  return role_[v];
}

ClusterId HierarchyView::cluster_of(NodeId v) const {
  check_node(v);
  return cluster_[v];
}

void HierarchyView::set_head(NodeId v) {
  check_node(v);
  role_[v] = NodeRole::kHead;
  cluster_[v] = v;
}

void HierarchyView::set_member(NodeId v, ClusterId head, bool gateway) {
  check_node(v);
  HINET_REQUIRE(head < role_.size() && role_[head] == NodeRole::kHead,
                "affiliation target is not a head");
  HINET_REQUIRE(v != head, "head cannot be its own member");
  role_[v] = gateway ? NodeRole::kGateway : NodeRole::kMember;
  cluster_[v] = head;
}

void HierarchyView::mark_gateway(NodeId v) {
  check_node(v);
  HINET_REQUIRE(role_[v] != NodeRole::kHead, "cannot demote a head to gateway");
  role_[v] = NodeRole::kGateway;
}

void HierarchyView::set_unaffiliated_gateway(NodeId v) {
  check_node(v);
  role_[v] = NodeRole::kGateway;
  cluster_[v] = kNoCluster;
}

std::vector<NodeId> HierarchyView::heads() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < role_.size(); ++v) {
    if (role_[v] == NodeRole::kHead) out.push_back(v);
  }
  return out;
}

std::vector<NodeId> HierarchyView::members_of(ClusterId k) const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < role_.size(); ++v) {
    if (cluster_[v] == k) out.push_back(v);
  }
  return out;
}

std::vector<NodeId> HierarchyView::backbone() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < role_.size(); ++v) {
    if (role_[v] == NodeRole::kHead || role_[v] == NodeRole::kGateway) {
      out.push_back(v);
    }
  }
  return out;
}

std::size_t HierarchyView::head_count() const {
  return static_cast<std::size_t>(
      std::count(role_.begin(), role_.end(), NodeRole::kHead));
}

std::size_t HierarchyView::gateway_count() const {
  return static_cast<std::size_t>(
      std::count(role_.begin(), role_.end(), NodeRole::kGateway));
}

std::size_t HierarchyView::member_count() const {
  std::size_t n = 0;
  for (NodeId v = 0; v < role_.size(); ++v) {
    if (role_[v] == NodeRole::kMember && cluster_[v] != kNoCluster) ++n;
  }
  return n;
}

std::string HierarchyView::validate(const Graph& g,
                                    std::size_t max_hops) const {
  if (g.node_count() != role_.size()) {
    return "graph and hierarchy disagree on node count";
  }
  HINET_REQUIRE(max_hops >= 1, "max_hops must be >= 1");
  // Hop distances from each head are needed only when some member is
  // affiliated with it; compute lazily and cache per head.
  // Error strings are built only on the failure path: this runs per node
  // per generated phase, and an eager ostringstream per node dominated the
  // happy path.
  std::vector<std::vector<int>> dist_cache(role_.size());
  for (NodeId v = 0; v < role_.size(); ++v) {
    const ClusterId k = cluster_[v];
    if (role_[v] == NodeRole::kHead) {
      if (k != v) {
        std::ostringstream os;
        os << "head " << v << " has cluster id " << k << " (expected self)";
        return os.str();
      }
      continue;
    }
    if (k == kNoCluster) continue;  // unaffiliated is allowed
    if (k >= role_.size() || role_[k] != NodeRole::kHead) {
      std::ostringstream os;
      os << "node " << v << " affiliated with " << k << " which is not a head";
      return os.str();
    }
    if (max_hops == 1) {
      if (!g.has_edge(v, k)) {
        std::ostringstream os;
        os << "node " << v << " is not a graph neighbour of its head " << k;
        return os.str();
      }
    } else {
      if (dist_cache[k].empty()) dist_cache[k] = g.distances_from(k);
      const int d = dist_cache[k][v];
      if (d < 0 || static_cast<std::size_t>(d) > max_hops) {
        std::ostringstream os;
        os << "node " << v << " is " << d << " hops from its head " << k
           << " (limit " << max_hops << ")";
        return os.str();
      }
    }
  }
  return {};
}

HierarchySequence::HierarchySequence(std::vector<HierarchyView> rounds)
    : rounds_(std::move(rounds)) {
  HINET_REQUIRE(!rounds_.empty(), "HierarchySequence needs at least one round");
  n_ = rounds_.front().node_count();
  for (const auto& h : rounds_) {
    HINET_REQUIRE(h.node_count() == n_,
                  "all hierarchy rounds must share the node set");
  }
}

const HierarchyView& HierarchySequence::hierarchy_at(Round r) {
  if (r >= rounds_.size()) return rounds_.back();
  return rounds_[r];
}

void HierarchySequence::push_back(HierarchyView h) {
  HINET_REQUIRE(h.node_count() == n_, "appended view must share the node set");
  rounds_.push_back(std::move(h));
}

}  // namespace hinet
