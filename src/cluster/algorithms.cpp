#include "cluster/algorithms.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <numeric>
#include <tuple>
#include <utility>

namespace hinet {

namespace {

/// Greedy capture used by both id- and degree-ordered schemes: scan nodes
/// in `order`; an undecided node becomes a head and captures all of its
/// undecided neighbours as members.
HierarchyView capture_clustering(const Graph& g,
                                 const std::vector<NodeId>& order) {
  HierarchyView h(g.node_count());
  std::vector<char> decided(g.node_count(), 0);
  for (NodeId v : order) {
    if (decided[v]) continue;
    h.set_head(v);
    decided[v] = 1;
    for (NodeId u : g.neighbors(v)) {
      if (!decided[u]) {
        h.set_member(u, v);
        decided[u] = 1;
      }
    }
  }
  return h;
}

}  // namespace

HierarchyView lowest_id_clustering(const Graph& g) {
  std::vector<NodeId> order(g.node_count());
  std::iota(order.begin(), order.end(), 0);
  HierarchyView h = capture_clustering(g, order);
  select_sparse_gateways(h, g);
  return h;
}

HierarchyView highest_degree_clustering(const Graph& g) {
  std::vector<NodeId> order(g.node_count());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    if (g.degree(a) != g.degree(b)) return g.degree(a) > g.degree(b);
    return a < b;
  });
  HierarchyView h = capture_clustering(g, order);
  select_sparse_gateways(h, g);
  return h;
}

HierarchyView wcds_clustering(const Graph& g) {
  const std::size_t n = g.node_count();
  HierarchyView h(n);
  if (n == 0) return h;

  // Greedy dominating set: repeatedly take the node covering the most
  // still-uncovered nodes (itself included); ties break towards lower id.
  std::vector<char> covered(n, 0);
  std::vector<char> is_head(n, 0);
  std::size_t uncovered = n;
  while (uncovered > 0) {
    NodeId best = 0;
    std::size_t best_gain = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (is_head[v]) continue;
      std::size_t gain = covered[v] ? 0u : 1u;
      for (NodeId u : g.neighbors(v)) {
        if (!covered[u]) ++gain;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = v;
      }
    }
    HINET_ENSURE(best_gain > 0, "greedy dominating set stalled");
    is_head[best] = 1;
    if (!covered[best]) {
      covered[best] = 1;
      --uncovered;
    }
    for (NodeId u : g.neighbors(best)) {
      if (!covered[u]) {
        covered[u] = 1;
        --uncovered;
      }
    }
  }

  for (NodeId v = 0; v < n; ++v) {
    if (is_head[v]) h.set_head(v);
  }
  for (NodeId v = 0; v < n; ++v) {
    if (is_head[v]) continue;
    // Affiliate with the lowest-id neighbouring head; the set dominates
    // the graph so one exists unless v is isolated.
    for (NodeId u : g.neighbors(v)) {
      if (is_head[u]) {
        h.set_member(v, u);
        break;
      }
    }
    if (h.cluster_of(v) == kNoCluster && g.degree(v) == 0) {
      h.set_head(v);  // isolated nodes head their own singleton cluster
    }
  }
  select_sparse_gateways(h, g);
  return h;
}

void mark_gateways(HierarchyView& h, const Graph& g) {
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (h.is_head(v) || h.cluster_of(v) == kNoCluster) continue;
    for (NodeId u : g.neighbors(v)) {
      if (h.cluster_of(u) != h.cluster_of(v)) {
        h.mark_gateway(v);
        break;
      }
    }
  }
}

void select_sparse_gateways(HierarchyView& h, const Graph& g) {
  struct Bridge {
    int cost = 3;  // worse than any real option
    NodeId first = kNoCluster;
    NodeId second = kNoCluster;
  };
  std::map<std::pair<ClusterId, ClusterId>, Bridge> best;

  for (NodeId u = 0; u < g.node_count(); ++u) {
    const ClusterId cu = h.cluster_of(u);
    if (cu == kNoCluster) continue;
    for (NodeId v : g.neighbors(u)) {
      if (v < u) continue;  // each edge once
      const ClusterId cv = h.cluster_of(v);
      if (cv == kNoCluster || cv == cu) continue;

      Bridge cand;
      const bool uh = h.is_head(u);
      const bool vh = h.is_head(v);
      if (uh && vh) {
        cand.cost = 0;  // heads are direct neighbours: no gateway needed
      } else if (uh) {
        cand.cost = 1;
        cand.first = v;
      } else if (vh) {
        cand.cost = 1;
        cand.first = u;
      } else {
        cand.cost = 2;
        cand.first = u;
        cand.second = v;
      }
      const auto key = cu < cv ? std::make_pair(cu, cv)
                               : std::make_pair(cv, cu);
      Bridge& cur = best[key];
      const auto rank = [](const Bridge& b) {
        return std::make_tuple(b.cost, b.first, b.second);
      };
      if (rank(cand) < rank(cur)) cur = cand;
    }
  }

  for (const auto& [key, bridge] : best) {
    if (bridge.first != kNoCluster) h.mark_gateway(bridge.first);
    if (bridge.second != kNoCluster) h.mark_gateway(bridge.second);
  }
}

int measure_l_hop_connectivity(const HierarchyView& h, const Graph& g) {
  const std::vector<NodeId> heads = h.heads();
  if (heads.size() < 2) return 0;

  std::vector<char> backbone_mask(g.node_count(), 0);
  for (NodeId v : h.backbone()) backbone_mask[v] = 1;

  // Pairwise backbone-restricted distances between heads.
  const std::size_t m = heads.size();
  std::vector<std::vector<int>> dist(m);
  for (std::size_t i = 0; i < m; ++i) {
    const auto d = restricted_distances(g, heads[i], backbone_mask);
    dist[i].resize(m);
    for (std::size_t j = 0; j < m; ++j) dist[i][j] = d[heads[j]];
  }

  // Definition 6 asks for the smallest L such that every nonempty proper
  // subset S of heads has some outside head within distance L — i.e. the
  // bottleneck of the minimum bottleneck spanning tree over head-to-head
  // backbone distances.  Prim's algorithm, tracking the max edge used.
  std::vector<int> best(m, std::numeric_limits<int>::max());
  std::vector<char> in_tree(m, 0);
  if (best.empty()) return 0;  // m >= 2 here; keeps -Wnull-dereference provable
  best[0] = 0;
  int bottleneck = 0;
  for (std::size_t it = 0; it < m; ++it) {
    std::size_t pick = m;
    for (std::size_t i = 0; i < m; ++i) {
      if (!in_tree[i] && (pick == m || best[i] < best[pick])) pick = i;
    }
    // pick == m cannot happen (each iteration adds exactly one node, so an
    // un-treed candidate always exists), but the guard makes that invariant
    // explicit for readers and the optimizer alike.
    if (pick == m || best[pick] == std::numeric_limits<int>::max()) return -1;
    in_tree[pick] = 1;
    bottleneck = std::max(bottleneck, best[pick]);
    for (std::size_t j = 0; j < m; ++j) {
      if (!in_tree[j] && dist[pick][j] >= 0) {
        best[j] = std::min(best[j], dist[pick][j]);
      }
    }
  }
  return bottleneck;
}

}  // namespace hinet
