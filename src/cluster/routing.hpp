// Intra-cluster routing trees for multi-hop (d-hop) clusters.
//
// In a 1-hop cluster a member reaches its head directly; in the paper's
// future-work d-hop setting (Section VI) uploads must be relayed.  A
// ClusterRouting gives every affiliated node a parent pointer on a BFS
// tree rooted at its cluster head, so member traffic can converge-cast up
// and head traffic diverge-cast down the same tree.
//
// Trees are built per round from the (graph, hierarchy) pair; paths prefer
// same-cluster relays but fall back to any graph path when the cluster is
// not internally connected (d-hop clusterings do not guarantee that the
// shortest member-head path stays inside the cluster).
#pragma once

#include <vector>

#include "cluster/hierarchy.hpp"
#include "graph/dynamic.hpp"

namespace hinet {

struct ClusterRouting {
  static constexpr NodeId kNoParent = static_cast<NodeId>(-1);

  /// Parent towards the node's own cluster head.  Heads and unaffiliated
  /// nodes have kNoParent.  A node whose head is unreachable this round
  /// also has kNoParent (it cannot upload).
  std::vector<NodeId> parent;

  /// Hop distance to the own head along the tree (0 for heads, -1 when
  /// unreachable/unaffiliated).
  std::vector<int> depth;

  /// Children per node (inverse of parent), for diverge-cast fan-out
  /// checks.
  std::vector<std::vector<NodeId>> children;

  std::size_t node_count() const { return parent.size(); }
  bool has_parent(NodeId v) const { return parent[v] != kNoParent; }
};

/// Builds the per-round routing for one (graph, hierarchy) pair.
/// Preference order for a member's path: (1) BFS over nodes of its own
/// cluster, (2) BFS over the whole graph.
ClusterRouting build_cluster_routing(const HierarchyView& h, const Graph& g);

/// Per-round routing source mirroring HierarchyProvider.
class RoutingProvider {
 public:
  virtual ~RoutingProvider() = default;
  virtual std::size_t node_count() const = 0;
  virtual const ClusterRouting& routing_at(Round r) = 0;
};

class RoutingSequence final : public RoutingProvider {
 public:
  explicit RoutingSequence(std::vector<ClusterRouting> rounds);

  std::size_t node_count() const override { return n_; }
  const ClusterRouting& routing_at(Round r) override;
  std::size_t round_count() const { return rounds_.size(); }

 private:
  std::vector<ClusterRouting> rounds_;
  std::size_t n_;
};

/// Precomputes routing for `rounds` rounds of a topology + hierarchy pair.
RoutingSequence build_routing_over(DynamicNetwork& net,
                                   HierarchyProvider& hierarchy,
                                   std::size_t rounds);

}  // namespace hinet
