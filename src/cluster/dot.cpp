#include "cluster/dot.hpp"

#include <map>
#include <sstream>

namespace hinet {

std::string to_dot(const Graph& g, const std::string& name) {
  std::ostringstream os;
  os << "graph " << name << " {\n  node [shape=circle];\n";
  for (NodeId v = 0; v < g.node_count(); ++v) {
    os << "  n" << v << " [label=\"" << v << "\"];\n";
  }
  for (const Edge& e : g.edges()) {
    os << "  n" << e.u << " -- n" << e.v << ";\n";
  }
  os << "}\n";
  return os.str();
}

std::string to_dot(const Graph& g, const HierarchyView& h,
                   const std::string& name) {
  HINET_REQUIRE(g.node_count() == h.node_count(),
                "graph/hierarchy node count mismatch");
  // Stable small color indices per cluster id.
  std::map<ClusterId, int> color;
  for (NodeId head : h.heads()) {
    const int idx = static_cast<int>(color.size()) % 9 + 1;  // colorscheme set19
    color[head] = idx;
  }

  std::ostringstream os;
  os << "graph " << name << " {\n"
     << "  node [style=filled, colorscheme=set19];\n";
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const char* shape = "circle";
    if (h.is_head(v)) {
      shape = "doublecircle";
    } else if (h.is_gateway(v)) {
      shape = "diamond";
    }
    const ClusterId c = h.cluster_of(v);
    const int fill = c != kNoCluster && color.contains(c) ? color[c] : 0;
    os << "  n" << v << " [label=\"" << v << "\", shape=" << shape;
    if (fill > 0) {
      os << ", fillcolor=" << fill;
    } else {
      os << ", fillcolor=white";
    }
    os << "];\n";
  }
  auto backbone_node = [&](NodeId v) {
    return h.is_head(v) || h.is_gateway(v);
  };
  for (const Edge& e : g.edges()) {
    os << "  n" << e.u << " -- n" << e.v;
    if (backbone_node(e.u) && backbone_node(e.v)) {
      os << " [penwidth=2.5]";
    }
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace hinet
