// d-hop (multi-hop) clustering — the paper's Section VI future-work item
// ("how to handle multi-hop clusters should be an interesting issue").
//
// Two schemes:
//   - greedy_dhop_clustering: id-ordered greedy capture generalised to
//     radius d — an undecided node becomes a head and captures every
//     undecided node within d hops.  Simple, deterministic, and the
//     d-hop analogue of lowest-ID clustering.
//   - maxmin_dhop_clustering: the Max-Min d-cluster heuristic (Amis,
//     Prakash, Vuong & Huynh, INFOCOM 2000): 2d rounds of flooding —
//     d rounds of max-id propagation then d rounds of min-id — after
//     which a node heads a cluster iff its own id survived; every node
//     affiliates with the winner id it converged to.  Produces better
//     balanced clusters and is the classic distributed algorithm for the
//     problem.
//
// Both return hierarchies whose members are within d hops of their head
// (validate(g, d) passes).  Gateways are chosen sparsely per adjacent
// cluster pair as in the 1-hop case.
#pragma once

#include "cluster/hierarchy.hpp"
#include "graph/graph.hpp"

namespace hinet {

/// Greedy id-ordered d-hop capture clustering.
HierarchyView greedy_dhop_clustering(const Graph& g, std::size_t d);

/// Max-Min d-cluster formation.
HierarchyView maxmin_dhop_clustering(const Graph& g, std::size_t d);

/// Statistics of a d-hop clustering, for the ablation bench.
struct DhopStats {
  std::size_t heads = 0;
  std::size_t max_radius = 0;    ///< max member-to-head hop distance
  double mean_cluster_size = 0;  ///< members per cluster incl. head
  std::size_t gateways = 0;
};

DhopStats measure_dhop(const HierarchyView& h, const Graph& g);

}  // namespace hinet
