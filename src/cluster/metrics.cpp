#include "cluster/metrics.hpp"

namespace hinet {

HierarchyMetrics measure_hierarchy(HierarchyProvider& provider,
                                   std::size_t rounds) {
  HINET_REQUIRE(rounds >= 1, "need at least one round");
  HierarchyMetrics m;
  m.rounds = rounds;
  m.node_count = provider.node_count();
  std::vector<NodeId> prev_heads;
  double heads_sum = 0.0;
  double members_sum = 0.0;
  double gateways_sum = 0.0;
  for (Round r = 0; r < rounds; ++r) {
    const HierarchyView& h = provider.hierarchy_at(r);
    const auto heads = h.heads();
    m.max_heads = std::max(m.max_heads, heads.size());
    heads_sum += static_cast<double>(heads.size());
    members_sum += static_cast<double>(h.member_count());
    gateways_sum += static_cast<double>(h.gateway_count());
    if (r > 0 && heads != prev_heads) ++m.head_set_changes;
    prev_heads = heads;
  }
  m.mean_heads = heads_sum / static_cast<double>(rounds);
  m.mean_members = members_sum / static_cast<double>(rounds);
  m.mean_gateways = gateways_sum / static_cast<double>(rounds);
  return m;
}

}  // namespace hinet
