// Incremental cluster maintenance over a dynamic topology.
//
// Implements a Least-Cluster-Change style policy (Chiang et al.): the
// hierarchy is perturbed as little as possible per round, which is what
// keeps the paper's n_r ("average number of re-affiliations a cluster
// member conducts") small relative to n_0.  Rules per round:
//   1. A head remains a head unless it became adjacent to a head with a
//      smaller id, in which case it abdicates and joins that head.
//   2. A member that lost the link to its head re-affiliates with its
//      lowest-id neighbouring head; if none exists it promotes itself.
//   3. Gateways are re-marked from scratch each round.
// The maintainer counts re-affiliations and head churn so experiments can
// report *measured* n_r / θ instead of assumed ones.
#pragma once

#include <functional>

#include "cluster/algorithms.hpp"
#include "cluster/hierarchy.hpp"
#include "graph/dynamic.hpp"

namespace hinet {

struct MaintenanceStats {
  std::size_t rounds = 0;
  std::size_t reaffiliations = 0;   ///< member changed cluster id
  std::size_t head_promotions = 0;  ///< non-head became head
  std::size_t head_abdications = 0; ///< head became non-head
  std::vector<std::size_t> per_node_reaffiliations;

  /// The paper's n_r: mean re-affiliations per (ever-)member node.
  double mean_reaffiliations() const;
};

class ClusterMaintainer {
 public:
  using InitialClustering = std::function<HierarchyView(const Graph&)>;

  /// Builds the initial hierarchy from `g0` with `initial` (defaults to
  /// lowest-ID clustering).
  explicit ClusterMaintainer(const Graph& g0,
                             InitialClustering initial = nullptr);

  /// Advances the hierarchy to a new round's graph.
  const HierarchyView& step(const Graph& g);

  const HierarchyView& view() const { return view_; }
  const MaintenanceStats& stats() const { return stats_; }

 private:
  HierarchyView view_;
  MaintenanceStats stats_;
};

/// Runs a maintainer over `rounds` rounds of `net` and returns the
/// per-round hierarchy together with the accumulated statistics.
struct MaintainedHierarchy {
  HierarchySequence hierarchy;
  MaintenanceStats stats;
};

MaintainedHierarchy maintain_over(
    DynamicNetwork& net, std::size_t rounds,
    ClusterMaintainer::InitialClustering initial = nullptr);

}  // namespace hinet
