#include "analysis/model_estimation.hpp"

#include <algorithm>

namespace hinet {

StabilityEstimate estimate_stability(Ctvg& trace, std::size_t rounds,
                                     std::size_t t_cap) {
  HINET_REQUIRE(rounds >= 1, "need at least one round");
  HINET_REQUIRE(rounds <= trace.round_count(), "rounds beyond the trace");
  if (t_cap == 0 || t_cap > rounds) t_cap = rounds;

  StabilityEstimate est;

  // Aligned-phase properties are not monotone in T in general, so report
  // the largest T that holds by direct scan.
  for (std::size_t t = 1; t <= t_cap; ++t) {
    if (check_stable_head_set(trace, rounds, t)) {
      est.max_t_stable_head_set = t;
    }
    if (check_stable_hierarchy(trace, rounds, t)) {
      est.max_t_stable_hierarchy = t;
    }
    if (check_head_connectivity(trace, rounds, t)) {
      est.max_t_head_connectivity = t;
    }
  }

  // Worst-case L over individual rounds.
  est.worst_l = 0;
  for (Round r = 0; r < rounds; ++r) {
    const int l = measure_l_hop(trace, r);
    if (l < 0) {
      est.worst_l = -1;
      break;
    }
    est.worst_l = std::max(est.worst_l, l);
  }

  if (est.worst_l >= 1) {
    for (std::size_t t = 1; t <= t_cap; ++t) {
      if (check_hinet(trace, rounds, t, est.worst_l)) {
        est.max_t_hinet = t;
      }
    }
  } else if (est.worst_l == 0) {
    // Single cluster (fewer than two heads everywhere): Def. 7 is vacuous;
    // the hierarchy stability alone decides.
    est.max_t_hinet = est.max_t_stable_hierarchy;
  }
  return est;
}

}  // namespace hinet
