#include "analysis/scenarios.hpp"

#include <cmath>

#include "baseline/klo.hpp"
#include "core/alg1.hpp"
#include "core/alg2.hpp"

namespace hinet {

const char* scenario_name(Scenario s) {
  switch (s) {
    case Scenario::kKloInterval: return "(k+aL)-interval connected [7]";
    case Scenario::kHiNetInterval: return "(k+aL, L)-HiNet";
    case Scenario::kHiNetIntervalStable: return "(k+aL, L)-HiNet, stable heads";
    case Scenario::kKloOne: return "1-interval connected [7]";
    case Scenario::kHiNetOne: return "(1, L)-HiNet";
  }
  return "?";
}

namespace {

struct TracePlan {
  HiNetConfig gen;
  std::size_t scheduled_rounds = 0;
};

TracePlan plan_trace(Scenario s, const ScenarioConfig& cfg,
                     std::uint64_t seed) {
  const std::size_t t = cfg.k + cfg.alpha * static_cast<std::size_t>(cfg.hop_l);
  TracePlan plan;
  plan.gen.nodes = cfg.nodes;
  plan.gen.heads = cfg.heads;
  plan.gen.hop_l = cfg.hop_l;
  plan.gen.reaffiliation_prob = cfg.reaffiliation_prob;
  plan.gen.churn_edges = cfg.churn_edges;
  plan.gen.seed = seed;
  switch (s) {
    case Scenario::kKloInterval: {
      plan.gen.phase_length = t;
      plan.gen.phases = ceil_div(cfg.nodes, cfg.alpha *
                                 static_cast<std::size_t>(cfg.hop_l));
      break;
    }
    case Scenario::kHiNetInterval: {
      plan.gen.phase_length = t;
      plan.gen.phases = ceil_div(cfg.heads, cfg.alpha) + 1;
      break;
    }
    case Scenario::kHiNetIntervalStable: {
      plan.gen.phase_length = t;
      plan.gen.phases = ceil_div(cfg.heads, cfg.alpha) + 1;
      plan.gen.stable_heads = true;
      break;
    }
    case Scenario::kKloOne:
    case Scenario::kHiNetOne: {
      plan.gen.phase_length = 1;
      plan.gen.phases = cfg.nodes >= 2 ? cfg.nodes - 1 : 1;
      // With single-round phases a full backbone reshuffle every round
      // would force member/gateway role flips far beyond the n_r the
      // analytic model accounts for; keep the relay structure quasi-stable
      // and let the re-affiliation coin drive churn.
      plan.gen.backbone_rewire_prob = cfg.reaffiliation_prob;
      break;
    }
  }
  plan.scheduled_rounds = plan.gen.phases * plan.gen.phase_length;
  return plan;
}

std::vector<ProcessPtr> plan_processes(Scenario s, const ScenarioConfig& cfg,
                                       const TracePlan& plan,
                                       const std::vector<TokenSet>& initial) {
  switch (s) {
    case Scenario::kKloInterval: {
      KloPipelineParams p;
      p.k = cfg.k;
      p.phase_length = plan.gen.phase_length;
      p.phases = plan.gen.phases;
      return make_klo_pipeline_processes(initial, p);
    }
    case Scenario::kHiNetInterval:
    case Scenario::kHiNetIntervalStable: {
      Alg1Params p;
      p.k = cfg.k;
      p.phase_length = plan.gen.phase_length;
      p.phases = plan.gen.phases;
      p.stable_head_optimisation = s == Scenario::kHiNetIntervalStable;
      return make_alg1_processes(initial, p);
    }
    case Scenario::kKloOne: {
      KloFloodParams p;
      p.k = cfg.k;
      p.rounds = plan.scheduled_rounds;
      return make_klo_flood_processes(initial, p);
    }
    case Scenario::kHiNetOne: {
      Alg2Params p;
      p.k = cfg.k;
      p.rounds = plan.scheduled_rounds;
      return make_alg2_processes(initial, p);
    }
  }
  HINET_ENSURE(false, "unreachable scenario");
  return {};
}

}  // namespace

ScenarioRun make_scenario(Scenario s, const ScenarioConfig& cfg,
                          std::uint64_t seed) {
  HINET_REQUIRE(cfg.k >= 1 && cfg.alpha >= 1, "k and alpha must be positive");
  const TracePlan plan = plan_trace(s, cfg, seed);
  auto trace = std::make_shared<HiNetTrace>(make_hinet_trace(plan.gen));

  Rng assign_rng(seed ^ 0xa5a5a5a5a5a5a5a5ULL);
  const auto initial =
      assign_tokens(cfg.nodes, cfg.k, cfg.assignment, assign_rng);

  ScenarioRun out;
  out.trace_stats = trace->stats;
  out.scheduled_rounds = plan.scheduled_rounds;
  out.analytic.n0 = cfg.nodes;
  out.analytic.theta = trace->stats.theta;
  out.analytic.n_m = static_cast<std::size_t>(
      std::llround(trace->stats.mean_members));
  out.analytic.n_r = static_cast<std::size_t>(
      std::llround(trace->stats.mean_reaffiliations));
  out.analytic.k = cfg.k;
  out.analytic.alpha = cfg.alpha;
  out.analytic.l = static_cast<std::size_t>(cfg.hop_l);

  out.run.processes = plan_processes(s, cfg, plan, initial);
  out.run.net = &trace->ctvg.topology();
  const bool uses_hierarchy = s == Scenario::kHiNetInterval ||
                              s == Scenario::kHiNetIntervalStable ||
                              s == Scenario::kHiNetOne;
  out.run.hierarchy = uses_hierarchy ? &trace->ctvg.hierarchy() : nullptr;
  out.run.holder = std::move(trace);
  out.run.engine.max_rounds = plan.scheduled_rounds;
  out.run.engine.stop_when_complete = !cfg.run_full_schedule;
  return out;
}

RunFactory scenario_factory(Scenario s, const ScenarioConfig& cfg) {
  return [s, cfg](std::uint64_t seed) {
    return make_scenario(s, cfg, seed).run;
  };
}

}  // namespace hinet
