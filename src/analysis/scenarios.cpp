#include "analysis/scenarios.hpp"

#include <cmath>

#include "baseline/klo.hpp"
#include "core/alg1.hpp"
#include "core/alg2.hpp"

namespace hinet {

const char* scenario_name(Scenario s) {
  switch (s) {
    case Scenario::kKloInterval: return "(k+aL)-interval connected [7]";
    case Scenario::kHiNetInterval: return "(k+aL, L)-HiNet";
    case Scenario::kHiNetIntervalStable: return "(k+aL, L)-HiNet, stable heads";
    case Scenario::kKloOne: return "1-interval connected [7]";
    case Scenario::kHiNetOne: return "(1, L)-HiNet";
  }
  return "?";
}

const char* scenario_cli_name(Scenario s) {
  switch (s) {
    case Scenario::kKloInterval: return "klo-interval";
    case Scenario::kHiNetInterval: return "hinet-interval";
    case Scenario::kHiNetIntervalStable: return "hinet-interval-stable";
    case Scenario::kKloOne: return "klo-one";
    case Scenario::kHiNetOne: return "hinet-one";
  }
  return "?";
}

std::optional<Scenario> scenario_from_cli_name(const std::string& name) {
  for (const Scenario s : all_scenarios()) {
    if (name == scenario_cli_name(s)) return s;
  }
  return std::nullopt;
}

std::span<const Scenario> all_scenarios() {
  static constexpr Scenario kAll[] = {
      Scenario::kKloInterval, Scenario::kHiNetInterval,
      Scenario::kHiNetIntervalStable, Scenario::kKloOne, Scenario::kHiNetOne};
  return kAll;
}

HiNetConfig scenario_generator(Scenario s, const ScenarioConfig& cfg,
                               std::uint64_t seed,
                               ScenarioSchedule* schedule) {
  const std::size_t t = cfg.k + cfg.alpha * static_cast<std::size_t>(cfg.hop_l);
  HiNetConfig gen;
  gen.nodes = cfg.nodes;
  gen.heads = cfg.heads;
  gen.hop_l = cfg.hop_l;
  gen.reaffiliation_prob = cfg.reaffiliation_prob;
  gen.churn_edges = cfg.churn_edges;
  gen.seed = seed;
  switch (s) {
    case Scenario::kKloInterval: {
      gen.phase_length = t;
      gen.phases = ceil_div(cfg.nodes, cfg.alpha *
                            static_cast<std::size_t>(cfg.hop_l));
      break;
    }
    case Scenario::kHiNetInterval: {
      gen.phase_length = t;
      gen.phases = ceil_div(cfg.heads, cfg.alpha) + 1;
      break;
    }
    case Scenario::kHiNetIntervalStable: {
      gen.phase_length = t;
      gen.phases = ceil_div(cfg.heads, cfg.alpha) + 1;
      gen.stable_heads = true;
      break;
    }
    case Scenario::kKloOne:
    case Scenario::kHiNetOne: {
      gen.phase_length = 1;
      gen.phases = cfg.nodes >= 2 ? cfg.nodes - 1 : 1;
      // With single-round phases a full backbone reshuffle every round
      // would force member/gateway role flips far beyond the n_r the
      // analytic model accounts for; keep the relay structure quasi-stable
      // and let the re-affiliation coin drive churn.
      gen.backbone_rewire_prob = cfg.reaffiliation_prob;
      break;
    }
  }
  if (schedule != nullptr) {
    schedule->phase_length = gen.phase_length;
    schedule->phases = gen.phases;
  }
  return gen;
}

namespace {

std::vector<ProcessPtr> plan_processes(Scenario s, const ScenarioConfig& cfg,
                                       const ScenarioSchedule& sched,
                                       const std::vector<TokenSet>& initial) {
  switch (s) {
    case Scenario::kKloInterval: {
      KloPipelineParams p;
      p.k = cfg.k;
      p.phase_length = sched.phase_length;
      p.phases = sched.phases;
      return make_klo_pipeline_processes(initial, p);
    }
    case Scenario::kHiNetInterval:
    case Scenario::kHiNetIntervalStable: {
      Alg1Params p;
      p.k = cfg.k;
      p.phase_length = sched.phase_length;
      p.phases = sched.phases;
      p.stable_head_optimisation = s == Scenario::kHiNetIntervalStable;
      return make_alg1_processes(initial, p);
    }
    case Scenario::kKloOne: {
      KloFloodParams p;
      p.k = cfg.k;
      p.rounds = sched.rounds();
      return make_klo_flood_processes(initial, p);
    }
    case Scenario::kHiNetOne: {
      Alg2Params p;
      p.k = cfg.k;
      p.rounds = sched.rounds();
      return make_alg2_processes(initial, p);
    }
  }
  HINET_ENSURE(false, "unreachable scenario");
  return {};
}

}  // namespace

ScenarioRun make_scenario_from_trace(Scenario s, const ScenarioConfig& cfg,
                                     HiNetTrace&& trace, std::uint64_t seed) {
  HINET_REQUIRE(cfg.k >= 1 && cfg.alpha >= 1, "k and alpha must be positive");
  ScenarioSchedule sched;
  (void)scenario_generator(s, cfg, seed, &sched);

  Rng assign_rng(seed ^ 0xa5a5a5a5a5a5a5a5ULL);
  const auto initial =
      assign_tokens(cfg.nodes, cfg.k, cfg.assignment, assign_rng);

  ScenarioRun out;
  out.trace_stats = trace.stats;
  out.scheduled_rounds = sched.rounds();
  out.analytic.n0 = cfg.nodes;
  out.analytic.theta = trace.stats.theta;
  out.analytic.n_m = static_cast<std::size_t>(
      std::llround(trace.stats.mean_members));
  out.analytic.n_r = static_cast<std::size_t>(
      std::llround(trace.stats.mean_reaffiliations));
  out.analytic.k = cfg.k;
  out.analytic.alpha = cfg.alpha;
  out.analytic.l = static_cast<std::size_t>(cfg.hop_l);

  out.spec.processes = plan_processes(s, cfg, sched, initial);
  const bool uses_hierarchy = s == Scenario::kHiNetInterval ||
                              s == Scenario::kHiNetIntervalStable ||
                              s == Scenario::kHiNetOne;
  if (uses_hierarchy) {
    out.spec.hierarchy = std::make_unique<HierarchySequence>(
        std::move(trace.ctvg.hierarchy()));
  }
  out.spec.network =
      std::make_unique<GraphSequence>(std::move(trace.ctvg.topology()));
  out.spec.engine.max_rounds = sched.rounds();
  out.spec.engine.stop_when_complete = !cfg.run_full_schedule;
  return out;
}

ScenarioRun make_scenario(Scenario s, const ScenarioConfig& cfg,
                          std::uint64_t seed) {
  HINET_REQUIRE(cfg.k >= 1 && cfg.alpha >= 1, "k and alpha must be positive");
  ScenarioSchedule sched;
  const HiNetConfig gen = scenario_generator(s, cfg, seed, &sched);

  Rng assign_rng(seed ^ 0xa5a5a5a5a5a5a5a5ULL);
  const auto initial =
      assign_tokens(cfg.nodes, cfg.k, cfg.assignment, assign_rng);

  // Streaming trace: rounds are synthesized on demand and only a small
  // ring stays resident, so scenario memory is O(n·window), not O(n·Γ).
  // Byte-identical to the materialized make_hinet_trace path (pinned by
  // the conformance suite), so goldens and digests are unchanged.
  HiNetStream stream = make_hinet_stream(gen);

  ScenarioRun out;
  out.trace_stats = stream.stats;
  out.scheduled_rounds = sched.rounds();
  out.analytic.n0 = cfg.nodes;
  out.analytic.theta = stream.stats.theta;
  out.analytic.n_m = static_cast<std::size_t>(
      std::llround(stream.stats.mean_members));
  out.analytic.n_r = static_cast<std::size_t>(
      std::llround(stream.stats.mean_reaffiliations));
  out.analytic.k = cfg.k;
  out.analytic.alpha = cfg.alpha;
  out.analytic.l = static_cast<std::size_t>(cfg.hop_l);

  out.spec.processes = plan_processes(s, cfg, sched, initial);
  const bool uses_hierarchy = s == Scenario::kHiNetInterval ||
                              s == Scenario::kHiNetIntervalStable ||
                              s == Scenario::kHiNetOne;
  if (uses_hierarchy) {
    out.spec.hierarchy = std::move(stream.hierarchy);
  }
  out.spec.network = std::move(stream.topology);
  out.spec.engine.max_rounds = sched.rounds();
  out.spec.engine.stop_when_complete = !cfg.run_full_schedule;
  return out;
}

SpecFactory scenario_factory(Scenario s, const ScenarioConfig& cfg) {
  return [s, cfg](std::uint64_t seed) {
    return std::move(make_scenario(s, cfg, seed).spec);
  };
}

}  // namespace hinet
