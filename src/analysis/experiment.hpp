// Experiment harness: repeat a seeded simulation, aggregate the metrics.
//
// A RunFactory builds everything one repetition needs (trace, hierarchy,
// processes, engine config) from a seed; run_experiment executes
// `repetitions` of them with derived seeds and summarises.  All benches
// and sweep figures go through this path so their statistics are computed
// identically.
#pragma once

#include <functional>
#include <memory>

#include "sim/engine.hpp"
#include "util/stats.hpp"

namespace hinet {

struct PreparedRun {
  /// Keeps the trace (or any other backing storage) alive for the run.
  std::shared_ptr<void> holder;
  DynamicNetwork* net = nullptr;
  HierarchyProvider* hierarchy = nullptr;  ///< null for flat algorithms
  std::vector<ProcessPtr> processes;
  EngineConfig engine;
};

using RunFactory = std::function<PreparedRun(std::uint64_t seed)>;

struct AggregateResult {
  Summary rounds_to_completion;  ///< over delivered runs only
  Summary tokens_sent;
  Summary packets_sent;
  double delivery_rate = 0.0;  ///< fraction of repetitions that delivered
  std::size_t repetitions = 0;

  std::string to_string() const;
};

/// Executes `repetitions` runs with seeds base_seed, base_seed+1, ...
AggregateResult run_experiment(const RunFactory& factory,
                               std::size_t repetitions,
                               std::uint64_t base_seed);

/// Executes a single prepared run (convenience for examples/tests).
SimMetrics run_once(PreparedRun run);

}  // namespace hinet
