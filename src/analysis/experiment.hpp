// Experiment harness: repeat a seeded simulation, aggregate the metrics.
//
// A SpecFactory builds everything one repetition needs — trace, hierarchy,
// channel, processes, engine config — as a self-owning SimulationSpec from
// a seed; run_experiment executes `repetitions` of them with derived seeds
// under an ExecutionPolicy and summarises.  All benches and sweep figures
// go through this path so their statistics are computed identically.
//
// ## ExecutionPolicy semantics
//
// The policy chooses HOW replicates execute, never WHAT they compute: for
// a fixed (factory, repetitions, base_seed), every policy produces
// byte-identical deterministic statistics (same_statistics / stats_digest)
// because replicate seeds derive from the replicate *index*
// (replicate_seed), results are stored by index, and aggregation runs in
// index order regardless of scheduling.
//
//   Serial           — one replicate after another on the calling thread.
//                      The reference path.
//   Threaded{jobs}   — a fixed worker pool of `jobs` threads (0 =
//                      default_jobs()); each worker builds and runs whole
//                      replicates.  Wins when hardware threads are free.
//   Batched{R}       — lockstep batches of R replicates on the calling
//                      thread via BatchEngine (sim/batch_engine.hpp):
//                      consecutive index ranges [0,R), [R,2R), ... advance
//                      round by round together, sharing one inbox scratch
//                      and making one channel begin_round_batch call per
//                      lockstep round.  Wins on cache locality and
//                      per-round overhead amortisation when no extra
//                      hardware threads exist (the 1-core CI box).
//   ThreadedBatched  — the worker pool pulls whole lockstep batches:
//     {jobs, R}        jobs × Batched{R}.  The multi-core sweep
//                      configuration.
//
// Per-replicate wall_ms under the batched policies is the batch wall time
// divided by the batch's replicate count (lockstep interleaves rounds, so
// a single replicate's wall time is not individually observable).  Timing
// is excluded from same_statistics either way.
//
// Batched deadline semantics: a lockstep batch shares one wall budget (the
// max EngineConfig::deadline_ms across its specs); on expiry every
// replicate still unfinished in that batch fails with DeadlineError.
//
// The parallel execution contract is unchanged: every spec owns its whole
// run, so replicates share no mutable state; the factory must be safe to
// invoke from multiple threads concurrently (a pure function of the seed,
// or internally synchronised).
#pragma once

#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/spec.hpp"
#include "util/stats.hpp"

namespace hinet {

using SpecFactory = std::function<SimulationSpec(std::uint64_t seed)>;

/// Seed of replicate `rep` in a batch with base seed `base_seed`.  Kept as
/// plain base + rep (the historical contract "seeds base_seed,
/// base_seed+1, ..."), centralised here so the execution policies cannot
/// drift apart.  Callers validate against wraparound up front
/// (run_replicates rejects batches whose last seed would overflow);
/// this function itself stays a total constexpr.
constexpr std::uint64_t replicate_seed(std::uint64_t base_seed,
                                       std::size_t rep) {
  return base_seed + rep;
}

/// How an experiment's replicates execute.  See the policy semantics at
/// the top of this header; every mode produces byte-identical statistics.
struct ExecutionPolicy {
  enum class Mode {
    kSerial,           ///< calling thread, one replicate at a time
    kThreaded,         ///< worker pool, whole replicates
    kBatched,          ///< calling thread, lockstep batches of R
    kThreadedBatched,  ///< worker pool, lockstep batches of R
  };

  Mode mode = Mode::kSerial;

  /// Worker-pool width for the threaded modes; 0 = default_jobs().
  std::size_t jobs = 0;

  /// Lockstep batch width R for the batched modes.
  std::size_t replicates_per_batch = 8;

  static ExecutionPolicy serial() { return {}; }
  static ExecutionPolicy threaded(std::size_t jobs = 0) {
    return {Mode::kThreaded, jobs, 8};
  }
  static ExecutionPolicy batched(std::size_t replicates_per_batch = 8) {
    return {Mode::kBatched, 0, replicates_per_batch};
  }
  static ExecutionPolicy threaded_batched(
      std::size_t jobs = 0, std::size_t replicates_per_batch = 8) {
    return {Mode::kThreadedBatched, jobs, replicates_per_batch};
  }

  bool is_batched() const {
    return mode == Mode::kBatched || mode == Mode::kThreadedBatched;
  }
  bool is_threaded() const {
    return mode == Mode::kThreaded || mode == Mode::kThreadedBatched;
  }

  /// Worker-pool width this policy actually uses (1 for the serial
  /// modes, jobs resolved through default_jobs() otherwise).
  std::size_t effective_jobs() const;
};

const char* to_string(ExecutionPolicy::Mode m);

/// Everything run_experiment needs besides the factory.
struct ExperimentOptions {
  std::size_t repetitions = 1;
  std::uint64_t base_seed = 0;
  ExecutionPolicy policy;
};

/// One failed replicate inside a batch: which one, with which seed, why.
struct ReplicateFailure {
  std::size_t replicate = 0;
  std::uint64_t seed = 0;
  std::string message;
};

/// Thrown by run_replicates after the whole batch drained when at least
/// one replicate failed.  Unlike a bare rethrow of the first exception,
/// this carries *every* failure — a batch with three bad seeds reports
/// three seeds, so one debugging cycle sees the full blast radius.
/// Derives from std::runtime_error so callers that only understand the
/// old single-error contract still catch it.
class ReplicateBatchError : public std::runtime_error {
 public:
  explicit ReplicateBatchError(std::vector<ReplicateFailure> failures);

  const std::vector<ReplicateFailure>& failures() const { return failures_; }

 private:
  static std::string format(const std::vector<ReplicateFailure>& failures);

  std::vector<ReplicateFailure> failures_;
};

/// Worker-pool width used when callers pass jobs == 0: the hardware
/// concurrency, or 1 when the runtime cannot report it.
std::size_t default_jobs();

/// One executed replicate: its metrics plus the wall time it took.
struct ReplicateResult {
  SimMetrics metrics;
  double wall_ms = 0.0;
};

/// Executes `repetitions` replicates with seeds replicate_seed(base_seed,
/// 0..reps-1) on up to `jobs` worker threads (0 = default_jobs()).
/// Results are indexed by replicate, independent of completion order.
/// Building the spec (trace generation) and running it both happen on the
/// worker, so the whole per-replicate pipeline parallelises.  A failing
/// replicate does not stop the batch: every replicate runs, and if any
/// failed a ReplicateBatchError carrying all of them is thrown after the
/// pool drains.  Rejects (PreconditionError) a batch whose last seed
/// base_seed + repetitions - 1 would wrap past 2^64 — silent wraparound
/// would alias replicate seeds onto low seeds and quietly correlate
/// "independent" repetitions.
std::vector<ReplicateResult> run_replicates(const SpecFactory& factory,
                                            std::size_t repetitions,
                                            std::uint64_t base_seed,
                                            std::size_t jobs = 1);

/// The lockstep executor: partitions the replicate index range into
/// consecutive batches of `replicates_per_batch` (the last batch may be
/// short) and advances each batch in lockstep on a BatchEngine; with
/// jobs > 1 a worker pool pulls whole batches.  Same contract as
/// run_replicates otherwise: results indexed by replicate, failures
/// collected into one ReplicateBatchError after everything drained, seed
/// overflow rejected up front.  Statistics are byte-identical to
/// run_replicates at equal (factory, repetitions, base_seed); wall_ms is
/// the batch wall time split evenly across the batch.
std::vector<ReplicateResult> run_replicates_lockstep(
    const SpecFactory& factory, std::size_t repetitions,
    std::uint64_t base_seed, std::size_t replicates_per_batch,
    std::size_t jobs = 1);

/// Wall-clock measurement of a batch.  Unlike the simulation statistics,
/// these values vary run to run and are excluded from same_statistics().
struct BatchTiming {
  Summary replicate_wall_ms;   ///< per-replicate wall time
  double wall_seconds = 0.0;   ///< whole-batch wall time
  double runs_per_second = 0.0;  ///< repetitions / wall_seconds
  std::size_t jobs = 1;        ///< worker-pool width actually used
  /// Lockstep batch width R (1 = not batched).  Execution detail, like
  /// jobs: excluded from same_statistics.
  std::size_t replicates_per_batch = 1;
};

struct AggregateResult {
  // Deterministic simulation statistics: identical (byte for byte) across
  // execution policies at equal (factory, repetitions, base_seed).
  Summary rounds_to_completion;  ///< over delivered runs only
  Summary tokens_sent;
  Summary packets_sent;
  /// Degradation under faults, over all repetitions: fraction of nodes
  /// complete at cutoff, and mean per-node token coverage.  Both are 1.0
  /// on every delivered run, so fault-free sweeps see no difference.
  Summary completion_fraction;
  Summary token_coverage;
  double delivery_rate = 0.0;  ///< fraction of repetitions that delivered
  std::size_t repetitions = 0;

  /// Replicates that errored and were excluded from the statistics above
  /// (supervised runs salvage the rest of the batch instead of discarding
  /// it).  Part of same_statistics: an aggregate over 98/100 replicates is
  /// NOT the same result as one over 100/100.
  std::size_t failed_replicates = 0;

  /// Replicates that succeeded only after one or more supervised retries.
  /// Execution history, not a statistic: excluded from same_statistics
  /// like timing (a resumed sweep legitimately retries differently).
  std::size_t retried_replicates = 0;

  // Wall-clock measurement; varies run to run.
  BatchTiming timing;

  /// True when the deterministic statistics match exactly (bitwise double
  /// equality); timing and retry history are deliberately ignored.
  bool same_statistics(const AggregateResult& other) const;

  /// FNV-1a hash over exactly the fields same_statistics compares — a
  /// one-line fingerprint for "did the resumed sweep aggregate to the same
  /// result" checks in CI, stable across processes and platforms.
  std::uint64_t stats_digest() const;

  std::string to_string() const;
};

/// Summarises replicate results in index order (order-independent w.r.t.
/// execution).  `batch_seconds`/`jobs` fill the timing block.
AggregateResult aggregate_replicates(const std::vector<ReplicateResult>& reps,
                                     double batch_seconds, std::size_t jobs);

/// THE experiment entry point: executes options.repetitions replicates of
/// the factory at seeds derived from options.base_seed under
/// options.policy, and aggregates.  Statistics do not depend on the
/// policy; timing does.
AggregateResult run_experiment(const SpecFactory& factory,
                               const ExperimentOptions& options);

}  // namespace hinet
