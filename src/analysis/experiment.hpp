// Experiment harness: repeat a seeded simulation, aggregate the metrics.
//
// A SpecFactory builds everything one repetition needs — trace, hierarchy,
// channel, processes, engine config — as a self-owning SimulationSpec from
// a seed; run_experiment / run_experiment_parallel execute `repetitions`
// of them with derived seeds and summarise.  All benches and sweep figures
// go through this path so their statistics are computed identically.
//
// Parallel execution contract: because every spec owns its whole run,
// replicates share no mutable state and can execute on a fixed-size worker
// pool.  Seeds are derived per replicate *index* (replicate_seed), results
// are stored by index and aggregated in index order, so a parallel batch
// produces byte-identical statistics to the serial path regardless of
// completion order.  The factory itself must be safe to invoke from
// multiple threads concurrently (a pure function of the seed, or
// internally synchronised).
#pragma once

#include <functional>
#include <vector>

#include "sim/spec.hpp"
#include "util/stats.hpp"

namespace hinet {

using SpecFactory = std::function<SimulationSpec(std::uint64_t seed)>;

/// Seed of replicate `rep` in a batch with base seed `base_seed`.  Kept as
/// plain base + rep (the historical contract "seeds base_seed,
/// base_seed+1, ..."), centralised here so the serial and parallel paths
/// cannot drift apart.
constexpr std::uint64_t replicate_seed(std::uint64_t base_seed,
                                       std::size_t rep) {
  return base_seed + rep;
}

/// Worker-pool width used when callers pass jobs == 0: the hardware
/// concurrency, or 1 when the runtime cannot report it.
std::size_t default_jobs();

/// One executed replicate: its metrics plus the wall time it took.
struct ReplicateResult {
  SimMetrics metrics;
  double wall_ms = 0.0;
};

/// Executes `repetitions` replicates with seeds replicate_seed(base_seed,
/// 0..reps-1) on up to `jobs` worker threads (0 = default_jobs()).
/// Results are indexed by replicate, independent of completion order.
/// Building the spec (trace generation) and running it both happen on the
/// worker, so the whole per-replicate pipeline parallelises.  The first
/// exception thrown by any replicate is rethrown after the pool drains.
std::vector<ReplicateResult> run_replicates(const SpecFactory& factory,
                                            std::size_t repetitions,
                                            std::uint64_t base_seed,
                                            std::size_t jobs = 1);

/// Wall-clock measurement of a batch.  Unlike the simulation statistics,
/// these values vary run to run and are excluded from same_statistics().
struct BatchTiming {
  Summary replicate_wall_ms;   ///< per-replicate wall time
  double wall_seconds = 0.0;   ///< whole-batch wall time
  double runs_per_second = 0.0;  ///< repetitions / wall_seconds
  std::size_t jobs = 1;        ///< worker-pool width actually used
};

struct AggregateResult {
  // Deterministic simulation statistics: identical (byte for byte) for
  // serial and parallel batches at equal (factory, repetitions, base_seed).
  Summary rounds_to_completion;  ///< over delivered runs only
  Summary tokens_sent;
  Summary packets_sent;
  /// Degradation under faults, over all repetitions: fraction of nodes
  /// complete at cutoff, and mean per-node token coverage.  Both are 1.0
  /// on every delivered run, so fault-free sweeps see no difference.
  Summary completion_fraction;
  Summary token_coverage;
  double delivery_rate = 0.0;  ///< fraction of repetitions that delivered
  std::size_t repetitions = 0;

  // Wall-clock measurement; varies run to run.
  BatchTiming timing;

  /// True when the deterministic statistics match exactly (bitwise double
  /// equality); timing is deliberately ignored.
  bool same_statistics(const AggregateResult& other) const;

  std::string to_string() const;
};

/// Summarises replicate results in index order (order-independent w.r.t.
/// execution).  `batch_seconds`/`jobs` fill the timing block.
AggregateResult aggregate_replicates(const std::vector<ReplicateResult>& reps,
                                     double batch_seconds, std::size_t jobs);

/// Serial reference path: executes repetitions one after another on the
/// calling thread.  Statistics are byte-identical to
/// run_experiment_parallel at any job count.
AggregateResult run_experiment(const SpecFactory& factory,
                               std::size_t repetitions,
                               std::uint64_t base_seed);

/// Batch executor on a fixed-size worker pool of `jobs` threads
/// (0 = default_jobs()).
AggregateResult run_experiment_parallel(const SpecFactory& factory,
                                        std::size_t repetitions,
                                        std::uint64_t base_seed,
                                        std::size_t jobs = 0);

}  // namespace hinet
